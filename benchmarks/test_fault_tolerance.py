"""Chaos benchmark — fault-tolerance scenario sweep for the DDP simulator.

Runs the fault-injection layer through its paces: straggler
distributions, message-drop/retry sweeps, transient link degradation,
and worker-failure recovery under both policies (rejoin vs shrink), for
vanilla SGD and the Pufferfish hybrid.

Every *gated* number here is a modeled quantity (comm seconds, banked
retry penalties, recovery seconds, event/retry counts) — fully
determined by the fault seed, so the committed baseline
(``benchmarks/baselines/faults_baseline.json``) can be compared exactly.
Wall-clock compute appears in the printed tables for context but is
never gated.

The session leaves ``BENCH_faults.json`` behind;
``benchmarks/check_faults_regression.py`` fails CI if any recovery-time
metric regresses more than 20% against the baseline.
"""

import json
import platform
import time

import numpy as np
import pytest

from harness import print_series, print_table
from repro import __version__
from repro.core import build_hybrid
from repro.data import DataLoader, shard_dataset
from repro.distributed import (
    ClusterSpec,
    DistributedTrainer,
    DropSpec,
    FailureSpec,
    FaultSpec,
    LinkSpec,
    StragglerSpec,
)
from repro.models import MLP, mlp_hybrid_config
from repro.optim import SGD
from repro.utils import set_seed

FAULTS_BENCH_FILE = "BENCH_faults.json"

# Deterministic scenario metrics accumulated across this module's tests,
# written to BENCH_faults.json by the module-scoped teardown below.
_SCENARIOS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_faults_artifact():
    yield
    data = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "repro_version": __version__,
        "python": platform.python_version(),
        "scenarios": _SCENARIOS,
    }
    with open(FAULTS_BENCH_FILE, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)


def _make_trainer(n_nodes=4, faults=None, seed=0, hidden=16, pufferfish=False):
    set_seed(seed)
    model = MLP(32, [hidden, hidden], 4)
    if pufferfish:
        model, _ = build_hybrid(model, mlp_hybrid_config(rank_ratio=0.25))
    return DistributedTrainer(
        model,
        SGD(model.parameters(), lr=0.05),
        ClusterSpec(n_nodes, bandwidth_gbps=0.01, latency_s=50e-6),
        faults=faults,
    )


def _make_loaders(seed, n_nodes=4, per_worker=16, batch=4):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n_nodes * per_worker, 32)).astype(np.float32)
    y = rng.integers(0, 4, n_nodes * per_worker)
    return [DataLoader(sx, sy, batch) for sx, sy in shard_dataset(x, y, n_nodes)]


def _run(faults=None, epochs=2, pufferfish=False, n_nodes=4):
    trainer = _make_trainer(n_nodes=n_nodes, faults=faults, pufferfish=pufferfish)
    loaders = _make_loaders(7, n_nodes=n_nodes)
    timelines = [trainer.train_epoch(loaders) for _ in range(epochs)]
    summary = trainer.faults.summary() if trainer.faults is not None else {}
    return timelines, summary, trainer


def _modeled(timelines, summary):
    """The deterministic (seed-determined) slice of a run's results."""
    return {
        "comm_s": round(sum(t.comm for t in timelines), 9),
        "other_s": round(sum(t.other for t in timelines), 9),
        "events": summary.get("events", 0),
        "retries": summary.get("retries", 0),
        "backoff_s": round(summary.get("backoff_s", 0.0), 9),
        "recovery_s": round(summary.get("recovery_s", 0.0), 9),
    }


def test_straggler_distribution_sweep(benchmark):
    """Straggler tails stretch the compute phase; the modeled comm phase
    is untouched (stragglers delay workers, not the wire)."""

    def experiment():
        out = {}
        for kind, scale, sigma in [
            ("none", 0.0, 1.0),
            ("constant", 4.0, 1.0),
            ("lognormal", 2.0, 1.0),
            ("heavytail", 2.0, 1.5),
        ]:
            spec = None
            if kind != "none":
                spec = FaultSpec(
                    seed=101,
                    straggler=StragglerSpec(kind=kind, prob=1.0, scale=scale, sigma=sigma),
                )
            out[kind] = _run(faults=spec)
        return out

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for kind, (tls, summary, _) in res.items():
        compute = sum(t.compute for t in tls)
        rows.append([kind, compute, sum(t.comm for t in tls), summary.get("events", 0)])
        _SCENARIOS[f"straggler_{kind}"] = _modeled(tls, summary)
    print_table(
        "Chaos: straggler distributions, 4 nodes, 2 epochs",
        ["Distribution", "Compute (s)", "Comm (s)", "Events"],
        rows,
    )

    clean = sum(t.compute for t in res["none"][0])
    for kind in ("constant", "lognormal", "heavytail"):
        stretched = sum(t.compute for t in res[kind][0])
        assert stretched > 1.5 * clean, f"{kind} straggler did not stretch compute"
        # Stragglers never touch the modeled wire time.
        assert sum(t.comm for t in res[kind][0]) == pytest.approx(
            sum(t.comm for t in res["none"][0])
        )


def test_drop_retry_sweep(benchmark):
    """Higher drop probability → more retries and more banked penalty."""
    probs = [0.0, 0.02, 0.08, 0.2]

    def experiment():
        out = []
        for prob in probs:
            spec = FaultSpec(
                seed=202,
                drop=DropSpec(prob=prob, max_retries=12, timeout_s=0.05,
                              backoff_base_s=0.01),
            )
            tls, summary, _ = _run(faults=spec)
            out.append((prob, tls, summary))
        return out

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    retries = [s["retries"] for _, _, s in res]
    penalties = [sum(t.comm for t in tls) for _, tls, _ in res]
    print_series(
        "Chaos: drop-probability sweep (retries and total comm incl. penalties)",
        f"drop prob = {probs}",
        {"retries": retries, "comm_s": penalties},
    )
    for (prob, tls, summary) in res:
        _SCENARIOS[f"drop_p{prob}"] = _modeled(tls, summary)

    assert retries[0] == 0
    assert retries[-1] > retries[0]
    assert penalties[-1] > penalties[0]


def test_link_degradation_inflates_comm(benchmark):
    """A degraded link divides effective bandwidth; modeled comm grows."""

    def experiment():
        clean = _run(faults=None)
        degraded = _run(
            faults=FaultSpec(seed=303, link=LinkSpec(prob=1.0, factor=0.2, duration=1))
        )
        return clean, degraded

    (clean_tls, _, _), (deg_tls, deg_summary, _) = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    comm_clean = sum(t.comm for t in clean_tls)
    comm_deg = sum(t.comm for t in deg_tls)
    print_table(
        "Chaos: transient link degradation (factor 0.2, every iteration)",
        ["Scenario", "Comm (s)", "Events"],
        [["clean", comm_clean, 0], ["degraded", comm_deg, deg_summary["events"]]],
    )
    _SCENARIOS["link_degraded"] = _modeled(deg_tls, deg_summary)

    assert comm_deg > 2.0 * comm_clean
    assert deg_summary["events"] > 0


def test_failure_recovery_policies(benchmark):
    """Worker failures under both recovery policies; recovery seconds are
    the gated recovery-time metric."""

    def experiment():
        out = {}
        for policy in ("rejoin", "shrink"):
            spec = FaultSpec(
                seed=400,
                failure=FailureSpec(prob=0.05, recovery=policy, recovery_s=0.5),
            )
            out[policy] = _run(faults=spec, epochs=3)
        return out

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for policy, (tls, summary, trainer) in res.items():
        rows.append([
            policy,
            summary["recovery_s"],
            summary["by_kind"].get("failure", 0),
            len(trainer._active),
        ])
        _SCENARIOS[f"failure_{policy}"] = _modeled(tls, summary)
    print_table(
        "Chaos: worker-failure recovery policies (p=0.05/worker/iter, 3 epochs)",
        ["Policy", "Recovery (s)", "Failures", "Active workers at end"],
        rows,
    )

    rejoin_tls, rejoin_summary, rejoin_trainer = res["rejoin"]
    shrink_tls, shrink_summary, shrink_trainer = res["shrink"]
    # Rejoin pays recovery + re-broadcast time but keeps the full ring.
    assert rejoin_summary["recovery_s"] > 0
    assert len(rejoin_trainer._active) == 4
    # Shrink never pays recovery but permanently loses workers.
    assert shrink_summary["recovery_s"] == 0
    assert len(shrink_trainer._active) < 4


def test_pufferfish_under_chaos(benchmark):
    """Pufferfish's smaller payload keeps its comm advantage under faults —
    the paper's no-extra-cost claim extends to degraded networks."""
    chaos = {
        "seed": 505,
        "straggler": {"kind": "lognormal", "prob": 0.5, "scale": 0.5, "sigma": 1.0},
        "link": {"prob": 0.3, "factor": 0.4, "duration": 2},
        "drop": {"prob": 0.03, "max_retries": 10, "timeout_s": 0.02,
                 "backoff_base_s": 0.005},
    }

    def experiment():
        vanilla = _run(faults=FaultSpec.from_dict(chaos), epochs=2, pufferfish=False)
        hybrid = _run(faults=FaultSpec.from_dict(chaos), epochs=2, pufferfish=True)
        return vanilla, hybrid

    (v_tls, v_summary, _), (h_tls, h_summary, _) = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    rows = [
        ["SGD", sum(t.comm for t in v_tls), v_summary["events"], v_summary["retries"]],
        ["Pufferfish", sum(t.comm for t in h_tls), h_summary["events"],
         h_summary["retries"]],
    ]
    print_table(
        "Chaos: vanilla vs Pufferfish under combined faults (2 epochs)",
        ["Method", "Comm (s)", "Events", "Retries"],
        rows,
    )
    _SCENARIOS["chaos_vanilla"] = _modeled(v_tls, v_summary)
    _SCENARIOS["chaos_pufferfish"] = _modeled(h_tls, h_summary)

    # Identical fault seed → identical event stream for both methods
    # (chaos is a property of the cluster, not the model)...
    assert v_summary["events"] == h_summary["events"]
    # ...and the factorized model still communicates less through it.
    assert sum(t.comm for t in h_tls) < sum(t.comm for t in v_tls)
