"""Gateway benchmark — the live server validated against its simulated twin.

Every serving number this repo reports came from the discrete-event
simulator; the gateway is the first component that runs the same
``ServingCore`` policy on a real event loop with real sockets.  This
benchmark closes the loop with three scenario families feeding
``BENCH_gateway.json``:

* ``sim_twin``   — the committed twin scenario (pinned profile, seeded
  bursty overload) through the simulator *and* the synchronous
  gateway-style replay driver.  Both are pure functions of the trace, so
  the gate compares this scenario exactly — digest included — and
  asserts the two drivers agree on every request's fate;
* ``live_twin``  — the same trace replayed against a live localhost
  gateway sleeping the pinned profile.  Real scheduling adds jitter, so
  the recorded deltas (shed rate, throughput ratio, per-request
  admission/status agreement) are gated to committed bands, not exactly;
* ``streaming``  — a multi-step trace: every response must stream
  partial frames strictly before its final frame.

Gate: ``benchmarks/check_gateway_regression.py`` against
``benchmarks/baselines/gateway_baseline.json``.
"""

import asyncio
import json
import platform
import time
from pathlib import Path

import pytest

from harness import print_table
from repro import __version__
from repro.gateway import (
    GatewayServer,
    LoadClient,
    ProfileExecutor,
    TraceRequest,
    build_trace,
    replay_decisions,
    run_twin,
    summarize_records,
    trace_digest,
)
from repro.serve import (
    ArrivalSpec,
    BatchPolicy,
    LatencyProfile,
    ServeConfig,
    ServeSimulator,
)

GATEWAY_BENCH_FILE = "BENCH_gateway.json"
PINNED_PROFILE = Path(__file__).parent / "profiles" / "gateway_pinned.json"

_SCENARIOS: dict[str, dict] = {}

# The committed twin scenario: a pinned profile slow enough that real
# scheduling jitter is small against service times, and bursty arrivals
# so admission decisions sit far from the accept/shed boundary.  ~25% of
# requests shed, so the agreement numbers measure behavior under load,
# not a trivially idle server.
SPEC = ArrivalSpec(
    rate_rps=90,
    duration_s=4.0,
    process="bursty",
    seed=11,
    burst_factor=5.0,
    burst_prob=0.2,
    window_s=0.5,
)
CONFIG_KW = dict(slo_s=0.4, policy=BatchPolicy(16, 0.03), replicas=1)

# Bands for the live twin (characterized over repeated runs on a loaded
# single-core machine; see docs/GATEWAY.md).
MAX_SHED_RATE_DELTA = 0.05
THROUGHPUT_RATIO_BAND = (0.9, 1.1)
MIN_AGREEMENT = 0.80


@pytest.fixture(scope="module", autouse=True)
def _write_gateway_artifact():
    yield
    data = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "repro_version": __version__,
        "python": platform.python_version(),
        "scenarios": _SCENARIOS,
    }
    with open(GATEWAY_BENCH_FILE, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)


def _profile() -> LatencyProfile:
    return LatencyProfile.load(str(PINNED_PROFILE))


def test_sim_twin():
    """The deterministic half: simulator and gateway-style replay driver
    must agree on every request's fate for the committed trace."""
    profile = _profile()
    config = ServeConfig(**CONFIG_KW)
    trace = build_trace(SPEC)
    arrivals = [t.at_s for t in trace]
    report = ServeSimulator(profile, config).run(arrivals, duration_s=SPEC.duration_s)
    replayed = replay_decisions(profile, config, arrivals)
    sim_statuses = [o.status for o in report.outcomes]

    s = report.summary()
    print_table(
        f"Sim twin ({SPEC.rate_rps:.0f} rps bursty x {SPEC.duration_s:.0f}s, "
        f"seed {SPEC.seed})",
        ["Requests", "Completed", "Shed", "Throughput", "Digest"],
        [[s["n_requests"], s["n_completed"], f"{s['shed_rate']:.1%}",
          f"{s['throughput_rps']:.1f}", s["timeline_digest"]]],
    )
    _SCENARIOS["sim_twin"] = {
        "spec": {
            "rate_rps": SPEC.rate_rps,
            "duration_s": SPEC.duration_s,
            "process": SPEC.process,
            "seed": SPEC.seed,
            "burst_factor": SPEC.burst_factor,
            "burst_prob": SPEC.burst_prob,
            "window_s": SPEC.window_s,
        },
        "slo_s": CONFIG_KW["slo_s"],
        "max_batch": CONFIG_KW["policy"].max_batch_size,
        "max_wait_s": CONFIG_KW["policy"].max_wait_s,
        "replicas": CONFIG_KW["replicas"],
        "trace_digest": trace_digest(trace),
        "replay_bit_identical": replayed == sim_statuses,
        "summary": s,
    }
    assert replayed == sim_statuses
    assert s["shed_rate"] > 0.1, "twin scenario must genuinely shed"


def _within_bands(result) -> bool:
    return (
        result.n_client_errors == 0
        and abs(result.shed_rate_delta) <= MAX_SHED_RATE_DELTA
        and THROUGHPUT_RATIO_BAND[0]
        <= result.throughput_ratio
        <= THROUGHPUT_RATIO_BAND[1]
        and result.admission_agreement >= MIN_AGREEMENT
        and result.status_agreement >= MIN_AGREEMENT
    )


def test_live_twin():
    """The measured half: the same trace against a real localhost server.
    Banded, not exact — real scheduling adds jitter.  Best of up to three
    attempts: a transiently loaded machine is not a policy regression,
    and one in-band run proves the live server *can* track its twin."""
    result = None
    attempts = 0
    for attempts in range(1, 4):
        candidate = run_twin(_profile(), ServeConfig(**CONFIG_KW), SPEC)
        if result is None or candidate.status_agreement > result.status_agreement:
            result = candidate
        if _within_bands(result):
            break
    print_table(
        "Live twin vs simulator",
        ["Requests", "Shed delta", "Tp ratio", "Admission agree", "Status agree",
         "Client errors"],
        [[result.n_requests, f"{result.shed_rate_delta:+.4f}",
          f"{result.throughput_ratio:.4f}", f"{result.admission_agreement:.1%}",
          f"{result.status_agreement:.1%}", result.n_client_errors]],
    )
    _SCENARIOS["live_twin"] = result.as_dict() | {
        "n_attempts": attempts,
        "bands": {
            "max_shed_rate_delta": MAX_SHED_RATE_DELTA,
            "throughput_ratio": list(THROUGHPUT_RATIO_BAND),
            "min_agreement": MIN_AGREEMENT,
        },
    }
    assert result.n_client_errors == 0
    assert abs(result.shed_rate_delta) <= MAX_SHED_RATE_DELTA
    assert THROUGHPUT_RATIO_BAND[0] <= result.throughput_ratio <= THROUGHPUT_RATIO_BAND[1]
    assert result.admission_agreement >= MIN_AGREEMENT
    assert result.status_agreement >= MIN_AGREEMENT


def test_streaming():
    """Acceptance criterion: a streaming client observes partial results
    before the final batch completes — for every streamed response."""
    profile = _profile()
    config = ServeConfig(slo_s=5.0, policy=BatchPolicy(8, 0.02), replicas=1)
    trace = [TraceRequest(rid=i, at_s=0.0, payload=100 + i, steps=4) for i in range(6)]

    async def scenario():
        server = GatewayServer(ProfileExecutor(profile), config, port=0)
        await server.start()
        try:
            client = LoadClient("127.0.0.1", server.port, timeout_s=30.0)
            return await client.run_open(trace)
        finally:
            await server.stop()

    records = asyncio.run(scenario())
    summary = summarize_records(records, duration_s=1.0)
    progressive = all(
        r.ok and len(r.chunk_times) == 4 and r.chunk_times[0] < r.final_s
        for r in records
    )
    print_table(
        "Streaming (6 requests x 4 steps, pinned profile)",
        ["Streamed", "Progressive", "Max stream lead"],
        [[summary["streamed"], progressive,
          f"{summary['stream_lead_ms_max']:.1f} ms"]],
    )
    _SCENARIOS["streaming"] = {
        "n_requests": len(trace),
        "steps": 4,
        "n_streamed": summary["streamed"],
        "progressive": progressive,
        "stream_lead_ms_max": summary["stream_lead_ms_max"],
    }
    assert progressive
    assert summary["streamed"] == len(trace)
