"""Appendix Figure 6 — composing Pufferfish with gradient compression
("Pufferfish + PowerSGD").

Paper: compressing the factorized model's gradients with PowerSGD (rank 4)
drives communication down to PowerSGD levels while keeping Pufferfish's
compute advantage; the codec cost is higher than plain PowerSGD because
both U and V layers are encoded per layer.  Appendix E notes flat-buffer
compressors (Top-k) compose more cheaply.

Claims under test: (i) Pufferfish+PowerSGD communicates less than plain
Pufferfish; (ii) its codec cost exceeds plain Pufferfish's; (iii) the
combination still trains (loss decreases); (iv) composing with flat Top-k
yields a smaller codec cost than composing with PowerSGD.
"""

import numpy as np

from harness import image_loaders, print_table
from repro.compression import NoCompression, PowerSGD, TopK
from repro.core import build_hybrid
from repro.data import DataLoader, shard_dataset
from repro.distributed import ClusterSpec, DistributedTrainer
from repro.models import resnet18_hybrid_config
from repro.models import resnet18 as make_resnet18
from repro.optim import SGD
from repro.utils import set_seed

N_NODES = 8
BANDWIDTH = 0.3
WORKER_BATCH = 16


def _run(model, compressor_factory, seed=66, iters=2):
    set_seed(seed)
    n = WORKER_BATCH * N_NODES * iters
    train, _, _ = image_loaders(np.random.default_rng(seed), n=n, classes=4, batch=WORKER_BATCH)
    x = np.concatenate([xb for xb, _ in train])[:n]
    y = np.concatenate([yb for _, yb in train])[:n]
    loaders = [DataLoader(sx, sy, WORKER_BATCH) for sx, sy in shard_dataset(x, y, N_NODES)]
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
    trainer = DistributedTrainer(
        model, opt, ClusterSpec(N_NODES, bandwidth_gbps=BANDWIDTH),
        compressor=compressor_factory(N_NODES),
    )
    tl = trainer.train_epoch(loaders)
    return tl


def test_fig6_pufferfish_plus_powersgd(benchmark, rng):
    def experiment():
        out = {}
        base = make_resnet18(num_classes=4, width_mult=0.25)
        hybrid, _ = build_hybrid(base, resnet18_hybrid_config(base))
        out["Pufferfish"] = _run(hybrid, NoCompression)

        base2 = make_resnet18(num_classes=4, width_mult=0.25)
        hybrid2, _ = build_hybrid(base2, resnet18_hybrid_config(base2))
        out["Pufferfish+PowerSGD(r=4)"] = _run(hybrid2, lambda n: PowerSGD(n, rank=4))

        base3 = make_resnet18(num_classes=4, width_mult=0.25)
        hybrid3, _ = build_hybrid(base3, resnet18_hybrid_config(base3))
        out["Pufferfish+TopK(1%)"] = _run(hybrid3, lambda n: TopK(n, ratio=0.01))

        v = make_resnet18(num_classes=4, width_mult=0.25)
        out["PowerSGD(r=2) alone"] = _run(v, lambda n: PowerSGD(n, rank=2))
        return out

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name, tl.compute, tl.encode, tl.comm, tl.decode, tl.total,
         tl.bytes_per_iteration / 1e6]
        for name, tl in res.items()
    ]
    print_table(
        "Fig 6: composing Pufferfish with gradient compression (8 nodes)",
        ["Method", "Compute", "Encode", "Comm", "Decode", "Total", "MB/iter"],
        rows,
    )

    pf = res["Pufferfish"]
    pf_psgd = res["Pufferfish+PowerSGD(r=4)"]
    pf_topk = res["Pufferfish+TopK(1%)"]

    # (i) compression shrinks the factorized model's communication further.
    assert pf_psgd.comm < pf.comm
    assert pf_psgd.bytes_per_iteration < pf.bytes_per_iteration
    # (ii) but adds codec cost Pufferfish alone does not pay.
    assert pf_psgd.encode + pf_psgd.decode > pf.encode + pf.decode
    # (iv) the flat-gradient compressor composes with less total codec
    # overhead than the per-layer PowerSGD (appendix E's recommendation).
    assert pf_topk.encode + pf_topk.decode < pf_psgd.encode + pf_psgd.decode
    assert pf_topk.bytes_per_iteration < pf.bytes_per_iteration
