"""Table 6 — runtime mini-benchmark: per-epoch training time of vanilla vs
Pufferfish-factorized networks on a single device.

Paper (V100, batch 128, reproducible-cuDNN mode):
    VGG-19    13.51 s -> 11.02 s   (1.23x)
    ResNet-18 18.89 s -> 12.78 s   (1.48x)

Here the device is a CPU and the models are width-scaled, but the claim
under test is identical: the dense factorized network trains *faster* per
epoch — no sparse kernels or gradient codecs required.
"""

import time

import numpy as np

from harness import image_loaders, print_table, scaled_resnet18, scaled_vgg19
from repro.core import Trainer, build_hybrid
from repro.models import resnet18_hybrid_config, vgg19_hybrid_config
from repro.optim import SGD
from repro.utils import set_seed

N_IMAGES = 256
BATCH = 32
REPEATS = 3


def epoch_time(model, loader, repeats=REPEATS):
    """Median wall-clock seconds for one training epoch."""
    t = Trainer(model, SGD(model.parameters(), lr=0.01, momentum=0.9))
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        t.train_epoch(loader)
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def test_table6_epoch_time(benchmark, rng):
    set_seed(6)
    train, _, _ = image_loaders(np.random.default_rng(6), n=N_IMAGES, classes=4, batch=BATCH)

    def experiment():
        out = {}
        vgg = scaled_vgg19(classes=4, width=0.25)
        vgg_h, _ = build_hybrid(vgg, vgg19_hybrid_config())
        out["vgg"] = (epoch_time(vgg, train), epoch_time(vgg_h, train))

        r18 = scaled_resnet18(classes=4, width=0.25)
        r18_h, _ = build_hybrid(r18, resnet18_hybrid_config(r18))
        out["r18"] = (epoch_time(r18, train), epoch_time(r18_h, train))
        return out

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for name, paper_speedup in (("vgg", 1.23), ("r18", 1.48)):
        t_van, t_puf = res[name]
        rows.append([name.upper(), t_van, t_puf, t_van / t_puf, paper_speedup])
    print_table(
        "Table 6: per-epoch train time (s), vanilla vs Pufferfish",
        ["Model", "Vanilla", "Pufferfish", "Speedup", "Paper speedup"],
        rows,
    )

    # Direction: the factorized nets must be faster per epoch.  The CPU
    # speedup factor itself fluctuates run to run (BLAS threading, cache
    # state) between ~1.03x and ~1.15x at these scaled widths, far below
    # the paper's GPU factors — only the direction is asserted.
    for name in ("vgg", "r18"):
        t_van, t_puf = res[name]
        assert t_puf < t_van, f"{name}: factorized epoch should be faster"
