"""Ablations for the design choices and extensions DESIGN.md calls out,
beyond the paper's own tables:

* automatic rank allocation (energy / budget) vs the paper's global 0.25
  ratio — the future-work direction of Section 4.1;
* Tucker-2 conv decomposition vs the paper's unrolled-SVD factorization
  at a matched parameter budget (the Section 2.2 "for simplicity we do
  not consider tensor decompositions" fork);
* ATOMO's per-batch SVD cost vs Pufferfish's one-time SVD (the paper's
  introduction motivation, quantified).
"""

import time

import numpy as np

from harness import image_loaders, print_table, scaled_resnet18
from repro import nn
from repro.compression import Atomo
from repro.core import (
    FactorizationConfig,
    PufferfishTrainer,
    build_hybrid,
    energy_rank_allocation,
    factorize_conv2d,
    tucker_conv_from,
)
from repro.optim import SGD, MultiStepLR
from repro.utils import set_seed

EPOCHS = 6
WARMUP = 2


def _run_pufferfish(config_fn, seed=88):
    set_seed(seed)
    train, val, _ = image_loaders(np.random.default_rng(seed), n=320, classes=4, noise=0.25)
    model = scaled_resnet18(classes=4, width=0.25)
    pt = PufferfishTrainer(
        model,
        config_fn(model),
        optimizer_factory=lambda ps: SGD(ps, lr=0.05, momentum=0.9, weight_decay=1e-4),
        scheduler_factory=lambda opt: MultiStepLR(opt, [5], gamma=0.1),
        warmup_epochs=WARMUP,
        total_epochs=EPOCHS,
    )
    pt.fit(train, val)
    return {
        "params": pt.hybrid_model.num_parameters(),
        "acc": max(s.val_metric for s in pt.history),
        "compression": pt.report.compression,
    }


def test_ablation_rank_allocation(benchmark, rng):
    """Energy-based per-layer ranks vs the global 0.25 ratio."""

    def experiment():
        global_cfg = lambda m: FactorizationConfig(rank_ratio=0.25)

        def energy_cfg(m):
            overrides = energy_rank_allocation(m, energy_threshold=0.85, max_ratio=0.5)
            return FactorizationConfig(rank_ratio=0.25, rank_overrides=overrides)

        return {
            "global 0.25": _run_pufferfish(global_cfg),
            "energy 85%": _run_pufferfish(energy_cfg),
        }

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[k, v["params"], v["compression"], v["acc"]] for k, v in res.items()]
    print_table(
        "Ablation: rank allocation policy (scaled ResNet-18)",
        ["Policy", "#Params", "Compression", "Best acc"],
        rows,
    )
    # Both learn; the adaptive policy stays within the accuracy band.
    assert all(v["acc"] > 0.4 for v in res.values())
    assert res["energy 85%"]["acc"] > res["global 0.25"]["acc"] - 0.15


def test_ablation_tucker_vs_svd(benchmark, rng):
    """Tucker-2 vs unrolled-SVD factorization of one trained conv, at a
    matched parameter budget: reconstruction error comparison."""

    def experiment():
        set_seed(0)
        conv = nn.Conv2d(32, 32, 3, bias=False)
        w = conv.weight.data
        rows = []
        for rank in (2, 4, 8):
            svd = factorize_conv2d(conv, rank=rank)
            # Choose Tucker ranks to (roughly) match the SVD budget.
            r_t = rank
            while True:
                tucker_params = 32 * r_t + r_t * r_t * 9 + r_t * 32
                if tucker_params >= svd.num_parameters() or r_t > 32:
                    break
                r_t += 1
            tucker = tucker_conv_from(conv, rank_in=r_t, rank_out=r_t)
            err_svd = float(
                np.linalg.norm(svd.effective_weight() - w) / np.linalg.norm(w)
            )
            err_tucker = float(
                np.linalg.norm(tucker.effective_weight() - w) / np.linalg.norm(w)
            )
            rows.append([rank, svd.num_parameters(), err_svd,
                         tucker.num_parameters(), err_tucker])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Ablation: unrolled SVD vs Tucker-2 (32->32 3x3 conv)",
        ["SVD rank", "SVD params", "SVD rel err", "Tucker params", "Tucker rel err"],
        rows,
    )
    # Both families are valid approximators (errors < 1 and decreasing).
    svd_errs = [r[2] for r in rows]
    tucker_errs = [r[4] for r in rows]
    assert svd_errs == sorted(svd_errs, reverse=True)
    assert tucker_errs == sorted(tucker_errs, reverse=True)
    assert all(e < 1.0 for e in svd_errs + tucker_errs)


def test_ablation_atomo_per_step_svd(benchmark, rng):
    """ATOMO pays an SVD every batch; Pufferfish pays one, ever.  Measure
    the crossover in factorization seconds."""

    def experiment():
        set_seed(1)
        model = scaled_resnet18(classes=4, width=0.25)
        grads = [p.data.copy() for p in model.parameters()]
        comp = Atomo(1, budget=2)

        n_batches = 10
        t0 = time.perf_counter()
        for _ in range(n_batches):
            comp.encode(0, grads)
        atomo_total = time.perf_counter() - t0

        t0 = time.perf_counter()
        _, report = build_hybrid(model, FactorizationConfig(rank_ratio=0.25))
        pufferfish_once = time.perf_counter() - t0
        return atomo_total, pufferfish_once, n_batches

    atomo_total, pufferfish_once, n_batches = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    per_batch = atomo_total / n_batches
    print_table(
        "Ablation: factorization overheads (ResNet-18-class weights)",
        ["Method", "Cost"],
        [
            ["ATOMO per batch (recurring)", per_batch],
            [f"ATOMO x {n_batches} batches", atomo_total],
            ["Pufferfish SVD (once, total)", pufferfish_once],
        ],
    )
    # A handful of ATOMO steps already exceeds Pufferfish's one-time cost.
    assert atomo_total > pufferfish_once
