"""Table 1 — parameter counts and computational complexity per layer type.

Validates the paper's closed forms against the library's real layers: the
parameter columns exactly, the complexity columns by measuring executed
MACs under the instrumented kernels.
"""

import numpy as np

from harness import print_table
from repro import nn
from repro.core import LowRankConv2d, LowRankLinear, LowRankLSTMLayer
from repro.metrics import (
    conv_macs,
    conv_params,
    fc_macs,
    fc_params,
    lowrank_conv_macs,
    lowrank_conv_params,
    lowrank_fc_macs,
    lowrank_fc_params,
    lowrank_lstm_params,
    lstm_params,
    measure_macs,
)
from repro.tensor import Tensor


def test_table1_params_and_macs(benchmark):
    m, n, r = 512, 512, 128
    c_in, c_out, k, hw = 128, 128, 3, 16
    d, h, r_lstm = 96, 96, 24

    fc = nn.Linear(n, m, bias=False)
    lr_fc = LowRankLinear(n, m, rank=r, bias=False)
    conv = nn.Conv2d(c_in, c_out, k, padding=1, bias=False)
    lr_conv = LowRankConv2d(c_in, c_out, k, rank=r // 4, padding=1, bias=False)
    lstm = nn.LSTMLayer(d, h)
    lr_lstm = LowRankLSTMLayer(d, h, rank=r_lstm)

    x_fc = Tensor(np.zeros((1, n), dtype=np.float32))
    x_conv = Tensor(np.zeros((1, c_in, hw, hw), dtype=np.float32))

    rows = []
    # FC
    rows.append(["Vanilla FC", fc.num_parameters(), fc_params(m, n),
                 measure_macs(fc, x_fc), fc_macs(m, n)])
    rows.append(["Factorized FC", lr_fc.num_parameters(), lowrank_fc_params(m, n, r),
                 measure_macs(lr_fc, x_fc), lowrank_fc_macs(m, n, r)])
    # Conv
    rows.append(["Vanilla Conv", conv.num_parameters(), conv_params(c_in, c_out, k),
                 measure_macs(conv, x_conv), conv_macs(c_in, c_out, k, hw, hw)])
    rows.append(["Factorized Conv", lr_conv.num_parameters(),
                 lowrank_conv_params(c_in, c_out, k, r // 4),
                 measure_macs(lr_conv, x_conv),
                 lowrank_conv_macs(c_in, c_out, k, hw, hw, r // 4)])
    # LSTM (params only; MACs depend on sequence handling)
    rows.append(["Vanilla LSTM", lstm.num_parameters() - 8 * h, lstm_params(d, h), "-", "-"])
    rows.append(["Factorized LSTM", lr_lstm.num_parameters() - 8 * h,
                 lowrank_lstm_params(d, h, r_lstm), "-", "-"])

    print_table(
        "Table 1: params & complexity (measured vs closed form)",
        ["Layer", "#Params (lib)", "#Params (formula)", "MACs (measured)", "MACs (formula)"],
        rows,
    )

    # Exact agreement between library layers and the paper's formulas.
    for row in rows:
        assert row[1] == row[2], row[0]
        if row[3] != "-":
            assert row[3] == row[4], row[0]

    # Factorized < vanilla for every layer type at rank ratio 1/4.
    assert rows[1][1] < rows[0][1]
    assert rows[3][1] < rows[2][1]
    assert rows[5][1] < rows[4][1]

    # Benchmark: the factorized FC forward pass.
    x_bench = Tensor(np.random.default_rng(0).standard_normal((64, n)).astype(np.float32))
    benchmark(lambda: lr_fc(x_bench))


def test_table1_attention_ffn_formulas(benchmark):
    """Attention/FFN rows: the combined d_model×d_model parameterization
    (what the experiments use) against Table 1's per-head accounting."""
    from repro.metrics import (
        attention_params,
        ffn_params,
        lowrank_attention_params,
        lowrank_ffn_params,
    )

    p, d = 8, 64
    d_model = p * d
    r = d_model // 4

    mha = nn.MultiHeadAttention(d_model, p)
    weight_params = sum(
        pp.data.size for name, pp in mha.named_parameters() if "weight" in name
    )
    assert weight_params == attention_params(p, d)

    ffn = nn.PositionwiseFFN(d_model, 4 * d_model)
    ffn_weights = sum(
        pp.data.size for name, pp in ffn.named_parameters() if "weight" in name
    )
    assert ffn_weights == ffn_params(p, d)

    rows = [
        ["Vanilla Attention", attention_params(p, d), "4p²d²"],
        ["Factorized Attention (per-head, r=d/4)",
         lowrank_attention_params(p, d, d // 4), "(3p+5)prd"],
        ["Vanilla FFN", ffn_params(p, d), "8p²d²"],
        ["Factorized FFN (r=pd/4)", lowrank_ffn_params(p, d, r), "10pdr"],
    ]
    print_table("Table 1 (attention/FFN closed forms)", ["Layer", "#Params", "Formula"], rows)
    assert lowrank_attention_params(p, d, d // 4) < attention_params(p, d)
    assert lowrank_ffn_params(p, d, r) < ffn_params(p, d)

    x = Tensor(np.random.default_rng(0).standard_normal((2, 16, d_model)).astype(np.float32))
    benchmark(lambda: mha(x, x, x))
