"""Table 5 — ResNet-50 and WideResNet-50-2 on ImageNet: params, accuracy.

Paper: ResNet-50 25.56M -> 15.2M (1.68x), top-1 76.15 -> 75.62;
       WideResNet-50-2 68.9M -> ~40M (1.72x), similar near-parity.

Full-scale parameter/compression arithmetic is exact; accuracy runs use
width-scaled models on the synthetic ImageNet stand-in, testing the
near-parity claim and the compression limitation (~1.7x, far below the
3.35x the same recipe achieves on ResNet-18).
"""

import numpy as np
import pytest

from harness import imagenet_loaders, print_table, scaled_resnet50, train_classifier
from repro.core import PufferfishTrainer, build_hybrid
from repro.models import resnet50, resnet50_hybrid_config, wide_resnet50_2
from repro.optim import SGD, MultiStepLR
from repro.utils import set_seed

EPOCHS = 6
WARMUP = 2


def test_table5_fullscale_compression(benchmark):
    def arithmetic():
        r50 = resnet50(num_classes=1000)
        _, rep50 = build_hybrid(r50, resnet50_hybrid_config(r50))
        w50 = wide_resnet50_2(num_classes=1000)
        _, repw = build_hybrid(w50, resnet50_hybrid_config(w50))
        return rep50, repw

    rep50, repw = benchmark.pedantic(arithmetic, rounds=1, iterations=1)
    rows = [
        ["ResNet-50", rep50.params_before, rep50.params_after, rep50.compression, 1.68],
        ["WideResNet-50-2", repw.params_before, repw.params_after, repw.compression, 1.72],
    ]
    print_table(
        "Table 5 (full scale): compression vs paper",
        ["Model", "#Params vanilla", "#Params Pufferfish", "Compression", "Paper"],
        rows,
    )
    # Paper's limitation: ResNet-50-family compresses only ~1.7x.
    assert rep50.compression == pytest.approx(1.68, abs=0.12)
    assert repw.compression == pytest.approx(1.72, abs=0.12)
    # Paper's Pufferfish ResNet-50 parameter count: 15,202,344.
    assert rep50.params_after == pytest.approx(15_202_344, rel=0.02)


def test_table5_accuracy_scaled(benchmark, rng):
    def experiment():
        set_seed(3)
        train, val, _ = imagenet_loaders(np.random.default_rng(3), n=256, classes=8)
        vanilla = scaled_resnet50(classes=8, width=0.125)
        acc_v, _ = train_classifier(vanilla, train, val, EPOCHS, decay_at=[4])

        set_seed(3)
        train, val, _ = imagenet_loaders(np.random.default_rng(3), n=256, classes=8)
        model = scaled_resnet50(classes=8, width=0.125)
        pt = PufferfishTrainer(
            model,
            resnet50_hybrid_config(model),
            optimizer_factory=lambda ps: SGD(ps, lr=0.05, momentum=0.9, weight_decay=1e-4),
            scheduler_factory=lambda opt: MultiStepLR(opt, [4], gamma=0.1),
            warmup_epochs=WARMUP,
            total_epochs=EPOCHS,
        )
        pt.fit(train, val)
        acc_p = max(s.val_metric for s in pt.history)
        return acc_v, acc_p, model.num_parameters(), pt.hybrid_model.num_parameters()

    acc_v, acc_p, n_v, n_p = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Table 5 (scaled): ResNet-50 accuracy",
        ["Model", "#Params", "Best val acc"],
        [
            ["Vanilla ResNet-50 (paper top-1: 76.15%)", n_v, acc_v],
            ["Pufferfish ResNet-50 (paper top-1: 75.62%)", n_p, acc_p],
        ],
    )
    assert n_p < n_v
    assert acc_v > 0.3 and acc_p > 0.3  # chance = 0.125
    assert acc_p > acc_v - 0.15  # near parity (paper: -0.53%)
