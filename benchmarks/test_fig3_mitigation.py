"""Figure 3 — the two mitigation knobs:
(a) hybrid index K sweep (VGG-19 on CIFAR-10): accuracy rises as more
    early layers stay full-rank, saturating near the vanilla accuracy;
(b) warm-up length sweep (ResNet-50 on ImageNet): too little warm-up hurts;
    a tuned E_wu recovers the vanilla accuracy.

Also ablates a design choice DESIGN.md calls out: the Σ^½ split of the
singular values between U and V^T versus the naive ``U=Ũ, V^T=ΣṼ^T``
assignment.
"""

import numpy as np

from harness import image_loaders, print_series, print_table, scaled_resnet18
from repro.core import FactorizationConfig, PufferfishTrainer
from repro.models import vgg19
from repro.optim import SGD, MultiStepLR
from repro.utils import set_seed

EPOCHS = 6


def _pufferfish_acc(model_fn, config, warmup, seed=3, noise=0.3):
    set_seed(seed)
    train, val, _ = image_loaders(np.random.default_rng(seed), n=320, classes=4, noise=noise)
    pt = PufferfishTrainer(
        model_fn(),
        config,
        optimizer_factory=lambda ps: SGD(ps, lr=0.05, momentum=0.9, weight_decay=1e-4),
        scheduler_factory=lambda opt: MultiStepLR(opt, [5], gamma=0.1),
        warmup_epochs=warmup,
        total_epochs=EPOCHS,
    )
    pt.fit(train, val)
    low = [s.val_metric for s in pt.history if s.phase == "lowrank"]
    return max(low) if low else max(s.val_metric for s in pt.history)


def test_fig3a_hybrid_k_sweep(benchmark, rng):
    ks = [0, 4, 9, 13]

    def experiment():
        model_fn = lambda: vgg19(num_classes=4, width_mult=0.125)
        return [
            _pufferfish_acc(
                model_fn,
                FactorizationConfig(rank_ratio=0.25, first_lowrank_index=k),
                warmup=2,
            )
            for k in ks
        ]

    accs = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_series("Fig 3a: hybrid VGG-19 accuracy vs K", "K = " + str(ks), {"acc": accs})

    # All configurations learn; the most conservative K (fewest factorized
    # layers) is within noise of the best.
    assert all(a > 0.4 for a in accs)
    assert accs[-1] >= max(accs) - 0.12


def test_fig3b_warmup_sweep(benchmark, rng):
    warmups = [0, 1, 2, 4]

    def experiment():
        from repro.models import resnet18_hybrid_config

        out = []
        for wu in warmups:
            model_fn = lambda: scaled_resnet18(classes=4, width=0.25)
            m = model_fn()
            out.append(
                _pufferfish_acc(lambda: m, resnet18_hybrid_config(m), warmup=wu)
            )
        return out

    accs = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_series(
        "Fig 3b: accuracy vs warm-up epochs (paper: 0 < 2 < 5 ≈ 10 ≈ 15)",
        "E_wu = " + str(warmups),
        {"acc": accs},
    )
    assert all(a > 0.4 for a in accs)
    # Some warm-up is at least as good as none (10% noise band).
    assert max(accs[1:]) >= accs[0] - 0.10


def test_fig3_sigma_split_ablation(benchmark, rng):
    """Σ^½-split vs naive Σ-on-one-side initialization: the split must not
    be worse, and both must approximate the original weights identically
    (the product U V^T is the same; only the factor conditioning differs)."""
    from repro.core.factorize import factorize_matrix

    def experiment():
        r = np.random.default_rng(0)
        w = r.standard_normal((64, 64)).astype(np.float32)
        u_split, vt_split = factorize_matrix(w, 16)

        # Naive: all of Σ on the V^T side.
        u_full, s, vt_full = np.linalg.svd(w.astype(np.float64), full_matrices=False)
        u_naive = u_full[:, :16].astype(np.float32)
        vt_naive = (s[:16, None] * vt_full[:16]).astype(np.float32)
        return w, u_split, vt_split, u_naive, vt_naive

    w, u_split, vt_split, u_naive, vt_naive = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    # Identical product...
    assert np.allclose(u_split @ vt_split, u_naive @ vt_naive, atol=1e-3)
    # ...but balanced factor norms only for the split (better-conditioned
    # gradients at the start of low-rank fine-tuning).
    ratio_split = np.linalg.norm(u_split) / np.linalg.norm(vt_split)
    ratio_naive = np.linalg.norm(u_naive) / np.linalg.norm(vt_naive)
    print_table(
        "Σ^½ split vs naive initialization",
        ["Init", "||U||/||V^T||"],
        [["sigma-half split", float(ratio_split)], ["naive", float(ratio_naive)]],
    )
    assert abs(np.log(ratio_split)) < abs(np.log(ratio_naive))
