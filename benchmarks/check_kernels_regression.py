#!/usr/bin/env python
"""CI regression gate for the backend kernel benchmark.

Compares a fresh ``BENCH_kernels.json`` against the committed baseline
(``benchmarks/baselines/kernels_baseline.json``).  Wall-clock speedups
are machine-dependent, so times are never diffed against the baseline;
what is gated:

* **structure** — the op set and the fused-step set, each entry's parity
  tag (or match kind), benchmark shape and enforced floor must match the
  baseline exactly: a silently dropped op or a loosened floor is a gate
  change, not noise;
* **parity** — every op's ``parity_ok`` (and every fused step's
  ``match_ok``) must be true in the current run (bit-exact or within the
  published tolerance, per its tag);
* **speedup floors** — ops with a ``min_speedup`` must meet it, and both
  fused optimizer steps (FusedAdam / FusedLAMB vs the in-place
  per-tensor loop) must hold their ≥2× floor at CPU-scaled wide-model
  widths.

Usage::

    python benchmarks/check_kernels_regression.py \
        [--current BENCH_kernels.json] \
        [--baseline benchmarks/baselines/kernels_baseline.json]
"""

from __future__ import annotations

from gatelib import ExactFields, Gate, run_gate

OPS_RULE = ExactFields(
    ("tag", "shape", "min_speedup"),
    note="kernel benchmark structure changed",
)
FUSED_RULE = ExactFields(
    ("n_tensors", "n_params", "match", "min_speedup"),
    note="fused-step benchmark structure changed",
)


def op_invariants(op: str, cur: dict) -> list[str]:
    failures: list[str] = []
    if not cur.get("parity_ok"):
        failures.append(
            f"{op}: parity violated under tag {cur.get('tag')!r} "
            f"(max_abs_err {cur.get('max_abs_err')})"
        )
    floor = cur.get("min_speedup")
    speedup = cur.get("speedup")
    if floor is not None and (speedup is None or speedup < floor):
        failures.append(
            f"{op}: speedup {speedup} below enforced floor {floor}x "
            "(fast-backend win regressed)"
        )
    return failures


def fused_invariants(name: str, cur: dict) -> list[str]:
    failures: list[str] = []
    if not cur.get("match_ok"):
        failures.append(
            f"fused_step.{name}: fused result diverged from the per-tensor "
            f"loop (match kind {cur.get('match')!r})"
        )
    floor = cur.get("min_speedup")
    speedup = cur.get("speedup")
    if floor is not None and (speedup is None or speedup < floor):
        failures.append(
            f"fused_step.{name}: fused-vs-loop speedup {speedup} below "
            f"enforced floor {floor}x (arena win regressed)"
        )
    return failures


def _walk(current, baseline, section, rule, invariants, failures):
    cur_items = current.get(section, {})
    for name, base in sorted(baseline.get(section, {}).items()):
        cur = cur_items.get(name)
        if cur is None:
            failures.append(f"{section}.{name}: missing from current run")
            continue
        rule.check(f"{section}.{name}", cur, base, 0.0, failures)
    for name, scenario in sorted(cur_items.items()):
        failures.extend(invariants(name, scenario))


def check(current: dict, baseline: dict, threshold: float) -> list[str]:
    failures: list[str] = []
    _walk(current, baseline, "ops", OPS_RULE, op_invariants, failures)
    _walk(current, baseline, "fused_step", FUSED_RULE, fused_invariants, failures)
    return failures


GATE = Gate(
    name="kernel",
    default_current="BENCH_kernels.json",
    default_baseline="benchmarks/baselines/kernels_baseline.json",
    section="ops",
    item_word="ops",
    custom=check,
    ok_line=lambda n, t: (
        f"kernel regression gate: {n} ops + fused steps OK "
        "(structure exact, parity + speedup floors hold)"
    ),
    description=__doc__.splitlines()[0],
)


if __name__ == "__main__":
    raise SystemExit(run_gate(GATE))
