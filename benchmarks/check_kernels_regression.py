#!/usr/bin/env python
"""CI regression gate for the backend kernel benchmark.

Compares a fresh ``BENCH_kernels.json`` against the committed baseline
(``benchmarks/baselines/kernels_baseline.json``).  Wall-clock speedups
are machine-dependent, so times are never diffed against the baseline;
what is gated:

* **structure** — the op set, each op's parity tag, benchmark shape and
  enforced floor must match the baseline exactly: a silently dropped op
  or a loosened floor is a gate change, not noise;
* **parity** — every op's ``parity_ok`` must be true in the current run
  (bit-exact or within the published tolerance, per its tag);
* **speedup floors** — ops with a ``min_speedup`` (the headline: ≥1.5×
  on the batched im2col-matmul conv forward at CPU-scaled widths) must
  meet it in the current run.

Usage::

    python benchmarks/check_kernels_regression.py \
        [--current BENCH_kernels.json] \
        [--baseline benchmarks/baselines/kernels_baseline.json]
"""

from __future__ import annotations

from gatelib import ExactFields, Gate, run_gate


def invariants(op: str, cur: dict) -> list[str]:
    failures: list[str] = []
    if not cur.get("parity_ok"):
        failures.append(
            f"{op}: parity violated under tag {cur.get('tag')!r} "
            f"(max_abs_err {cur.get('max_abs_err')})"
        )
    floor = cur.get("min_speedup")
    speedup = cur.get("speedup")
    if floor is not None and (speedup is None or speedup < floor):
        failures.append(
            f"{op}: speedup {speedup} below enforced floor {floor}x "
            "(fast-backend win regressed)"
        )
    return failures


GATE = Gate(
    name="kernel",
    default_current="BENCH_kernels.json",
    default_baseline="benchmarks/baselines/kernels_baseline.json",
    section="ops",
    item_word="ops",
    rules=(
        ExactFields(
            ("tag", "shape", "min_speedup"),
            note="kernel benchmark structure changed",
        ),
    ),
    invariants=invariants,
    ok_line=lambda n, t: (
        f"kernel regression gate: {n} ops OK "
        "(structure exact, parity + speedup floors hold)"
    ),
    description=__doc__.splitlines()[0],
)


if __name__ == "__main__":
    raise SystemExit(run_gate(GATE))
