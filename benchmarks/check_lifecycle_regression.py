#!/usr/bin/env python
"""CI regression gate for the lifecycle pipeline benchmark.

Compares a fresh ``BENCH_lifecycle.json`` against the committed baseline
(``benchmarks/baselines/lifecycle_baseline.json``).  Every scenario is a
pure function of ``(seed, config)`` — spectra are rounded before
digesting, wall-clock quantities never enter a digest, and the canary
runs on pinned latency profiles — so the comparison is an exact
deep-diff: warm-up spectra digests, per-layer rank maps, promotion
decisions and the end-to-end timeline digest must all reproduce bit for
bit, and any drift is a behavior change in the monitor, scheduler,
trainer, promotion registry or deployment driver, never noise.

On top of the diff, the gate re-asserts the headline claims from the
current artifact:

* pipeline — the allocator-chosen per-layer map differs from the paper's
  global-0.25 map on at least one layer, at least one online
  re-factorization fires, and params/MACs shrink;
* ddp — every re-factorization under simulated DDP is charged a
  non-zero full-resync broadcast;
* promotion — the promoted artifact round-trips ranks and weights
  bit-exactly into the serving registry;
* deployment — the healthy rollout promotes at 100%, the injected
  regression rolls back to 0%.

Usage::

    python benchmarks/check_lifecycle_regression.py \
        [--current BENCH_lifecycle.json] \
        [--baseline benchmarks/baselines/lifecycle_baseline.json]
"""

from __future__ import annotations

from gatelib import DeepExact, Gate, run_gate


def headline(current: dict) -> list[str]:
    failures: list[str] = []
    scenarios = current.get("scenarios", {})

    pipeline = scenarios.get("pipeline")
    if pipeline is None:
        failures.append("pipeline: scenario missing from current run")
    else:
        if pipeline["n_layers_differ_from_global"] < 1:
            failures.append(
                "pipeline: per-layer rank map identical to the global-ratio map"
            )
        if pipeline["n_refactorizations"] < 1:
            failures.append("pipeline: no online re-factorization fired")
        if pipeline["param_reduction"] <= 1.0:
            failures.append(
                f"pipeline: param reduction {pipeline['param_reduction']} "
                "not above 1.0"
            )

    ddp = scenarios.get("pipeline_ddp")
    if ddp is None:
        failures.append("pipeline_ddp: scenario missing from current run")
    else:
        resyncs = [e for e in ddp["events"] if e["event"] == "refactorize"]
        if not resyncs:
            failures.append("pipeline_ddp: no re-factorization fired under DDP")
        for e in resyncs:
            if e["resync_bytes"] <= 0 or e["resync_seconds"] <= 0:
                failures.append(
                    f"pipeline_ddp: epoch {e['epoch']} re-factorization "
                    "charged no resync broadcast"
                )

    promo = scenarios.get("promotion_roundtrip")
    if promo is None:
        failures.append("promotion_roundtrip: scenario missing from current run")
    else:
        if not promo["ranks_exact"]:
            failures.append("promotion_roundtrip: served ranks differ from run")
        if not promo["weights_exact"]:
            failures.append(
                "promotion_roundtrip: promoted weights did not round-trip"
            )
        if promo["versions"] != [1, 2]:
            failures.append(
                f"promotion_roundtrip: versions {promo['versions']}, "
                "expected dense [1, 2]"
            )

    deploy = scenarios.get("deployment")
    if deploy is None:
        failures.append("deployment: scenario missing from current run")
    else:
        if deploy["healthy"]["status"] != "promoted":
            failures.append(
                f"deployment: healthy run {deploy['healthy']['status']!r}, "
                "expected promoted"
            )
        if deploy["degraded"]["status"] != "rolled_back":
            failures.append(
                f"deployment: degraded run {deploy['degraded']['status']!r}, "
                "expected rolled_back"
            )
    return failures


GATE = Gate(
    name="lifecycle",
    default_current="BENCH_lifecycle.json",
    default_baseline="benchmarks/baselines/lifecycle_baseline.json",
    rules=(DeepExact(),),
    headline=headline,
    ok_line=lambda n, t: (
        f"lifecycle regression gate: {n} baseline scenarios OK "
        "(seeded end-to-end deterministic, exact diff)"
    ),
    description=__doc__.splitlines()[0],
)


if __name__ == "__main__":
    raise SystemExit(run_gate(GATE))
