#!/usr/bin/env python
"""CI regression gate for the overlap/fused-optimizer benchmark.

Compares a fresh ``BENCH_overlap.json`` against the committed baseline
(``benchmarks/baselines/overlap_baseline.json``).  Three kinds of check:

* **structure** — bucket counts, bucket sizes/offsets, tensor/parameter
  counts, payload bytes must match the baseline exactly: the bucket
  assembly is a pure function of the model and the cap, so any drift is
  a behavior change, not noise;
* **modeled time** — the α–β cost-model communication seconds
  (monolithic and bucketed) are seed-free deterministic quantities;
  they must stay within the threshold (default 20%) of baseline;
* **invariants** — machine-dependent numbers (measured compute, the
  hidden fraction) are only sanity-bounded, never compared to baseline:
  ``0 < overlap_fraction <= 1`` and ``comm_exposed_s <= comm_bucketed_s``.

Usage::

    python benchmarks/check_overlap_regression.py \
        [--current BENCH_overlap.json] \
        [--baseline benchmarks/baselines/overlap_baseline.json] \
        [--threshold 0.20]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

EXACT_KEYS = ("n_buckets", "n_tensors", "n_params", "payload_bytes", "sizes", "offsets")
MODELED_TIME_KEYS = ("comm_mono_s", "comm_bucketed_s")


def check(current: dict, baseline: dict, threshold: float) -> list[str]:
    failures = []
    for name, base in sorted(baseline["scenarios"].items()):
        cur = current.get("scenarios", {}).get(name)
        if cur is None:
            failures.append(f"{name}: scenario missing from current run")
            continue
        for key in EXACT_KEYS:
            if key in base and cur.get(key) != base[key]:
                failures.append(
                    f"{name}.{key}: {cur.get(key)} != baseline {base[key]} "
                    "(bucket/arena structure changed)"
                )
        for key in MODELED_TIME_KEYS:
            if key not in base:
                continue
            b, c = base[key], cur.get(key, 0.0)
            lo, hi = b * (1.0 - threshold), b * (1.0 + threshold)
            if not (lo <= c <= hi):
                failures.append(
                    f"{name}.{key}: {c:.6f}s outside [{lo:.6f}, {hi:.6f}] "
                    f"(baseline {b:.6f}s ±{threshold:.0%}; modeled time drifted)"
                )
        if "overlap_fraction" in cur:
            f = cur["overlap_fraction"]
            if not (0.0 < f <= 1.0):
                failures.append(f"{name}.overlap_fraction: {f} outside (0, 1]")
        if "comm_exposed_s" in cur and "comm_bucketed_s" in cur:
            if cur["comm_exposed_s"] > cur["comm_bucketed_s"] + 1e-9:
                failures.append(
                    f"{name}: exposed {cur['comm_exposed_s']:.6f}s exceeds "
                    f"total bucketed comm {cur['comm_bucketed_s']:.6f}s"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", default="BENCH_overlap.json")
    ap.add_argument(
        "--baseline", default="benchmarks/baselines/overlap_baseline.json"
    )
    ap.add_argument("--threshold", type=float, default=0.20)
    args = ap.parse_args(argv)

    for path in (args.current, args.baseline):
        if not Path(path).exists():
            print(f"overlap regression gate: missing {path}", file=sys.stderr)
            return 2
    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())

    failures = check(current, baseline, args.threshold)
    n = len(baseline["scenarios"])
    if failures:
        print(f"overlap regression gate: {len(failures)} failure(s) across {n} scenarios")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print(f"overlap regression gate: {n} scenarios within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
