#!/usr/bin/env python
"""CI regression gate for the overlap/fused-optimizer benchmark.

Compares a fresh ``BENCH_overlap.json`` against the committed baseline
(``benchmarks/baselines/overlap_baseline.json``).  Three kinds of check:

* **structure** — bucket counts, bucket sizes/offsets, tensor/parameter
  counts, payload bytes must match the baseline exactly: the bucket
  assembly is a pure function of the model and the cap, so any drift is
  a behavior change, not noise;
* **modeled time** — the α–β cost-model communication seconds
  (monolithic and bucketed) are seed-free deterministic quantities;
  they must stay within the threshold (default 20%) of baseline;
* **invariants** — machine-dependent numbers (measured compute, the
  hidden fraction) are only sanity-bounded, never compared to baseline:
  ``0 < overlap_fraction <= 1`` and ``comm_exposed_s <= comm_bucketed_s``.

Usage::

    python benchmarks/check_overlap_regression.py \
        [--current BENCH_overlap.json] \
        [--baseline benchmarks/baselines/overlap_baseline.json] \
        [--threshold 0.20]
"""

from __future__ import annotations

from gatelib import BandFields, ExactFields, Gate, run_gate


def invariants(name: str, cur: dict) -> list[str]:
    failures: list[str] = []
    if "overlap_fraction" in cur:
        f = cur["overlap_fraction"]
        if not (0.0 < f <= 1.0):
            failures.append(f"{name}.overlap_fraction: {f} outside (0, 1]")
    if "comm_exposed_s" in cur and "comm_bucketed_s" in cur:
        if cur["comm_exposed_s"] > cur["comm_bucketed_s"] + 1e-9:
            failures.append(
                f"{name}: exposed {cur['comm_exposed_s']:.6f}s exceeds "
                f"total bucketed comm {cur['comm_bucketed_s']:.6f}s"
            )
    return failures


GATE = Gate(
    name="overlap",
    default_current="BENCH_overlap.json",
    default_baseline="benchmarks/baselines/overlap_baseline.json",
    default_threshold=0.20,
    rules=(
        ExactFields(
            ("n_buckets", "n_tensors", "n_params", "payload_bytes", "sizes", "offsets"),
            note="bucket/arena structure changed",
        ),
        BandFields(("comm_mono_s", "comm_bucketed_s"), note="modeled time drifted"),
    ),
    invariants=invariants,
    description=__doc__.splitlines()[0],
)


if __name__ == "__main__":
    raise SystemExit(run_gate(GATE))
