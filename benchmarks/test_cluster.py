"""Cluster benchmark — fleet cost, autoscaling, and canary rollout.

The control-plane restatement of Pufferfish's serving claim: factorized
replicas are permanently smaller, so the *fleet* serving them needs
strictly fewer hosts at an equal-or-lower shed rate.  Four scenario
families feed ``BENCH_cluster.json``, all driven by the same pinned
measurement-derived latency profiles the serving benchmark gates, so
every number is a pure function of ``(seed, profiles, config)`` and the
gate compares them exactly:

* ``fleet_cost``       — equal replica counts per variant, same seeded
  arrival stream: factorized packs onto fewer hosts and sheds no more;
* ``placement_policies`` — host counts for a mixed fleet under each
  placement policy (ffd / best_fit / spread), with the volume lower
  bound recorded;
* ``autoscale_spike``  — the windowed control loop through a 250→450→250
  rps spike: scale events, steady-state shed, zero oscillations, digest;
* ``canary_rollout``   — a promoted full→factorized rollout and a
  forced rollback (pathologically slow canary), both digested.

Gate: ``benchmarks/check_cluster_regression.py`` against
``benchmarks/baselines/cluster_baseline.json``.
"""

import json
import platform
import time

import pytest

from harness import print_table
from repro import __version__
from repro.cluster import (
    CanaryConfig,
    ClusterAutoscaler,
    ClusterScenario,
    HostSpec,
    PoolConfig,
    ShedRatePolicy,
    lower_bound_hosts,
    pack,
    parse_phases,
    replica_spec_for,
    run_canary,
)
from repro.serve import (
    ArrivalSpec,
    BatchPolicy,
    LatencyProfile,
    ServeConfig,
    ServeSimulator,
    default_registry,
    generate_arrivals,
)

CLUSTER_BENCH_FILE = "BENCH_cluster.json"

_SCENARIOS: dict[str, dict] = {}

# The serving benchmark's pinned measurement-derived profiles (VGG-19,
# width 0.25, rank ratio 0.25) — reused here so the fleet numbers share
# provenance with the single-replica crossover table.
PROFILE_BATCHES = (1, 2, 4, 8, 16, 32)
PINNED_FULL_S = (0.0047, 0.0074, 0.0124, 0.0212, 0.0392, 0.0769)
PINNED_FACTORIZED_S = (0.0043, 0.0064, 0.0119, 0.0205, 0.0371, 0.0721)

SLO_S = 0.150
POLICY = BatchPolicy(max_batch_size=16, max_wait_s=0.010)
HOST = HostSpec(mem_bytes=12_000_000, compute_rps=2000.0)
REPLICAS_PER_VARIANT = 6
FLEET_RATE = 2550.0
FLEET_DURATION_S = 10.0


@pytest.fixture(scope="module", autouse=True)
def _write_cluster_artifact():
    yield
    data = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "repro_version": __version__,
        "python": platform.python_version(),
        "scenarios": _SCENARIOS,
    }
    with open(CLUSTER_BENCH_FILE, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)


def _pinned_profiles() -> dict[str, LatencyProfile]:
    return {
        "full": LatencyProfile(PROFILE_BATCHES, PINNED_FULL_S),
        "factorized": LatencyProfile(PROFILE_BATCHES, PINNED_FACTORIZED_S),
    }


def _replicas():
    """Replica specs from the registry's exact parameter accounting."""
    registry = default_registry()
    profiles = _pinned_profiles()
    out = {}
    for variant, profile in profiles.items():
        served = registry.materialize("vgg19", variant, width=0.25, rank_ratio=0.25)
        out[variant] = (served, replica_spec_for(served, profile), profile)
    return out


def test_fleet_cost():
    """Equal replica counts, same request stream: the factorized fleet
    must serve at an equal-or-lower shed rate on strictly fewer hosts."""
    cells = {}
    arrivals = generate_arrivals(
        ArrivalSpec(rate_rps=FLEET_RATE, duration_s=FLEET_DURATION_S, seed=0)
    )
    for variant, (served, replica, profile) in _replicas().items():
        placement = pack([replica] * REPLICAS_PER_VARIANT, HOST)
        report = ServeSimulator(
            profile,
            ServeConfig(slo_s=SLO_S, policy=POLICY, replicas=REPLICAS_PER_VARIANT),
        ).run(arrivals, duration_s=FLEET_DURATION_S)
        s = report.summary()
        cells[variant] = {
            "params": served.params,
            "replica_mem_mb": round(replica.mem_bytes / 1e6, 6),
            "capacity_rps": round(replica.capacity_rps, 6),
            "n_hosts": placement.n_hosts,
            "fleet_cost": round(placement.fleet_cost, 6),
            "mem_utilization": round(placement.mem_utilization, 6),
            "n_rejected": len(placement.rejected),
            "n_requests": s["n_requests"],
            "n_completed": s["n_completed"],
            "shed_rate": s["shed_rate"],
            "throughput_rps": s["throughput_rps"],
            "p99_ms": s["p99_ms"],
            "timeline_digest": s["timeline_digest"],
        }
    print_table(
        f"Fleet cost at {FLEET_RATE:.0f} rps ({REPLICAS_PER_VARIANT} replicas, "
        f"{HOST.mem_bytes / 1e6:.0f} MB hosts)",
        ["Variant", "MB/replica", "Hosts", "Shed", "Throughput"],
        [
            [
                v,
                c["replica_mem_mb"],
                c["n_hosts"],
                f"{c['shed_rate']:.2%}",
                f"{c['throughput_rps']:.0f}",
            ]
            for v, c in cells.items()
        ],
    )
    _SCENARIOS["fleet_cost"] = {
        "model": "vgg19",
        "width": 0.25,
        "rank_ratio": 0.25,
        "host_mem_mb": HOST.mem_bytes / 1e6,
        "host_rps": HOST.compute_rps,
        "replicas_per_variant": REPLICAS_PER_VARIANT,
        "rate_rps": FLEET_RATE,
        "duration_s": FLEET_DURATION_S,
        "seed": 0,
        "variants": cells,
    }
    full, fact = cells["full"], cells["factorized"]
    # The acceptance criterion: equal-or-lower shed on strictly fewer hosts.
    assert fact["n_hosts"] < full["n_hosts"]
    assert fact["shed_rate"] <= full["shed_rate"]
    assert fact["n_requests"] == full["n_requests"]
    assert not full["n_rejected"] and not fact["n_rejected"]


def test_placement_policies():
    """A mixed fleet (both variants) under every placement policy."""
    reps = _replicas()
    fleet = [reps["full"][1]] * 4 + [reps["factorized"][1]] * 6
    cells = {}
    for policy in ("ffd", "best_fit", "spread"):
        res = pack(fleet, HOST, policy=policy)
        cells[policy] = {
            "n_hosts": res.n_hosts,
            "fleet_cost": round(res.fleet_cost, 6),
            "mem_utilization": round(res.mem_utilization, 6),
            "replica_counts": res.replica_counts(),
            "n_rejected": len(res.rejected),
        }
    lb = lower_bound_hosts(fleet, HOST)
    print_table(
        "Placement policies, mixed fleet (4 full + 6 factorized)",
        ["Policy", "Hosts", "Mem packed", "Rejected"],
        [
            [p, c["n_hosts"], f"{c['mem_utilization']:.1%}", c["n_rejected"]]
            for p, c in cells.items()
        ],
    )
    _SCENARIOS["placement_policies"] = {
        "fleet": {"full": 4, "factorized": 6},
        "lower_bound_hosts": lb,
        "policies": cells,
    }
    for c in cells.values():
        assert c["n_rejected"] == 0
        assert c["n_hosts"] >= lb


AUTOSCALE_PHASES = "250x60,450x60,250x60"


def test_autoscale_spike():
    """The control loop through a traffic spike: scales up past
    single-replica capacity, returns to a calm steady state with shed
    within target and zero hysteresis oscillations."""
    _, replica, profile = _replicas()["factorized"]
    scenario = ClusterScenario(
        parse_phases(AUTOSCALE_PHASES), window_s=10.0, seed=7
    )
    pool = PoolConfig(
        name="vgg19:factorized",
        replica=replica,
        profile=profile,
        slo_s=SLO_S,
        policy=ShedRatePolicy(target=0.02),
        batch=POLICY,
        initial_replicas=1,
        max_replicas=8,
        cooldown_windows=1,
    )
    report = ClusterAutoscaler(scenario, [pool], host_spec=HOST).run()
    again = ClusterAutoscaler(scenario, [pool], host_spec=HOST).run()
    assert report.digest() == again.digest(), "control loop must be deterministic"

    s = report.summary()
    p = s["pools"][pool.name]
    print_table(
        f"Autoscale spike ({AUTOSCALE_PHASES}, window 10 s, shed target 2%)",
        ["Windows", "Scale events", "Peak replicas", "Steady shed", "Oscillations"],
        [[s["n_windows"], s["n_scale_events"], p["max_replicas"],
          f"{p['steady_state_shed']:.2%}", p["oscillations"]]],
    )
    _SCENARIOS["autoscale_spike"] = {
        "phases": AUTOSCALE_PHASES,
        "window_s": 10.0,
        "seed": 7,
        "policy": "shed_rate",
        "shed_target": 0.02,
        "initial_replicas": 1,
        "final_replicas": s["final_replicas"][pool.name],
        "max_replicas": p["max_replicas"],
        "n_windows": s["n_windows"],
        "n_scale_events": s["n_scale_events"],
        "oscillations": p["oscillations"],
        "steady_state_shed": p["steady_state_shed"],
        "events": [e.as_dict() for e in report.events],
        "final_hosts": report.placement.n_hosts,
        "timeline_digest": s["timeline_digest"],
    }
    assert s["n_scale_events"] >= 1
    assert p["steady_state_shed"] <= 0.02
    assert p["oscillations"] == 0


def test_canary_rollout():
    """A healthy rollout promotes; a pathologically slow canary rolls
    back at the first gate — both outcomes digested and gated exactly."""
    profiles = _pinned_profiles()
    scenario = ClusterScenario(parse_phases("400x120"), window_s=10.0, seed=3)
    config = CanaryConfig(slo_s=SLO_S, batch=POLICY)

    promoted = run_canary(scenario, profiles["full"], profiles["factorized"], config)
    slow = LatencyProfile(
        PROFILE_BATCHES, tuple(40 * t for t in PINNED_FACTORIZED_S)
    )
    rolled_back = run_canary(scenario, profiles["full"], slow, config)

    print_table(
        "Canary rollout full -> factorized (400 rps, 3 windows/step)",
        ["Run", "Status", "Steps taken", "Final fraction"],
        [
            ["healthy", promoted.status, len(promoted.steps),
             f"{promoted.final_fraction:.0%}"],
            ["slow canary", rolled_back.status, len(rolled_back.steps),
             f"{rolled_back.final_fraction:.0%}"],
        ],
    )
    _SCENARIOS["canary_rollout"] = {
        "phases": "400x120",
        "window_s": 10.0,
        "seed": 3,
        "steps": list(config.steps),
        "windows_per_step": config.windows_per_step,
        "shed_delta_tolerance": config.shed_delta_tolerance,
        "healthy": promoted.summary(),
        "slow_canary": rolled_back.summary(),
    }
    assert promoted.status == "promoted"
    assert rolled_back.status == "rolled_back"
    assert len(rolled_back.steps) < len(config.steps)
