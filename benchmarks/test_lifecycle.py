"""Lifecycle benchmark — train → factorize → deploy, digest-verified.

The end-to-end restatement of the paper's workflow plus the piece it
leaves as future work: per-layer rank selection, re-chosen *online* from
measured singular-value spectra, carried through checkpoint promotion and
a canary deployment.  Four scenario families feed ``BENCH_lifecycle.json``,
every number a pure function of ``(seed, config)``:

* ``pipeline``            — the single-node pipeline run twice: identical
  spectra digests, rank maps, decisions and end-to-end timeline digest;
  the allocator-chosen map differs from the global-0.25 map on ≥ 1 layer
  and at least one online re-factorization fires;
* ``pipeline_ddp``        — the same loop under simulated DDP with
  AB-Training-style full-resync accounting on every re-factorization;
* ``promotion_roundtrip`` — promote → materialize: the served model
  rebuilds the exact per-layer hybrid (ranks and weights bit-exact) from
  the self-describing artifact, versions assigned densely;
* ``deployment``          — the promoted checkpoint through the cluster
  canary on pinned profiles: the healthy rollout promotes, an injected
  40× latency regression rolls back at the first gate.

Gate: ``benchmarks/check_lifecycle_regression.py`` against
``benchmarks/baselines/lifecycle_baseline.json``.
"""

import json
import platform
import time

import numpy as np
import pytest

from harness import print_table
from repro import __version__
from repro.lifecycle import (
    DeploymentConfig,
    LifecycleConfig,
    PromotionRegistry,
    RankPolicy,
    run_deployment,
    run_lifecycle,
)

LIFECYCLE_BENCH_FILE = "BENCH_lifecycle.json"

_SCENARIOS: dict[str, dict] = {}

# Tuned so the loop demonstrably exercises everything the gate asserts:
# a 0.75 energy target with a 0.5 rank cap makes the warm-up spectra pick
# per-layer ranks away from the global map, and truncation + SGD then
# concentrate energy enough that the low-rank recheck drifts past the
# hysteresis band and triggers an online re-factorization.
POLICY = RankPolicy(energy_threshold=0.75, max_ratio=0.5, hysteresis=2)
SINGLE_CONFIG = LifecycleConfig(
    model="vgg11",
    width=0.25,
    seed=7,
    train_samples=96,
    val_samples=32,
    batch_size=32,
    warmup_epochs=2,
    total_epochs=4,
    policy=POLICY,
)
DDP_CONFIG = LifecycleConfig(
    model="vgg11",
    width=0.25,
    seed=7,
    train_samples=128,
    val_samples=32,
    batch_size=32,
    warmup_epochs=2,
    total_epochs=4,
    policy=POLICY,
    workers=2,
)

_RUNS: dict[str, object] = {}


def _run_cached(config: LifecycleConfig):
    key = config.digest()
    if key not in _RUNS:
        _RUNS[key] = run_lifecycle(config)
    return _RUNS[key]


@pytest.fixture(scope="module", autouse=True)
def _write_lifecycle_artifact():
    yield
    data = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "repro_version": __version__,
        "python": platform.python_version(),
        "scenarios": _SCENARIOS,
    }
    with open(LIFECYCLE_BENCH_FILE, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)


def test_pipeline():
    """The single-node pipeline is a pure function of (seed, config):
    rerunning reproduces every digest; the per-layer map actually differs
    from the paper's global ratio and re-factorization fires online."""
    run = _run_cached(SINGLE_CONFIG)
    again = run_lifecycle(SINGLE_CONFIG)
    assert run.spectra_digest == again.spectra_digest
    assert run.rank_map == again.rank_map
    assert run.timeline_digest() == again.timeline_digest()

    s = run.summary()
    print_table(
        f"Lifecycle pipeline ({SINGLE_CONFIG.model}, seed {SINGLE_CONFIG.seed}, "
        f"{SINGLE_CONFIG.warmup_epochs}+"
        f"{SINGLE_CONFIG.total_epochs - SINGLE_CONFIG.warmup_epochs} epochs)",
        ["Layers", "≠ global", "Refactorizations", "Params", "Timeline digest"],
        [[len(run.rank_map), s["n_layers_differ_from_global"],
          s["n_refactorizations"],
          f"{s['params_full']:,} -> {s['params_factorized']:,}",
          s["timeline_digest"]]],
    )
    _SCENARIOS["pipeline"] = s
    assert s["n_layers_differ_from_global"] >= 1
    assert s["n_refactorizations"] >= 1
    assert s["param_reduction"] > 1.0 and s["mac_reduction"] > 1.0


def test_pipeline_ddp():
    """Simulated DDP: same loop, every re-factorization charged a full
    AB-style resync broadcast; digests stay deterministic."""
    run = _run_cached(DDP_CONFIG)
    again = run_lifecycle(DDP_CONFIG)
    assert run.timeline_digest() == again.timeline_digest()

    s = run.summary()
    resyncs = [e for e in s["events"] if e["event"] == "refactorize"]
    print_table(
        f"Lifecycle pipeline, simulated DDP ({DDP_CONFIG.workers} workers)",
        ["Refactorizations", "Resync bytes", "Resync ms", "Timeline digest"],
        [[len(resyncs), sum(e["resync_bytes"] for e in resyncs),
          f"{sum(e['resync_seconds'] for e in resyncs) * 1e3:.3f}",
          s["timeline_digest"]]],
    )
    _SCENARIOS["pipeline_ddp"] = s
    assert s["n_refactorizations"] >= 1
    for e in resyncs:
        assert e["resync_bytes"] > 0 and e["resync_seconds"] > 0


def test_promotion_roundtrip(tmp_path):
    """Promote → materialize rebuilds the exact per-layer hybrid from the
    self-describing artifact: ranks and weights bit-exact, dense versions."""
    run = _run_cached(SINGLE_CONFIG)
    registry = PromotionRegistry(tmp_path / "registry")
    v1 = registry.promote(run)
    v2 = registry.promote(run)
    served = registry.materialize(v1)

    from repro.core.layers import LowRankConv2d, LowRankLinear

    served_ranks = {
        path: int(layer.rank)
        for path, layer in served.model.named_modules()
        if isinstance(layer, (LowRankConv2d, LowRankLinear))
    }
    want = {k: v for k, v in run.model.state_dict().items()}
    got = {k: v for k, v in served.model.state_dict().items()}
    assert served_ranks == run.rank_map
    assert sorted(want) == sorted(got)
    weights_exact = all(np.array_equal(want[k], got[k]) for k in want)
    assert weights_exact, "promoted weights must round-trip bit-exactly"

    print_table(
        "Promotion round-trip (registry -> serve)",
        ["Versions", "Served params", "Ranks exact", "Weights exact"],
        [[[v1.version, v2.version], f"{served.params:,}",
          served_ranks == run.rank_map, weights_exact]],
    )
    _SCENARIOS["promotion_roundtrip"] = {
        "versions": [v1.version, v2.version],
        "lineage": {k: v for k, v in v1.lineage.items() if k != "rank_map"},
        "served_params": int(served.params),
        "served_macs": int(served.macs),
        "served_rank_map": dict(sorted(served_ranks.items())),
        "ranks_exact": served_ranks == run.rank_map,
        "weights_exact": bool(weights_exact),
        "served_lineage": dict(sorted(served.lineage.items())),
    }
    assert (v1.version, v2.version) == (1, 2)
    assert served.params == run.params_factorized


def test_deployment(tmp_path):
    """The promoted checkpoint through the canary: healthy promotes at
    100%, an injected 40× latency regression rolls back at step one."""
    run = _run_cached(SINGLE_CONFIG)
    record = PromotionRegistry(tmp_path / "registry").promote(run)

    healthy = run_deployment(record, DeploymentConfig(seed=3))
    degraded = run_deployment(
        record, DeploymentConfig(seed=3, degrade_factor=40.0)
    )

    print_table(
        "Canary deployment of the promoted checkpoint (seed 3)",
        ["Run", "Status", "Steps", "Final fraction", "Deploy digest"],
        [
            ["healthy", healthy.status, len(healthy.steps),
             f"{healthy.final_fraction:.0%}", healthy.digest()],
            ["degraded 40x", degraded.status, len(degraded.steps),
             f"{degraded.final_fraction:.0%}", degraded.digest()],
        ],
    )
    _SCENARIOS["deployment"] = {
        "seed": 3,
        "healthy": healthy.summary(),
        "degraded": degraded.summary(),
    }
    assert healthy.status == "promoted" and healthy.final_fraction == 1.0
    assert degraded.status == "rolled_back" and degraded.final_fraction == 0.0
    assert len(degraded.steps) < len(healthy.steps)
