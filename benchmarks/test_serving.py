"""Serving benchmark — full-rank vs factorized variants under SLO load.

The headline experiment of the serving subsystem: as offered load rises,
the full-rank VGG-19 variant saturates first, while the factorized
variant (permanently fewer MACs — the Pufferfish property that survives
into deployment) keeps absorbing traffic under the same SLO.  Three
scenario families feed ``BENCH_serving.json``:

* ``variant_accounting`` — params/MACs of both variants; pure
  architecture arithmetic, gated exactly;
* ``pinned_crossover`` — the simulator driven by *pinned* latency
  profiles (measurement-derived medians from the development host, in
  seconds per batch).  Every downstream number is a pure function of
  (pinned profile, seeded arrivals, config), so the request counts, shed
  counts, throughputs and timeline digests are machine-independent and
  gated exactly;
* ``measured_*`` — the same sweep over profiles measured live on the CI
  host; numbers vary by machine, so the gate checks invariants only.

Gate: ``benchmarks/check_serving_regression.py`` against
``benchmarks/baselines/serving_baseline.json``.
"""

import json
import platform
import time

import pytest

from harness import print_table
from repro import __version__
from repro.serve import (
    ArrivalSpec,
    BatchPolicy,
    LatencyProfile,
    ServeConfig,
    ServeSimulator,
    default_registry,
    generate_arrivals,
    measure_latency_profile,
)

SERVING_BENCH_FILE = "BENCH_serving.json"

_SCENARIOS: dict[str, dict] = {}

# Measurement-derived per-batch forward seconds (VGG-19, width 0.25,
# rank ratio 0.25, batch sizes 1..32) — representative medians recorded
# on the development host.  Pinning them makes the crossover scenario a
# deterministic function of the seed, so CI gates it exactly; the
# ``measured_*`` scenarios re-derive the same shape from live timings.
PROFILE_BATCHES = (1, 2, 4, 8, 16, 32)
PINNED_FULL_S = (0.0047, 0.0074, 0.0124, 0.0212, 0.0392, 0.0769)
PINNED_FACTORIZED_S = (0.0043, 0.0064, 0.0119, 0.0205, 0.0371, 0.0721)

SLO_S = 0.150
POLICY = BatchPolicy(max_batch_size=16, max_wait_s=0.010)
RATES = (380, 430, 500)
DURATION_S = 10.0


@pytest.fixture(scope="module", autouse=True)
def _write_serving_artifact():
    yield
    data = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "repro_version": __version__,
        "python": platform.python_version(),
        "scenarios": _SCENARIOS,
    }
    with open(SERVING_BENCH_FILE, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)


def _pinned_profiles() -> dict[str, LatencyProfile]:
    return {
        "full": LatencyProfile(PROFILE_BATCHES, PINNED_FULL_S),
        "factorized": LatencyProfile(PROFILE_BATCHES, PINNED_FACTORIZED_S),
    }


def _sweep(profiles: dict[str, LatencyProfile]) -> dict[str, dict]:
    """Run every (variant, rate) cell and return the result grid."""
    out: dict[str, dict] = {}
    for variant, profile in profiles.items():
        cells = {}
        for rate in RATES:
            arrivals = generate_arrivals(
                ArrivalSpec(rate_rps=rate, duration_s=DURATION_S, seed=0)
            )
            report = ServeSimulator(
                profile, ServeConfig(slo_s=SLO_S, policy=POLICY)
            ).run(arrivals, duration_s=DURATION_S)
            s = report.summary()
            cells[str(rate)] = {
                "n_requests": s["n_requests"],
                "n_completed": s["n_completed"],
                "n_shed_admission": s["n_shed_admission"],
                "n_shed_deadline": s["n_shed_deadline"],
                "shed_rate": s["shed_rate"],
                "throughput_rps": s["throughput_rps"],
                "goodput_rps": s["goodput_rps"],
                "p50_ms": s["p50_ms"],
                "p95_ms": s["p95_ms"],
                "p99_ms": s["p99_ms"],
                "queue_depth_max": s["queue_depth_max"],
                "timeline_digest": s["timeline_digest"],
            }
        out[variant] = {
            "capacity_rps": round(profile.capacity_rps(), 6),
            "best_batch": profile.best_batch(),
            "rates": cells,
        }
    return out


def test_variant_accounting():
    """Params and MACs per variant — what factorization permanently buys.

    Architecture arithmetic only (ranks fix the layer shapes), so the
    values are machine-independent and the gate compares them exactly.
    """
    registry = default_registry()
    full = registry.materialize("vgg19", "full", width=0.25)
    fact = registry.materialize("vgg19", "factorized", width=0.25, rank_ratio=0.25)
    print_table(
        "Served VGG-19 variants (width 0.25, rank ratio 0.25)",
        ["Variant", "Params", "MACs/example"],
        [
            ["full", full.params, full.macs],
            ["factorized", fact.params, fact.macs],
        ],
    )
    _SCENARIOS["variant_accounting"] = {
        "model": "vgg19",
        "width": 0.25,
        "rank_ratio": 0.25,
        "params_full": full.params,
        "params_factorized": fact.params,
        "macs_full": full.macs,
        "macs_factorized": fact.macs,
        "n_factorized_layers": fact.factorization["n_factorized"],
        "compression": round(fact.factorization["compression"], 6),
    }
    assert fact.params < full.params
    assert fact.macs < full.macs


def test_pinned_crossover():
    """The throughput/latency crossover under rising offered load.

    With the same SLO, batcher and seed on both sides, the factorized
    profile must sustain strictly higher max throughput — the serving
    restatement of the paper's claim that factorization, unlike gradient
    compression, still pays at inference time.
    """
    grid = _sweep(_pinned_profiles())
    full, fact = grid["full"], grid["factorized"]

    rows = []
    for rate in RATES:
        for variant, cells in (("full", full), ("factorized", fact)):
            c = cells["rates"][str(rate)]
            rows.append(
                [
                    rate,
                    variant,
                    c["throughput_rps"],
                    f"{c['shed_rate']:.1%}",
                    c["p50_ms"],
                    c["p99_ms"],
                ]
            )
    print_table(
        f"Serving crossover, pinned profiles (SLO {SLO_S * 1e3:.0f} ms, "
        f"batch <= {POLICY.max_batch_size}, seed 0)",
        ["Rate (rps)", "Variant", "Throughput", "Shed", "p50 (ms)", "p99 (ms)"],
        rows,
    )
    _SCENARIOS["pinned_crossover"] = {
        "slo_ms": SLO_S * 1e3,
        "max_batch": POLICY.max_batch_size,
        "max_wait_ms": POLICY.max_wait_s * 1e3,
        "rates": list(RATES),
        "duration_s": DURATION_S,
        "seed": 0,
        "variants": grid,
    }

    assert fact["capacity_rps"] > full["capacity_rps"]
    # Beyond the full variant's capacity the factorized variant completes
    # strictly more of the same request stream, and sheds less.
    saturating = [r for r in RATES if r > full["capacity_rps"]]
    assert saturating, "sweep never exceeds full-rank capacity"
    for rate in saturating:
        f, h = full["rates"][str(rate)], fact["rates"][str(rate)]
        assert h["throughput_rps"] > f["throughput_rps"], rate
        assert h["shed_rate"] < f["shed_rate"], rate
    # Same seeded request stream on both sides of every cell.
    for rate in RATES:
        assert (
            full["rates"][str(rate)]["n_requests"]
            == fact["rates"][str(rate)]["n_requests"]
        )


def test_measured_profiles(benchmark):
    """The same sweep over profiles measured live on this host.

    Machine-dependent by construction — the gate only checks invariants
    (quantile ordering, shed-rate bounds, positive capacities).  The
    factorized variant's params/MACs advantage is architectural; whether
    its wall-clock advantage survives this host's BLAS is what this
    scenario records.
    """
    registry = default_registry()
    profiles = {}
    for variant in ("full", "factorized"):
        served = registry.materialize("vgg19", variant, width=0.25, rank_ratio=0.25)
        profiles[variant] = measure_latency_profile(
            served.model,
            served.input_shape,
            batch_sizes=(1, 4, 16),
            repeats=3,
            meta={"model": "vgg19", "variant": variant},
        )
    grid = benchmark.pedantic(lambda: _sweep(profiles), rounds=1, iterations=1)

    print_table(
        "Measured per-batch forward latency (ms) on this host",
        ["Variant", "b=1", "b=4", "b=16", "Capacity (rps)"],
        [
            [
                v,
                *[round(t * 1e3, 2) for t in profiles[v].latency_s],
                round(profiles[v].capacity_rps(), 1),
            ]
            for v in ("full", "factorized")
        ],
    )
    for variant, cells in grid.items():
        _SCENARIOS[f"measured_{variant}"] = {
            "batch_sizes": list(profiles[variant].batch_sizes),
            "latency_ms": [round(t * 1e3, 4) for t in profiles[variant].latency_s],
            **cells,
        }
    for variant in ("full", "factorized"):
        assert profiles[variant].capacity_rps() > 0
        for cell in grid[variant]["rates"].values():
            assert 0.0 <= cell["shed_rate"] <= 1.0
            assert cell["p50_ms"] <= cell["p95_ms"] <= cell["p99_ms"]
