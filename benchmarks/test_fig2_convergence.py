"""Figure 2 — convergence of vanilla vs fully-low-rank (from scratch)
networks: (a) VGG-class model on CIFAR, (b) ResNet-class model on the
ImageNet stand-in.

Paper: the from-scratch low-rank nets track the vanilla curves but end
lower — ~0.4% lower on CIFAR-10/VGG, ~3% top-1 lower on ImageNet/ResNet-50
— which is precisely the accuracy gap Section 3's mitigations close.

Claims under test: both arms converge (accuracy rises over epochs), and
the low-rank-from-scratch end-point does not beat vanilla by a margin
(it's the *deficit* the paper builds on).
"""

import numpy as np

from harness import image_loaders, imagenet_loaders, print_series, scaled_resnet50
from repro.core import FactorizationConfig, Trainer, build_hybrid
from repro.models import vgg11, vgg11_hybrid_config
from repro.optim import SGD, MultiStepLR
from repro.utils import set_seed

EPOCHS = 8


def _curve(model, train, val, epochs=EPOCHS):
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
    t = Trainer(model, opt, scheduler=MultiStepLR(opt, [6], gamma=0.1))
    t.fit(train, val, epochs=epochs)
    return [s.val_metric for s in t.history]


def test_fig2a_vgg_cifar(benchmark, rng):
    def experiment():
        set_seed(2)
        train, val, _ = image_loaders(np.random.default_rng(2), n=320, classes=4, noise=0.3)
        vanilla = vgg11(num_classes=4, width_mult=0.25)
        curve_v = _curve(vanilla, train, val)

        set_seed(2)
        train, val, _ = image_loaders(np.random.default_rng(2), n=320, classes=4, noise=0.3)
        base = vgg11(num_classes=4, width_mult=0.25)
        lowrank, _ = build_hybrid(base, vgg11_hybrid_config(0.25))
        # "From scratch": discard the SVD init by re-randomizing factors.
        for p in lowrank.parameters():
            from repro.nn import init

            if p.data.ndim >= 2:
                p.data = init.kaiming_uniform(p.data.shape)
        curve_l = _curve(lowrank, train, val)
        return curve_v, curve_l

    curve_v, curve_l = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_series(
        "Fig 2a: VGG on CIFAR-like (paper gap at end: ~0.4%)",
        "epoch",
        {"vanilla": curve_v, "low-rank from scratch": curve_l},
    )
    # Both arms converge well above chance.
    assert max(curve_v) > 0.5 and max(curve_l) > 0.5
    # The low-rank net does not decisively beat vanilla from scratch.
    assert max(curve_l) <= max(curve_v) + 0.1


def test_fig2b_resnet_imagenet(benchmark, rng):
    def experiment():
        set_seed(3)
        train, val, _ = imagenet_loaders(np.random.default_rng(3), n=256, classes=8, noise=0.2)
        vanilla = scaled_resnet50(classes=8, width=0.125)
        curve_v = _curve(vanilla, train, val, epochs=8)

        set_seed(3)
        train, val, _ = imagenet_loaders(np.random.default_rng(3), n=256, classes=8, noise=0.2)
        base = scaled_resnet50(classes=8, width=0.125)
        lowrank, _ = build_hybrid(base, FactorizationConfig(rank_ratio=0.25))
        for p in lowrank.parameters():
            from repro.nn import init

            if p.data.ndim >= 2:
                p.data = init.kaiming_uniform(p.data.shape)
        curve_l = _curve(lowrank, train, val, epochs=8)
        return curve_v, curve_l

    curve_v, curve_l = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_series(
        "Fig 2b: ResNet-50 on ImageNet-like (paper gap at end: ~3% top-1)",
        "epoch",
        {"vanilla": curve_v, "low-rank from scratch": curve_l},
    )
    assert max(curve_v) > 0.2 and max(curve_l) > 0.15  # chance 0.125
    assert max(curve_l) <= max(curve_v) + 0.1
