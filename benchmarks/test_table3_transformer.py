"""Table 3 — vanilla vs Pufferfish 6-layer Transformer on translation.

Paper (WMT16 De-En, d_model 512):
    params 48.98M -> 26.70M, val ppl 11.88 -> 7.34, BLEU 19.05 -> 26.87
    (the factorized model *wins* — implicit regularization).

Scaled run (synthetic reverse-translation, d_model 32, 2 layers): claims
under test — factorization shrinks the model and BLEU stays comparable or
better.
"""

import numpy as np

from harness import print_table, run_translation, translation_task
from repro.core import build_hybrid
from repro.metrics import perplexity
from repro.models import Seq2SeqTransformer, transformer_hybrid_config
from repro.utils import set_seed

VOCAB = 20
EPOCHS = 12
WARMUP = 4
LR = 2e-3


def _make_model():
    return Seq2SeqTransformer(
        vocab_size=VOCAB, d_model=32, n_heads=4, num_layers=2, d_ff=64,
        dropout=0.0, max_len=16,
    )


def test_table3_transformer(benchmark, rng):
    def experiment():
        out = {}
        set_seed(11)
        train_ds, val_ds = translation_task(
            np.random.default_rng(11), n=768, vocab=VOCAB, min_len=4, max_len=8
        )
        vanilla = _make_model()
        out["vanilla"] = run_translation(vanilla, train_ds, val_ds, epochs=EPOCHS, lr=LR)
        out["vanilla_params"] = vanilla.num_parameters()

        set_seed(11)
        train2, val2 = translation_task(
            np.random.default_rng(11), n=768, vocab=VOCAB, min_len=4, max_len=8
        )
        model = _make_model()
        run_translation(model, train2, val2, epochs=WARMUP, lr=LR)
        hybrid, report = build_hybrid(model, transformer_hybrid_config(0.25))
        out["pufferfish"] = run_translation(hybrid, train2, val2, epochs=EPOCHS - WARMUP, lr=LR)
        out["pufferfish_params"] = hybrid.num_parameters()
        return out

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Paper-scale parameter reproduction (exact arithmetic).
    paper_vanilla = Seq2SeqTransformer(
        vocab_size=9521, d_model=512, n_heads=8, num_layers=6, max_len=64
    )
    n_paper_vanilla = paper_vanilla.num_parameters()

    rows = [
        ["# Params (paper: 48,978,432)", n_paper_vanilla, "-"],
        ["# Params (this run)", res["vanilla_params"], res["pufferfish_params"]],
        ["Train Ppl (paper: 13.68 / 10.27)",
         perplexity(res["vanilla"]["train_nll"]), perplexity(res["pufferfish"]["train_nll"])],
        ["Val Ppl (paper: 11.88 / 7.34)",
         perplexity(res["vanilla"]["val_nll"]), perplexity(res["pufferfish"]["val_nll"])],
        ["Val BLEU (paper: 19.05 / 26.87)",
         res["vanilla"]["val_bleu"], res["pufferfish"]["val_bleu"]],
    ]
    print_table("Table 3: Transformer, vanilla vs Pufferfish",
                ["Metric", "Vanilla", "Pufferfish"], rows)

    assert res["pufferfish_params"] < res["vanilla_params"]
    # Both models must have learned structure (beat the trivial 0-BLEU).
    assert res["vanilla"]["val_bleu"] > 1.0
    assert res["pufferfish"]["val_bleu"] > 1.0
    # Near parity or better (the paper's Pufferfish actually wins).
    assert res["pufferfish"]["val_bleu"] > 0.5 * res["vanilla"]["val_bleu"]
