"""Figure 4 — distributed training efficiency.

(a) Per-epoch breakdown (compute / encode / comm / decode) for vanilla
    SGD, Pufferfish, and Signum on a ResNet-50-class model, 16 nodes.
    Paper: Pufferfish 1.35x over SGD, 1.28x over Signum per epoch.
(b) Same breakdown plus PowerSGD on a ResNet-18-class model, 8 nodes.
    Paper: Pufferfish 1.33x over PowerSGD, 1.67x over Signum, 1.92x over
    SGD.  PowerSGD wins the *communication* phase but loses the codec
    phase; Pufferfish skips the codec entirely.
(c) DDP scalability over 2/4/8/16 nodes: Pufferfish's per-epoch speedup
    grows with the cluster (paper: 1.52x at 16 nodes).

The simulator executes real numerics and measures compute/encode/decode
wall-clock; wire time comes from the α–β model.  The link bandwidth is
scaled down (0.3 Gbps) so the compute:communication balance on this CPU
matches the paper's V100/10 Gbps regime (~1:0.5 for vanilla SGD).  One
known substrate gap, recorded in EXPERIMENTS.md: CPU-side Signum decoding
is far cheaper than the GPU-side decode the paper measures (its Fig. 7
reports 118 s/epoch for 1-bit decompression), so Signum is *stronger*
here than in the paper and end-to-end totals for the compressors are
asserted with a 15% band rather than strictly.
"""

import time

import numpy as np

from harness import image_loaders, print_series, print_table, scaled_resnet18, scaled_resnet50
from repro.compression import NoCompression, PowerSGD, Signum
from repro.core import build_hybrid
from repro.data import DataLoader, shard_dataset
from repro.distributed import ClusterSpec, DDPTimelineModel, DistributedTrainer
from repro.models import resnet18_hybrid_config, resnet50_hybrid_config
from repro.optim import SGD
from repro.utils import set_seed

# Calibrated on an otherwise-idle machine so vanilla SGD's compute:comm
# balance matches the paper's V100/10 Gbps regime (~1 : 0.3); under that
# balance the paper's method ordering reproduces.
BANDWIDTH_GBPS = 1.0
WORKER_BATCH = 16


def _breakdown(model, compressor_factory, n_nodes, rng_seed, iters=2,
               bandwidth=BANDWIDTH_GBPS):
    set_seed(rng_seed)
    n = WORKER_BATCH * n_nodes * iters
    train, _, _ = image_loaders(
        np.random.default_rng(rng_seed), n=max(n, 64), classes=4, batch=WORKER_BATCH
    )
    x = np.concatenate([xb for xb, _ in train])[:n]
    y = np.concatenate([yb for _, yb in train])[:n]
    shards = shard_dataset(x, y, n_nodes)
    loaders = [DataLoader(sx, sy, WORKER_BATCH) for sx, sy in shards]

    cluster = ClusterSpec(n_nodes, bandwidth_gbps=bandwidth)
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
    trainer = DistributedTrainer(model, opt, cluster, compressor=compressor_factory(n_nodes))
    return trainer.train_epoch(loaders)


def _codec(tl):
    return tl.encode + tl.decode


def test_fig4a_resnet50_breakdown(benchmark, rng):
    n_nodes = 16
    # The ResNet-50-class model at CPU scale has near-zero *compute* gain
    # from factorization, so this panel's claim rests on communication; a
    # lower link speed (0.3 Gbps) keeps the comm term well above compute
    # timing noise, matching the 16-node cluster's larger model/paper
    # regime.
    bw = 0.3

    def experiment():
        out = {}
        vanilla = scaled_resnet50(classes=4, width=0.125)
        out["SGD"] = _breakdown(vanilla, NoCompression, n_nodes, 41, bandwidth=bw)

        base = scaled_resnet50(classes=4, width=0.125)
        hybrid, _ = build_hybrid(base, resnet50_hybrid_config(base))
        out["Pufferfish"] = _breakdown(hybrid, NoCompression, n_nodes, 41, bandwidth=bw)

        vanilla2 = scaled_resnet50(classes=4, width=0.125)
        out["Signum"] = _breakdown(vanilla2, lambda n: Signum(n), n_nodes, 41, bandwidth=bw)
        return out

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name, tl.compute, tl.encode, tl.comm, tl.decode, tl.total]
        for name, tl in res.items()
    ]
    print_table(
        "Fig 4a: per-epoch breakdown, ResNet-50-class, 16 nodes (s)"
        " — paper: Pufferfish 1.35x over SGD, 1.28x over Signum",
        ["Method", "Compute", "Encode", "Comm", "Decode", "Total"],
        rows,
    )

    # Strong shapes.
    assert res["Pufferfish"].total < res["SGD"].total
    assert res["Pufferfish"].comm < res["SGD"].comm
    assert res["Signum"].comm < res["SGD"].comm  # 1-bit wire format
    # Competitive with Signum end-to-end (15% band; see module docstring).
    assert res["Pufferfish"].total < 1.15 * res["Signum"].total


def test_fig4b_resnet18_breakdown(benchmark, rng):
    n_nodes = 8

    def experiment():
        out = {}
        vanilla = scaled_resnet18(classes=4, width=0.25)
        out["SGD"] = _breakdown(vanilla, NoCompression, n_nodes, 42)

        base = scaled_resnet18(classes=4, width=0.25)
        hybrid, _ = build_hybrid(base, resnet18_hybrid_config(base))
        out["Pufferfish"] = _breakdown(hybrid, NoCompression, n_nodes, 42)

        v2 = scaled_resnet18(classes=4, width=0.25)
        out["PowerSGD(r=2)"] = _breakdown(v2, lambda n: PowerSGD(n, rank=2), n_nodes, 42)

        v3 = scaled_resnet18(classes=4, width=0.25)
        out["Signum"] = _breakdown(v3, lambda n: Signum(n), n_nodes, 42)
        return out

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name, tl.compute, tl.encode, tl.comm, tl.decode, tl.total]
        for name, tl in res.items()
    ]
    print_table(
        "Fig 4b: per-epoch breakdown, ResNet-18-class, 8 nodes (s)"
        " — paper: Pufferfish 1.92x over SGD, 1.33x over PowerSGD, 1.67x over Signum",
        ["Method", "Compute", "Encode", "Comm", "Decode", "Total"],
        rows,
    )
    speedups = {k: res["SGD"].total / tl.total for k, tl in res.items()}
    print_series("Fig 4b speedups over SGD", "method", {k: [v] for k, v in speedups.items()})

    # PowerSGD communicates less than Pufferfish (massive compression)...
    assert res["PowerSGD(r=2)"].comm < res["Pufferfish"].comm
    # ...but Pufferfish has (nearly) no codec cost while PowerSGD pays one.
    assert _codec(res["Pufferfish"]) < _codec(res["PowerSGD(r=2)"])
    # End-to-end: Pufferfish clearly beats SGD and stays within the band of
    # the best compressor.
    assert res["Pufferfish"].total < res["SGD"].total
    assert res["Pufferfish"].total < 1.15 * res["Signum"].total
    assert res["Pufferfish"].total < 1.15 * res["PowerSGD(r=2)"].total


def test_fig4c_ddp_scalability(benchmark, rng):
    """DDP per-epoch time vs node count (bucketed-overlap model fed with
    measured single-node compute)."""

    def experiment():
        set_seed(43)
        train, _, _ = image_loaders(np.random.default_rng(43), n=64, classes=4, batch=32)
        vanilla = scaled_resnet18(classes=4, width=0.25)
        hybrid, report = build_hybrid(vanilla, resnet18_hybrid_config(vanilla))

        def measured_iter_seconds(model):
            from repro.core import Trainer

            t = Trainer(model, SGD(model.parameters(), lr=0.01))
            t0 = time.perf_counter()
            t.train_epoch(train)
            return (time.perf_counter() - t0) / len(train)

        iter_v = measured_iter_seconds(vanilla)
        iter_h = measured_iter_seconds(hybrid)
        bytes_v = vanilla.num_parameters() * 4
        bytes_h = hybrid.num_parameters() * 4

        speedups = []
        nodes = [2, 4, 8, 16]
        for p in nodes:
            ddp = DDPTimelineModel(
                ClusterSpec(p, bandwidth_gbps=0.1), bucket_mb=0.5
            )
            t_v = ddp.iteration_time(bytes_v, iter_v)["iteration"]
            t_h = ddp.iteration_time(bytes_h, iter_h)["iteration"]
            speedups.append(t_v / t_h)
        return nodes, speedups

    nodes, speedups = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_series(
        "Fig 4c: DDP Pufferfish speedup vs cluster size (paper: 1.52x @ 16)",
        f"nodes = {nodes}",
        {"speedup": speedups},
    )
    # At 2 nodes communication fully overlaps with backward, so the ratio
    # is pure compute (≈1 either way on CPU); the Pufferfish advantage
    # appears and grows as the cluster enters the comm-bound regime —
    # the paper's Fig. 4c shape.
    assert speedups[-1] >= speedups[0] - 0.05
    assert all(b >= a - 0.05 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 1.2  # clearly faster at 16 nodes (paper: 1.52x)
