"""Shared harness for the ``benchmarks/check_*_regression.py`` CI gates.

Every gate does the same four things: load a fresh ``BENCH_*.json`` and a
committed baseline, walk the baseline's scenarios applying field rules,
enforce current-run invariants / headline claims, and print a uniform
failure report (exit 2 on missing files, 1 on failures, 0 on success).
This module owns all of that; each ``check_*_regression.py`` script is a
thin :class:`Gate` config plus its domain-specific invariant/headline
callables.

Field rules
-----------
:class:`ExactFields`
    Named scalar/list fields that must match the baseline exactly
    (structure facts, seeded counts — drift is a behavior change).
:class:`BandFields`
    Deterministic modeled quantities gated to a ±threshold band
    (``mode="band"``) or an upper bound only (``mode="upper"``, for
    "more seconds than baseline is a regression, fewer is fine").
:class:`DeepExact`
    Exact recursive diff of the whole scenario (pure-function artifacts
    where *any* drift is a behavior change), minus keys the gate skips.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

__all__ = [
    "BandFields",
    "DeepExact",
    "ExactFields",
    "Gate",
    "deep_diff",
    "run_gate",
]


def deep_diff(cur, base, path: str, failures: list[str]) -> None:
    """Record every leaf where ``cur`` differs from ``base``."""
    if isinstance(base, dict) and isinstance(cur, dict):
        for key in sorted(set(base) | set(cur)):
            if key not in cur:
                failures.append(f"{path}.{key}: missing from current run")
            elif key not in base:
                failures.append(f"{path}.{key}: not in baseline (new key)")
            else:
                deep_diff(cur[key], base[key], f"{path}.{key}", failures)
        return
    if isinstance(base, list) and isinstance(cur, list):
        if len(base) != len(cur):
            failures.append(f"{path}: length {len(cur)} != baseline {len(base)}")
            return
        for i, (c, b) in enumerate(zip(cur, base)):
            deep_diff(c, b, f"{path}[{i}]", failures)
        return
    if cur != base:
        failures.append(f"{path}: {cur!r} != baseline {base!r}")


@dataclass(frozen=True)
class ExactFields:
    """Fields that must equal the baseline exactly."""

    keys: tuple[str, ...]
    note: str = ""

    def check(
        self, name: str, cur: dict, base: dict, threshold: float, failures: list[str]
    ) -> None:
        suffix = f" ({self.note})" if self.note else ""
        for key in self.keys:
            if key not in base and key not in cur:
                continue
            if cur.get(key) != base.get(key):
                failures.append(
                    f"{name}.{key}: {cur.get(key)} != baseline {base.get(key)}{suffix}"
                )


@dataclass(frozen=True)
class BandFields:
    """Deterministic modeled quantities gated against a threshold.

    ``mode="band"`` fails outside ``[b·(1-t), b·(1+t)]`` (and skips keys
    absent from the baseline); ``mode="upper"`` fails only above
    ``b·(1+t)`` — regressions are "more than baseline", improvements
    pass.  ``unit`` is appended to printed values ("s" for seconds).
    """

    keys: tuple[str, ...]
    mode: str = "band"
    note: str = ""
    unit: str = "s"

    def check(
        self, name: str, cur: dict, base: dict, threshold: float, failures: list[str]
    ) -> None:
        u = self.unit
        for key in self.keys:
            if self.mode == "band":
                if key not in base:
                    continue
                b, c = base[key], cur.get(key, 0.0)
                lo, hi = b * (1.0 - threshold), b * (1.0 + threshold)
                if not (lo <= c <= hi):
                    suffix = f"; {self.note}" if self.note else ""
                    failures.append(
                        f"{name}.{key}: {c:.6f}{u} outside [{lo:.6f}, {hi:.6f}] "
                        f"(baseline {b:.6f}{u} ±{threshold:.0%}{suffix})"
                    )
            else:
                b, c = base.get(key, 0.0), cur.get(key, 0.0)
                limit = b * (1.0 + threshold)
                if c > limit and c - b > 1e-9:
                    failures.append(
                        f"{name}.{key}: {c:.6f}{u} > {limit:.6f}{u} "
                        f"(baseline {b:.6f}{u} +{threshold:.0%})"
                    )


@dataclass(frozen=True)
class DeepExact:
    """Exact recursive diff of the whole scenario against the baseline."""

    def check(
        self, name: str, cur: dict, base: dict, threshold: float, failures: list[str]
    ) -> None:
        deep_diff(cur, base, name, failures)


@dataclass
class Gate:
    """One regression gate: artifact paths, field rules, extra checks.

    ``invariants(name, scenario)`` runs on every *current* scenario
    (machine-dependent sanity bounds); ``headline(current)`` re-asserts
    the artifact's headline claims; ``custom(current, baseline,
    threshold)`` replaces the per-scenario rule walk entirely for
    artifacts that aren't scenario-keyed (the observability records).
    """

    name: str
    default_current: str
    default_baseline: str
    rules: tuple = ()
    default_threshold: float | None = None
    section: str = "scenarios"
    item_word: str = "scenarios"
    skip: Callable[[str], bool] | None = None
    invariants: Callable[[str, dict], list[str]] | None = None
    headline: Callable[[dict], list[str]] | None = None
    custom: Callable[[dict, dict, float], list[str]] | None = None
    ok_line: Callable[[int, float], str] | None = field(default=None)
    description: str = ""

    # ------------------------------------------------------------------

    def check(self, current: dict, baseline: dict, threshold: float) -> list[str]:
        failures: list[str] = []
        if self.custom is not None:
            failures.extend(self.custom(current, baseline, threshold))
        else:
            cur_items = current.get(self.section, {})
            for name, base in sorted(baseline[self.section].items()):
                if self.skip is not None and self.skip(name):
                    continue
                cur = cur_items.get(name)
                if cur is None:
                    failures.append(f"{name}: scenario missing from current run")
                    continue
                for rule in self.rules:
                    rule.check(name, cur, base, threshold, failures)
            if self.invariants is not None:
                for name, scenario in sorted(cur_items.items()):
                    failures.extend(self.invariants(name, scenario))
        if self.headline is not None:
            failures.extend(self.headline(current))
        return failures


def run_gate(gate: Gate, argv: list[str] | None = None) -> int:
    """Parse args, load artifacts, run the gate, print the report.

    Exit codes: 0 OK, 1 failures, 2 missing artifact/baseline file.
    """
    ap = argparse.ArgumentParser(
        description=gate.description or f"{gate.name} regression gate"
    )
    ap.add_argument("--current", default=gate.default_current)
    ap.add_argument("--baseline", default=gate.default_baseline)
    if gate.default_threshold is not None:
        ap.add_argument("--threshold", type=float, default=gate.default_threshold)
    args = ap.parse_args(argv)
    threshold = getattr(args, "threshold", 0.0)

    for path in (args.current, args.baseline):
        if not Path(path).exists():
            print(f"{gate.name} regression gate: missing {path}", file=sys.stderr)
            return 2
    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())

    failures = gate.check(current, baseline, threshold)
    n = len(baseline.get(gate.section, {}))
    if failures:
        print(
            f"{gate.name} regression gate: {len(failures)} failure(s) "
            f"across {n} {gate.item_word}"
        )
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    if gate.ok_line is not None:
        print(gate.ok_line(n, threshold))
    else:
        print(
            f"{gate.name} regression gate: {n} {gate.item_word} "
            f"within {threshold:.0%} of baseline"
        )
    return 0
