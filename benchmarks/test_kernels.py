"""Per-op backend kernel benchmark: ``numpy`` reference vs ``fast``.

Times every dispatched op under both backends at CPU-scaled widths,
re-checks the parity contract from :data:`repro.tensor.backend.PARITY`,
and writes ``BENCH_kernels.json`` (speedup table + parity summary).
``check_kernels_regression.py`` gates the artifact against the committed
baseline: structure exactly, parity booleans, and per-op speedup floors
(the headline: ≥1.5× on the batched im2col-matmul conv forward).

Wall-clock speedups are machine-dependent; the committed baseline's
numbers document the reference machine and only the floors are enforced.
"""

from __future__ import annotations

import json
import time

import numpy as np

from harness import print_table, scaled_vgg19
from repro.optim import LAMB, Adam, FusedAdam, FusedLAMB
from repro.tensor import backend
from repro.tensor.backend import PARITY, TOLERANCE_ATOL, TOLERANCE_RTOL
from repro.utils import set_seed

KERNELS_FILE = "BENCH_kernels.json"
REPEATS = 5

# Per-op enforced speedup floor (None = parity-coverage op, no perf claim:
# either sub-millisecond, memory-bound, or running the identical kernel).
MIN_SPEEDUP = {
    "conv2d_forward": 1.5,
    "conv2d_backward": 1.0,
    "im2col": 1.0,
    "matmul": None,
    "relu": None,
    "bias_relu": None,
    "sgd_update": None,
    # The fused-optimizer arena chains: adam_update's fast win is
    # allocation elimination on one big slab; lamb_update's is dispatch
    # amortization across many segments (reduceat norms instead of a
    # per-segment loop). The headline fused-vs-loop claim lives in the
    # fused_step section.
    "adam_update": 1.0,
    "lamb_update": 1.0,
}

# Fused optimizer step vs the in-place per-tensor loop at CPU-scaled
# wide-model widths (VGG-19: ~54 tensors, dispatch-bound loop).
FUSED_STEP_FLOOR = 2.0

_RESULTS: dict[str, dict] = {}
_FUSED: dict[str, dict] = {}


def best_ms(call, setup=None, repeats=REPEATS) -> float:
    """Best-of-N wall time in milliseconds (min is the noise-robust stat)."""
    best = float("inf")
    for _ in range(repeats):
        args = setup() if setup is not None else ()
        t0 = time.perf_counter()
        call(*args)
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def check_parity(op: str, ref, got) -> tuple[bool, float]:
    """(parity_ok, max_abs_err) under the op's published tag."""
    ref, got = np.asarray(ref), np.asarray(got)
    err = float(np.max(np.abs(ref - got))) if ref.size else 0.0
    if PARITY[op] == "bit-exact":
        return bool(np.array_equal(ref, got)), err
    ok = bool(
        np.allclose(got, ref, rtol=TOLERANCE_RTOL, atol=TOLERANCE_ATOL)
    )
    return ok, err


def record(op: str, shape: str, numpy_ms: float, fast_ms: float, parity_ok: bool,
           max_abs_err: float) -> None:
    _RESULTS[op] = {
        "tag": PARITY[op],
        "shape": shape,
        "numpy_ms": round(numpy_ms, 4),
        "fast_ms": round(fast_ms, 4),
        "speedup": round(numpy_ms / fast_ms, 3) if fast_ms > 0 else None,
        "parity_ok": parity_ok,
        "max_abs_err": max_abs_err,
        "min_speedup": MIN_SPEEDUP[op],
    }


def conv_inputs(rng, n=32, c=16, hw=32, co=32, k=3):
    x = rng.standard_normal((n, c, hw, hw)).astype(np.float32)
    w = (rng.standard_normal((co, c, k, k)) * 0.1).astype(np.float32)
    b = rng.standard_normal((co,)).astype(np.float32)
    return x, w, b


def test_conv2d_forward_speedup(rng):
    """Headline: batched im2col matmul at CPU-scaled conv widths."""
    x, w, b = conv_inputs(rng)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")
    ref_out, _ = ref_be.conv2d_forward(x, w, b, 1, 1, 1, False)
    got_out, _ = fast_be.conv2d_forward(x, w, b, 1, 1, 1, False)
    ok, err = check_parity("conv2d_forward", ref_out, got_out)
    n_ms = best_ms(lambda: ref_be.conv2d_forward(x, w, b, 1, 1, 1, False))
    f_ms = best_ms(lambda: fast_be.conv2d_forward(x, w, b, 1, 1, 1, False))
    record("conv2d_forward", "N32 C16 32x32 k3 s1 p1 -> C32", n_ms, f_ms, ok, err)
    assert ok


def test_conv2d_backward_speedup(rng):
    x, w, b = conv_inputs(rng)
    g = rng.standard_normal((32, 32, 32, 32)).astype(np.float32)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")
    _, ref_ctx = ref_be.conv2d_forward(x, w, b, 1, 1, 1, True)
    _, fast_ctx = fast_be.conv2d_forward(x, w, b, 1, 1, 1, True)
    ref_g = ref_be.conv2d_backward(g, ref_ctx, True, True, True)
    got_g = fast_be.conv2d_backward(g, fast_ctx, True, True, True)
    oks, errs = zip(*(check_parity("conv2d_backward", r, o) for r, o in zip(ref_g, got_g)))
    n_ms = best_ms(lambda: ref_be.conv2d_backward(g, ref_ctx, True, True, True))
    f_ms = best_ms(lambda: fast_be.conv2d_backward(g, fast_ctx, True, True, True))
    record("conv2d_backward", "N32 C16 32x32 k3 s1 p1 -> C32", n_ms, f_ms,
           all(oks), max(errs))
    assert all(oks)


def test_im2col_speedup(rng):
    x = rng.standard_normal((32, 16, 32, 32)).astype(np.float32)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")
    ok, err = check_parity("im2col", ref_be.im2col(x, 3, 3, 1, 1, 1),
                           fast_be.im2col(x, 3, 3, 1, 1, 1))
    n_ms = best_ms(lambda: ref_be.im2col(x, 3, 3, 1, 1, 1))
    f_ms = best_ms(lambda: fast_be.im2col(x, 3, 3, 1, 1, 1))
    record("im2col", "N32 C16 32x32 k3 s1 p1", n_ms, f_ms, ok, err)
    assert ok


def test_matmul_parity_speed(rng):
    a = rng.standard_normal((512, 256)).astype(np.float32)
    b = rng.standard_normal((256, 512)).astype(np.float32)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")
    ok, err = check_parity("matmul", ref_be.matmul(a, b), fast_be.matmul(a, b))
    n_ms = best_ms(lambda: ref_be.matmul(a, b))
    f_ms = best_ms(lambda: fast_be.matmul(a, b))
    record("matmul", "512x256 @ 256x512", n_ms, f_ms, ok, err)
    assert ok


def test_relu_parity_speed(rng):
    x = rng.standard_normal((1 << 21,)).astype(np.float32)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")
    ok, err = check_parity("relu", ref_be.relu(x)[0], fast_be.relu(x)[0])
    n_ms = best_ms(lambda: ref_be.relu(x))
    f_ms = best_ms(lambda: fast_be.relu(x))
    record("relu", "2M elements", n_ms, f_ms, ok, err)
    assert ok


def test_bias_relu_parity_speed(rng):
    x = rng.standard_normal((8192, 256)).astype(np.float32)
    b = rng.standard_normal((256,)).astype(np.float32)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")
    ok, err = check_parity("bias_relu", ref_be.bias_relu(x, b)[0],
                           fast_be.bias_relu(x, b)[0])
    n_ms = best_ms(lambda: ref_be.bias_relu(x, b))
    f_ms = best_ms(lambda: fast_be.bias_relu(x, b))
    record("bias_relu", "8192x256 + (256,)", n_ms, f_ms, ok, err)
    assert ok


def test_sgd_update_parity_speed(rng):
    size = 2_000_000
    flat0 = rng.standard_normal(size).astype(np.float32)
    g0 = rng.standard_normal(size).astype(np.float32)
    buf0 = rng.standard_normal(size).astype(np.float32)
    mask = (rng.random(size) > 0.3).astype(np.float32) * 5e-4
    tmp = np.empty(size, dtype=np.float32)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")

    states = {}
    for name, be in (("numpy", ref_be), ("fast", fast_be)):
        flat, g, buf = flat0.copy(), g0.copy(), buf0.copy()
        buf = be.sgd_update(flat, g, tmp, mask, buf, 0.05, 0.9, True)
        states[name] = (flat, buf)
    ok_f, err_f = check_parity("sgd_update", states["numpy"][0], states["fast"][0])
    ok_b, err_b = check_parity("sgd_update", states["numpy"][1], states["fast"][1])

    def setup():
        return flat0.copy(), g0.copy(), buf0.copy()

    n_ms = best_ms(lambda f, g_, b_: ref_be.sgd_update(f, g_, tmp, mask, b_, 0.05, 0.9, True),
                   setup=setup)
    f_ms = best_ms(lambda f, g_, b_: fast_be.sgd_update(f, g_, tmp, mask, b_, 0.05, 0.9, True),
                   setup=setup)
    record("sgd_update", "2M-param arena, momentum+nesterov+decay", n_ms, f_ms,
           ok_f and ok_b, max(err_f, err_b))
    assert ok_f and ok_b


def test_adam_update_parity_speed(rng):
    size = 2_000_000
    flat0 = rng.standard_normal(size).astype(np.float32)
    g0 = rng.standard_normal(size).astype(np.float32)
    m0 = (rng.standard_normal(size) * 0.1).astype(np.float32)
    v0 = (rng.random(size) * 0.01).astype(np.float32)
    mask = (rng.random(size) > 0.3).astype(np.float32) * 1e-2
    tmp = np.empty(size, dtype=np.float32)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")

    states = {}
    for name, be in (("numpy", ref_be), ("fast", fast_be)):
        flat, g, m, v = flat0.copy(), g0.copy(), m0.copy(), v0.copy()
        be.adam_update(flat, g, m, v, tmp, mask, 1e-3, 0.9, 0.999, 1e-8, 7)
        states[name] = (flat, m, v)
    oks, errs = zip(*(
        check_parity("adam_update", r, o)
        for r, o in zip(states["numpy"], states["fast"])
    ))

    def setup():
        return flat0.copy(), g0.copy(), m0.copy(), v0.copy()

    n_ms = best_ms(
        lambda f, g_, m, v: ref_be.adam_update(f, g_, m, v, tmp, mask, 1e-3, 0.9, 0.999, 1e-8, 7),
        setup=setup,
    )
    f_ms = best_ms(
        lambda f, g_, m, v: fast_be.adam_update(f, g_, m, v, tmp, mask, 1e-3, 0.9, 0.999, 1e-8, 7),
        setup=setup,
    )
    record("adam_update", "2M-param arena, decay mask, step 7", n_ms, f_ms,
           all(oks), max(errs))
    assert all(oks)


def test_lamb_update_parity_speed(rng):
    # CPU-scaled wide-model tiling: per block a conv/attention slab, its
    # bias + norm vectors, and a projection. The reference's per-segment
    # loop pays ~15 dispatches + temporaries per segment, which is what
    # the segmented-reduceat fast path amortizes. (At multi-megaparam
    # arenas tiled into >30k-element slabs the per-segment loop becomes
    # accidentally cache-blocked and the two draw — that regime is far
    # above the CPU-scaled widths this repo runs.)
    parts: list[int] = []
    while sum(parts) < 400_000:
        parts += [int(rng.integers(2000, 6000)), int(rng.integers(8, 64)),
                  int(rng.integers(8, 64)), int(rng.integers(256, 2048))]
    sizes = np.array(parts, dtype=np.intp)
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.intp)
    size = int(sizes.sum())
    flat0 = rng.standard_normal(size).astype(np.float32)
    g0 = rng.standard_normal(size).astype(np.float32)
    m0 = (rng.standard_normal(size) * 0.1).astype(np.float32)
    v0 = (rng.random(size) * 0.01).astype(np.float32)
    mask = (rng.random(size) > 0.3).astype(np.float32) * 1e-2
    tmp = np.empty(size, dtype=np.float32)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")

    states = {}
    for name, be in (("numpy", ref_be), ("fast", fast_be)):
        flat, g, m, v = flat0.copy(), g0.copy(), m0.copy(), v0.copy()
        be.lamb_update(flat, g, m, v, tmp, mask, starts, sizes, 1e-3, 0.9, 0.999, 1e-6, 5)
        states[name] = (flat, m, v)
    oks, errs = zip(*(
        check_parity("lamb_update", r, o)
        for r, o in zip(states["numpy"], states["fast"])
    ))

    def setup():
        return flat0.copy(), g0.copy(), m0.copy(), v0.copy()

    n_ms = best_ms(
        lambda f, g_, m, v: ref_be.lamb_update(f, g_, m, v, tmp, mask, starts, sizes,
                                               1e-3, 0.9, 0.999, 1e-6, 5),
        setup=setup,
    )
    f_ms = best_ms(
        lambda f, g_, m, v: fast_be.lamb_update(f, g_, m, v, tmp, mask, starts, sizes,
                                                1e-3, 0.9, 0.999, 1e-6, 5),
        setup=setup,
    )
    record("lamb_update", f"{size/1e3:.0f}k-param arena, {len(sizes)} segments, step 5",
           n_ms, f_ms, all(oks), max(errs))
    assert all(oks)


def _fill_grads(params, seed):
    g_rng = np.random.default_rng(seed)
    for p in params:
        p.grad = g_rng.standard_normal(p.data.shape).astype(np.float32)


def _time_steps(opt, reps=7, steps=50) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(steps):
            opt.step()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def _fused_step_case(name, loop_cls, fused_cls, match):
    """FusedAdam/FusedLAMB vs the in-place per-tensor loop on a VGG-19
    parameter set at CPU-scaled width: the loop is dispatch-bound (~12
    numpy call sites per tensor per step, ~54 tensors), which is exactly
    what the arena collapses into one dispatched vector chain."""
    width = 0.03125
    set_seed(0)
    loop_model = scaled_vgg19(width=width)
    set_seed(0)
    fused_model = scaled_vgg19(width=width)
    kwargs = dict(lr=1e-3, weight_decay=1e-2)
    loop_opt = loop_cls(loop_model.parameters(), **kwargs)
    fused_opt = fused_cls(fused_model.parameters(), **kwargs)
    fused_opt._ensure_arena()  # exclude one-time arena build from timing
    _fill_grads(loop_opt.params, 7)
    _fill_grads(fused_opt.params, 7)

    loop_ms = _time_steps(loop_opt)
    # The fused path is timed under the fast backend — that is the deployed
    # configuration (pooled scratch, reduceat segment norms); the reference
    # backend exists for parity, not speed.
    with backend.use("fast"):
        fused_ms = _time_steps(fused_opt)
    for a, b in zip(loop_model.parameters(), fused_model.parameters()):
        if match == "bit-exact":
            assert np.array_equal(a.data, b.data), f"{name}: fused diverged from loop"
        else:
            np.testing.assert_allclose(b.data, a.data, rtol=TOLERANCE_RTOL,
                                       atol=TOLERANCE_ATOL)
    n_tensors = len(fused_opt.params)
    n_params = int(sum(p.data.size for p in fused_opt.params))
    _FUSED[name] = {
        "n_tensors": n_tensors,
        "n_params": n_params,
        "loop_ms": round(loop_ms, 4),
        "fused_ms": round(fused_ms, 4),
        "speedup": round(loop_ms / fused_ms, 3),
        "match": match,
        "match_ok": True,
        "min_speedup": FUSED_STEP_FLOOR,
    }
    assert loop_ms / fused_ms >= FUSED_STEP_FLOOR, (
        f"{name}: fused step {loop_ms / fused_ms:.2f}x < {FUSED_STEP_FLOOR}x floor"
    )


def test_fused_adam_step_speedup():
    _fused_step_case("adam", Adam, FusedAdam, "bit-exact")


def test_fused_lamb_step_speedup():
    _fused_step_case("lamb", LAMB, FusedLAMB, "tolerance")


def test_emit_kernels_artifact():
    """Runs last (file order): all ops recorded, floors hold, artifact out."""
    assert set(_RESULTS) == set(MIN_SPEEDUP), (
        f"op set mismatch: {sorted(_RESULTS)} vs expected {sorted(MIN_SPEEDUP)}"
    )
    assert set(_FUSED) == {"adam", "lamb"}, (
        f"fused-step set mismatch: {sorted(_FUSED)}"
    )
    rows = []
    for op in sorted(_RESULTS):
        r = _RESULTS[op]
        rows.append([
            op, r["tag"], r["shape"], r["numpy_ms"], r["fast_ms"],
            r["speedup"], "yes" if r["parity_ok"] else "NO",
            r["min_speedup"] if r["min_speedup"] is not None else "-",
        ])
    print_table(
        "Backend kernels: numpy vs fast (per-op)",
        ["Op", "Parity tag", "Shape", "numpy (ms)", "fast (ms)", "Speedup",
         "Parity", "Floor"],
        rows,
    )
    print_table(
        "Fused optimizer step vs in-place per-tensor loop (50 steps, best of 7)",
        ["Optimizer", "Tensors", "Params", "loop (ms)", "fused (ms)", "Speedup",
         "Match", "Floor"],
        [
            [name, s["n_tensors"], s["n_params"], s["loop_ms"], s["fused_ms"],
             s["speedup"], s["match"], s["min_speedup"]]
            for name, s in sorted(_FUSED.items())
        ],
    )
    artifact = {
        "schema": 2,
        "ops": _RESULTS,
        "fused_step": _FUSED,
        "parity_all_ok": all(r["parity_ok"] for r in _RESULTS.values()),
    }
    with open(KERNELS_FILE, "w") as f:
        json.dump(artifact, f, indent=2, sort_keys=True)
    print(f"\nkernel benchmark written to {KERNELS_FILE}")
    assert artifact["parity_all_ok"]
