"""Per-op backend kernel benchmark: ``numpy`` reference vs ``fast``.

Times every dispatched op under both backends at CPU-scaled widths,
re-checks the parity contract from :data:`repro.tensor.backend.PARITY`,
and writes ``BENCH_kernels.json`` (speedup table + parity summary).
``check_kernels_regression.py`` gates the artifact against the committed
baseline: structure exactly, parity booleans, and per-op speedup floors
(the headline: ≥1.5× on the batched im2col-matmul conv forward).

Wall-clock speedups are machine-dependent; the committed baseline's
numbers document the reference machine and only the floors are enforced.
"""

from __future__ import annotations

import json
import time

import numpy as np

from harness import print_table
from repro.tensor import backend
from repro.tensor.backend import PARITY, TOLERANCE_ATOL, TOLERANCE_RTOL

KERNELS_FILE = "BENCH_kernels.json"
REPEATS = 5

# Per-op enforced speedup floor (None = parity-coverage op, no perf claim:
# either sub-millisecond, memory-bound, or running the identical kernel).
MIN_SPEEDUP = {
    "conv2d_forward": 1.5,
    "conv2d_backward": 1.0,
    "im2col": 1.0,
    "matmul": None,
    "relu": None,
    "bias_relu": None,
    "sgd_update": None,
}

_RESULTS: dict[str, dict] = {}


def best_ms(call, setup=None, repeats=REPEATS) -> float:
    """Best-of-N wall time in milliseconds (min is the noise-robust stat)."""
    best = float("inf")
    for _ in range(repeats):
        args = setup() if setup is not None else ()
        t0 = time.perf_counter()
        call(*args)
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def check_parity(op: str, ref, got) -> tuple[bool, float]:
    """(parity_ok, max_abs_err) under the op's published tag."""
    ref, got = np.asarray(ref), np.asarray(got)
    err = float(np.max(np.abs(ref - got))) if ref.size else 0.0
    if PARITY[op] == "bit-exact":
        return bool(np.array_equal(ref, got)), err
    ok = bool(
        np.allclose(got, ref, rtol=TOLERANCE_RTOL, atol=TOLERANCE_ATOL)
    )
    return ok, err


def record(op: str, shape: str, numpy_ms: float, fast_ms: float, parity_ok: bool,
           max_abs_err: float) -> None:
    _RESULTS[op] = {
        "tag": PARITY[op],
        "shape": shape,
        "numpy_ms": round(numpy_ms, 4),
        "fast_ms": round(fast_ms, 4),
        "speedup": round(numpy_ms / fast_ms, 3) if fast_ms > 0 else None,
        "parity_ok": parity_ok,
        "max_abs_err": max_abs_err,
        "min_speedup": MIN_SPEEDUP[op],
    }


def conv_inputs(rng, n=32, c=16, hw=32, co=32, k=3):
    x = rng.standard_normal((n, c, hw, hw)).astype(np.float32)
    w = (rng.standard_normal((co, c, k, k)) * 0.1).astype(np.float32)
    b = rng.standard_normal((co,)).astype(np.float32)
    return x, w, b


def test_conv2d_forward_speedup(rng):
    """Headline: batched im2col matmul at CPU-scaled conv widths."""
    x, w, b = conv_inputs(rng)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")
    ref_out, _ = ref_be.conv2d_forward(x, w, b, 1, 1, 1, False)
    got_out, _ = fast_be.conv2d_forward(x, w, b, 1, 1, 1, False)
    ok, err = check_parity("conv2d_forward", ref_out, got_out)
    n_ms = best_ms(lambda: ref_be.conv2d_forward(x, w, b, 1, 1, 1, False))
    f_ms = best_ms(lambda: fast_be.conv2d_forward(x, w, b, 1, 1, 1, False))
    record("conv2d_forward", "N32 C16 32x32 k3 s1 p1 -> C32", n_ms, f_ms, ok, err)
    assert ok


def test_conv2d_backward_speedup(rng):
    x, w, b = conv_inputs(rng)
    g = rng.standard_normal((32, 32, 32, 32)).astype(np.float32)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")
    _, ref_ctx = ref_be.conv2d_forward(x, w, b, 1, 1, 1, True)
    _, fast_ctx = fast_be.conv2d_forward(x, w, b, 1, 1, 1, True)
    ref_g = ref_be.conv2d_backward(g, ref_ctx, True, True, True)
    got_g = fast_be.conv2d_backward(g, fast_ctx, True, True, True)
    oks, errs = zip(*(check_parity("conv2d_backward", r, o) for r, o in zip(ref_g, got_g)))
    n_ms = best_ms(lambda: ref_be.conv2d_backward(g, ref_ctx, True, True, True))
    f_ms = best_ms(lambda: fast_be.conv2d_backward(g, fast_ctx, True, True, True))
    record("conv2d_backward", "N32 C16 32x32 k3 s1 p1 -> C32", n_ms, f_ms,
           all(oks), max(errs))
    assert all(oks)


def test_im2col_speedup(rng):
    x = rng.standard_normal((32, 16, 32, 32)).astype(np.float32)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")
    ok, err = check_parity("im2col", ref_be.im2col(x, 3, 3, 1, 1, 1),
                           fast_be.im2col(x, 3, 3, 1, 1, 1))
    n_ms = best_ms(lambda: ref_be.im2col(x, 3, 3, 1, 1, 1))
    f_ms = best_ms(lambda: fast_be.im2col(x, 3, 3, 1, 1, 1))
    record("im2col", "N32 C16 32x32 k3 s1 p1", n_ms, f_ms, ok, err)
    assert ok


def test_matmul_parity_speed(rng):
    a = rng.standard_normal((512, 256)).astype(np.float32)
    b = rng.standard_normal((256, 512)).astype(np.float32)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")
    ok, err = check_parity("matmul", ref_be.matmul(a, b), fast_be.matmul(a, b))
    n_ms = best_ms(lambda: ref_be.matmul(a, b))
    f_ms = best_ms(lambda: fast_be.matmul(a, b))
    record("matmul", "512x256 @ 256x512", n_ms, f_ms, ok, err)
    assert ok


def test_relu_parity_speed(rng):
    x = rng.standard_normal((1 << 21,)).astype(np.float32)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")
    ok, err = check_parity("relu", ref_be.relu(x)[0], fast_be.relu(x)[0])
    n_ms = best_ms(lambda: ref_be.relu(x))
    f_ms = best_ms(lambda: fast_be.relu(x))
    record("relu", "2M elements", n_ms, f_ms, ok, err)
    assert ok


def test_bias_relu_parity_speed(rng):
    x = rng.standard_normal((8192, 256)).astype(np.float32)
    b = rng.standard_normal((256,)).astype(np.float32)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")
    ok, err = check_parity("bias_relu", ref_be.bias_relu(x, b)[0],
                           fast_be.bias_relu(x, b)[0])
    n_ms = best_ms(lambda: ref_be.bias_relu(x, b))
    f_ms = best_ms(lambda: fast_be.bias_relu(x, b))
    record("bias_relu", "8192x256 + (256,)", n_ms, f_ms, ok, err)
    assert ok


def test_sgd_update_parity_speed(rng):
    size = 2_000_000
    flat0 = rng.standard_normal(size).astype(np.float32)
    g0 = rng.standard_normal(size).astype(np.float32)
    buf0 = rng.standard_normal(size).astype(np.float32)
    mask = (rng.random(size) > 0.3).astype(np.float32) * 5e-4
    tmp = np.empty(size, dtype=np.float32)
    ref_be, fast_be = backend.get("numpy"), backend.get("fast")

    states = {}
    for name, be in (("numpy", ref_be), ("fast", fast_be)):
        flat, g, buf = flat0.copy(), g0.copy(), buf0.copy()
        buf = be.sgd_update(flat, g, tmp, mask, buf, 0.05, 0.9, True)
        states[name] = (flat, buf)
    ok_f, err_f = check_parity("sgd_update", states["numpy"][0], states["fast"][0])
    ok_b, err_b = check_parity("sgd_update", states["numpy"][1], states["fast"][1])

    def setup():
        return flat0.copy(), g0.copy(), buf0.copy()

    n_ms = best_ms(lambda f, g_, b_: ref_be.sgd_update(f, g_, tmp, mask, b_, 0.05, 0.9, True),
                   setup=setup)
    f_ms = best_ms(lambda f, g_, b_: fast_be.sgd_update(f, g_, tmp, mask, b_, 0.05, 0.9, True),
                   setup=setup)
    record("sgd_update", "2M-param arena, momentum+nesterov+decay", n_ms, f_ms,
           ok_f and ok_b, max(err_f, err_b))
    assert ok_f and ok_b


def test_emit_kernels_artifact():
    """Runs last (file order): all ops recorded, floors hold, artifact out."""
    assert set(_RESULTS) == set(MIN_SPEEDUP), (
        f"op set mismatch: {sorted(_RESULTS)} vs expected {sorted(MIN_SPEEDUP)}"
    )
    rows = []
    for op in sorted(_RESULTS):
        r = _RESULTS[op]
        rows.append([
            op, r["tag"], r["shape"], r["numpy_ms"], r["fast_ms"],
            r["speedup"], "yes" if r["parity_ok"] else "NO",
            r["min_speedup"] if r["min_speedup"] is not None else "-",
        ])
    print_table(
        "Backend kernels: numpy vs fast (per-op)",
        ["Op", "Parity tag", "Shape", "numpy (ms)", "fast (ms)", "Speedup",
         "Parity", "Floor"],
        rows,
    )
    artifact = {
        "schema": 1,
        "ops": _RESULTS,
        "parity_all_ok": all(r["parity_ok"] for r in _RESULTS.values()),
    }
    with open(KERNELS_FILE, "w") as f:
        json.dump(artifact, f, indent=2, sort_keys=True)
    print(f"\nkernel benchmark written to {KERNELS_FILE}")
    assert artifact["parity_all_ok"]
