"""PowerSGD rank sweep — the paper's warm-up-compression side study.

Section 4.2: "we observe that it is generally better to use a slightly
higher rank for PowerSGD in the vanilla warm-up training period of
Pufferfish" (they use rank 4 for warm-up vs rank 2 standalone).

This bench quantifies the underlying trade-off: as the PowerSGD rank
rises, (i) wire bytes grow linearly, (ii) the one-step approximation error
of the compressed gradient falls, (iii) codec time grows.  Rank 2 is the
paper's accuracy-neutral operating point for standalone PowerSGD; rank 4's
better fidelity is what the warm-up composition buys.
"""

import time

import numpy as np

from harness import print_table
from repro.compression import PowerSGD
from repro.models import resnet18
from repro.utils import set_seed


def test_powersgd_rank_sweep(benchmark, rng):
    def experiment():
        set_seed(13)
        model = resnet18(num_classes=4, width_mult=0.25)
        # A realistic "gradient": weights themselves (conv-shaped tensors).
        grads = [p.data.copy() for p in model.parameters()]
        total_bytes = sum(g.size for g in grads) * 4

        rows = []
        for rank in (1, 2, 4, 8):
            comp = PowerSGD(1, rank=rank, error_feedback=False)
            t0 = time.perf_counter()
            res = comp.encode(0, [g.copy() for g in grads])
            agg = comp.decode_aggregate([res])
            codec_s = time.perf_counter() - t0
            err_num = 0.0
            err_den = 0.0
            for g, a in zip(grads, agg):
                err_num += float(np.linalg.norm(g - a) ** 2)
                err_den += float(np.linalg.norm(g) ** 2)
            rel_err = (err_num / err_den) ** 0.5
            rows.append([rank, res.nbytes / 1e6, total_bytes / res.nbytes,
                         rel_err, codec_s])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "PowerSGD rank sweep (ResNet-18-class gradients, single shot)",
        ["Rank", "Wire MB", "Compression", "Rel error", "Codec (s)"],
        rows,
    )
    bytes_col = [r[1] for r in rows]
    err_col = [r[3] for r in rows]
    # Wire bytes grow with rank; approximation error falls.
    assert bytes_col == sorted(bytes_col)
    assert err_col == sorted(err_col, reverse=True)
    # Rank 4 is meaningfully more faithful than rank 2 (the paper's warm-up
    # choice) while still far smaller than raw fp32.
    r2 = rows[1]
    r4 = rows[2]
    assert r4[3] < r2[3]
    assert r4[2] > 10  # still >10x compression
