"""Figure 5 — Pufferfish vs Lottery Ticket iterative pruning (VGG-19 on
CIFAR-10).

Paper: to reach the same parameter reduction, LTH's repeated train-prune-
rewind cycles cost 5.67x more wall-clock than Pufferfish's single run,
with comparable accuracy at matched sparsity.

Claims under test: (a) LTH cumulative cost grows ~linearly in rounds while
Pufferfish pays one training run, so at Pufferfish's compression level the
LTH cost multiple is >= the number of rounds needed; (b) at matched model
size, Pufferfish's accuracy is at least comparable.
"""

import time

import numpy as np

from harness import image_loaders, print_series, print_table
from repro.core import PufferfishTrainer
from repro.models import vgg19, vgg19_hybrid_config
from repro.optim import SGD, MultiStepLR
from repro.pruning import LTHRunner
from repro.utils import set_seed

EPOCHS = 5
WIDTH = 0.125
PRUNE_FRACTION = 0.3
ROUNDS = 5


def _loaders(seed):
    return image_loaders(np.random.default_rng(seed), n=256, classes=4, noise=0.3)


def test_fig5_lth_vs_pufferfish(benchmark, rng):
    def experiment():
        # --- Pufferfish: one run. -----------------------------------
        set_seed(55)
        train, val, _ = _loaders(55)
        model = vgg19(num_classes=4, width_mult=WIDTH)
        t0 = time.perf_counter()
        pt = PufferfishTrainer(
            model,
            vgg19_hybrid_config(0.25),
            optimizer_factory=lambda ps: SGD(ps, lr=0.05, momentum=0.9, weight_decay=1e-4),
            scheduler_factory=lambda opt: MultiStepLR(opt, [4], gamma=0.1),
            warmup_epochs=2,
            total_epochs=EPOCHS,
        )
        pt.fit(train, val)
        puffer_seconds = time.perf_counter() - t0
        puffer = {
            "seconds": puffer_seconds,
            "params": pt.hybrid_model.num_parameters(),
            "acc": max(s.val_metric for s in pt.history),
            "reduction": 1 - pt.report.params_after / pt.report.params_before,
        }

        # --- LTH: iterative rounds, each a full training run. --------
        set_seed(55)
        train2, val2, _ = _loaders(55)

        def train_fn(model, post_step):
            from repro.core import Trainer

            opt = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
            t = Trainer(model, opt, scheduler=MultiStepLR(opt, [4], gamma=0.1),
                        post_step=post_step)
            t.fit(train2, val2, epochs=EPOCHS)
            return max(s.val_metric for s in t.history)

        runner = LTHRunner(
            lambda: vgg19(num_classes=4, width_mult=WIDTH),
            train_fn,
            prune_fraction=PRUNE_FRACTION,
        )
        history = runner.run(ROUNDS)
        return puffer, history

    puffer, history = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print_series(
        "Fig 5a: remaining weight fraction vs cumulative seconds",
        "LTH rounds",
        {
            "LTH frac remaining": [1 - h.sparsity for h in history],
            "LTH cumulative s": [h.cumulative_seconds for h in history],
        },
    )
    print_table(
        "Fig 5b: size vs accuracy",
        ["Method", "Weight reduction", "Best acc", "Wall-clock (s)"],
        [["Pufferfish (1 run)", puffer["reduction"], puffer["acc"], puffer["seconds"]]]
        + [
            [f"LTH round {h.round_index + 1}", h.sparsity, h.val_metric, h.cumulative_seconds]
            for h in history
        ],
    )

    # Rounds needed for LTH to match Pufferfish's weight reduction.
    needed = next(
        (i + 1 for i, h in enumerate(history) if h.sparsity >= puffer["reduction"]),
        ROUNDS,
    )
    lth_seconds = history[needed - 1].cumulative_seconds
    multiple = lth_seconds / puffer["seconds"]
    print(f"\nLTH needs {needed} rounds -> {multiple:.2f}x Pufferfish's wall-clock "
          f"(paper: 5.67x)")

    # Shape: matching Pufferfish's compression costs LTH multiple full runs.
    assert needed >= 2
    assert multiple > 1.3
    # Accuracy comparable at matched size (Pufferfish within 10 points).
    assert puffer["acc"] >= history[needed - 1].val_metric - 0.10
