"""Table 4 — VGG-19 and ResNet-18 on CIFAR-10: params, accuracy, MACs,
under FP32 and mixed-precision (AMP) training.

Paper:
    VGG-19     20.56M / 93.91%  -> Pufferfish  8.37M / 93.89%   (MACs 0.4 -> 0.29 G)
    ResNet-18  11.17M / 95.09%  -> Pufferfish  3.34M / 94.87%   (MACs 0.56 -> 0.22 G)
    AMP rows within ~0.2% of FP32.

Param counts and MACs are reproduced at FULL paper scale (exact).  The
accuracy comparison runs width-scaled models on the synthetic CIFAR task;
the claim under test is near-parity between vanilla and Pufferfish, under
both FP32 and AMP.
"""

import numpy as np
import pytest

from harness import image_loaders, print_table, scaled_resnet18, train_classifier
from repro.core import PufferfishTrainer, build_hybrid
from repro.metrics import measure_macs
from repro.models import (
    resnet18,
    resnet18_hybrid_config,
    vgg19,
    vgg19_hybrid_config,
)
from repro.optim import SGD, MultiStepLR
from repro.tensor import Tensor
from repro.utils import set_seed

EPOCHS = 8
WARMUP = 3


def _full_scale_rows():
    """Exact paper-scale parameter counts and MACs (no training needed)."""
    x = Tensor(np.zeros((1, 3, 32, 32), dtype=np.float32))
    v = vgg19(num_classes=10)
    hv, repv = build_hybrid(v, vgg19_hybrid_config())
    r = resnet18(num_classes=10)
    hr, repr_ = build_hybrid(r, resnet18_hybrid_config(r))
    return [
        ["Vanilla VGG-19", v.num_parameters(), 20_560_330, measure_macs(v, x) / 1e9, 0.40],
        ["Pufferfish VGG-19", repv.params_after, 8_370_634, measure_macs(hv, x) / 1e9, 0.29],
        ["Vanilla ResNet-18", r.num_parameters(), 11_173_834, measure_macs(r, x) / 1e9, 0.56],
        ["Pufferfish ResNet-18", repr_.params_after, 3_336_138, measure_macs(hr, x) / 1e9, 0.22],
    ]


def _train_pair(model_fn, config_fn, rng_seed, amp):
    """Train vanilla + Pufferfish variants; return (acc_vanilla, acc_puffer)."""
    set_seed(rng_seed)
    train, val, _ = image_loaders(np.random.default_rng(rng_seed), n=384, classes=4)
    vanilla = model_fn()
    acc_v, _ = train_classifier(vanilla, train, val, EPOCHS, decay_at=[6], amp=amp)

    set_seed(rng_seed)
    train, val, _ = image_loaders(np.random.default_rng(rng_seed), n=384, classes=4)
    model = model_fn()
    pt = PufferfishTrainer(
        model,
        config_fn(model),
        optimizer_factory=lambda ps: SGD(ps, lr=0.05, momentum=0.9, weight_decay=1e-4),
        scheduler_factory=lambda opt: MultiStepLR(opt, [6], gamma=0.1),
        warmup_epochs=WARMUP,
        total_epochs=EPOCHS,
        amp=amp,
    )
    pt.fit(train, val)
    acc_p = max(s.val_metric for s in pt.history)
    return acc_v, acc_p


def test_table4_param_counts_and_macs(benchmark):
    rows = benchmark.pedantic(_full_scale_rows, rounds=1, iterations=1)
    print_table(
        "Table 4 (full scale): params & MACs vs paper",
        ["Model", "#Params (ours)", "#Params (paper)", "MACs G (ours)", "MACs G (paper)"],
        rows,
    )
    # VGG counts exact; ResNet within the 128-param BN note; MACs within 2%.
    assert rows[0][1] == rows[0][2]
    assert rows[1][1] == rows[1][2]
    assert abs(rows[2][1] - rows[2][2]) <= 128
    assert abs(rows[3][1] - rows[3][2]) <= 128
    for row in rows:
        assert row[3] == pytest.approx(row[4], abs=0.02)


def test_table4_accuracy_fp32(benchmark, rng):
    def experiment():
        return {
            "resnet18": _train_pair(
                lambda: scaled_resnet18(classes=4, width=0.25),
                lambda m: resnet18_hybrid_config(m),
                rng_seed=5,
                amp=False,
            )
        }

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    acc_v, acc_p = res["resnet18"]
    print_table(
        "Table 4 (scaled, FP32): accuracy",
        ["Model", "Vanilla acc", "Pufferfish acc"],
        [["ResNet-18 (w=0.25, paper: 95.09 / 94.87)", acc_v, acc_p]],
    )
    assert acc_v > 0.5 and acc_p > 0.5  # both beat 0.25 chance soundly
    assert acc_p > acc_v - 0.15  # near parity (paper: -0.22%)


def test_table4_accuracy_amp(benchmark, rng):
    def experiment():
        return {
            "resnet18": _train_pair(
                lambda: scaled_resnet18(classes=4, width=0.25),
                lambda m: resnet18_hybrid_config(m),
                rng_seed=5,
                amp=True,
            )
        }

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    acc_v, acc_p = res["resnet18"]
    print_table(
        "Table 4 (scaled, AMP): accuracy",
        ["Model", "Vanilla acc", "Pufferfish acc"],
        [["ResNet-18 AMP (paper: 95.02 / 94.70)", acc_v, acc_p]],
    )
    # AMP claim: mixed precision does not break either model.
    assert acc_v > 0.5 and acc_p > 0.5
    assert acc_p > acc_v - 0.15
