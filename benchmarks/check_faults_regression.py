#!/usr/bin/env python
"""CI regression gate for the chaos benchmark suite.

Compares the fault-tolerance metrics in a fresh ``BENCH_faults.json``
against the committed baseline
(``benchmarks/baselines/faults_baseline.json``) and exits non-zero if
any *time* metric regressed by more than the threshold (default 20%).

Every gated metric is modeled (seed-determined), so on an unchanged
simulator the comparison is exact: any drift at all means the fault
model's behavior changed, and drift beyond the threshold fails the
build.  Count metrics (events, retries) must match exactly — a changed
event stream under a fixed seed is a determinism break, not a perf
regression.

Usage::

    python benchmarks/check_faults_regression.py \
        [--current BENCH_faults.json] \
        [--baseline benchmarks/baselines/faults_baseline.json] \
        [--threshold 0.20]
"""

from __future__ import annotations

from gatelib import BandFields, ExactFields, Gate, run_gate

GATE = Gate(
    name="fault",
    default_current="BENCH_faults.json",
    default_baseline="benchmarks/baselines/faults_baseline.json",
    default_threshold=0.20,
    rules=(
        ExactFields(
            ("events", "retries"),
            note="seeded event stream changed — determinism break",
        ),
        # Regressions are "more seconds spent than baseline" for these keys.
        BandFields(("comm_s", "other_s", "backoff_s", "recovery_s"), mode="upper"),
    ),
    description=__doc__.splitlines()[0],
)


if __name__ == "__main__":
    raise SystemExit(run_gate(GATE))
