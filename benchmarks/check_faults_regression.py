#!/usr/bin/env python
"""CI regression gate for the chaos benchmark suite.

Compares the fault-tolerance metrics in a fresh ``BENCH_faults.json``
against the committed baseline
(``benchmarks/baselines/faults_baseline.json``) and exits non-zero if
any *time* metric regressed by more than the threshold (default 20%).

Every gated metric is modeled (seed-determined), so on an unchanged
simulator the comparison is exact: any drift at all means the fault
model's behavior changed, and drift beyond the threshold fails the
build.  Count metrics (events, retries) must match exactly — a changed
event stream under a fixed seed is a determinism break, not a perf
regression.

Usage::

    python benchmarks/check_faults_regression.py \
        [--current BENCH_faults.json] \
        [--baseline benchmarks/baselines/faults_baseline.json] \
        [--threshold 0.20]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Regressions are "more seconds spent than baseline" for these keys.
TIME_KEYS = ("comm_s", "other_s", "backoff_s", "recovery_s")
COUNT_KEYS = ("events", "retries")


def check(current: dict, baseline: dict, threshold: float) -> list[str]:
    failures = []
    for name, base in sorted(baseline["scenarios"].items()):
        cur = current.get("scenarios", {}).get(name)
        if cur is None:
            failures.append(f"{name}: scenario missing from current run")
            continue
        for key in COUNT_KEYS:
            if cur.get(key) != base.get(key):
                failures.append(
                    f"{name}.{key}: {cur.get(key)} != baseline {base.get(key)} "
                    "(seeded event stream changed — determinism break)"
                )
        for key in TIME_KEYS:
            b, c = base.get(key, 0.0), cur.get(key, 0.0)
            limit = b * (1.0 + threshold)
            if c > limit and c - b > 1e-9:
                failures.append(
                    f"{name}.{key}: {c:.6f}s > {limit:.6f}s "
                    f"(baseline {b:.6f}s +{threshold:.0%})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", default="BENCH_faults.json")
    ap.add_argument(
        "--baseline", default="benchmarks/baselines/faults_baseline.json"
    )
    ap.add_argument("--threshold", type=float, default=0.20)
    args = ap.parse_args(argv)

    for path in (args.current, args.baseline):
        if not Path(path).exists():
            print(f"fault regression gate: missing {path}", file=sys.stderr)
            return 2
    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())

    failures = check(current, baseline, args.threshold)
    n = len(baseline["scenarios"])
    if failures:
        print(f"fault regression gate: {len(failures)} failure(s) across {n} scenarios")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print(f"fault regression gate: {n} scenarios within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
