"""Benchmark fixtures: deterministic seeding per benchmark, plus the
machine-readable metrics artifact written at session end."""

import numpy as np
import pytest

from repro.utils import set_seed


@pytest.fixture(autouse=True)
def _seed_everything():
    set_seed(2024)
    np.random.seed(2024)
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(2024)


def pytest_sessionfinish(session, exitstatus):
    """Dump every table/series printed this session (plus the metrics
    registry) to BENCH_observability.json so CI can diff the perf
    trajectory across commits."""
    import harness

    path = harness.flush_bench_metrics()
    rep = session.config.pluginmanager.get_plugin("terminalreporter")
    if rep is not None:
        rep.write_line(f"benchmark metrics written to {path}")
