"""Benchmark fixtures: deterministic seeding per benchmark."""

import numpy as np
import pytest

from repro.utils import set_seed


@pytest.fixture(autouse=True)
def _seed_everything():
    set_seed(2024)
    np.random.seed(2024)
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(2024)
