"""Appendix K — mid-run bandwidth decay on EC2.

The paper reports that p3.2xlarge's "up to 10 Gbps" links decay sharply in
the middle of long experiments, and that its ResNet-50 timings were taken
in the no-decay regime.  This benchmark models the decay explicitly and
measures how it changes the vanilla-vs-Pufferfish comparison: with less to
communicate, the factorized model's epoch time degrades far less when the
links slow down — the speedup *widens* under decay.
"""

import pytest

from harness import print_table
from repro.distributed import (
    BandwidthTrace,
    ClusterSpec,
    effective_epoch_times,
    parameter_server_time,
    ring_allreduce_time,
)

N_EPOCHS = 10


def test_appendix_k_bandwidth_decay(benchmark):
    def experiment():
        cluster_full = ClusterSpec(16, bandwidth_gbps=10.0)
        model_bytes_vanilla = 25.5e6 * 4  # ResNet-50 fp32 grads
        model_bytes_puffer = 15.2e6 * 4
        comm_v = ring_allreduce_time(model_bytes_vanilla, cluster_full) * 100  # 100 iters
        comm_p = ring_allreduce_time(model_bytes_puffer, cluster_full) * 100
        compute_v, compute_p = 15.0, 12.0  # paper-like epoch compute seconds

        trace_stable = BandwidthTrace([(1.0, 10.0)])
        trace_decay = BandwidthTrace([(0.4, 10.0), (0.6, 2.0)])

        out = {}
        for name, trace in (("stable 10 Gbps", trace_stable),
                            ("decay to 2 Gbps", trace_decay)):
            t_v = effective_epoch_times(comm_v, compute_v, N_EPOCHS, trace)
            t_p = effective_epoch_times(comm_p, compute_p, N_EPOCHS, trace)
            out[name] = (sum(t_v), sum(t_p))
        return out

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name, total_v, total_p, total_v / total_p]
        for name, (total_v, total_p) in res.items()
    ]
    print_table(
        "Appendix K: total run time under bandwidth decay (modeled, s)",
        ["Regime", "Vanilla", "Pufferfish", "Speedup"],
        rows,
    )

    stable_speedup = res["stable 10 Gbps"][0] / res["stable 10 Gbps"][1]
    decay_speedup = res["decay to 2 Gbps"][0] / res["decay to 2 Gbps"][1]
    print(f"\nPufferfish speedup: {stable_speedup:.2f}x stable -> "
          f"{decay_speedup:.2f}x under decay")
    # Less wire volume => less exposure to the decay => speedup widens.
    assert decay_speedup > stable_speedup


def test_parameter_server_vs_allreduce(benchmark):
    """BytePS-style PS vs ring allreduce across cluster sizes: PS with few
    servers degrades with workers while allreduce saturates — and in both
    topologies Pufferfish's smaller payload cuts wire time proportionally."""

    def experiment():
        m = 25.5e6 * 4
        m_puffer = 15.2e6 * 4
        nodes = [4, 8, 16, 32]
        rows = []
        for p in nodes:
            c = ClusterSpec(p, latency_s=0)
            rows.append([
                p,
                ring_allreduce_time(m, c),
                parameter_server_time(m, c, num_servers=1),
                parameter_server_time(m, c, num_servers=p),
                ring_allreduce_time(m_puffer, c),
            ])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "PS vs allreduce per-iteration wire time (s, ResNet-50-size grads)",
        ["Nodes", "Allreduce", "PS (1 server)", "PS (sharded)", "Allreduce (Pufferfish)"],
        rows,
    )
    # Single-server PS deteriorates linearly; allreduce stays ~flat.
    assert rows[-1][2] / rows[0][2] == pytest.approx(8.0, rel=0.01)
    assert rows[-1][1] / rows[0][1] < 1.4
    # Pufferfish payload shrinks allreduce time by the compression factor.
    assert rows[0][4] / rows[0][1] == pytest.approx(15.2 / 25.5, rel=0.01)
