"""Table 7 — Pufferfish vs Early-Bird structured pruning on ResNet-50.

Paper (ImageNet):
    vanilla ResNet-50     25.61M   top-1 75.99
    Pufferfish ResNet-50  15.20M   top-1 75.62
    EB Train pr=30%       16.47M   top-1 73.86
    EB Train pr=50%       15.08M   top-1 73.35
    EB Train pr=70%        7.88M   top-1 70.16

Claims under test at scaled size: (i) Pufferfish lands a model of
comparable size to EB-30%/50% with *higher* accuracy; (ii) EB accuracy
degrades monotonically with prune ratio.  Hyperparameters follow the
EB-Train protocol (no label smoothing, step decay).
"""

import numpy as np

from harness import imagenet_loaders, print_table, scaled_resnet50, train_classifier
from repro.core import PufferfishTrainer
from repro.models import resnet50_hybrid_config
from repro.optim import SGD, MultiStepLR
from repro.pruning import (
    EarlyBirdDetector,
    bn_l1_penalty_grad,
    prune_resnet,
    resnet_internal_bns,
)
from repro.utils import set_seed

EPOCHS = 6
WARMUP = 2


def run_eb_train(prune_ratio, seed=77):
    """EB Train: sparsity-regularized search -> early-bird stop -> slim ->
    fine-tune."""
    set_seed(seed)
    train, val, _ = imagenet_loaders(np.random.default_rng(seed), n=256, classes=8)
    model = scaled_resnet50(classes=8, width=0.125)
    bns = resnet_internal_bns(model)
    detector = EarlyBirdDetector(prune_ratio, threshold=0.15, patience=2, prunable_bns=bns)

    opt = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
    # Search phase with BN-L1 sparsity (applied inside the batch loop).
    search_epochs = 0
    for epoch in range(EPOCHS):
        # Manual epoch with the slimming regularizer.
        model.train()
        for batch in train:
            opt.zero_grad()
            from repro.core.trainer import classification_batch
            from repro import nn

            loss, _, _ = classification_batch(model, batch, nn.CrossEntropyLoss())
            loss.backward()
            bn_l1_penalty_grad(model, coeff=1e-3)
            opt.step()
        search_epochs += 1
        if detector.update(model, epoch):
            break

    slim = prune_resnet(model, detector.mask)
    # Fine-tune the slim model for the remaining budget.
    remaining = max(EPOCHS - search_epochs, 2)
    acc, _ = train_classifier(slim, train, val, remaining, lr=0.02, decay_at=[remaining - 1])
    return {
        "params": slim.num_parameters(),
        "acc": acc,
        "found_at": detector.found_at,
        "search_epochs": search_epochs,
    }


def run_pufferfish(seed=77):
    set_seed(seed)
    train, val, _ = imagenet_loaders(np.random.default_rng(seed), n=256, classes=8)
    model = scaled_resnet50(classes=8, width=0.125)
    pt = PufferfishTrainer(
        model,
        resnet50_hybrid_config(model),
        optimizer_factory=lambda ps: SGD(ps, lr=0.05, momentum=0.9, weight_decay=1e-4),
        scheduler_factory=lambda opt: MultiStepLR(opt, [EPOCHS - 1], gamma=0.1),
        warmup_epochs=WARMUP,
        total_epochs=EPOCHS,
    )
    pt.fit(train, val)
    return {
        "params": pt.hybrid_model.num_parameters(),
        "acc": max(s.val_metric for s in pt.history),
    }


def run_vanilla(seed=77):
    set_seed(seed)
    train, val, _ = imagenet_loaders(np.random.default_rng(seed), n=256, classes=8)
    model = scaled_resnet50(classes=8, width=0.125)
    acc, _ = train_classifier(model, train, val, EPOCHS, decay_at=[EPOCHS - 1])
    return {"params": model.num_parameters(), "acc": acc}


def test_table7_pufferfish_vs_ebtrain(benchmark, rng):
    def experiment():
        return {
            "vanilla": run_vanilla(),
            "pufferfish": run_pufferfish(),
            "eb30": run_eb_train(0.30),
            "eb50": run_eb_train(0.50),
            "eb70": run_eb_train(0.70),
        }

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        ["vanilla ResNet-50 (paper: 25.6M / 75.99%)",
         res["vanilla"]["params"], res["vanilla"]["acc"]],
        ["Pufferfish (paper: 15.2M / 75.62%)",
         res["pufferfish"]["params"], res["pufferfish"]["acc"]],
        ["EB Train pr=30% (paper: 16.5M / 73.86%)", res["eb30"]["params"], res["eb30"]["acc"]],
        ["EB Train pr=50% (paper: 15.1M / 73.35%)", res["eb50"]["params"], res["eb50"]["acc"]],
        ["EB Train pr=70% (paper: 7.9M / 70.16%)", res["eb70"]["params"], res["eb70"]["acc"]],
    ]
    print_table("Table 7: Pufferfish vs EB Train (scaled ResNet-50)",
                ["Model", "#Params", "Best val acc"], rows)

    # Shapes: EB params decrease with prune ratio; Pufferfish is at least
    # as accurate as the comparable-size EB models.
    assert res["eb30"]["params"] > res["eb50"]["params"] > res["eb70"]["params"]
    comparable_eb = max(res["eb30"]["acc"], res["eb50"]["acc"])
    assert res["pufferfish"]["acc"] >= comparable_eb - 0.1
    assert res["pufferfish"]["params"] < res["vanilla"]["params"]
