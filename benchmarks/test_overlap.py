"""Overlap benchmark — flat-arena fused SGD and bucketed comm/compute
overlap in the DDP simulator.

Two claims are measured:

* the fused flat-arena update beats the per-tensor Python loop by ≥2× on
  a VGG-19-class parameter set (the optimizer-step wall time is pure
  Python overhead in the loop, one vectorized pass in the arena), while
  staying bit-identical;
* overlapping per-bucket ring allreduces with measured backward compute
  yields a per-iteration time strictly below the sequential
  compute-then-monolithic-allreduce schedule, with the hidden fraction
  reported as ``overlap_fraction``.

Deterministic (modeled) quantities — bucket structure, payload bytes,
monolithic and bucketed comm seconds — are written to
``BENCH_overlap.json`` and gated against
``benchmarks/baselines/overlap_baseline.json`` by
``benchmarks/check_overlap_regression.py``.  Wall-clock numbers (the
fused speedup, measured compute) ride along for context but only
invariants about them are gated.
"""

import json
import platform
import time

import numpy as np
import pytest

from harness import print_table, scaled_vgg19
from repro import __version__
from repro.data import DataLoader, shard_dataset
from repro.distributed import (
    ClusterSpec,
    DistributedTrainer,
    build_buckets,
    ring_allreduce_time,
)
from repro.models import MLP
from repro.optim import SGD, FusedSGD
from repro.utils import set_seed

OVERLAP_BENCH_FILE = "BENCH_overlap.json"

_SCENARIOS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_overlap_artifact():
    yield
    data = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "repro_version": __version__,
        "python": platform.python_version(),
        "scenarios": _SCENARIOS,
    }
    with open(OVERLAP_BENCH_FILE, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)


def _fill_grads(params, seed):
    rng = np.random.default_rng(seed)
    for p in params:
        p.grad = rng.standard_normal(p.data.shape).astype(np.float32)


def test_fused_sgd_speedup(benchmark):
    """Fused flat-arena update ≥2× over the per-tensor loop on a VGG-19
    parameter set at the repo's CPU-scaled width, bit-identical results.

    At scaled widths the per-tensor loop is dispatch-bound (~80 numpy
    call sites per step, most on tiny BatchNorm-sized tensors), which is
    exactly the overhead the arena removes.  At full-size tensors both
    paths converge to memory bandwidth — the printed table shows the
    measured numbers so the crossover stays visible.
    """
    width = 0.03125
    set_seed(0)
    loop_model = scaled_vgg19(width=width)
    set_seed(0)
    fused_model = scaled_vgg19(width=width)
    kwargs = dict(lr=0.05, momentum=0.9, weight_decay=1e-4)
    loop_opt = SGD(loop_model.parameters(), **kwargs)
    fused_opt = FusedSGD(fused_model.parameters(), **kwargs)
    fused_opt._ensure_arena()  # exclude one-time arena build from timing
    # Identical grads on both sides, set once outside the timed region
    # (the trajectories stay in lockstep, so bit-exactness still holds).
    _fill_grads(loop_opt.params, 7)
    _fill_grads(fused_opt.params, 7)

    reps, steps = 7, 100

    def time_steps(opt):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            for _ in range(steps):
                opt.step()
            best = min(best, time.perf_counter() - t0)
        return best

    loop_s = benchmark.pedantic(
        lambda: time_steps(loop_opt), rounds=1, iterations=1
    )
    fused_s = time_steps(fused_opt)
    for a, b in zip(loop_model.parameters(), fused_model.parameters()):
        assert np.array_equal(a.data, b.data), "fused update is not bit-exact"

    n_tensors = len(fused_opt.params)
    n_params = int(sum(p.data.size for p in fused_opt.params))
    speedup = loop_s / fused_s
    print_table(
        f"Fused SGD vs per-tensor loop ({steps} steps, best of {reps})",
        ["Optimizer", "Seconds", "Tensors", "Params"],
        [
            ["per-tensor SGD", loop_s, n_tensors, n_params],
            ["FusedSGD (arena)", fused_s, n_tensors, n_params],
        ],
    )
    _SCENARIOS["fused_sgd"] = {
        "n_tensors": n_tensors,
        "n_params": n_params,
        "loop_s": round(loop_s, 6),
        "fused_s": round(fused_s, 6),
        "speedup": round(speedup, 3),
    }
    assert speedup >= 2.0, f"fused speedup {speedup:.2f}x < 2x"


def test_overlap_hides_communication(benchmark):
    """One epoch with bucketed overlap: per-iteration time is strictly
    below the sequential schedule built from the *same* measured compute
    plus a monolithic allreduce — a noise-free comparison, since both
    sides share the wall-clock term."""
    nodes, batch, iters = 4, 8, 4
    cluster = ClusterSpec(nodes, bandwidth_gbps=10.0, latency_s=50e-6)

    set_seed(11)
    model = MLP(3 * 32 * 32, [2048, 2048, 1024], 10)
    rng = np.random.default_rng(11)
    x = rng.standard_normal((nodes * batch * iters, 3 * 32 * 32)).astype(np.float32)
    y = rng.integers(0, 10, len(x))
    loaders = [DataLoader(sx, sy, batch) for sx, sy in shard_dataset(x, y, nodes)]

    trainer = DistributedTrainer(
        model,
        FusedSGD(model.parameters(), lr=0.05, momentum=0.9),
        cluster,
        overlap=True,
        bucket_mb=4.0,
    )
    tl = benchmark.pedantic(lambda: trainer.train_epoch(loaders), rounds=1, iterations=1)

    ov = tl.overlap
    payload_bytes = int(sum(p.data.size for p in model.parameters())) * 4
    comm_mono = ring_allreduce_time(payload_bytes, cluster) * tl.iterations
    iter_overlap = (tl.compute + ov["comm_exposed_s"]) / tl.iterations
    iter_mono = (tl.compute + comm_mono) / tl.iterations

    print_table(
        f"Comm/compute overlap (MLP {payload_bytes / 1e6:.1f} MB payload, "
        f"{nodes} nodes, {tl.iterations} iters)",
        ["Schedule", "Iter (s)", "Comm (s)", "Hidden"],
        [
            ["sequential + monolithic", iter_mono, comm_mono, "0%"],
            [
                "bucketed overlap",
                iter_overlap,
                ov["comm_exposed_s"],
                f"{ov['overlap_fraction']:.0%}",
            ],
        ],
    )
    _SCENARIOS["overlap_mlp"] = {
        "n_buckets": ov["n_buckets"],
        "payload_bytes": payload_bytes,
        "comm_mono_s": round(comm_mono, 9),
        "comm_bucketed_s": round(ov["comm_total_s"], 9),
        "comm_exposed_s": round(ov["comm_exposed_s"], 9),
        "overlap_fraction": round(ov["overlap_fraction"], 6),
        "compute_s": round(tl.compute, 6),
    }

    assert ov["n_buckets"] > 1, "payload did not split into multiple buckets"
    # The acceptance bar: overlap strictly reduces per-iteration time.
    assert iter_overlap < iter_mono, (
        f"overlap iteration {iter_overlap:.6f}s not below "
        f"sequential {iter_mono:.6f}s"
    )
    assert 0.0 < ov["overlap_fraction"] <= 1.0


def test_bucket_structure_deterministic():
    """Bucket assembly is a pure function of sizes+cap — record it so the
    regression gate pins the structure for a known model."""
    set_seed(11)
    model = MLP(3 * 32 * 32, [2048, 2048, 1024], 10)
    sizes = [p.data.size for p in model.parameters()]
    buckets = build_buckets(sizes, 4.0 * 1e6)
    _SCENARIOS["bucket_structure"] = {
        "n_buckets": len(buckets),
        "sizes": [b.size for b in buckets],
        "offsets": [b.offset for b in buckets],
    }
    assert sum(b.size for b in buckets) == sum(sizes)
