#!/usr/bin/env python
"""CI regression gate for the benchmark-smoke observability artifact.

Compares the ``BENCH_observability.json`` left behind by the CI smoke
selection (``pytest benchmarks -k "table1 or fast"``) against the
committed baseline
(``benchmarks/baselines/observability_baseline.json``).

What is gated:

* every baseline record (table/series) must still be produced, with
  identical headers — a silently vanished table means a benchmark
  stopped reporting;
* **exact columns** — closed-form arithmetic (parameter counts, MAC
  counts and formulas from Table 1) must match the baseline exactly;
  these are model-structure facts, not measurements;
* **modeled time columns** (α–β cost-model seconds, e.g. "Comm (s)")
  must stay within the threshold (default 20%).

Wall-clock columns ("Mean (s)", epoch seconds, speedups) are machine
noise and are deliberately not compared.

Usage::

    python benchmarks/check_observability_regression.py \
        [--current BENCH_observability.json] \
        [--baseline benchmarks/baselines/observability_baseline.json] \
        [--threshold 0.20]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Column headers whose values are exact model-structure arithmetic.
EXACT_HEADERS = {
    "#Params",
    "#Params (lib)",
    "#Params (formula)",
    "MACs (measured)",
    "MACs (formula)",
    "Formula",
    "Events",
    "Retries",
}
# Column headers carrying modeled (cost-model) seconds: threshold-gated.
MODELED_TIME_HEADERS = {"Comm (s)"}


def _rows_by_label(record: dict) -> dict:
    return {str(row[0]): row for row in record.get("rows", [])}


def check_table(title: str, cur: dict, base: dict, threshold: float) -> list[str]:
    failures = []
    if cur.get("headers") != base.get("headers"):
        failures.append(
            f"{title}: headers changed {base.get('headers')} -> {cur.get('headers')}"
        )
        return failures
    headers = base["headers"]
    cur_rows = _rows_by_label(cur)
    for label, base_row in _rows_by_label(base).items():
        cur_row = cur_rows.get(label)
        if cur_row is None:
            failures.append(f"{title}: row {label!r} missing from current run")
            continue
        for i, header in enumerate(headers):
            if header in EXACT_HEADERS:
                if cur_row[i] != base_row[i]:
                    failures.append(
                        f"{title} [{label}].{header}: {cur_row[i]} != "
                        f"baseline {base_row[i]} (closed-form value changed)"
                    )
            elif header in MODELED_TIME_HEADERS:
                b, c = float(base_row[i]), float(cur_row[i])
                lo, hi = b * (1.0 - threshold), b * (1.0 + threshold)
                if not (lo <= c <= hi):
                    failures.append(
                        f"{title} [{label}].{header}: {c:.6f} outside "
                        f"[{lo:.6f}, {hi:.6f}] (baseline {b:.6f} ±{threshold:.0%})"
                    )
    return failures


def check(current: dict, baseline: dict, threshold: float) -> list[str]:
    failures = []
    cur_records = {r["title"]: r for r in current.get("records", [])}
    for base_rec in baseline.get("records", []):
        title = base_rec["title"]
        cur_rec = cur_records.get(title)
        if cur_rec is None:
            failures.append(f"{title}: record missing from current run")
            continue
        if cur_rec["kind"] != base_rec["kind"]:
            failures.append(
                f"{title}: kind changed {base_rec['kind']} -> {cur_rec['kind']}"
            )
            continue
        if base_rec["kind"] == "table":
            failures.extend(check_table(title, cur_rec, base_rec, threshold))
        elif base_rec["kind"] == "series":
            base_series = base_rec.get("series", {})
            cur_series = cur_rec.get("series", {})
            for name, values in base_series.items():
                if name not in cur_series:
                    failures.append(f"{title}: series {name!r} missing")
                elif len(cur_series[name]) != len(values):
                    failures.append(
                        f"{title}: series {name!r} length {len(cur_series[name])} "
                        f"!= baseline {len(values)}"
                    )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", default="BENCH_observability.json")
    ap.add_argument(
        "--baseline", default="benchmarks/baselines/observability_baseline.json"
    )
    ap.add_argument("--threshold", type=float, default=0.20)
    args = ap.parse_args(argv)

    for path in (args.current, args.baseline):
        if not Path(path).exists():
            print(f"observability regression gate: missing {path}", file=sys.stderr)
            return 2
    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())

    failures = check(current, baseline, args.threshold)
    n = len(baseline.get("records", []))
    if failures:
        print(
            f"observability regression gate: {len(failures)} failure(s) "
            f"across {n} records"
        )
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print(
        f"observability regression gate: {n} records consistent with baseline "
        f"(exact columns matched, modeled times within {args.threshold:.0%})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
