#!/usr/bin/env python
"""CI regression gate for the benchmark-smoke observability artifact.

Compares the ``BENCH_observability.json`` left behind by the CI smoke
selection (``pytest benchmarks -k "table1 or fast"``) against the
committed baseline
(``benchmarks/baselines/observability_baseline.json``).

What is gated:

* every baseline record (table/series) must still be produced, with
  identical headers — a silently vanished table means a benchmark
  stopped reporting;
* **exact columns** — closed-form arithmetic (parameter counts, MAC
  counts and formulas from Table 1) must match the baseline exactly;
  these are model-structure facts, not measurements;
* **modeled time columns** (α–β cost-model seconds, e.g. "Comm (s)")
  must stay within the threshold (default 20%).

Wall-clock columns ("Mean (s)", epoch seconds, speedups) are machine
noise and are deliberately not compared.

Usage::

    python benchmarks/check_observability_regression.py \
        [--current BENCH_observability.json] \
        [--baseline benchmarks/baselines/observability_baseline.json] \
        [--threshold 0.20]
"""

from __future__ import annotations

from gatelib import Gate, run_gate

# Column headers whose values are exact model-structure arithmetic.
EXACT_HEADERS = {
    "#Params",
    "#Params (lib)",
    "#Params (formula)",
    "MACs (measured)",
    "MACs (formula)",
    "Formula",
    "Events",
    "Retries",
}
# Column headers carrying modeled (cost-model) seconds: threshold-gated.
MODELED_TIME_HEADERS = {"Comm (s)"}


def _rows_by_label(record: dict) -> dict:
    return {str(row[0]): row for row in record.get("rows", [])}


def check_table(title: str, cur: dict, base: dict, threshold: float) -> list[str]:
    failures: list[str] = []
    if cur.get("headers") != base.get("headers"):
        failures.append(
            f"{title}: headers changed {base.get('headers')} -> {cur.get('headers')}"
        )
        return failures
    headers = base["headers"]
    cur_rows = _rows_by_label(cur)
    for label, base_row in _rows_by_label(base).items():
        cur_row = cur_rows.get(label)
        if cur_row is None:
            failures.append(f"{title}: row {label!r} missing from current run")
            continue
        for i, header in enumerate(headers):
            if header in EXACT_HEADERS:
                if cur_row[i] != base_row[i]:
                    failures.append(
                        f"{title} [{label}].{header}: {cur_row[i]} != "
                        f"baseline {base_row[i]} (closed-form value changed)"
                    )
            elif header in MODELED_TIME_HEADERS:
                b, c = float(base_row[i]), float(cur_row[i])
                lo, hi = b * (1.0 - threshold), b * (1.0 + threshold)
                if not (lo <= c <= hi):
                    failures.append(
                        f"{title} [{label}].{header}: {c:.6f} outside "
                        f"[{lo:.6f}, {hi:.6f}] (baseline {b:.6f} ±{threshold:.0%})"
                    )
    return failures


def check_records(current: dict, baseline: dict, threshold: float) -> list[str]:
    """Record-keyed walk (the artifact is a list, not a scenario dict)."""
    failures: list[str] = []
    cur_records = {r["title"]: r for r in current.get("records", [])}
    for base_rec in baseline.get("records", []):
        title = base_rec["title"]
        cur_rec = cur_records.get(title)
        if cur_rec is None:
            failures.append(f"{title}: record missing from current run")
            continue
        if cur_rec["kind"] != base_rec["kind"]:
            failures.append(
                f"{title}: kind changed {base_rec['kind']} -> {cur_rec['kind']}"
            )
            continue
        if base_rec["kind"] == "table":
            failures.extend(check_table(title, cur_rec, base_rec, threshold))
        elif base_rec["kind"] == "series":
            base_series = base_rec.get("series", {})
            cur_series = cur_rec.get("series", {})
            for name, values in base_series.items():
                if name not in cur_series:
                    failures.append(f"{title}: series {name!r} missing")
                elif len(cur_series[name]) != len(values):
                    failures.append(
                        f"{title}: series {name!r} length {len(cur_series[name])} "
                        f"!= baseline {len(values)}"
                    )
    return failures


GATE = Gate(
    name="observability",
    default_current="BENCH_observability.json",
    default_baseline="benchmarks/baselines/observability_baseline.json",
    default_threshold=0.20,
    section="records",
    item_word="records",
    custom=check_records,
    ok_line=lambda n, t: (
        f"observability regression gate: {n} records consistent with baseline "
        f"(exact columns matched, modeled times within {t:.0%})"
    ),
    description=__doc__.splitlines()[0],
)


if __name__ == "__main__":
    raise SystemExit(run_gate(GATE))
