"""Table 9 — ablation of vanilla warm-up on the low-rank LSTM LM.

Paper (WikiText-2):
    low-rank LSTM, no warm-up  val ppl 97.59, test ppl 92.04
    low-rank LSTM, w/ warm-up  val ppl 93.62, test ppl 88.72

Claim under test: warm-starting the factors from a partially trained
full-rank model yields test perplexity at least as good as training the
factorized LSTM from scratch, at equal total epochs.
"""

import numpy as np

from harness import lm_task, print_table, run_lm
from repro.core import build_hybrid
from repro.metrics import perplexity
from repro.models import LSTMLanguageModel, lstm_lm_hybrid_config
from repro.utils import set_seed

EPOCHS = 8
WARMUP = 3
VOCAB = 80
DIM = 64
LR = 10.0
SEEDS = [0, 1, 2]


def run_variant(warmup, seed):
    set_seed(seed)
    corpus = lm_task(np.random.default_rng(seed), vocab=VOCAB, branching=4)
    model = LSTMLanguageModel(VOCAB, embed_dim=DIM, num_layers=2, dropout=0.2)
    if warmup > 0:
        run_lm(model, corpus, epochs=warmup, lr=LR)
    hybrid, _ = build_hybrid(model, lstm_lm_hybrid_config(0.25))
    res = run_lm(hybrid, corpus, epochs=EPOCHS - warmup, lr=LR / 2 if warmup else LR)
    return res


def test_table9_lstm_warmup_ablation(benchmark, rng):
    def experiment():
        out = {"scratch": [], "warmup": []}
        for s in SEEDS:
            out["scratch"].append(run_variant(0, s))
            out["warmup"].append(run_variant(WARMUP, s))
        return out

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)

    def agg(key, metric):
        vals = [perplexity(r[metric]) for r in res[key]]
        return float(np.mean(vals)), float(np.std(vals))

    rows = [
        ["Val Ppl (paper: 97.59 / 93.62)",
         agg("scratch", "val_nll")[0], agg("warmup", "val_nll")[0]],
        ["Test Ppl (paper: 92.04 / 88.72)",
         agg("scratch", "test_nll")[0], agg("warmup", "test_nll")[0]],
        ["Train Ppl (paper: 68.04 / 62.2)",
         agg("scratch", "train_nll")[0], agg("warmup", "train_nll")[0]],
    ]
    print_table("Table 9: LSTM warm-up ablation (3 seeds)",
                ["Metric", "No warm-up", "With warm-up"], rows)

    scratch_ppl = agg("scratch", "test_nll")[0]
    warm_ppl = agg("warmup", "test_nll")[0]
    # Both beat uniform; warm-up is at least as good (10% noise margin).
    assert scratch_ppl < VOCAB and warm_ppl < VOCAB
    assert warm_ppl <= scratch_ppl * 1.10
