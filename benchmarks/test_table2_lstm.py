"""Table 2 — vanilla vs Pufferfish 2-layer LSTM on the LM task.

Paper (WikiText-2, dim 1500, rank 375):
    params 85.96M -> 67.96M (embedding dominates; 2x on the LSTM blocks),
    val ppl 92.49 -> 93.62, test ppl 88.16 -> 88.72 (near parity).

Scaled run (synthetic Markov corpus, dim 64, rank 16): the claim under
test is the *shape* — Pufferfish shrinks the LSTM with test perplexity
close to vanilla (both far below the uniform-vocabulary baseline).
"""


import numpy as np

from harness import lm_task, print_table, run_lm
from repro.core import build_hybrid
from repro.metrics import perplexity
from repro.models import LSTMLanguageModel, lstm_lm_hybrid_config
from repro.utils import set_seed

EPOCHS = 8
WARMUP = 3
DIM = 64
VOCAB = 80
BRANCHING = 4
LR = 10.0


def _paper_scale_param_counts():
    vanilla = LSTMLanguageModel(vocab_size=33278, embed_dim=1500, num_layers=2)
    n_vanilla = vanilla.num_parameters()
    from repro.metrics import lowrank_lstm_params

    n_puffer = 33278 * 1500 + 2 * (lowrank_lstm_params(1500, 1500, 375) + 8 * 1500) + 33278
    return n_vanilla, n_puffer


def test_table2_lstm_lm(benchmark, rng):
    def experiment():
        results = {}
        # Vanilla LSTM.
        set_seed(7)
        corpus = lm_task(np.random.default_rng(7), vocab=VOCAB, branching=BRANCHING)
        vanilla = LSTMLanguageModel(VOCAB, embed_dim=DIM, num_layers=2, dropout=0.2)
        results["vanilla"] = run_lm(vanilla, corpus, epochs=EPOCHS, lr=LR)
        results["vanilla_params"] = vanilla.num_parameters()

        # Pufferfish: warm-up -> factorize -> fine-tune (LR halved at the
        # switch, as the paper does for the LSTM).
        set_seed(7)
        corpus2 = lm_task(np.random.default_rng(7), vocab=VOCAB, branching=BRANCHING)
        model = LSTMLanguageModel(VOCAB, embed_dim=DIM, num_layers=2, dropout=0.2)
        run_lm(model, corpus2, epochs=WARMUP, lr=LR)  # vanilla warm-up epochs
        hybrid, report = build_hybrid(model, lstm_lm_hybrid_config(0.25))
        results["pufferfish"] = run_lm(hybrid, corpus2, epochs=EPOCHS - WARMUP, lr=LR / 2)
        results["pufferfish_params"] = hybrid.num_parameters()
        results["report"] = report
        return results

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)

    n_van_paper, n_puf_paper = _paper_scale_param_counts()
    rows = [
        ["# Params (paper scale)", n_van_paper, n_puf_paper],
        ["# Params (this run)", res["vanilla_params"], res["pufferfish_params"]],
        ["Train Ppl (paper: 52.87 / 62.2)",
         perplexity(res["vanilla"]["train_nll"]), perplexity(res["pufferfish"]["train_nll"])],
        ["Val Ppl (paper: 92.49 / 93.62)",
         perplexity(res["vanilla"]["val_nll"]), perplexity(res["pufferfish"]["val_nll"])],
        ["Test Ppl (paper: 88.16 / 88.72)",
         perplexity(res["vanilla"]["test_nll"]), perplexity(res["pufferfish"]["test_nll"])],
    ]
    print_table(
        "Table 2: LSTM LM, vanilla vs Pufferfish", ["Metric", "Vanilla", "Pufferfish"], rows
    )

    # Shape assertions.
    assert res["pufferfish_params"] < res["vanilla_params"]
    van_ppl = perplexity(res["vanilla"]["test_nll"])
    puf_ppl = perplexity(res["pufferfish"]["test_nll"])
    assert van_ppl < VOCAB and puf_ppl < VOCAB  # both beat uniform
    # Near parity: Pufferfish within 35% of vanilla perplexity (paper: 0.6%).
    assert puf_ppl < 1.35 * van_ppl
    # Paper-scale parameter arithmetic reproduces Table 2 exactly (mod the
    # 12k bias-count note in tests/test_models.py).
    assert n_van_paper == 85_974_278
    assert n_puf_paper == 67_974_278
