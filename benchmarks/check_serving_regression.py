#!/usr/bin/env python
"""CI regression gate for the serving benchmark.

Compares a fresh ``BENCH_serving.json`` against the committed baseline
(``benchmarks/baselines/serving_baseline.json``).  Two regimes:

* **deterministic scenarios** (``variant_accounting``,
  ``pinned_crossover``) are pure functions of pinned inputs — the
  params/MACs arithmetic and the simulator grid (request counts, shed
  counts, throughputs, timeline digests) must match the baseline
  *exactly*; any drift is a behavior change in the registry, load
  generator, batcher, admission controller or event loop, never noise;
* **measured scenarios** (names starting with ``measured_``) carry this
  host's wall-clock forward times — they are never compared to baseline;
  instead structural invariants are enforced on the current run:
  ``0 <= shed_rate <= 1``, ``p50 <= p95 <= p99``, positive capacity, and
  request accounting that sums up.

On top of per-scenario checks, the gate re-asserts the headline claim
from the current artifact: the factorized profile's capacity strictly
exceeds full-rank in the pinned sweep, and past full-rank saturation it
sustains strictly higher throughput under the same SLO.

Usage::

    python benchmarks/check_serving_regression.py \
        [--current BENCH_serving.json] \
        [--baseline benchmarks/baselines/serving_baseline.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

MEASURED_PREFIX = "measured_"


def _deep_diff(cur, base, path: str, failures: list[str]) -> None:
    """Record every leaf where ``cur`` differs from ``base``."""
    if isinstance(base, dict) and isinstance(cur, dict):
        for key in sorted(set(base) | set(cur)):
            if key not in cur:
                failures.append(f"{path}.{key}: missing from current run")
            elif key not in base:
                failures.append(f"{path}.{key}: not in baseline (new key)")
            else:
                _deep_diff(cur[key], base[key], f"{path}.{key}", failures)
        return
    if isinstance(base, list) and isinstance(cur, list):
        if len(base) != len(cur):
            failures.append(f"{path}: length {len(cur)} != baseline {len(base)}")
            return
        for i, (c, b) in enumerate(zip(cur, base)):
            _deep_diff(c, b, f"{path}[{i}]", failures)
        return
    if cur != base:
        failures.append(f"{path}: {cur!r} != baseline {base!r}")


def _check_cell_invariants(name: str, cell: dict, failures: list[str]) -> None:
    if "shed_rate" in cell and not (0.0 <= cell["shed_rate"] <= 1.0):
        failures.append(f"{name}: shed_rate {cell['shed_rate']} outside [0, 1]")
    if {"p50_ms", "p95_ms", "p99_ms"} <= set(cell):
        if not (cell["p50_ms"] <= cell["p95_ms"] <= cell["p99_ms"]):
            failures.append(
                f"{name}: quantiles out of order "
                f"p50={cell['p50_ms']} p95={cell['p95_ms']} p99={cell['p99_ms']}"
            )
    needed = {"n_requests", "n_completed", "n_shed_admission", "n_shed_deadline"}
    if needed <= set(cell):
        total = cell["n_completed"] + cell["n_shed_admission"] + cell["n_shed_deadline"]
        if total != cell["n_requests"]:
            failures.append(
                f"{name}: outcomes sum to {total}, not n_requests={cell['n_requests']}"
            )


def _check_invariants(name: str, scenario: dict, failures: list[str]) -> None:
    if "capacity_rps" in scenario and scenario["capacity_rps"] <= 0:
        failures.append(f"{name}: capacity_rps {scenario['capacity_rps']} not positive")
    rates = scenario.get("rates")
    if isinstance(rates, dict):  # top-level "rates" may just list the sweep
        for rate, cell in rates.items():
            _check_cell_invariants(f"{name}.rates[{rate}]", cell, failures)
    _check_cell_invariants(name, scenario, failures)


def _check_headline(current: dict, failures: list[str]) -> None:
    pinned = current.get("scenarios", {}).get("pinned_crossover")
    if pinned is None:
        failures.append("pinned_crossover: scenario missing from current run")
        return
    variants = pinned.get("variants", {})
    full, fact = variants.get("full"), variants.get("factorized")
    if not full or not fact:
        failures.append("pinned_crossover: needs both full and factorized variants")
        return
    if not fact["capacity_rps"] > full["capacity_rps"]:
        failures.append(
            "pinned_crossover: factorized capacity "
            f"{fact['capacity_rps']} not above full {full['capacity_rps']}"
        )
    saturating = [
        r for r in pinned.get("rates", []) if r > full["capacity_rps"]
    ]
    if not saturating:
        failures.append("pinned_crossover: sweep never exceeds full-rank capacity")
    for rate in saturating:
        f, h = full["rates"][str(rate)], fact["rates"][str(rate)]
        if not h["throughput_rps"] > f["throughput_rps"]:
            failures.append(
                f"pinned_crossover @ {rate} rps: factorized throughput "
                f"{h['throughput_rps']} not above full {f['throughput_rps']}"
            )


def check(current: dict, baseline: dict) -> list[str]:
    failures: list[str] = []
    cur_scenarios = current.get("scenarios", {})
    for name, base in sorted(baseline["scenarios"].items()):
        if name.startswith(MEASURED_PREFIX):
            continue  # machine-dependent: invariants only, below
        cur = cur_scenarios.get(name)
        if cur is None:
            failures.append(f"{name}: scenario missing from current run")
            continue
        _deep_diff(cur, base, name, failures)
    for name, scenario in sorted(cur_scenarios.items()):
        _check_invariants(name, scenario, failures)
        for sub in scenario.get("variants", {}).values():
            _check_invariants(name, sub, failures)
    _check_headline(current, failures)
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", default="BENCH_serving.json")
    ap.add_argument(
        "--baseline", default="benchmarks/baselines/serving_baseline.json"
    )
    args = ap.parse_args(argv)

    for path in (args.current, args.baseline):
        if not Path(path).exists():
            print(f"serving regression gate: missing {path}", file=sys.stderr)
            return 2
    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())

    failures = check(current, baseline)
    n = len(baseline["scenarios"])
    if failures:
        print(f"serving regression gate: {len(failures)} failure(s) across {n} scenarios")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print(
        f"serving regression gate: {n} baseline scenarios OK "
        "(deterministic exact, measured invariant-only)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
