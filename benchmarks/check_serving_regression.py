#!/usr/bin/env python
"""CI regression gate for the serving benchmark.

Compares a fresh ``BENCH_serving.json`` against the committed baseline
(``benchmarks/baselines/serving_baseline.json``).  Two regimes:

* **deterministic scenarios** (``variant_accounting``,
  ``pinned_crossover``) are pure functions of pinned inputs — the
  params/MACs arithmetic and the simulator grid (request counts, shed
  counts, throughputs, timeline digests) must match the baseline
  *exactly*; any drift is a behavior change in the registry, load
  generator, batcher, admission controller or event loop, never noise;
* **measured scenarios** (names starting with ``measured_``) carry this
  host's wall-clock forward times — they are never compared to baseline;
  instead structural invariants are enforced on the current run:
  ``0 <= shed_rate <= 1``, ``p50 <= p95 <= p99``, positive capacity, and
  request accounting that sums up.

On top of per-scenario checks, the gate re-asserts the headline claim
from the current artifact: the factorized profile's capacity strictly
exceeds full-rank in the pinned sweep, and past full-rank saturation it
sustains strictly higher throughput under the same SLO.

Usage::

    python benchmarks/check_serving_regression.py \
        [--current BENCH_serving.json] \
        [--baseline benchmarks/baselines/serving_baseline.json]
"""

from __future__ import annotations

from gatelib import DeepExact, Gate, run_gate

MEASURED_PREFIX = "measured_"


def _check_cell_invariants(name: str, cell: dict, failures: list[str]) -> None:
    if "shed_rate" in cell and not (0.0 <= cell["shed_rate"] <= 1.0):
        failures.append(f"{name}: shed_rate {cell['shed_rate']} outside [0, 1]")
    if {"p50_ms", "p95_ms", "p99_ms"} <= set(cell):
        if not (cell["p50_ms"] <= cell["p95_ms"] <= cell["p99_ms"]):
            failures.append(
                f"{name}: quantiles out of order "
                f"p50={cell['p50_ms']} p95={cell['p95_ms']} p99={cell['p99_ms']}"
            )
    needed = {"n_requests", "n_completed", "n_shed_admission", "n_shed_deadline"}
    if needed <= set(cell):
        total = cell["n_completed"] + cell["n_shed_admission"] + cell["n_shed_deadline"]
        if total != cell["n_requests"]:
            failures.append(
                f"{name}: outcomes sum to {total}, not n_requests={cell['n_requests']}"
            )


def _scenario_invariants(name: str, scenario: dict, failures: list[str]) -> None:
    if "capacity_rps" in scenario and scenario["capacity_rps"] <= 0:
        failures.append(f"{name}: capacity_rps {scenario['capacity_rps']} not positive")
    rates = scenario.get("rates")
    if isinstance(rates, dict):  # top-level "rates" may just list the sweep
        for rate, cell in rates.items():
            _check_cell_invariants(f"{name}.rates[{rate}]", cell, failures)
    _check_cell_invariants(name, scenario, failures)


def invariants(name: str, scenario: dict) -> list[str]:
    failures: list[str] = []
    _scenario_invariants(name, scenario, failures)
    for sub in scenario.get("variants", {}).values():
        _scenario_invariants(name, sub, failures)
    return failures


def headline(current: dict) -> list[str]:
    failures: list[str] = []
    pinned = current.get("scenarios", {}).get("pinned_crossover")
    if pinned is None:
        failures.append("pinned_crossover: scenario missing from current run")
        return failures
    variants = pinned.get("variants", {})
    full, fact = variants.get("full"), variants.get("factorized")
    if not full or not fact:
        failures.append("pinned_crossover: needs both full and factorized variants")
        return failures
    if not fact["capacity_rps"] > full["capacity_rps"]:
        failures.append(
            "pinned_crossover: factorized capacity "
            f"{fact['capacity_rps']} not above full {full['capacity_rps']}"
        )
    saturating = [r for r in pinned.get("rates", []) if r > full["capacity_rps"]]
    if not saturating:
        failures.append("pinned_crossover: sweep never exceeds full-rank capacity")
    for rate in saturating:
        f, h = full["rates"][str(rate)], fact["rates"][str(rate)]
        if not h["throughput_rps"] > f["throughput_rps"]:
            failures.append(
                f"pinned_crossover @ {rate} rps: factorized throughput "
                f"{h['throughput_rps']} not above full {f['throughput_rps']}"
            )
    return failures


GATE = Gate(
    name="serving",
    default_current="BENCH_serving.json",
    default_baseline="benchmarks/baselines/serving_baseline.json",
    rules=(DeepExact(),),
    skip=lambda name: name.startswith(MEASURED_PREFIX),
    invariants=invariants,
    headline=headline,
    ok_line=lambda n, t: (
        f"serving regression gate: {n} baseline scenarios OK "
        "(deterministic exact, measured invariant-only)"
    ),
    description=__doc__.splitlines()[0],
)


if __name__ == "__main__":
    raise SystemExit(run_gate(GATE))
