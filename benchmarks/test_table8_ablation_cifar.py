"""Tables 8, 21, 22 — ablation of the two accuracy-loss mitigations on
image classification: fully-low-rank vs hybrid vs hybrid + warm-up.

Paper (ResNet-18 / CIFAR-10, 3 seeds):
    low-rank          93.75 ± 0.19
    hybrid, no warmup 93.92 ± 0.45
    hybrid + warmup   94.87 ± 0.21

Claim under test: mean accuracy over seeds is non-decreasing across the
three variants (warm-up helps most — the paper's Section 3 argument).
"""

import numpy as np

from harness import image_loaders, print_table, scaled_resnet18
from repro.core import FactorizationConfig, PufferfishTrainer
from repro.models import resnet18_hybrid_config
from repro.optim import SGD, MultiStepLR
from repro.utils import set_seed

EPOCHS = 8
SEEDS = [0, 1, 2]


def run_variant(variant, seed):
    set_seed(seed)
    train, val, _ = image_loaders(np.random.default_rng(seed), n=320, classes=4, noise=0.3)
    model = scaled_resnet18(classes=4, width=0.25)

    if variant == "lowrank":
        # Every layer factorized (except first conv / last FC), no warm-up.
        config = FactorizationConfig(rank_ratio=0.25)
        warmup = 0
    elif variant == "hybrid":
        config = resnet18_hybrid_config(model)
        warmup = 0
    elif variant == "hybrid_warmup":
        config = resnet18_hybrid_config(model)
        warmup = 3
    else:
        raise ValueError(variant)

    pt = PufferfishTrainer(
        model,
        config,
        optimizer_factory=lambda ps: SGD(ps, lr=0.05, momentum=0.9, weight_decay=1e-4),
        scheduler_factory=lambda opt: MultiStepLR(opt, [6], gamma=0.1),
        warmup_epochs=warmup,
        total_epochs=EPOCHS,
    )
    pt.fit(train, val)
    return max(s.val_metric for s in pt.history if s.phase == "lowrank")


def test_table8_mitigation_ablation(benchmark, rng):
    def experiment():
        out = {}
        for variant in ("lowrank", "hybrid", "hybrid_warmup"):
            accs = [run_variant(variant, s) for s in SEEDS]
            out[variant] = (float(np.mean(accs)), float(np.std(accs)))
        return out

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        ["Low-rank ResNet-18 (paper: 93.75)", res["lowrank"][0], res["lowrank"][1]],
        ["Hybrid, no warm-up (paper: 93.92)", res["hybrid"][0], res["hybrid"][1]],
        ["Hybrid + warm-up (paper: 94.87)", res["hybrid_warmup"][0], res["hybrid_warmup"][1]],
    ]
    print_table("Table 8: mitigation ablation (3 seeds, scaled ResNet-18)",
                ["Variant", "Mean acc", "Std"], rows)

    # The full recipe must not lose to the unmitigated variant (tolerance
    # covers small-sample noise on the synthetic task).
    assert res["hybrid_warmup"][0] >= res["lowrank"][0] - 0.05
    assert res["hybrid_warmup"][0] >= res["hybrid"][0] - 0.05
    # And everything learns.
    for variant in res:
        assert res[variant][0] > 0.4
