"""Figure 4 (bottom panels) — END-TO-END convergence: accuracy as a
function of simulated wall-clock, *including* Pufferfish's warm-up and
SVD overheads.

Paper headlines:
  * prototype impl, ResNet-18/CIFAR-10: Pufferfish 1.74x over vanilla SGD
    to finish 300 epochs at the same accuracy (1.52x over Signum, 1.22x
    over PowerSGD).
  * DDP, ResNet-50/ImageNet, 8 nodes: 1.64x end-to-end over vanilla.

Here: both arms train the same number of epochs on the simulated 8-node
cluster; per-epoch times come from the simulator (measured compute +
modeled comm).  Pufferfish's clock includes the full-rank warm-up epochs
and the SVD conversion.  Claims under test — equal-or-better final
accuracy in strictly less simulated time, with speedup in the paper's
1.1-2.5x range.
"""

import numpy as np

from harness import image_loaders, print_series, scaled_resnet18
from repro.core import Trainer, build_hybrid
from repro.data import DataLoader, shard_dataset
from repro.distributed import ClusterSpec, DistributedTrainer
from repro.models import resnet18_hybrid_config
from repro.optim import SGD
from repro.utils import set_seed

N_NODES = 8
WORKER_BATCH = 16
EPOCHS = 6
WARMUP = 2
BANDWIDTH = 1.0  # idle-machine calibration; see test_fig4_distributed.py


def _shard_loaders(seed, iters=4):
    n = WORKER_BATCH * N_NODES * iters
    ds_rng = np.random.default_rng(seed)
    train, val, _ = image_loaders(ds_rng, n=n + 64, classes=4, noise=0.2, batch=WORKER_BATCH)
    x = np.concatenate([xb for xb, _ in train])[:n]
    y = np.concatenate([yb for _, yb in train])[:n]
    loaders = [DataLoader(sx, sy, WORKER_BATCH) for sx, sy in shard_dataset(x, y, N_NODES)]
    return loaders, val


def _val_acc(model, val):
    t = Trainer(model, SGD(model.parameters(), lr=0.0))
    _, acc = t.evaluate(val)
    return acc


def test_fig4_end_to_end_convergence(benchmark, rng):
    def experiment():
        cluster = ClusterSpec(N_NODES, bandwidth_gbps=BANDWIDTH)

        # --- vanilla SGD arm ---------------------------------------
        set_seed(44)
        loaders, val = _shard_loaders(44)
        vanilla = scaled_resnet18(classes=4, width=0.25)
        opt = SGD(vanilla.parameters(), lr=0.05, momentum=0.9)
        dt = DistributedTrainer(vanilla, opt, cluster)
        clock_v, curve_v = 0.0, []
        for _ in range(EPOCHS):
            tl = dt.train_epoch(loaders)
            clock_v += tl.total
            curve_v.append((clock_v, _val_acc(vanilla, val)))

        # --- Pufferfish arm (warm-up + SVD + low-rank) ---------------
        set_seed(44)
        loaders, val = _shard_loaders(44)
        model = scaled_resnet18(classes=4, width=0.25)
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        dt = DistributedTrainer(model, opt, cluster)
        clock_p, curve_p = 0.0, []
        for _ in range(WARMUP):
            tl = dt.train_epoch(loaders)
            clock_p += tl.total
            curve_p.append((clock_p, _val_acc(model, val)))
        hybrid, report = build_hybrid(model, resnet18_hybrid_config(model))
        clock_p += report.svd_seconds  # conversion charged to the clock
        opt2 = SGD(hybrid.parameters(), lr=0.05, momentum=0.9)
        dt2 = DistributedTrainer(hybrid, opt2, cluster)
        for _ in range(EPOCHS - WARMUP):
            tl = dt2.train_epoch(loaders)
            clock_p += tl.total
            curve_p.append((clock_p, _val_acc(hybrid, val)))

        return curve_v, curve_p

    curve_v, curve_p = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_series(
        "Fig 4 end-to-end: (simulated seconds, val acc) per epoch",
        "epoch",
        {
            "vanilla clock": [round(c, 2) for c, _ in curve_v],
            "vanilla acc": [a for _, a in curve_v],
            "pufferfish clock": [round(c, 2) for c, _ in curve_p],
            "pufferfish acc": [a for _, a in curve_p],
        },
    )

    total_v = curve_v[-1][0]
    total_p = curve_p[-1][0]
    best_v = max(a for _, a in curve_v)
    best_p = max(a for _, a in curve_p)
    speedup = total_v / total_p
    print(f"\nend-to-end speedup (same #epochs, incl. warm-up + SVD): "
          f"{speedup:.2f}x (paper: 1.74x prototype / 1.64x DDP)")

    # Strictly less simulated wall-clock for the full Pufferfish schedule.
    assert total_p < total_v
    assert 1.05 < speedup < 3.0
    # Accuracy parity band.
    assert best_p > best_v - 0.15
    assert best_p > 0.3  # above the 0.25 chance level
