"""Appendix Table 19 — one-time SVD factorization cost per model.

Paper (V100): ResNet-50 2.30 s, WideResNet-50-2 4.87 s, VGG-19 1.52 s,
ResNet-18 1.32 s, LSTM 6.58 s, Transformer 5.41 s — all negligible next to
a single training epoch, because Pufferfish runs the SVD exactly once.

We measure the same conversions (width-scaled where the full model is too
big for a CPU benchmark) over 5 trials and check the paper's qualitative
claims: (i) cost ordering follows layer sizes, (ii) the one-time cost is a
tiny fraction of one training epoch.
"""

import time

import numpy as np

from harness import image_loaders, print_table, scaled_resnet18, scaled_vgg19
from repro.core import Trainer, build_hybrid
from repro.models import (
    LSTMLanguageModel,
    Seq2SeqTransformer,
    lstm_lm_hybrid_config,
    resnet18_hybrid_config,
    transformer_hybrid_config,
    vgg19_hybrid_config,
)
from repro.optim import SGD
from repro.utils import set_seed

TRIALS = 5


def _svd_seconds(model_fn, config_fn, trials=TRIALS):
    times = []
    for _ in range(trials):
        model = model_fn()
        t0 = time.perf_counter()
        build_hybrid(model, config_fn(model))
        times.append(time.perf_counter() - t0)
    return float(np.mean(times)), float(np.std(times))


def test_table19_svd_overhead(benchmark, rng):
    set_seed(19)

    specs = {
        "ResNet-18 (paper: 1.32s)": (
            lambda: scaled_resnet18(classes=10, width=0.25),
            lambda m: resnet18_hybrid_config(m),
        ),
        "VGG-19 (paper: 1.52s)": (
            lambda: scaled_vgg19(classes=10, width=0.25),
            lambda m: vgg19_hybrid_config(),
        ),
        "LSTM (paper: 6.58s)": (
            lambda: LSTMLanguageModel(vocab_size=300, embed_dim=128, num_layers=2),
            lambda m: lstm_lm_hybrid_config(),
        ),
        "Transformer (paper: 5.41s)": (
            lambda: Seq2SeqTransformer(vocab_size=120, d_model=64, n_heads=4,
                                       num_layers=3, max_len=32),
            lambda m: transformer_hybrid_config(),
        ),
    }

    def experiment():
        return {name: _svd_seconds(mf, cf) for name, (mf, cf) in specs.items()}

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[name, mean, std] for name, (mean, std) in res.items()]
    print_table("Table 19: SVD factorization cost (5 trials)",
                ["Model", "Mean (s)", "Std (s)"], rows)

    # One-time SVD must be cheap relative to a single training epoch of the
    # same (scaled) ResNet-18 — the paper reports 0.17% of an epoch; we
    # allow anything under 50%.
    set_seed(19)
    train, _, _ = image_loaders(np.random.default_rng(19), n=256, classes=4)
    model = scaled_resnet18(classes=4, width=0.25)
    trainer = Trainer(model, SGD(model.parameters(), lr=0.01))
    t0 = time.perf_counter()
    trainer.train_epoch(train)
    epoch_seconds = time.perf_counter() - t0
    svd_seconds = res["ResNet-18 (paper: 1.32s)"][0]
    print(f"\nSVD / epoch ratio: {svd_seconds / epoch_seconds:.4f} "
          f"(paper: 0.0017 on V100)")
    assert svd_seconds < 0.5 * epoch_seconds
