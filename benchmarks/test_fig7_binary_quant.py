"""Appendix Figure 7 — why "cheap" 1-bit quantization loses in practice:
stochastic binary quantization (Suresh et al. 2016) vs SGD vs Pufferfish.

Paper (16 nodes, ResNet-50): compression is fast (12.1 s) but *decoding*
dominates (118.4 s/epoch) because allgather hands every worker 16 bit
streams to unpack and aggregate, and allgather itself loses to allreduce
at scale.

Claims under test: (i) binary quantization's decode cost exceeds its
encode cost and grows with the node count; (ii) its wire bytes are ~32x
smaller than fp32; (iii) Pufferfish beats it end-to-end in the paper's
bandwidth regime.
"""

import numpy as np

from harness import image_loaders, print_table
from repro.compression import NoCompression, StochasticBinary
from repro.core import build_hybrid
from repro.data import DataLoader, shard_dataset
from repro.distributed import ClusterSpec, DistributedTrainer
from repro.models import resnet50_hybrid_config
from repro.models import resnet50 as make_resnet50
from repro.optim import SGD
from repro.utils import set_seed

BANDWIDTH = 1.0  # idle-machine calibration; see test_fig4_distributed.py
WORKER_BATCH = 8


def _run(model, compressor_factory, n_nodes, seed=77):
    set_seed(seed)
    n = WORKER_BATCH * n_nodes
    train, _, _ = image_loaders(np.random.default_rng(seed), n=max(n, 64), classes=4,
                                batch=WORKER_BATCH)
    x = np.concatenate([xb for xb, _ in train])[:n]
    y = np.concatenate([yb for _, yb in train])[:n]
    loaders = [DataLoader(sx, sy, WORKER_BATCH) for sx, sy in shard_dataset(x, y, n_nodes)]
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
    trainer = DistributedTrainer(
        model, opt, ClusterSpec(n_nodes, bandwidth_gbps=BANDWIDTH),
        compressor=compressor_factory(n_nodes),
    )
    return trainer.train_epoch(loaders)


def test_fig7_binary_quantization_breakdown(benchmark, rng):
    n_nodes = 16

    def experiment():
        out = {}
        v = make_resnet50(num_classes=4, width_mult=0.125, small_input=True)
        out["SGD"] = _run(v, NoCompression, n_nodes)

        base = make_resnet50(num_classes=4, width_mult=0.125, small_input=True)
        hybrid, _ = build_hybrid(base, resnet50_hybrid_config(base))
        out["Pufferfish"] = _run(hybrid, NoCompression, n_nodes)

        v2 = make_resnet50(num_classes=4, width_mult=0.125, small_input=True)
        out["BinaryQuant"] = _run(v2, lambda n: StochasticBinary(n), n_nodes)

        # Decode scaling: same model, fewer nodes.
        v3 = make_resnet50(num_classes=4, width_mult=0.125, small_input=True)
        out["BinaryQuant@4"] = _run(v3, lambda n: StochasticBinary(n), 4)
        return out

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name, tl.compute, tl.encode, tl.comm, tl.decode, tl.total,
         tl.bytes_per_iteration / 1e6]
        for name, tl in res.items()
    ]
    print_table(
        "Fig 7: stochastic binary quantization vs SGD vs Pufferfish (16 nodes)",
        ["Method", "Compute", "Encode", "Comm", "Decode", "Total", "MB/iter"],
        rows,
    )

    bq = res["BinaryQuant"]
    # (i) decode dominates encode (paper: 118.4 s vs 12.1 s) and grows
    # with the node count.
    assert bq.decode > bq.encode
    assert bq.decode > res["BinaryQuant@4"].decode
    # (ii) ~32x wire compression (1 bit + 2 floats per tensor).
    assert bq.bytes_per_iteration < res["SGD"].bytes_per_iteration / 20
    # (iii) Pufferfish wins end-to-end against the quantizer's
    # decode+allgather stack in this regime (paper's Fig 7 conclusion).
    assert res["Pufferfish"].total < 1.15 * bq.total
