"""Compression bake-off — factorized models vs explicit gradient
compressors, head to head (the paper's Section 2/6 argument, measured).

Three layers of evidence, all seeded:

* **Trainer runs** — a VGG-11-class model trains for real iterations
  under the compressed-overlap DDP path (``overlap=True`` with an
  allreduce-compatible compressor: per-bucket encode as gradients
  arrive), for SGD, PowerSGD, AB-Training, variance gating, and the
  factorized (Pufferfish) variant.  Wire bytes, bucket structure and
  modeled comm seconds land in the artifact.
* **Wire sweep** — the LSTM LM's gradient is encoded directly for three
  protocol steps (covering AB-Training's resync/A/B schedule), giving
  each compressor's per-step bytes without a trainer in the loop.
* **Crossover grid** — from the recorded (shape-determined) bytes plus
  MAC-derived compute/encode seconds on a fixed reference accelerator,
  the modeled per-iteration time for every method across node counts ×
  bandwidths × topologies (flat ring vs two-level hierarchy); the
  argmin per cell is the crossover table EXPERIMENTS.md renders.

A chaos run (PowerSGD + compressed overlap under the full fault spec)
pins the seeded fault-event counts, proving compression does not perturb
the fault timeline.

Deterministic quantities are gated against
``benchmarks/baselines/compression_baseline.json`` by
``benchmarks/check_compression_regression.py``: structure and
shape-determined bytes exactly, variance-gated bytes and modeled seconds
to a band.  Results are written to ``BENCH_compression.json``.
"""

import hashlib
import json
import platform
import time

import numpy as np
import pytest

from harness import print_table
from repro import __version__
from repro.compression import make_compressor
from repro.core import build_hybrid
from repro.data import DataLoader, make_cifar_like, shard_dataset
from repro.distributed import (
    ClusterSpec,
    DistributedTrainer,
    HierarchicalSpec,
    allreduce_cost,
    parse_fault_spec,
)
from repro.metrics import measure_macs
from repro.models import (
    LSTMLanguageModel,
    lstm_lm_hybrid_config,
    vgg11,
    vgg11_hybrid_config,
)
from repro.optim import SGD
from repro.utils import set_seed

COMPRESSION_BENCH_FILE = "BENCH_compression.json"

NODES = 4
BATCH = 8
ITERS = 2
BANDWIDTH_GBPS = 0.3
BUCKET_MB = 0.25
SEED = 1301

# The modeled reference accelerator for the crossover grid: a paper-class
# GPU sustaining 50 GFLOP/s on these small kernels.  Purely documentary —
# every cell shares it, so the *ordering* (the gated quantity) depends
# only on the byte/MAC ratios.
FLOPS_REF = 50e9
# Backward ~ 2x forward.
TRAIN_FLOPS_PER_MAC = 3.0

COMPRESSORS = ("sgd", "powersgd", "abtrain", "vargate")
# Wire bytes that are pure functions of parameter shapes (+ the protocol
# schedule) — gated exactly.  Variance gating's bytes depend on gradient
# values, so they are band-gated instead.
SHAPE_DETERMINED = ("sgd", "powersgd", "abtrain")

CHAOS_FAULTS = (
    "seed=97,straggler=lognormal:0.6:0.5,drop=0.25,link=0.5:0.25:2,"
    "failure=0.1:rejoin:0.5"
)

_SCENARIOS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_compression_artifact():
    yield
    data = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "repro_version": __version__,
        "python": platform.python_version(),
        "scenarios": _SCENARIOS,
    }
    with open(COMPRESSION_BENCH_FILE, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# Model + data builders (seeded)


def _vgg():
    set_seed(SEED)
    return vgg11(num_classes=4, width_mult=0.125)


def _vgg_factorized():
    base = _vgg()
    hybrid, _ = build_hybrid(base, vgg11_hybrid_config(rank_ratio=0.25))
    return hybrid


def _lstm():
    set_seed(SEED + 1)
    return LSTMLanguageModel(vocab_size=64, embed_dim=32, num_layers=1, dropout=0.0)


def _lstm_factorized():
    base = _lstm()
    hybrid, _ = build_hybrid(base, lstm_lm_hybrid_config(rank_ratio=0.25))
    return hybrid


def _vgg_loaders():
    rng = np.random.default_rng(SEED)
    ds = make_cifar_like(n=NODES * BATCH * ITERS, num_classes=4, rng=rng)
    return [DataLoader(x, y, BATCH) for x, y in shard_dataset(ds.images, ds.labels, NODES)]


def _params_digest(model) -> str:
    h = hashlib.sha256()
    for name, p in model.named_parameters():
        h.update(name.encode())
        h.update(np.ascontiguousarray(p.data, dtype=np.float32).tobytes())
    return h.hexdigest()[:16]


def _run_vgg(compressor_name: str, model=None, faults=None):
    model = model if model is not None else _vgg()
    loaders = _vgg_loaders()
    trainer = DistributedTrainer(
        model,
        SGD(model.parameters(), lr=0.05, momentum=0.9),
        ClusterSpec(NODES, bandwidth_gbps=BANDWIDTH_GBPS),
        compressor=make_compressor(compressor_name, NODES),
        overlap=True,
        bucket_mb=BUCKET_MB,
        faults=parse_fault_spec(faults) if faults else None,
    )
    tl = trainer.train_epoch(loaders)
    return model, trainer, tl


# ---------------------------------------------------------------------------
# Trainer runs: VGG under compressed-bucket overlap


def test_vgg_trainer_runs(benchmark):
    """Real compressed-overlap epochs for every allreduce-compatible
    compressor plus the factorized variant; wire bytes and modeled comm
    seconds are the gated outputs."""

    def experiment():
        out = {}
        for name in COMPRESSORS:
            out[name] = _run_vgg(name)
        out["factorized"] = _run_vgg("sgd", model=_vgg_factorized())
        return out

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    payload_sgd = None
    for label, (model, trainer, tl) in runs.items():
        n_params = int(sum(p.data.size for p in model.parameters()))
        payload = n_params * 4
        if label == "sgd":
            payload_sgd = payload
        per_iter = [
            int(sum(b["nbytes"] for b in ev["buckets"]))
            for ev in trainer.overlap_events
        ]
        mean_bytes = float(np.mean(per_iter))
        comm_modeled = float(
            sum(ev["comm_total_s"] - ev["tail_penalty_s"]
                for ev in trainer.overlap_events)
        )
        scenario = {
            "compressor": trainer.compressor.name,
            "n_params": n_params,
            "payload_bytes": payload,
            "n_buckets": len(trainer.overlap_events[0]["buckets"]),
            "iterations": tl.iterations,
            "wire_bytes_mean": mean_bytes,
            "comm_modeled_s": round(comm_modeled, 9),
            "compression_ratio": round(payload / mean_bytes, 4),
            "params_digest": _params_digest(model),  # documentary
        }
        if label in SHAPE_DETERMINED or label == "factorized":
            scenario["wire_bytes_per_iter"] = per_iter
        _SCENARIOS[f"train:vgg:{label}"] = scenario
        rows.append(
            [label, n_params, mean_bytes / 1e3, comm_modeled,
             payload / mean_bytes]
        )

    print_table(
        f"VGG-11-class compressed-overlap epoch ({NODES} nodes @ "
        f"{BANDWIDTH_GBPS} Gbps, {ITERS} iterations)",
        ["Method", "Params", "Wire KB/iter", "Modeled comm (s)", "Ratio"],
        rows,
    )

    # Headline shapes: compression compresses; factorization shrinks the
    # payload without any codec on the wire.
    sgd = _SCENARIOS["train:vgg:sgd"]
    assert _SCENARIOS["train:vgg:powersgd"]["wire_bytes_mean"] < sgd["wire_bytes_mean"]
    assert _SCENARIOS["train:vgg:abtrain"]["wire_bytes_mean"] < sgd["wire_bytes_mean"]
    assert _SCENARIOS["train:vgg:factorized"]["payload_bytes"] < payload_sgd
    for label in ("sgd", "powersgd", "abtrain", "vargate", "factorized"):
        s = _SCENARIOS[f"train:vgg:{label}"]
        assert s["iterations"] == ITERS
        assert s["wire_bytes_mean"] > 0


# ---------------------------------------------------------------------------
# Wire sweep: LSTM gradients encoded directly (3 protocol steps)


def _wire_sweep(model, compressor_name: str, steps=3, world=NODES, seed=SEED + 7):
    comp = make_compressor(compressor_name, world)
    shapes = [p.data.shape for p in model.parameters()]
    rng = np.random.default_rng(seed)
    per_step = []
    for _ in range(steps):
        per_worker = [
            [rng.standard_normal(s).astype(np.float32) for s in shapes]
            for _ in range(world)
        ]
        results = [comp.encode(w, per_worker[w]) for w in range(world)]
        for res in results:
            assert res.nbytes >= comp.min_payload_nbytes(res)
        comp.decode_aggregate(results)
        comp.advance_step()
        per_step.append(max(res.nbytes for res in results))
    return per_step


def test_lstm_wire_sweep():
    """Per-step wire bytes for the LSTM LM's gradient across the
    protocol schedule (resync/A/B for AB-Training)."""
    model = _lstm()
    n_params = int(sum(p.data.size for p in model.parameters()))
    payload = n_params * 4

    rows = []
    for name in COMPRESSORS:
        steps = _wire_sweep(model, name)
        scenario = {
            "compressor": name,
            "n_params": n_params,
            "payload_bytes": payload,
            "wire_bytes_mean": float(np.mean(steps)),
            "compression_ratio": round(payload / float(np.mean(steps)), 4),
        }
        if name in SHAPE_DETERMINED:
            scenario["wire_bytes_per_step"] = [int(s) for s in steps]
        _SCENARIOS[f"wire:lstm:{name}"] = scenario
        rows.append([name, payload / 1e3] + [s / 1e3 for s in steps])

    factorized = _lstm_factorized()
    f_params = int(sum(p.data.size for p in factorized.parameters()))
    _SCENARIOS["wire:lstm:factorized"] = {
        "compressor": "sgd",
        "n_params": f_params,
        "payload_bytes": f_params * 4,
        "wire_bytes_mean": float(f_params * 4),
        "wire_bytes_per_step": [f_params * 4] * 3,
        "compression_ratio": round(payload / (f_params * 4), 4),
    }
    rows.append(["factorized", payload / 1e3] + [f_params * 4 / 1e3] * 3)

    print_table(
        "LSTM LM wire bytes per protocol step (KB, max over workers)",
        ["Method", "Full payload", "Step 0", "Step 1", "Step 2"],
        rows,
    )

    ab = _SCENARIOS["wire:lstm:abtrain"]["wire_bytes_per_step"]
    # Resync sends the full matrices; factor steps are rank-r slivers.
    assert ab[0] > ab[1] and ab[0] > ab[2]
    assert f_params < n_params


# ---------------------------------------------------------------------------
# Crossover grid: modeled per-iteration time across topologies


def _matrix_shapes(model):
    return [
        (p.data.shape[0], int(np.prod(p.data.shape[1:])))
        for p in model.parameters()
        if p.data.ndim >= 2
    ]


def _encode_flops(model, method: str) -> float:
    """Analytic per-step codec FLOPs from the gradient's matrix shapes.

    PowerSGD pays two rank-r GEMMs per matrix every step (P = MQ, then
    Q = M^T P); AB-Training pays one projection per factor step and none
    at resync (amortized over its window); SGD and the factorized model
    have no codec at all — the paper's core argument.
    """
    if method in ("sgd", "factorized"):
        return 0.0
    shapes = _matrix_shapes(model)
    if method == "powersgd":
        r = 2
        return float(sum(4.0 * n * m * r for n, m in shapes))
    if method == "abtrain":
        r, window = 4, 10
        per_factor_step = sum(2.0 * n * m * r for n, m in shapes)
        return float(per_factor_step * (window - 1) / window)
    raise ValueError(method)


def test_crossover_grid():
    """The factorized-vs-compressed head-to-head: argmin modeled
    per-iteration seconds per (model, topology, nodes, bandwidth) cell.
    Winners are exact-gated; any change is a behavior change."""
    needed = [f"train:vgg:{n}" for n in SHAPE_DETERMINED] + [
        "train:vgg:factorized"
    ] + [f"wire:lstm:{n}" for n in SHAPE_DETERMINED] + ["wire:lstm:factorized"]
    missing = [k for k in needed if k not in _SCENARIOS]
    assert not missing, f"run order broke: missing {missing}"

    models = {
        "vgg": (_vgg(), _vgg_factorized(), np.zeros((1, 3, 32, 32), np.float32)),
        "lstm": (_lstm(), _lstm_factorized(), np.zeros((4, 1), np.int64)),
    }
    macs = {}
    for mname, (full, fact, example) in models.items():
        macs[mname] = {
            "full": int(measure_macs(full, example)),
            "factorized": int(measure_macs(fact, example)),
        }

    def mean_bytes(model_key: str, method: str) -> float:
        if model_key == "vgg":
            key = f"train:vgg:{method}"
        else:
            key = f"wire:lstm:{method}"
        return _SCENARIOS[key]["wire_bytes_mean"]

    winners = {}
    cells = {}
    methods = list(SHAPE_DETERMINED) + ["factorized"]
    for mname, (full, fact, _) in models.items():
        for topo in ("flat", "hier"):
            for nodes in (4, 16):
                for bw in (0.3, 10.0):
                    if topo == "flat":
                        spec = ClusterSpec(nodes, bandwidth_gbps=bw)
                    else:
                        spec = HierarchicalSpec(
                            max(nodes // 2, 1), 2,
                            inter_bandwidth_gbps=bw,
                            intra_bandwidth_gbps=100.0,
                        )
                    times = {}
                    for method in methods:
                        model = fact if method == "factorized" else full
                        mac = macs[mname][
                            "factorized" if method == "factorized" else "full"
                        ]
                        compute_s = mac * TRAIN_FLOPS_PER_MAC / FLOPS_REF
                        encode_s = _encode_flops(model, method) / FLOPS_REF
                        comm_s = allreduce_cost(mean_bytes(mname, method), spec)
                        times[method] = compute_s + encode_s + comm_s
                    cell = f"{mname}:{topo}:{nodes}n:{bw}gbps"
                    winners[cell] = min(times, key=times.get)
                    cells[cell] = {k: round(v, 9) for k, v in times.items()}

    _SCENARIOS["crossover"] = {
        "flops_ref": FLOPS_REF,
        "macs": macs,
        "winners": winners,
        "cells": cells,  # documentary; the gate pins only the winners
    }

    rows = [
        [cell, cells[cell][winners[cell]], winners[cell]]
        for cell in sorted(winners)
    ]
    print_table(
        "Crossover grid: modeled per-iteration seconds, winner per cell",
        ["Cell", "Best iter (s)", "Winner"],
        rows,
    )

    # The paper's claim: at low bandwidth the factorized model wins the
    # end-to-end iteration (no codec, smaller payload) on the big grid
    # cells; at high bandwidth compute dominates and factorized still
    # holds via fewer MACs — but the grid must contain real competition.
    assert len(winners) == 2 * 2 * 2 * 2
    assert set(winners.values()) <= set(methods)
    assert "factorized" in winners.values()


# ---------------------------------------------------------------------------
# Fault profile: chaos does not bend to compression


def test_fault_profile_counts():
    """Seeded chaos over the compressed-overlap path: event counts are a
    pure function of the fault seed (exact-gated)."""
    _, trainer, tl = _run_vgg("powersgd", faults=CHAOS_FAULTS)
    events = [e.as_dict() for e in trainer.faults.events]
    by_kind: dict[str, int] = {}
    for e in events:
        by_kind[e["kind"]] = by_kind.get(e["kind"], 0) + 1
    _SCENARIOS["faults:powersgd"] = {
        "events": len(events),
        "by_kind": dict(sorted(by_kind.items())),
        "iterations": tl.iterations,
    }
    print_table(
        f"Chaos run, PowerSGD compressed overlap (spec: {CHAOS_FAULTS})",
        ["Kind", "Count"],
        [[k, v] for k, v in sorted(by_kind.items())] or [["(none)", 0]],
    )
    assert tl.iterations == ITERS
    assert events, "chaos spec injected nothing — not exercising the fault path"
