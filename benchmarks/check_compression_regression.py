#!/usr/bin/env python
"""CI regression gate for the compression bake-off benchmark.

Compares a fresh ``BENCH_compression.json`` against the committed
baseline (``benchmarks/baselines/compression_baseline.json``).  Three
kinds of check:

* **structure** — compressor names, parameter/payload/bucket counts,
  shape-determined wire bytes (SGD, PowerSGD, AB-Training — pure
  functions of parameter shapes and the protocol schedule), the
  crossover winners, MAC counts, and the seeded fault-event census must
  match exactly: any drift is a behavior change, not noise;
* **modeled quantities** — mean wire bytes (variance gating's are
  gradient-value dependent) and the α–β modeled comm seconds must stay
  within the threshold (default 20%) of baseline;
* **headline** — the claims EXPERIMENTS.md prints are re-asserted on the
  *current* artifact: compressors actually compress relative to SGD, the
  factorized model's payload is smaller than the full model's, and the
  factorized variant wins at least one crossover cell.

Usage::

    python benchmarks/check_compression_regression.py \
        [--current BENCH_compression.json] \
        [--baseline benchmarks/baselines/compression_baseline.json] \
        [--threshold 0.20]
"""

from __future__ import annotations

from gatelib import BandFields, ExactFields, Gate, run_gate


def invariants(name: str, cur: dict) -> list[str]:
    failures: list[str] = []
    if "compression_ratio" in cur and cur["compression_ratio"] <= 0:
        failures.append(f"{name}.compression_ratio: {cur['compression_ratio']} <= 0")
    if "wire_bytes_mean" in cur and cur["wire_bytes_mean"] <= 0:
        failures.append(f"{name}.wire_bytes_mean: {cur['wire_bytes_mean']} <= 0")
    if name == "crossover" and not cur.get("winners"):
        failures.append("crossover.winners is empty")
    if name.startswith("faults:") and cur.get("events", 0) <= 0:
        failures.append(f"{name}: chaos run injected no events")
    return failures


def headline(current: dict) -> list[str]:
    failures: list[str] = []
    sc = current.get("scenarios", current)

    def mean(key: str) -> float:
        return sc[key]["wire_bytes_mean"]

    try:
        for comp in ("powersgd", "abtrain"):
            if mean(f"train:vgg:{comp}") >= mean("train:vgg:sgd"):
                failures.append(
                    f"headline: {comp} wire bytes "
                    f"({mean(f'train:vgg:{comp}'):.0f}B) not below SGD "
                    f"({mean('train:vgg:sgd'):.0f}B)"
                )
        if (
            sc["train:vgg:factorized"]["payload_bytes"]
            >= sc["train:vgg:sgd"]["payload_bytes"]
        ):
            failures.append("headline: factorized payload not below full payload")
        winners = set(sc["crossover"]["winners"].values())
        if "factorized" not in winners:
            failures.append(
                f"headline: factorized wins no crossover cell (winners: {winners})"
            )
    except KeyError as e:
        failures.append(f"headline: required scenario missing ({e})")
    return failures


GATE = Gate(
    name="compression",
    default_current="BENCH_compression.json",
    default_baseline="benchmarks/baselines/compression_baseline.json",
    default_threshold=0.20,
    rules=(
        ExactFields(
            (
                "compressor",
                "n_params",
                "payload_bytes",
                "n_buckets",
                "iterations",
                "wire_bytes_per_iter",
                "wire_bytes_per_step",
                "winners",
                "macs",
                "flops_ref",
                "events",
                "by_kind",
            ),
            note="bake-off structure / shape-determined bytes changed",
        ),
        BandFields(("wire_bytes_mean",), note="wire bytes drifted", unit="B"),
        BandFields(("comm_modeled_s",), note="modeled comm drifted"),
    ),
    invariants=invariants,
    headline=headline,
    description=__doc__.splitlines()[0],
)


if __name__ == "__main__":
    raise SystemExit(run_gate(GATE))
