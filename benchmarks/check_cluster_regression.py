#!/usr/bin/env python
"""CI regression gate for the cluster control-plane benchmark.

Compares a fresh ``BENCH_cluster.json`` against the committed baseline
(``benchmarks/baselines/cluster_baseline.json``).  Every scenario is
driven by pinned latency profiles and registry parameter arithmetic, so
the whole artifact is a pure function of seeds and configs: the
comparison is an exact deep-diff — timeline digests included — and any
drift is a behavior change in the placement engine, scenario generator,
policies, autoscaler loop or canary gate, never noise.

On top of the diff, the gate re-asserts the headline claims from the
current artifact:

* fleet cost — the factorized fleet serves the same request stream at an
  equal-or-lower shed rate on strictly fewer hosts than full-rank;
* autoscale — steady-state shed stays within the configured target and
  the event timeline shows zero hysteresis oscillations;
* canary — the healthy rollout promotes, the degraded one rolls back.

Usage::

    python benchmarks/check_cluster_regression.py \
        [--current BENCH_cluster.json] \
        [--baseline benchmarks/baselines/cluster_baseline.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _deep_diff(cur, base, path: str, failures: list[str]) -> None:
    """Record every leaf where ``cur`` differs from ``base``."""
    if isinstance(base, dict) and isinstance(cur, dict):
        for key in sorted(set(base) | set(cur)):
            if key not in cur:
                failures.append(f"{path}.{key}: missing from current run")
            elif key not in base:
                failures.append(f"{path}.{key}: not in baseline (new key)")
            else:
                _deep_diff(cur[key], base[key], f"{path}.{key}", failures)
        return
    if isinstance(base, list) and isinstance(cur, list):
        if len(base) != len(cur):
            failures.append(f"{path}: length {len(cur)} != baseline {len(base)}")
            return
        for i, (c, b) in enumerate(zip(cur, base)):
            _deep_diff(c, b, f"{path}[{i}]", failures)
        return
    if cur != base:
        failures.append(f"{path}: {cur!r} != baseline {base!r}")


def _check_headline(current: dict, failures: list[str]) -> None:
    scenarios = current.get("scenarios", {})

    fleet = scenarios.get("fleet_cost")
    if fleet is None:
        failures.append("fleet_cost: scenario missing from current run")
    else:
        full = fleet["variants"]["full"]
        fact = fleet["variants"]["factorized"]
        if not fact["n_hosts"] < full["n_hosts"]:
            failures.append(
                f"fleet_cost: factorized hosts {fact['n_hosts']} not strictly "
                f"below full {full['n_hosts']}"
            )
        if fact["shed_rate"] > full["shed_rate"]:
            failures.append(
                f"fleet_cost: factorized shed {fact['shed_rate']} above "
                f"full {full['shed_rate']}"
            )
        if fact["n_requests"] != full["n_requests"]:
            failures.append("fleet_cost: variants saw different request streams")

    scale = scenarios.get("autoscale_spike")
    if scale is None:
        failures.append("autoscale_spike: scenario missing from current run")
    else:
        if scale["steady_state_shed"] > scale["shed_target"]:
            failures.append(
                f"autoscale_spike: steady-state shed {scale['steady_state_shed']} "
                f"above target {scale['shed_target']}"
            )
        if scale["oscillations"] != 0:
            failures.append(
                f"autoscale_spike: {scale['oscillations']} hysteresis "
                "oscillations in the event timeline"
            )

    canary = scenarios.get("canary_rollout")
    if canary is None:
        failures.append("canary_rollout: scenario missing from current run")
    else:
        if canary["healthy"]["status"] != "promoted":
            failures.append(
                f"canary_rollout: healthy run {canary['healthy']['status']!r}, "
                "expected promoted"
            )
        if canary["slow_canary"]["status"] != "rolled_back":
            failures.append(
                f"canary_rollout: slow-canary run "
                f"{canary['slow_canary']['status']!r}, expected rolled_back"
            )


def check(current: dict, baseline: dict) -> list[str]:
    failures: list[str] = []
    cur_scenarios = current.get("scenarios", {})
    for name, base in sorted(baseline["scenarios"].items()):
        cur = cur_scenarios.get(name)
        if cur is None:
            failures.append(f"{name}: scenario missing from current run")
            continue
        _deep_diff(cur, base, name, failures)
    _check_headline(current, failures)
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", default="BENCH_cluster.json")
    ap.add_argument(
        "--baseline", default="benchmarks/baselines/cluster_baseline.json"
    )
    args = ap.parse_args(argv)

    for path in (args.current, args.baseline):
        if not Path(path).exists():
            print(f"cluster regression gate: missing {path}", file=sys.stderr)
            return 2
    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())

    failures = check(current, baseline)
    n = len(baseline["scenarios"])
    if failures:
        print(f"cluster regression gate: {len(failures)} failure(s) across {n} scenarios")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print(
        f"cluster regression gate: {n} baseline scenarios OK "
        "(pinned-profile deterministic, exact diff)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
