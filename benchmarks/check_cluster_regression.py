#!/usr/bin/env python
"""CI regression gate for the cluster control-plane benchmark.

Compares a fresh ``BENCH_cluster.json`` against the committed baseline
(``benchmarks/baselines/cluster_baseline.json``).  Every scenario is
driven by pinned latency profiles and registry parameter arithmetic, so
the whole artifact is a pure function of seeds and configs: the
comparison is an exact deep-diff — timeline digests included — and any
drift is a behavior change in the placement engine, scenario generator,
policies, autoscaler loop or canary gate, never noise.

On top of the diff, the gate re-asserts the headline claims from the
current artifact:

* fleet cost — the factorized fleet serves the same request stream at an
  equal-or-lower shed rate on strictly fewer hosts than full-rank;
* autoscale — steady-state shed stays within the configured target and
  the event timeline shows zero hysteresis oscillations;
* canary — the healthy rollout promotes, the degraded one rolls back.

Usage::

    python benchmarks/check_cluster_regression.py \
        [--current BENCH_cluster.json] \
        [--baseline benchmarks/baselines/cluster_baseline.json]
"""

from __future__ import annotations

from gatelib import DeepExact, Gate, run_gate


def headline(current: dict) -> list[str]:
    failures: list[str] = []
    scenarios = current.get("scenarios", {})

    fleet = scenarios.get("fleet_cost")
    if fleet is None:
        failures.append("fleet_cost: scenario missing from current run")
    else:
        full = fleet["variants"]["full"]
        fact = fleet["variants"]["factorized"]
        if not fact["n_hosts"] < full["n_hosts"]:
            failures.append(
                f"fleet_cost: factorized hosts {fact['n_hosts']} not strictly "
                f"below full {full['n_hosts']}"
            )
        if fact["shed_rate"] > full["shed_rate"]:
            failures.append(
                f"fleet_cost: factorized shed {fact['shed_rate']} above "
                f"full {full['shed_rate']}"
            )
        if fact["n_requests"] != full["n_requests"]:
            failures.append("fleet_cost: variants saw different request streams")

    scale = scenarios.get("autoscale_spike")
    if scale is None:
        failures.append("autoscale_spike: scenario missing from current run")
    else:
        if scale["steady_state_shed"] > scale["shed_target"]:
            failures.append(
                f"autoscale_spike: steady-state shed {scale['steady_state_shed']} "
                f"above target {scale['shed_target']}"
            )
        if scale["oscillations"] != 0:
            failures.append(
                f"autoscale_spike: {scale['oscillations']} hysteresis "
                "oscillations in the event timeline"
            )

    canary = scenarios.get("canary_rollout")
    if canary is None:
        failures.append("canary_rollout: scenario missing from current run")
    else:
        if canary["healthy"]["status"] != "promoted":
            failures.append(
                f"canary_rollout: healthy run {canary['healthy']['status']!r}, "
                "expected promoted"
            )
        if canary["slow_canary"]["status"] != "rolled_back":
            failures.append(
                f"canary_rollout: slow-canary run "
                f"{canary['slow_canary']['status']!r}, expected rolled_back"
            )
    return failures


GATE = Gate(
    name="cluster",
    default_current="BENCH_cluster.json",
    default_baseline="benchmarks/baselines/cluster_baseline.json",
    rules=(DeepExact(),),
    headline=headline,
    ok_line=lambda n, t: (
        f"cluster regression gate: {n} baseline scenarios OK "
        "(pinned-profile deterministic, exact diff)"
    ),
    description=__doc__.splitlines()[0],
)


if __name__ == "__main__":
    raise SystemExit(run_gate(GATE))
