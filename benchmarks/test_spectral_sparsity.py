"""Spectral-sparsity study — backing the paper's closing claim:

    "Winning tickets seem to be in abundance once we seek models that are
    sparse in their spectral domain."

We measure, before vs after (warm-up) training, each layer's
* rank needed to retain 90% of spectral energy, and
* effective rank (entropy-based),

and check that training *concentrates* spectra: the energy-90% rank drops
relative to the random initialization, which is precisely why a
post-warm-up truncated SVD is a good initializer (Section 3's vanilla
warm-up argument).
"""

import numpy as np

from harness import image_loaders, print_table
from repro.core import Trainer, effective_rank, energy_rank, layer_spectra
from repro.models import vgg11
from repro.optim import SGD
from repro.utils import set_seed

EPOCHS = 5


def test_training_concentrates_spectra(benchmark, rng):
    def experiment():
        set_seed(31)
        train, val, _ = image_loaders(np.random.default_rng(31), n=320, classes=4, noise=0.2)
        model = vgg11(num_classes=4, width_mult=0.25)
        before = {
            path: (energy_rank(s, 0.9), effective_rank(s))
            for path, s in layer_spectra(model).items()
        }
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
        Trainer(model, opt).fit(train, val, epochs=EPOCHS)
        after = {
            path: (energy_rank(s, 0.9), effective_rank(s))
            for path, s in layer_spectra(model).items()
        }
        return before, after

    before, after = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [path, before[path][0], after[path][0],
         round(before[path][1], 1), round(after[path][1], 1)]
        for path in before
    ]
    print_table(
        "Spectral sparsity: energy-90% rank and effective rank, init vs trained",
        ["Layer", "E90 rank (init)", "E90 rank (trained)",
         "eff rank (init)", "eff rank (trained)"],
        rows,
    )

    # Aggregate claim: training lowers the mean energy-90% rank.
    mean_before = np.mean([v[0] for v in before.values()])
    mean_after = np.mean([v[0] for v in after.values()])
    print(f"\nmean energy-90% rank: {mean_before:.1f} (init) -> {mean_after:.1f} (trained)")
    assert mean_after < mean_before
    # And no layer's spectrum becomes *less* concentrated by a big margin.
    for path in before:
        assert after[path][0] <= before[path][0] * 1.1 + 2
