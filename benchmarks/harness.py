"""Shared utilities for the per-table / per-figure benchmark harnesses.

Every benchmark prints the paper's rows next to the measured ones, so the
captured output (``pytest benchmarks/ --benchmark-only -s``) doubles as the
EXPERIMENTS.md source material.  Workloads are scaled down for CPU (see
DESIGN.md "Scaling policy") — the assertions check *shape* (direction and
rough factors), not absolute numbers.
"""

from __future__ import annotations

import json
import platform
import time


from repro import __version__, nn
from repro.data import DataLoader, make_cifar_like, make_imagenet_like
from repro.observability import get_registry
from repro.optim import SGD, MultiStepLR

__all__ = [
    "print_table",
    "print_series",
    "record_bench",
    "flush_bench_metrics",
    "BENCH_METRICS_FILE",
    "image_loaders",
    "imagenet_loaders",
    "scaled_vgg19",
    "scaled_resnet18",
    "scaled_resnet50",
    "scaled_wrn50",
    "train_classifier",
    "fmt",
]

# ---------------------------------------------------------------------------
# Machine-readable benchmark record (the CI perf artifact)
# ---------------------------------------------------------------------------

BENCH_METRICS_FILE = "BENCH_observability.json"
_BENCH_RECORDS: list[dict] = []


def record_bench(kind: str, title: str, payload: dict) -> None:
    """Append one benchmark result to the session's JSON record."""
    _BENCH_RECORDS.append({"kind": kind, "title": title, **payload})


def flush_bench_metrics(path: str | None = None) -> str:
    """Write every recorded table/series plus a metrics-registry snapshot.

    Called from the benchmarks ``conftest`` at session end, so a
    ``pytest benchmarks`` run always leaves a CI-diffable
    ``BENCH_observability.json`` behind.
    """
    path = path or BENCH_METRICS_FILE
    data = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "repro_version": __version__,
        "python": platform.python_version(),
        "records": _BENCH_RECORDS,
        "metrics": get_registry().snapshot(),
    }
    with open(path, "w") as f:
        json.dump(data, f, indent=2, default=str)
    return path


def fmt(v) -> str:
    if isinstance(v, float):
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        return f"{v:.4g}"
    if isinstance(v, int) and abs(v) >= 1000:
        return f"{v:,}"
    return str(v)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Aligned plain-text table for benchmark output."""
    record_bench("table", title, {"headers": list(headers), "rows": [list(r) for r in rows]})
    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for r in str_rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))


def print_series(title: str, xlabel: str, series: dict[str, list]) -> None:
    """Print named series (the data behind a figure)."""
    record_bench(
        "series", title, {"xlabel": xlabel, "series": {k: list(v) for k, v in series.items()}}
    )
    print(f"\n=== {title} (x = {xlabel}) ===")
    for name, values in series.items():
        print(f"{name:>28}: " + " ".join(fmt(v) for v in values))


# ---------------------------------------------------------------------------
# Scaled workloads
# ---------------------------------------------------------------------------

def image_loaders(rng, n=384, classes=4, noise=0.2, batch=32):
    """Synthetic CIFAR-10 stand-in split into train/val loaders."""
    ds = make_cifar_like(n=n, num_classes=classes, noise=noise, rng=rng)
    tr, va = ds.split(int(0.8 * n))
    return (
        DataLoader(tr.images, tr.labels, batch, shuffle=True),
        DataLoader(va.images, va.labels, 2 * batch),
        ds,
    )


def imagenet_loaders(rng, n=256, classes=8, size=32, noise=0.2, batch=32):
    """Synthetic ImageNet stand-in (more classes, finer structure)."""
    ds = make_imagenet_like(n=n, num_classes=classes, size=size, noise=noise, rng=rng)
    tr, va = ds.split(int(0.8 * n))
    return (
        DataLoader(tr.images, tr.labels, batch, shuffle=True),
        DataLoader(va.images, va.labels, 2 * batch),
        ds,
    )


def scaled_vgg19(classes=4, width=0.125):
    from repro.models import vgg19

    return vgg19(num_classes=classes, width_mult=width)


def scaled_resnet18(classes=4, width=0.25):
    from repro.models import resnet18

    return resnet18(num_classes=classes, width_mult=width)


def scaled_resnet50(classes=8, width=0.125):
    from repro.models import resnet50

    return resnet50(num_classes=classes, width_mult=width, small_input=True)


def scaled_wrn50(classes=8, width=0.125):
    from repro.models import wide_resnet50_2

    return wide_resnet50_2(num_classes=classes, width_mult=width, small_input=True)


def train_classifier(model, train, val, epochs, lr=0.05, momentum=0.9, decay_at=None,
                     amp=False):
    """Train and return (best val accuracy, history)."""
    from repro.core import Trainer

    opt = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=1e-4)
    sched = MultiStepLR(opt, decay_at, gamma=0.1) if decay_at else None
    t = Trainer(model, opt, scheduler=sched, amp=amp)
    t.fit(train, val, epochs=epochs)
    return max(s.val_metric for s in t.history), t.history


# ---------------------------------------------------------------------------
# Language-model harness (Tables 2 / 9)
# ---------------------------------------------------------------------------

def lm_task(rng, vocab=120, n_train=8000, n_valid=1600, n_test=1600, branching=6):
    from repro.data import make_lm_corpus

    return make_lm_corpus(
        vocab_size=vocab, n_train=n_train, n_valid=n_valid, n_test=n_test,
        branching=branching, rng=rng,
    )


def lm_eval(model, data, bptt, vocab):
    """Mean NLL over a batchified token stream."""
    from repro.data import get_lm_batch
    from repro.tensor import no_grad

    loss_fn = nn.CrossEntropyLoss()
    model.eval()
    total, count = 0.0, 0
    states = None
    with no_grad():
        for i in range(0, len(data) - 1, bptt):
            x, y = get_lm_batch(data, i, bptt)
            logits, states = model(x, states)
            states = model.detach_states(states)
            loss = loss_fn(logits.reshape(-1, vocab), y.reshape(-1))
            total += float(loss.data) * y.size
            count += y.size
    return total / max(count, 1)


def lm_train_epoch(model, data, bptt, vocab, opt, clip=0.25):
    from repro.data import get_lm_batch
    from repro.optim import clip_grad_norm

    loss_fn = nn.CrossEntropyLoss()
    model.train()
    total, count = 0.0, 0
    states = None
    for i in range(0, len(data) - 1, bptt):
        x, y = get_lm_batch(data, i, bptt)
        opt.zero_grad()
        logits, states = model(x, states)
        states = model.detach_states(states)
        loss = loss_fn(logits.reshape(-1, vocab), y.reshape(-1))
        loss.backward()
        clip_grad_norm(opt.params, clip)
        opt.step()
        total += float(loss.data) * y.size
        count += y.size
    return total / max(count, 1)


def run_lm(model, corpus, epochs, bptt=16, batch=16, lr=2.0, warmup_state=None):
    """Train an LSTM LM; returns dict of train/val/test NLL."""
    from repro.data import batchify
    from repro.optim import ReduceLROnPlateau

    vocab = corpus.vocab_size
    tr = batchify(corpus.train, batch)
    va = batchify(corpus.valid, batch)
    te = batchify(corpus.test, batch)
    opt = SGD(model.parameters(), lr=lr)
    sched = ReduceLROnPlateau(opt, factor=0.25)
    train_nll = val_nll = float("inf")
    for ep in range(epochs):
        train_nll = lm_train_epoch(model, tr, bptt, vocab, opt)
        val_nll = lm_eval(model, va, bptt, vocab)
        sched.step(ep, metric=val_nll)
    return {
        "train_nll": train_nll,
        "val_nll": val_nll,
        "test_nll": lm_eval(model, te, bptt, vocab),
    }


# ---------------------------------------------------------------------------
# Translation harness (Table 3)
# ---------------------------------------------------------------------------

def translation_task(rng, n=512, vocab=24, min_len=3, max_len=7):
    from repro.data import make_translation_dataset

    ds = make_translation_dataset(n=n, vocab_size=vocab, min_len=min_len,
                                  max_len=max_len, rng=rng)
    return ds.split(int(0.85 * n))


def run_translation(model, train_ds, val_ds, epochs, batch=64, lr=1e-3):
    """Train a seq2seq transformer; returns train/val NLL and val BLEU."""
    from repro.metrics import corpus_bleu
    from repro.optim import Adam
    from repro.tensor import no_grad

    vocab = train_ds.vocab_size
    opt = Adam(model.parameters(), lr=lr)
    loss_fn = nn.CrossEntropyLoss(ignore_index=0, label_smoothing=0.1)
    train_nll = float("inf")
    for ep in range(epochs):
        model.train()
        total, count = 0.0, 0
        for i in range(0, len(train_ds), batch):
            src = train_ds.src[i : i + batch]
            tgt = train_ds.tgt[i : i + batch]
            opt.zero_grad()
            logits = model(src, tgt[:, :-1])
            loss = loss_fn(logits.reshape(-1, vocab), tgt[:, 1:].reshape(-1))
            loss.backward()
            opt.step()
            n_tok = int((tgt[:, 1:] != 0).sum())
            total += float(loss.data) * n_tok
            count += n_tok
        train_nll = total / max(count, 1)

    # Validation NLL.
    model.eval()
    with no_grad():
        logits = model(val_ds.src, val_ds.tgt[:, :-1])
        val_loss = nn.CrossEntropyLoss(ignore_index=0)(
            logits.reshape(-1, vocab), val_ds.tgt[:, 1:].reshape(-1)
        )
    # Greedy-decode BLEU.
    hyp = model.greedy_decode(val_ds.src, bos=1, eos=2, max_len=val_ds.tgt.shape[1])
    bleu = corpus_bleu(
        [list(h) for h in hyp], [list(t) for t in val_ds.tgt], strip_ids={0, 1, 2}
    )
    return {"train_nll": train_nll, "val_nll": float(val_loss.data), "val_bleu": bleu}
