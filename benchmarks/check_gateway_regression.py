#!/usr/bin/env python
"""CI regression gate for the gateway sim-vs-live benchmark.

Compares a fresh ``BENCH_gateway.json`` against the committed baseline
(``benchmarks/baselines/gateway_baseline.json``).  The artifact has two
very different halves and the gate treats them accordingly:

* ``sim_twin`` is a pure function of ``(seed, pinned profile, config)``
  — simulator summary, trace digest and the replay-driver parity flag
  are compared with an exact deep-diff.  Any drift is a behavior change
  in the shared ``ServingCore`` seam, never noise.
* ``live_twin`` and ``streaming`` ran against a real localhost server,
  so their measured fields are machine-dependent.  They are *not*
  diffed; instead the gate re-asserts the committed validation bands on
  the current run: shed-rate delta, throughput ratio, per-request
  admission/status agreement, zero client errors, and every streamed
  response progressive (first partial strictly before its final frame).

Usage::

    python benchmarks/check_gateway_regression.py \
        [--current BENCH_gateway.json] \
        [--baseline benchmarks/baselines/gateway_baseline.json]
"""

from __future__ import annotations

from gatelib import DeepExact, Gate, run_gate

MAX_SHED_RATE_DELTA = 0.05
THROUGHPUT_RATIO_BAND = (0.9, 1.1)
MIN_AGREEMENT = 0.80


def invariants(name: str, scenario: dict) -> list[str]:
    failures: list[str] = []
    if name == "live_twin":
        delta = scenario.get("shed_rate_delta", 1.0)
        if abs(delta) > MAX_SHED_RATE_DELTA:
            failures.append(
                f"live_twin: |shed_rate_delta| {abs(delta):.4f} > "
                f"{MAX_SHED_RATE_DELTA} — live server sheds unlike its sim twin"
            )
        ratio = scenario.get("throughput_ratio", 0.0)
        lo, hi = THROUGHPUT_RATIO_BAND
        if not (lo <= ratio <= hi):
            failures.append(
                f"live_twin: throughput ratio {ratio:.4f} outside [{lo}, {hi}]"
            )
        for key in ("admission_agreement", "status_agreement"):
            agree = scenario.get(key, 0.0)
            if agree < MIN_AGREEMENT:
                failures.append(
                    f"live_twin: {key} {agree:.4f} < {MIN_AGREEMENT} — "
                    "per-request decisions diverge from the simulator"
                )
        if scenario.get("n_client_errors", 1):
            failures.append(
                f"live_twin: {scenario.get('n_client_errors')} client error(s)"
            )
    elif name == "streaming":
        if not scenario.get("progressive", False):
            failures.append(
                "streaming: a response's first partial did not precede its "
                "final frame"
            )
        if scenario.get("n_streamed") != scenario.get("n_requests"):
            failures.append(
                f"streaming: {scenario.get('n_streamed')} of "
                f"{scenario.get('n_requests')} responses streamed"
            )
    elif name == "sim_twin":
        if not scenario.get("replay_bit_identical", False):
            failures.append(
                "sim_twin: gateway-style replay driver diverged from the "
                "simulator on the committed trace"
            )
    return failures


def headline(current: dict) -> list[str]:
    failures: list[str] = []
    scenarios = current.get("scenarios", {})
    for name in ("sim_twin", "live_twin", "streaming"):
        if name not in scenarios:
            failures.append(f"{name}: scenario missing from current run")
    sim = scenarios.get("sim_twin")
    if sim is not None and sim["summary"]["shed_rate"] <= 0.1:
        failures.append(
            f"sim_twin: shed rate {sim['summary']['shed_rate']} <= 0.1 — the "
            "twin scenario no longer exercises admission control"
        )
    return failures


GATE = Gate(
    name="gateway",
    default_current="BENCH_gateway.json",
    default_baseline="benchmarks/baselines/gateway_baseline.json",
    rules=(DeepExact(),),
    # live_twin/streaming ran against a real server: banded via
    # invariants, never diffed against the baseline.
    skip=lambda name: name in ("live_twin", "streaming"),
    invariants=invariants,
    headline=headline,
    ok_line=lambda n, t: (
        "gateway regression gate: sim twin exact, live twin within bands "
        f"({n} baseline scenarios)"
    ),
    description=__doc__.splitlines()[0],
)


if __name__ == "__main__":
    raise SystemExit(run_gate(GATE))
