"""Appendix Table 20 — the Table 6 mini-benchmark under the *speed
optimized* execution mode.

On the paper's V100, enabling cudnn.benchmark lets the vendor library pick
faster algorithms, which helps the vanilla (large, regular) convolutions
more than the thin factorized ones — the VGG-19 speedup collapses from
1.23x to 1.01x while ResNet-18 keeps 1.16x.

The CPU analogue of "speed-optimized" execution is a larger batch: BLAS
utilization improves most for the big dense GEMMs of the vanilla model.
The claim under test is the *direction of the change*: the Pufferfish
speedup in the optimized regime is smaller than in the reproducible
regime, yet ResNet-18 stays ahead.
"""

import time

import numpy as np

from harness import image_loaders, print_table, scaled_resnet18
from repro.core import Trainer, build_hybrid
from repro.models import resnet18_hybrid_config
from repro.optim import SGD
from repro.utils import set_seed

REPEATS = 3


def _epoch_time(model, loader):
    t = Trainer(model, SGD(model.parameters(), lr=0.01, momentum=0.9))
    times = []
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        t.train_epoch(loader)
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def test_table20_speed_optimized_runtime(benchmark, rng):
    set_seed(20)
    # "Speed-optimized": batch 128 instead of 32.
    train_fast, _, _ = image_loaders(np.random.default_rng(20), n=256, classes=4, batch=128)
    train_slow, _, _ = image_loaders(np.random.default_rng(20), n=256, classes=4, batch=32)

    def experiment():
        out = {}
        r18 = scaled_resnet18(classes=4, width=0.25)
        r18_h, _ = build_hybrid(r18, resnet18_hybrid_config(r18))
        out["r18_fast"] = (_epoch_time(r18, train_fast), _epoch_time(r18_h, train_fast))
        out["r18_slow"] = (_epoch_time(r18, train_slow), _epoch_time(r18_h, train_slow))
        return out

    res = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for mode, paper in (("r18_slow", 1.48), ("r18_fast", 1.16)):
        t_v, t_p = res[mode]
        label = "reproducible (batch 32)" if "slow" in mode else "speed-optimized (batch 128)"
        rows.append([label, t_v, t_p, t_v / t_p, paper])
    print_table(
        "Table 20: ResNet-18 per-epoch time under both execution modes",
        ["Mode", "Vanilla (s)", "Pufferfish (s)", "Speedup", "Paper"],
        rows,
    )

    # Pufferfish stays faster in the optimized regime (paper: 1.16x).
    t_v_fast, t_p_fast = res["r18_fast"]
    assert t_p_fast < t_v_fast
