"""Encoder-decoder Transformer for translation (the WMT16 task).

Follows the paper's 6-layer, 8-head setup (appendix Tables 16/17) with
shared source/target embeddings and the output projection tied to the
target embedding.  ``hybrid_config`` keeps the first encoder and first
decoder blocks full-rank and factorizes every projection (wq/wk/wv/wo and
both FFN matrices) in the remaining blocks at rank ratio 1/4 — reproducing
the appendix shapes ``U ∈ R^{512×128}``, ``V^T ∈ R^{128×512}``.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.hybrid import FactorizationConfig
from ..nn import (
    Embedding,
    Module,
    Parameter,
    PositionalEncoding,
    TransformerDecoderLayer,
    TransformerEncoderLayer,
)
from ..nn.container import ModuleList
from ..tensor import Tensor

__all__ = ["Seq2SeqTransformer", "transformer_hybrid_config", "causal_mask", "padding_mask"]


def causal_mask(t: int) -> np.ndarray:
    """Additive upper-triangular mask blocking future positions."""
    return np.triu(np.full((t, t), -1e9, dtype=np.float32), k=1)


def padding_mask(tokens: np.ndarray, pad_idx: int) -> np.ndarray:
    """Additive mask of shape (B, 1, 1, T_k) blocking pad keys."""
    blocked = (tokens == pad_idx).astype(np.float32) * -1e9
    return blocked[:, None, None, :]


class Seq2SeqTransformer(Module):
    """Vaswani-style encoder-decoder for token sequences ``(B, T)``.

    The source and target share one embedding (the synthetic translation
    task shares a vocabulary, as the paper's shared-embedding setup does),
    and the generator is tied to the embedding weight.
    """

    def __init__(
        self,
        vocab_size: int,
        d_model: int = 512,
        n_heads: int = 8,
        num_layers: int = 6,
        d_ff: int | None = None,
        dropout: float = 0.1,
        max_len: int = 256,
        pad_idx: int = 0,
    ):
        super().__init__()
        d_ff = d_ff or 4 * d_model
        self.d_model = d_model
        self.pad_idx = pad_idx
        self.vocab_size = vocab_size
        self.embedding = Embedding(vocab_size, d_model, padding_idx=pad_idx)
        self.pos_enc = PositionalEncoding(d_model, max_len=max_len, dropout=dropout)
        self.encoder_layers = ModuleList(
            TransformerEncoderLayer(d_model, n_heads, d_ff, dropout)
            for _ in range(num_layers)
        )
        self.decoder_layers = ModuleList(
            TransformerDecoderLayer(d_model, n_heads, d_ff, dropout)
            for _ in range(num_layers)
        )
        self.generator_bias = Parameter(np.zeros(vocab_size, dtype=np.float32))
        self._emb_scale = math.sqrt(d_model)

    # ------------------------------------------------------------------

    def encode(self, src: np.ndarray) -> tuple[Tensor, np.ndarray]:
        src_mask = padding_mask(src, self.pad_idx)
        x = self.pos_enc(self.embedding(src) * self._emb_scale)
        for layer in self.encoder_layers:
            x = layer(x, src_mask)
        return x, src_mask

    def decode(self, tgt: np.ndarray, memory: Tensor, src_mask: np.ndarray) -> Tensor:
        t = tgt.shape[1]
        self_mask = causal_mask(t)[None, None] + padding_mask(tgt, self.pad_idx)
        x = self.pos_enc(self.embedding(tgt) * self._emb_scale)
        for layer in self.decoder_layers:
            x = layer(x, memory, self_mask, src_mask)
        return x

    def forward(self, src: np.ndarray, tgt: np.ndarray) -> Tensor:
        """Teacher-forced logits ``(B, T_tgt, vocab)``."""
        memory, src_mask = self.encode(src)
        out = self.decode(tgt, memory, src_mask)
        b, t, d = out.shape
        logits = out.reshape(b * t, d) @ self.embedding.weight.T + self.generator_bias
        return logits.reshape(b, t, self.vocab_size)

    def greedy_decode(self, src: np.ndarray, bos: int, eos: int, max_len: int = 32) -> np.ndarray:
        """Greedy autoregressive decoding (used for BLEU evaluation)."""
        from ..tensor import no_grad

        self.eval()
        with no_grad():
            memory, src_mask = self.encode(src)
            b = src.shape[0]
            ys = np.full((b, 1), bos, dtype=np.int64)
            finished = np.zeros(b, dtype=bool)
            for _ in range(max_len - 1):
                out = self.decode(ys, memory, src_mask)
                last = out.data[:, -1]  # (B, D)
                logits = last @ self.embedding.weight.data.T + self.generator_bias.data
                nxt = logits.argmax(axis=-1)
                nxt = np.where(finished, self.pad_idx, nxt)
                ys = np.concatenate([ys, nxt[:, None]], axis=1)
                finished |= nxt == eos
                if finished.all():
                    break
        return ys


def transformer_hybrid_config(rank_ratio: float = 0.25) -> FactorizationConfig:
    """First encoder/decoder blocks full-rank, everything else factorized
    (appendix D: "the very first encoder layer and first decoder layer as
    full-rank layers")."""
    return FactorizationConfig(
        rank_ratio=rank_ratio,
        first_lowrank_index=0,
        skip_first_conv=False,
        skip_last_fc=False,
        full_rank_prefixes=("encoder_layers.0", "decoder_layers.0"),
    )
