"""Model zoo: the paper's architectures with hybrid-factorization configs."""

from .mlp import MLP, mlp_hybrid_config
from .vgg import (
    VGG,
    vgg11,
    vgg19,
    vgg19_lth,
    vgg11_hybrid_config,
    vgg19_hybrid_config,
    vgg19_lth_hybrid_config,
)
from .resnet import (
    BasicBlock,
    Bottleneck,
    ResNet,
    resnet18,
    resnet50,
    wide_resnet50_2,
    resnet18_hybrid_config,
    resnet50_hybrid_config,
)
from .lstm_lm import LSTMLanguageModel, lstm_lm_hybrid_config
from .transformer import (
    Seq2SeqTransformer,
    transformer_hybrid_config,
    causal_mask,
    padding_mask,
)

__all__ = [
    "MLP",
    "mlp_hybrid_config",
    "VGG",
    "vgg11",
    "vgg19",
    "vgg19_lth",
    "vgg11_hybrid_config",
    "vgg19_hybrid_config",
    "vgg19_lth_hybrid_config",
    "BasicBlock",
    "Bottleneck",
    "ResNet",
    "resnet18",
    "resnet50",
    "wide_resnet50_2",
    "resnet18_hybrid_config",
    "resnet50_hybrid_config",
    "LSTMLanguageModel",
    "lstm_lm_hybrid_config",
    "Seq2SeqTransformer",
    "transformer_hybrid_config",
    "causal_mask",
    "padding_mask",
]
