"""ResNets (He et al. 2016) and WideResNet-50-2 (Zagoruyko & Komodakis).

Provides the two variants the paper trains:

* CIFAR-style ResNet-18 — 3×3 stem, four stages of two BasicBlocks
  (appendix Table 13).
* ImageNet-style ResNet-50 / WideResNet-50-2 — Bottleneck blocks with
  expansion 4 (appendix Tables 14/15); the stem adapts to small synthetic
  inputs when ``small_input=True``.

Each variant ships a hybrid :class:`FactorizationConfig` matching the
appendix: ResNet-18 factorizes everything from the second block of
``conv2_x`` on but leaves downsample shortcuts alone; ResNet-50 factorizes
only the ``conv5_x`` stage *including* its downsample projection.
"""

from __future__ import annotations

from ..core.hybrid import FactorizationConfig, factorizable_leaves
from ..nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from ..tensor import Tensor

__all__ = [
    "BasicBlock",
    "Bottleneck",
    "ResNet",
    "resnet18",
    "resnet50",
    "wide_resnet50_2",
    "resnet18_hybrid_config",
    "resnet50_hybrid_config",
]


class BasicBlock(Module):
    """Two 3×3 convolutions with identity/projection shortcut."""

    expansion = 1

    def __init__(self, in_planes: int, planes: int, stride: int = 1):
        super().__init__()
        self.conv1 = Conv2d(in_planes, planes, 3, stride=stride, padding=1, bias=False)
        self.bn1 = BatchNorm2d(planes)
        self.conv2 = Conv2d(planes, planes, 3, stride=1, padding=1, bias=False)
        self.bn2 = BatchNorm2d(planes)
        self.relu = ReLU()
        if stride != 1 or in_planes != planes:
            self.downsample = Sequential(
                Conv2d(in_planes, planes, 1, stride=stride, bias=False),
                BatchNorm2d(planes),
            )
        else:
            self.downsample = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        shortcut = x if self.downsample is None else self.downsample(x)
        return self.relu(out + shortcut)


class Bottleneck(Module):
    """1×1 reduce → 3×3 → 1×1 expand (×4), the ResNet-50 block.

    ``width_factor=2`` gives the WideResNet-50-2 inner width.
    """

    expansion = 4

    def __init__(self, in_planes: int, planes: int, stride: int = 1, width_factor: int = 1):
        super().__init__()
        width = planes * width_factor
        out_planes = planes * self.expansion
        self.conv1 = Conv2d(in_planes, width, 1, bias=False)
        self.bn1 = BatchNorm2d(width)
        self.conv2 = Conv2d(width, width, 3, stride=stride, padding=1, bias=False)
        self.bn2 = BatchNorm2d(width)
        self.conv3 = Conv2d(width, out_planes, 1, bias=False)
        self.bn3 = BatchNorm2d(out_planes)
        self.relu = ReLU()
        if stride != 1 or in_planes != out_planes:
            self.downsample = Sequential(
                Conv2d(in_planes, out_planes, 1, stride=stride, bias=False),
                BatchNorm2d(out_planes),
            )
        else:
            self.downsample = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        shortcut = x if self.downsample is None else self.downsample(x)
        return self.relu(out + shortcut)


class ResNet(Module):
    """Configurable ResNet.

    Parameters
    ----------
    block: BasicBlock or Bottleneck.
    layers: blocks per stage, e.g. ``[2, 2, 2, 2]`` (18) or ``[3, 4, 6, 3]`` (50).
    width_mult: scales all stage widths (CPU-scale runs use < 1).
    small_input: CIFAR-style 3×3 stem without max-pool (used for 32×32
        inputs); otherwise the ImageNet 7×7/stride-2 stem + 3×3 max-pool.
    width_factor: Bottleneck inner-width multiplier (2 = WideResNet-50-2).
    """

    def __init__(
        self,
        block,
        layers: list[int],
        num_classes: int = 10,
        width_mult: float = 1.0,
        small_input: bool = True,
        width_factor: int = 1,
        in_channels: int = 3,
    ):
        super().__init__()
        scale = lambda w: max(8, int(w * width_mult))
        widths = [scale(64), scale(128), scale(256), scale(512)]
        self.in_planes = widths[0]

        if small_input:
            self.stem = Sequential(
                Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False),
                BatchNorm2d(widths[0]),
                ReLU(),
            )
        else:
            self.stem = Sequential(
                Conv2d(in_channels, widths[0], 7, stride=2, padding=3, bias=False),
                BatchNorm2d(widths[0]),
                ReLU(),
                MaxPool2d(3, 2),
            )

        self.layer1 = self._make_stage(block, widths[0], layers[0], 1, width_factor)
        self.layer2 = self._make_stage(block, widths[1], layers[1], 2, width_factor)
        self.layer3 = self._make_stage(block, widths[2], layers[2], 2, width_factor)
        self.layer4 = self._make_stage(block, widths[3], layers[3], 2, width_factor)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(widths[3] * block.expansion, num_classes)

    def _make_stage(self, block, planes: int, n_blocks: int, stride: int, width_factor: int):
        blocks = []
        for i in range(n_blocks):
            blocks.append(
                block(
                    self.in_planes,
                    planes,
                    stride=stride if i == 0 else 1,
                    width_factor=width_factor,
                )
                if block is Bottleneck
                else block(self.in_planes, planes, stride=stride if i == 0 else 1)
            )
            self.in_planes = planes * block.expansion
        return Sequential(*blocks)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        out = self.layer4(self.layer3(self.layer2(self.layer1(out))))
        return self.fc(self.pool(out))


def resnet18(num_classes: int = 10, width_mult: float = 1.0, small_input: bool = True) -> ResNet:
    """CIFAR-style ResNet-18 (appendix Table 13)."""
    return ResNet(BasicBlock, [2, 2, 2, 2], num_classes, width_mult, small_input)


def resnet50(
    num_classes: int = 1000, width_mult: float = 1.0, small_input: bool = False
) -> ResNet:
    """ResNet-50 with Bottleneck blocks (appendix Table 14)."""
    return ResNet(Bottleneck, [3, 4, 6, 3], num_classes, width_mult, small_input)


def wide_resnet50_2(
    num_classes: int = 1000, width_mult: float = 1.0, small_input: bool = False
) -> ResNet:
    """WideResNet-50-2: Bottleneck inner width doubled (appendix Table 15)."""
    return ResNet(
        Bottleneck, [3, 4, 6, 3], num_classes, width_mult, small_input, width_factor=2
    )


def _downsample_prefixes(model: ResNet, stages: tuple[str, ...]) -> tuple[str, ...]:
    """Module paths of downsample convs in the given stages."""
    prefixes = []
    for path, _ in factorizable_leaves(model):
        if "downsample" in path and path.startswith(stages):
            prefixes.append(path)
    return tuple(prefixes)


def resnet18_hybrid_config(model: ResNet, rank_ratio: float = 0.25) -> FactorizationConfig:
    """Appendix Table 13: stem + first block of ``conv2_x`` full-rank
    (K = 4 in leaf order), downsample shortcuts never factorized."""
    downsamples = _downsample_prefixes(model, ("layer1", "layer2", "layer3", "layer4"))
    return FactorizationConfig(
        rank_ratio=rank_ratio,
        first_lowrank_index=3,  # leaves 0-2: stem conv, block0.conv1, block0.conv2
        skip_first_conv=True,
        skip_last_fc=True,
        full_rank_prefixes=downsamples,
    )


def resnet50_hybrid_config(model: ResNet, rank_ratio: float = 0.25) -> FactorizationConfig:
    """Appendix Table 14: only the ``conv5_x`` stage (layer4) is factorized —
    it holds ~60% of all parameters — including its downsample projection."""
    leaves = factorizable_leaves(model)
    keep = tuple(
        path for path, _ in leaves if not path.startswith("layer4") and path != "fc"
    )
    return FactorizationConfig(
        rank_ratio=rank_ratio,
        first_lowrank_index=0,
        skip_first_conv=True,
        skip_last_fc=True,
        full_rank_prefixes=keep,
    )
