"""2-layer tied-weight LSTM language model (the WikiText-2 task).

Architecture from appendix Table 12: embedding → dropout → stacked LSTM
(dropout between layers) → dropout → decoder whose weight is *tied* to the
embedding (Press & Wolf 2016).  The tied embedding is never factorized —
the paper treats it as a lookup table — so Pufferfish's gains come entirely
from the LSTM gate matrices.
"""

from __future__ import annotations

import numpy as np

from ..core.hybrid import FactorizationConfig
from ..nn import LSTM, Dropout, Embedding, Module, Parameter
from ..tensor import Tensor

__all__ = ["LSTMLanguageModel", "lstm_lm_hybrid_config"]


class LSTMLanguageModel(Module):
    """Next-token prediction LM.

    Weight tying requires ``hidden_size == embed_dim`` (the paper uses
    1500/1500; our scaled runs keep the equality).

    Input: integer tokens ``(T, B)``; output logits ``(T, B, vocab)``.
    """

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int = 1500,
        hidden_size: int | None = None,
        num_layers: int = 2,
        dropout: float = 0.65,
    ):
        super().__init__()
        hidden_size = hidden_size or embed_dim
        if hidden_size != embed_dim:
            raise ValueError("weight tying requires hidden_size == embed_dim")
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.encoder = Embedding(vocab_size, embed_dim)
        self.drop_in = Dropout(dropout)
        self.lstm = LSTM(embed_dim, hidden_size, num_layers=num_layers, dropout=dropout)
        self.drop_out = Dropout(dropout)
        # Decoder bias; decoder weight is tied to encoder.weight.
        self.decoder_bias = Parameter(np.zeros(vocab_size, dtype=np.float32))

    def forward(self, tokens: np.ndarray, states=None) -> tuple[Tensor, list]:
        t, b = tokens.shape
        emb = self.drop_in(self.encoder(tokens))  # (T, B, D)
        out, states = self.lstm(emb, states)
        out = self.drop_out(out)
        flat = out.reshape(t * b, self.embed_dim)
        logits = flat @ self.encoder.weight.T + self.decoder_bias  # tied decoder
        return logits.reshape(t, b, self.vocab_size), states

    def detach_states(self, states):
        """Truncated BPTT: cut the graph between minibatches."""
        return [(h.detach(), c.detach()) for h, c in states]


def lstm_lm_hybrid_config(rank_ratio: float = 0.25) -> FactorizationConfig:
    """Factorize only the LSTM layers (the embedding is a lookup table and
    is left as is, per Section 4.1)."""
    return FactorizationConfig(
        rank_ratio=rank_ratio,
        first_lowrank_index=0,
        skip_first_conv=False,
        skip_last_fc=False,
    )
