"""Simple fully connected networks (Section 2.1's 2-layer FC example)."""

from __future__ import annotations

from ..core.hybrid import FactorizationConfig
from ..nn import Linear, Module, ReLU, Sequential

__all__ = ["MLP", "mlp_hybrid_config"]


class MLP(Module):
    """Plain feed-forward classifier over flat inputs."""

    def __init__(self, in_features: int, hidden: list[int], num_classes: int):
        super().__init__()
        dims = [in_features] + list(hidden)
        layers: list[Module] = []
        for a, b in zip(dims[:-1], dims[1:]):
            layers.append(Linear(a, b))
            layers.append(ReLU())
        layers.append(Linear(dims[-1], num_classes))
        self.net = Sequential(*layers)

    def forward(self, x):
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.net(x)


def mlp_hybrid_config(
    rank_ratio: float = 0.25, first_lowrank_index: int = 0
) -> FactorizationConfig:
    """Factorize all hidden FC layers; the classifier head stays full-rank."""
    return FactorizationConfig(
        rank_ratio=rank_ratio,
        first_lowrank_index=first_lowrank_index,
        skip_first_conv=False,
        skip_last_fc=True,
    )
