"""VGG networks with BatchNorm (Simonyan & Zisserman 2014).

Reproduces the appendix-Table 11 architecture for CIFAR-scale inputs, with
a ``width_mult`` knob so CPU-scale experiments can exercise the identical
topology at reduced width.  ``vgg19_hybrid_config`` encodes the paper's
hybrid choice: convolutions 10-16 factorized (K = 10), classifier FCs and
everything earlier full-rank.
"""

from __future__ import annotations

from ..core.hybrid import FactorizationConfig
from ..nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)

__all__ = [
    "VGG",
    "vgg11",
    "vgg19",
    "vgg19_lth",
    "vgg19_hybrid_config",
    "vgg11_hybrid_config",
    "vgg19_lth_hybrid_config",
]

# Layer plans: ints are conv output widths, "M" is 2×2 max-pooling.
_PLANS = {
    11: [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    19: [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
         512, 512, 512, 512, "M", 512, 512, 512, 512, "M"],
}


class VGG(Module):
    """VGG-BN backbone + the paper's 512-512-classes FC head.

    Parameters
    ----------
    depth: 11 or 19.
    num_classes: classifier width.
    width_mult: scales every conv/FC width (1.0 = paper architecture).
    in_size: input spatial size; must be divisible by 32 (five pools).
    """

    def __init__(
        self,
        depth: int = 19,
        num_classes: int = 10,
        width_mult: float = 1.0,
        in_channels: int = 3,
        in_size: int = 32,
    ):
        super().__init__()
        if depth not in _PLANS:
            raise ValueError(f"unsupported VGG depth {depth}")
        if in_size % 32 != 0:
            raise ValueError("in_size must be divisible by 32")
        self.depth = depth
        scale = lambda w: max(8, int(w * width_mult))

        layers: list[Module] = []
        c_prev = in_channels
        for item in _PLANS[depth]:
            if item == "M":
                layers.append(MaxPool2d(2, 2))
            else:
                c = scale(item)
                layers.append(Conv2d(c_prev, c, 3, stride=1, padding=1, bias=False))
                layers.append(BatchNorm2d(c))
                layers.append(ReLU())
                c_prev = c
        self.features = Sequential(*layers)

        spatial = in_size // 32
        feat = c_prev * spatial * spatial
        hidden = scale(512)
        self.classifier = Sequential(
            Flatten(),
            Linear(feat, hidden),
            ReLU(),
            Linear(hidden, hidden),
            ReLU(),
            Linear(hidden, num_classes),
        )

    def forward(self, x):
        return self.classifier(self.features(x))


def vgg11(num_classes: int = 10, width_mult: float = 1.0, in_size: int = 32) -> VGG:
    """VGG-11-BN (used in Fig. 2a's from-scratch low-rank study)."""
    return VGG(11, num_classes, width_mult, in_size=in_size)


def vgg19(num_classes: int = 10, width_mult: float = 1.0, in_size: int = 32) -> VGG:
    """VGG-19-BN, the paper's main CIFAR-10 VGG."""
    return VGG(19, num_classes, width_mult, in_size=in_size)


def vgg19_hybrid_config(rank_ratio: float = 0.25) -> FactorizationConfig:
    """The paper's hybrid VGG-19: K = 10 — convs 10-16 *and* the two hidden
    classifier FCs low-rank, final classifier full-rank.

    Note: appendix Table 11 draws fc17/fc18 as full-rank, but Table 4's
    parameter count (8,370,634) is only reproduced when both 512×512 FCs are
    factorized at rank 128; with this config our count matches exactly.
    """
    return FactorizationConfig(
        rank_ratio=rank_ratio,
        first_lowrank_index=9,  # leaves 0-8 are conv1..conv9
        skip_first_conv=True,
        skip_last_fc=True,
    )


class VGGLTH(Module):
    """The open_lth-style VGG-19: conv stack + a single FC classifier
    (appendix Table 18).  Used for the Fig. 5 / LTH comparison, where the
    paper deploys Pufferfish on the LTH repo's architecture "for fairer
    comparison"."""

    def __init__(self, num_classes: int = 10, width_mult: float = 1.0,
                 in_channels: int = 3, in_size: int = 32):
        super().__init__()
        scale = lambda w: max(8, int(w * width_mult))
        layers: list[Module] = []
        c_prev = in_channels
        for item in _PLANS[19]:
            if item == "M":
                layers.append(MaxPool2d(2, 2))
            else:
                c = scale(item)
                layers.append(Conv2d(c_prev, c, 3, stride=1, padding=1, bias=False))
                layers.append(BatchNorm2d(c))
                layers.append(ReLU())
                c_prev = c
        self.features = Sequential(*layers)
        spatial = in_size // 32
        self.classifier = Sequential(
            Flatten(), Linear(c_prev * spatial * spatial, num_classes)
        )

    def forward(self, x):
        return self.classifier(self.features(x))


def vgg19_lth(num_classes: int = 10, width_mult: float = 1.0) -> VGGLTH:
    """VGG-19 with a single FC head, matching open_lth (appendix Table 18)."""
    return VGGLTH(num_classes, width_mult)


def vgg19_lth_hybrid_config(rank_ratio: float = 0.25) -> FactorizationConfig:
    """Hybrid config for the LTH-variant VGG-19: convs 10-16 low-rank, the
    single classifier FC full-rank (appendix Table 18)."""
    return FactorizationConfig(
        rank_ratio=rank_ratio,
        first_lowrank_index=9,
        skip_first_conv=True,
        skip_last_fc=True,
    )


def vgg11_hybrid_config(rank_ratio: float = 0.25) -> FactorizationConfig:
    """Fully-low-rank VGG-11 used in Fig. 2a (all but first conv/last FC)."""
    return FactorizationConfig(
        rank_ratio=rank_ratio,
        first_lowrank_index=0,
        skip_first_conv=True,
        skip_last_fc=True,
    )
