"""Pufferfish reproduction (MLSys 2021).

A from-scratch NumPy deep-learning stack plus the Pufferfish low-rank
training framework:

* :mod:`repro.tensor` — autograd engine.
* :mod:`repro.nn` — layers (FC, conv, BN/LN, LSTM, Transformer), losses,
  mixed-precision emulation.
* :mod:`repro.optim` — SGD/Adam and LR schedules.
* :mod:`repro.core` — the paper's contribution: low-rank layers, truncated-
  SVD warm-starting, hybrid networks, the Algorithm 1 trainer.
* :mod:`repro.models` — VGG/ResNet/WideResNet/LSTM-LM/Transformer zoo with
  per-model hybrid configs.
* :mod:`repro.distributed` — data-parallel simulator with α–β comm cost
  models and per-epoch timeline breakdowns.
* :mod:`repro.compression` — PowerSGD, Signum, QSGD, Top-k, stochastic
  binary quantization baselines.
* :mod:`repro.pruning` — LTH iterative magnitude pruning and Early-Bird
  structured channel pruning baselines.
* :mod:`repro.data` — synthetic stand-ins for CIFAR-10 / ImageNet /
  WikiText-2 / WMT16.
* :mod:`repro.metrics` — MACs, accuracy, perplexity, BLEU.
* :mod:`repro.serve` — SLO-aware inference serving: model registry
  (full vs factorized variants), measured latency profiles, dynamic
  batching, admission control, and a seeded load simulator.

Quickstart::

    from repro.core import PufferfishTrainer, FactorizationConfig
    from repro.models import resnet18, resnet18_hybrid_config
    from repro.optim import SGD

    model = resnet18(num_classes=10, width_mult=0.25)
    trainer = PufferfishTrainer(
        model,
        resnet18_hybrid_config(model),
        optimizer_factory=lambda ps: SGD(ps, lr=0.1, momentum=0.9),
        warmup_epochs=5,
        total_epochs=30,
    )
    hybrid = trainer.fit(train_loader, val_loader)
"""

__version__ = "1.0.0"

from . import (
    compression,
    core,
    data,
    distributed,
    metrics,
    models,
    nn,
    observability,
    optim,
    pruning,
    tensor,
    utils,
)

__all__ = [
    "tensor",
    "nn",
    "optim",
    "core",
    "models",
    "distributed",
    "compression",
    "pruning",
    "data",
    "metrics",
    "observability",
    "utils",
    "__version__",
]
