"""Weight initialization schemes (Kaiming / Xavier families)."""

from __future__ import annotations

import math

import numpy as np

from ..utils import get_rng

__all__ = ["kaiming_uniform", "kaiming_normal", "xavier_uniform", "uniform", "zeros"]


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """(fan_in, fan_out) for FC (out, in) or conv (out, in, kh, kw) shapes."""
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape))
    return fan_in, fan_out


def kaiming_uniform(
    shape, a: float = math.sqrt(5), rng: np.random.Generator | None = None
) -> np.ndarray:
    """He-uniform init matching PyTorch's default for Linear/Conv layers."""
    rng = rng or get_rng()
    fan_in, _ = _fan(tuple(shape))
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(shape, rng: np.random.Generator | None = None) -> np.ndarray:
    """He-normal init (gain for ReLU)."""
    rng = rng or get_rng()
    fan_in, _ = _fan(tuple(shape))
    std = math.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(shape, rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot-uniform init (used for attention projections)."""
    rng = rng or get_rng()
    fan_in, fan_out = _fan(tuple(shape))
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform(shape, bound: float, rng: np.random.Generator | None = None) -> np.ndarray:
    rng = rng or get_rng()
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)
