"""Fully connected layer."""

from __future__ import annotations

import math


from ..tensor import Tensor, functional
from . import init
from .module import Module, Parameter

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x W^T + b`` with weight shape ``(out, in)``.

    Keeping the PyTorch ``(out_features, in_features)`` orientation makes
    the SVD factorization bookkeeping in :mod:`repro.core` line up with the
    paper's appendix tables.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        activation: str | None = None,
    ):
        super().__init__()
        if activation not in (None, "relu"):
            raise ValueError(f"unsupported activation: {activation!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features)))
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(init.uniform((out_features,), bound))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.activation == "relu" and self.bias is not None:
            # One fused graph node; the fast backend runs it in a single
            # in-place pass.
            return functional.bias_relu(out, self.bias)
        if self.bias is not None:
            out = out + self.bias
        if self.activation == "relu":
            out = out.relu()
        return out

    def __repr__(self) -> str:
        act = f", activation={self.activation}" if self.activation else ""
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None}{act})"
        )
