"""Module / Parameter abstractions (the ``repro`` analogue of ``torch.nn``).

A :class:`Module` auto-registers :class:`Parameter`, buffer and child-module
attributes on assignment, exposes recursive iteration over parameters, and
supports (de)serialization through flat ``state_dict`` mappings — which the
Pufferfish warm-start machinery relies on to move weights between vanilla
and factorized architectures.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from ..observability import trace as _trace
from ..tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A trainable tensor; ``requires_grad`` is always True.

    Unlike :class:`Tensor` (which uses ``__slots__``), Parameter carries an
    instance ``__dict__`` so components can attach metadata — e.g. the
    ``no_decay`` flag optimizers use to exempt norm scales from weight decay.
    """

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True)
        self.no_decay = False
        self.name = name


class Module:
    """Base class for every network component.

    Subclasses assign parameters, buffers (plain ndarrays tracked for
    serialization, e.g. BatchNorm running statistics) and child modules as
    attributes; registration is automatic.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            object.__setattr__(self, name, value)
        elif isinstance(value, Module):
            self._modules[name] = value
            object.__setattr__(self, name, value)
        else:
            # Replacing a registered entry with a non-matching type unregisters it.
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
            object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track a non-trainable array in the state dict (e.g. BN stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer's array in place of the registry."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield prefix + name, p
        for mod_name, mod in self._modules.items():
            yield from mod.named_parameters(prefix + mod_name + ".")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name in self._buffers:
            # Read through the attribute so in-place replacement is seen.
            yield prefix + name, getattr(self, name)
        for mod_name, mod in self._modules.items():
            yield from mod.named_buffers(prefix + mod_name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for mod in self._modules.values():
            yield from mod.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for mod_name, mod in self._modules.items():
            yield from mod.named_modules(prefix + mod_name + ".")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def get_submodule(self, path: str) -> "Module":
        """Fetch a nested child by dotted path (e.g. ``"features.3"``)."""
        mod: Module = self
        if path:
            for part in path.split("."):
                mod = mod._modules[part]
        return mod

    def set_submodule(self, path: str, new: "Module") -> None:
        """Replace a nested child by dotted path (used by the hybrid builder)."""
        parts = path.split(".")
        parent = self
        for part in parts[:-1]:
            parent = parent._modules[part]
        setattr(parent, parts[-1], new)

    # ------------------------------------------------------------------
    # Modes & grads
    # ------------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        for mod in self.modules():
            object.__setattr__(mod, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count (the paper's "# Params" column)."""
        return sum(p.data.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        out: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, p in self.named_parameters():
            out[name] = p.data.copy()
        for name, b in self.named_buffers():
            out[name] = np.array(b, copy=True)
        return out

    def load_state_dict(self, state: dict, strict: bool = True) -> None:
        params = dict(self.named_parameters())
        buffers = {name: None for name, _ in self.named_buffers()}
        for key, value in state.items():
            if key in params:
                if params[key].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: "
                        f"{params[key].data.shape} vs {value.shape}"
                    )
                # In-place copy (not a rebind) so views into a flat
                # parameter arena stay aliased; assignment casts like the
                # previous ``astype`` did.
                params[key].data[...] = value
            elif key in buffers:
                self._assign_buffer(key, value)
            elif strict:
                raise KeyError(f"unexpected key in state dict: {key}")
        if strict:
            missing = (set(params) | set(buffers)) - set(state)
            if missing:
                raise KeyError(f"missing keys in state dict: {sorted(missing)}")

    def _assign_buffer(self, dotted: str, value: np.ndarray) -> None:
        parts = dotted.split(".")
        mod: Module = self
        for part in parts[:-1]:
            mod = mod._modules[part]
        mod._set_buffer(parts[-1], np.array(value, copy=True))

    # ------------------------------------------------------------------
    # Calling
    # ------------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        # Per-module forward spans are finer-grained than the phase spans,
        # so they sit behind their own flag (see observability.trace).
        if _trace.MODULE_SPANS and _trace.ENABLED:
            with _trace.span(type(self).__name__, kind="module"):
                return self.forward(*args, **kwargs)
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, mod in self._modules.items():
            child = repr(mod).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else self.__class__.__name__ + "()"
