"""Module containers."""

from __future__ import annotations

from typing import Iterable

from ..tensor import Tensor
from .module import Module

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Chains modules; children are addressable by numeric string keys."""

    def __init__(self, *mods: Module):
        super().__init__()
        for i, mod in enumerate(mods):
            setattr(self, str(i), mod)

    def forward(self, x: Tensor) -> Tensor:
        for mod in self._modules.values():
            x = mod(x)
        return x

    def __iter__(self):
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]

    def append(self, mod: Module) -> "Sequential":
        setattr(self, str(len(self._modules)), mod)
        return self


class ModuleList(Module):
    """Holds an ordered list of modules without implying a forward order."""

    def __init__(self, mods: Iterable[Module] = ()):
        super().__init__()
        for i, mod in enumerate(mods):
            setattr(self, str(i), mod)

    def __iter__(self):
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]

    def append(self, mod: Module) -> "ModuleList":
        setattr(self, str(len(self._modules)), mod)
        return self

    def forward(self, *a, **k):
        raise RuntimeError("ModuleList has no forward; iterate over it instead")
