"""LSTM layers (Hochreiter & Schmidhuber 1997), from scratch.

The vanilla layer keeps the PyTorch parameterization — concatenated
``weight_ih (4h, d)`` / ``weight_hh (4h, h)`` with gate order (i, f, g, o) —
so one GEMM per time step computes all four gates, and the per-layer
parameter count is exactly the paper's Table 1 entry ``4(dh + h^2)``.
"""

from __future__ import annotations

import math

import numpy as np

from ..tensor import Tensor
from . import init
from .dropout import Dropout
from .module import Module, Parameter

__all__ = ["LSTMLayer", "LSTM", "lstm_step"]


def lstm_step(
    x_t: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    gates_x: Tensor,
    gates_h: Tensor,
    hidden: int,
) -> tuple[Tensor, Tensor]:
    """One LSTM recurrence given pre-computed gate pre-activations.

    ``gates_x``/``gates_h`` are ``(B, 4h)`` contributions from the input and
    hidden paths; gate order is (input, forget, cell, output) as in Eq. (1).
    """
    gates = gates_x + gates_h
    i = gates[:, 0 * hidden : 1 * hidden].sigmoid()
    f = gates[:, 1 * hidden : 2 * hidden].sigmoid()
    g = gates[:, 2 * hidden : 3 * hidden].tanh()
    o = gates[:, 3 * hidden : 4 * hidden].sigmoid()
    c_t = f * c_prev + i * g
    h_t = o * c_t.tanh()
    return h_t, c_t


class LSTMLayer(Module):
    """A single LSTM layer run over a ``(T, B, d)`` sequence."""

    def __init__(self, input_size: int, hidden_size: int):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        bound = 1.0 / math.sqrt(hidden_size)
        self.weight_ih = Parameter(init.uniform((4 * hidden_size, input_size), bound))
        self.weight_hh = Parameter(init.uniform((4 * hidden_size, hidden_size), bound))
        self.bias_ih = Parameter(init.uniform((4 * hidden_size,), bound))
        self.bias_hh = Parameter(init.uniform((4 * hidden_size,), bound))

    def _input_gates(self, x: Tensor) -> Tensor:
        """Gate pre-activations from the input path for the whole sequence."""
        t, b, d = x.shape
        return (x.reshape(t * b, d) @ self.weight_ih.T + self.bias_ih).reshape(
            t, b, 4 * self.hidden_size
        )

    def _hidden_gates(self, h: Tensor) -> Tensor:
        return h @ self.weight_hh.T + self.bias_hh

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        t, b, _ = x.shape
        if state is None:
            h = Tensor(np.zeros((b, self.hidden_size), dtype=np.float32))
            c = Tensor(np.zeros((b, self.hidden_size), dtype=np.float32))
        else:
            h, c = state

        # Input-path gates for all steps in one GEMM; hidden path per step.
        gx_all = self._input_gates(x)
        outputs: list[Tensor] = []
        for step in range(t):
            gx = gx_all[step]
            gh = self._hidden_gates(h)
            h, c = lstm_step(x[step], h, c, gx, gh, self.hidden_size)
            outputs.append(h.reshape(1, b, self.hidden_size))
        out = Tensor.concat(outputs, axis=0)
        return out, (h, c)

    def __repr__(self) -> str:
        return f"LSTMLayer(in={self.input_size}, hidden={self.hidden_size})"


class LSTM(Module):
    """Stacked LSTM with inter-layer dropout, mirroring ``torch.nn.LSTM``."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        dropout: float = 0.0,
    ):
        super().__init__()
        self.num_layers = num_layers
        self.hidden_size = hidden_size
        from .container import ModuleList

        self.layers = ModuleList(
            LSTMLayer(input_size if i == 0 else hidden_size, hidden_size)
            for i in range(num_layers)
        )
        self.dropout = Dropout(dropout) if dropout > 0 else None

    def forward(
        self, x: Tensor, states: list[tuple[Tensor, Tensor]] | None = None
    ) -> tuple[Tensor, list[tuple[Tensor, Tensor]]]:
        new_states: list[tuple[Tensor, Tensor]] = []
        out = x
        for i, layer in enumerate(self.layers):
            state = states[i] if states is not None else None
            out, s = layer(out, state)
            new_states.append(s)
            if self.dropout is not None and i < self.num_layers - 1:
                out = self.dropout(out)
        return out, new_states
