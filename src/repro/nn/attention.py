"""Multi-head attention and Transformer encoder/decoder blocks.

Follows "Attention is All You Need" with the combined-projection
parameterization the Pufferfish appendix uses: ``wq/wk/wv/wo`` are all
``d_model × d_model`` matrices (the horizontal stack of the per-head
``pd × d`` projections), so factorizing them with rank ``r`` reproduces the
paper's Table 16/17 shapes (e.g. ``U^Q ∈ R^{512×128}``).
"""

from __future__ import annotations

import math

import numpy as np

from ..tensor import Tensor, softmax
from .dropout import Dropout
from .linear import Linear
from .module import Module
from .norm import LayerNorm

__all__ = [
    "MultiHeadAttention",
    "PositionwiseFFN",
    "PositionalEncoding",
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
]


def _split_heads(x: Tensor, n_heads: int) -> Tensor:
    """(B, T, D) -> (B, H, T, D/H)."""
    b, t, d = x.shape
    return x.reshape(b, t, n_heads, d // n_heads).transpose(0, 2, 1, 3)


def _merge_heads(x: Tensor) -> Tensor:
    """(B, H, T, Dh) -> (B, T, H*Dh)."""
    b, h, t, dh = x.shape
    return x.transpose(0, 2, 1, 3).reshape(b, t, h * dh)


class MultiHeadAttention(Module):
    """Scaled dot-product attention with ``p`` heads.

    ``mask`` is additive: positions with ``-inf``-like large negatives are
    suppressed.  Shape ``(T_q, T_k)`` or ``(B, 1, T_q, T_k)``.
    """

    def __init__(self, d_model: int, n_heads: int, dropout: float = 0.1):
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        self.d_model = d_model
        self.n_heads = n_heads
        self.wq = Linear(d_model, d_model)
        self.wk = Linear(d_model, d_model)
        self.wv = Linear(d_model, d_model)
        self.wo = Linear(d_model, d_model)
        self.dropout = Dropout(dropout)
        self.scale = 1.0 / math.sqrt(d_model // n_heads)

    def forward(
        self, q: Tensor, k: Tensor, v: Tensor, mask: np.ndarray | None = None
    ) -> Tensor:
        qh = _split_heads(self.wq(q), self.n_heads)
        kh = _split_heads(self.wk(k), self.n_heads)
        vh = _split_heads(self.wv(v), self.n_heads)

        scores = (qh @ kh.transpose(0, 1, 3, 2)) * self.scale  # (B,H,Tq,Tk)
        if mask is not None:
            scores = scores + Tensor(mask.astype(np.float32))
        attn = softmax(scores, axis=-1)
        attn = self.dropout(attn)
        ctx = _merge_heads(attn @ vh)
        return self.wo(ctx)

    def __repr__(self) -> str:
        return f"MultiHeadAttention(d={self.d_model}, heads={self.n_heads})"


class PositionwiseFFN(Module):
    """Two-layer feed-forward net ``d_model -> d_ff -> d_model`` with ReLU."""

    def __init__(self, d_model: int, d_ff: int, dropout: float = 0.1):
        super().__init__()
        self.layer1 = Linear(d_model, d_ff)
        self.layer2 = Linear(d_ff, d_model)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        return self.layer2(self.dropout(self.layer1(x).relu()))


class PositionalEncoding(Module):
    """Fixed sinusoidal positional encoding (no trainable weights)."""

    def __init__(self, d_model: int, max_len: int = 512, dropout: float = 0.1):
        super().__init__()
        pos = np.arange(max_len)[:, None]
        i = np.arange(0, d_model, 2)[None, :]
        angle = pos / np.power(10000.0, i / d_model)
        pe = np.zeros((max_len, d_model), dtype=np.float32)
        pe[:, 0::2] = np.sin(angle)
        pe[:, 1::2] = np.cos(angle)
        self.register_buffer("pe", pe)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        t = x.shape[1]
        return self.dropout(x + Tensor(self.pe[:t]))


class TransformerEncoderLayer(Module):
    """Post-norm encoder block: self-attention + FFN, each with residual."""

    def __init__(self, d_model: int, n_heads: int, d_ff: int, dropout: float = 0.1):
        super().__init__()
        self.self_attn = MultiHeadAttention(d_model, n_heads, dropout)
        self.ffn = PositionwiseFFN(d_model, d_ff, dropout)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = self.norm1(x + self.dropout(self.self_attn(x, x, x, mask)))
        x = self.norm2(x + self.dropout(self.ffn(x)))
        return x


class TransformerDecoderLayer(Module):
    """Post-norm decoder block: masked self-attn, cross-attn, FFN."""

    def __init__(self, d_model: int, n_heads: int, d_ff: int, dropout: float = 0.1):
        super().__init__()
        self.self_attn = MultiHeadAttention(d_model, n_heads, dropout)
        self.enc_attn = MultiHeadAttention(d_model, n_heads, dropout)
        self.ffn = PositionwiseFFN(d_model, d_ff, dropout)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.norm3 = LayerNorm(d_model)
        self.dropout = Dropout(dropout)

    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        self_mask: np.ndarray | None = None,
        memory_mask: np.ndarray | None = None,
    ) -> Tensor:
        x = self.norm1(x + self.dropout(self.self_attn(x, x, x, self_mask)))
        x = self.norm2(x + self.dropout(self.enc_attn(x, memory, memory, memory_mask)))
        x = self.norm3(x + self.dropout(self.ffn(x)))
        return x
