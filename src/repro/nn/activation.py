"""Activation modules."""

from __future__ import annotations

from ..tensor import Tensor
from .module import Module

__all__ = ["ReLU", "Tanh", "Sigmoid", "GELU"]


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class GELU(Module):
    """Tanh-approximation GELU (used in Transformer variants)."""

    def forward(self, x: Tensor) -> Tensor:
        inner = (x + x * x * x * 0.044715) * 0.7978845608028654
        return x * (inner.tanh() + 1.0) * 0.5

    def __repr__(self) -> str:
        return "GELU()"
