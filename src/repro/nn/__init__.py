"""Neural-network layers built on the :mod:`repro.tensor` autograd engine."""

from .module import Module, Parameter
from .arena import ParameterArena
from .linear import Linear
from .conv import Conv2d
from .norm import BatchNorm2d, BatchNorm1d, LayerNorm
from .activation import ReLU, Tanh, Sigmoid, GELU
from .pooling import MaxPool2d, AvgPool2d, GlobalAvgPool2d, Flatten
from .dropout import Dropout
from .container import Sequential, ModuleList
from .embedding import Embedding
from .rnn import LSTM, LSTMLayer, lstm_step
from .attention import (
    MultiHeadAttention,
    PositionwiseFFN,
    PositionalEncoding,
    TransformerEncoderLayer,
    TransformerDecoderLayer,
)
from .loss import CrossEntropyLoss, NLLLoss, MSELoss
from .amp import GradScaler, autocast_round_trip, cast_gradients_fp16
from . import init

__all__ = [
    "Module",
    "Parameter",
    "ParameterArena",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "BatchNorm1d",
    "LayerNorm",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "GELU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Sequential",
    "ModuleList",
    "Embedding",
    "LSTM",
    "LSTMLayer",
    "lstm_step",
    "MultiHeadAttention",
    "PositionwiseFFN",
    "PositionalEncoding",
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
    "CrossEntropyLoss",
    "NLLLoss",
    "MSELoss",
    "GradScaler",
    "autocast_round_trip",
    "cast_gradients_fp16",
    "init",
]
