"""Normalization layers: BatchNorm (1d/2d) and LayerNorm.

BatchNorm is implemented as a fused autograd node (hand-written backward)
because it sits on every conv in VGG/ResNet and the composite formulation
builds needlessly deep graphs.  Running statistics live in buffers so the
Pufferfish warm-start can carry them from the vanilla to the hybrid model,
exactly as Section 3 of the paper prescribes.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from .module import Module, Parameter

__all__ = ["BatchNorm2d", "BatchNorm1d", "LayerNorm"]


class _BatchNormBase(Module):
    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.weight.no_decay = True
        self.bias.no_decay = True
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def _normalize(self, x: Tensor, axes: tuple[int, ...], shape) -> Tensor:
        """Shared fused forward/backward over reduction ``axes``."""
        gamma, beta = self.weight, self.bias
        eps = self.eps
        if self.training:
            mu = x.data.mean(axis=axes, keepdims=True)
            var = x.data.var(axis=axes, keepdims=True)
            m = self.momentum
            # Unbiased variance for the running estimate, as in PyTorch.
            n = x.data.size / self.num_features
            unbias = var.reshape(-1) * n / max(n - 1, 1)
            self._set_buffer(
                "running_mean",
                ((1 - m) * self.running_mean + m * mu.reshape(-1)).astype(np.float32),
            )
            self._set_buffer(
                "running_var", ((1 - m) * self.running_var + m * unbias).astype(np.float32)
            )
        else:
            mu = self.running_mean.reshape(shape)
            var = self.running_var.reshape(shape)

        inv_std = 1.0 / np.sqrt(var + eps)
        x_hat = (x.data - mu) * inv_std
        out = x_hat * gamma.data.reshape(shape) + beta.data.reshape(shape)
        training = self.training

        def backward(g: np.ndarray) -> None:
            if gamma.requires_grad:
                gamma._accumulate((g * x_hat).sum(axis=axes))
            if beta.requires_grad:
                beta._accumulate(g.sum(axis=axes))
            if x.requires_grad:
                gw = g * gamma.data.reshape(shape)
                if training:
                    n = x.data.size / gamma.data.size
                    dxhat = gw
                    x._accumulate(
                        inv_std
                        / n
                        * (
                            n * dxhat
                            - dxhat.sum(axis=axes, keepdims=True)
                            - x_hat * (dxhat * x_hat).sum(axis=axes, keepdims=True)
                        )
                    )
                else:
                    x._accumulate(gw * inv_std)

        return Tensor._from_op(
            out.astype(x.dtype, copy=False), (x, gamma, beta), backward, "batch_norm"
        )


class BatchNorm2d(_BatchNormBase):
    """BatchNorm over NCHW feature maps (per-channel statistics)."""

    def forward(self, x: Tensor) -> Tensor:
        return self._normalize(x, axes=(0, 2, 3), shape=(1, self.num_features, 1, 1))

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class BatchNorm1d(_BatchNormBase):
    """BatchNorm over (N, C) activations."""

    def forward(self, x: Tensor) -> Tensor:
        return self._normalize(x, axes=(0,), shape=(1, self.num_features))

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.num_features})"


class LayerNorm(Module):
    """Layer normalization over the trailing dimension (Transformer-style)."""

    def __init__(self, normalized_shape: int, eps: float = 1e-6):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape, dtype=np.float32))
        self.bias = Parameter(np.zeros(normalized_shape, dtype=np.float32))
        self.weight.no_decay = True
        self.bias.no_decay = True

    def forward(self, x: Tensor) -> Tensor:
        gamma, beta, eps = self.weight, self.bias, self.eps
        mu = x.data.mean(axis=-1, keepdims=True)
        var = x.data.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + eps)
        x_hat = (x.data - mu) * inv_std
        out = x_hat * gamma.data + beta.data
        d = x.data.shape[-1]

        def backward(g: np.ndarray) -> None:
            if gamma.requires_grad:
                gamma._accumulate((g * x_hat).reshape(-1, d).sum(axis=0))
            if beta.requires_grad:
                beta._accumulate(g.reshape(-1, d).sum(axis=0))
            if x.requires_grad:
                dxhat = g * gamma.data
                x._accumulate(
                    inv_std
                    / d
                    * (
                        d * dxhat
                        - dxhat.sum(axis=-1, keepdims=True)
                        - x_hat * (dxhat * x_hat).sum(axis=-1, keepdims=True)
                    )
                )

        return Tensor._from_op(
            out.astype(x.dtype, copy=False), (x, gamma, beta), backward, "layer_norm"
        )

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape})"
