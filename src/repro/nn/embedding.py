"""Token embedding layer with optional weight tying."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, embedding
from ..utils import get_rng
from .module import Module, Parameter

__all__ = ["Embedding"]


class Embedding(Module):
    """Lookup table ``(num_embeddings, dim)``.

    The LSTM language model ties its decoder to this weight (Press & Wolf
    2016), which is why the paper leaves the embedding un-factorized — it's
    "just a look-up table".
    """

    def __init__(self, num_embeddings: int, dim: int, padding_idx: int | None = None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.padding_idx = padding_idx
        w = get_rng().standard_normal((num_embeddings, dim)).astype(np.float32) * 0.1
        if padding_idx is not None:
            w[padding_idx] = 0.0
        self.weight = Parameter(w)

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding(self.weight, np.asarray(indices))

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.dim})"
