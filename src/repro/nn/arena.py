"""Flat parameter arena: one contiguous float32 buffer per model.

Per-parameter loops dominate the Python-side cost of an optimizer step on
nets with many small tensors (a VGG-19 has ~80 parameter tensors, most of
them tiny BatchNorm scales).  The arena copies every parameter into one
contiguous buffer and rebinds each ``Parameter.data`` to a *view* of it,
so a single vectorized update over the flat buffer moves every weight in
the model — see :class:`repro.optim.FusedSGD`.

Gradients deliberately stay per-tensor: the autograd engine rebinds
``p.grad`` on first accumulation and ``zero_grad`` sets it back to
``None``, so a gradient view could never survive an iteration.  Instead
:meth:`ParameterArena.gather_grad` packs the per-tensor gradients into a
caller-owned flat buffer once per step (one sequential pass, no
re-allocation).

The arena stays valid as long as nobody rebinds ``p.data`` to a fresh
array; code that must do so (e.g. the AMP cast round-trip) is detected by
:meth:`intact` and consumers rebuild the arena lazily.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..observability import metrics as _metrics
from .module import Parameter

__all__ = ["ParameterArena"]


class ParameterArena:
    """Pack ``params`` into one contiguous float32 vector and alias them.

    After construction ``p.data`` is a reshaped view into :attr:`flat` for
    every parameter, so mutating ``flat`` *is* mutating the model — bit
    for bit, with no scatter step.
    """

    def __init__(self, params: Iterable[Parameter]):
        self.params: list[Parameter] = [p for p in params]
        if not self.params:
            raise ValueError("arena over an empty parameter list")
        self.shapes: list[tuple[int, ...]] = [p.data.shape for p in self.params]
        self.sizes: list[int] = [int(p.data.size) for p in self.params]
        self.offsets: list[int] = []
        total = 0
        for size in self.sizes:
            self.offsets.append(total)
            total += size
        self.size = total
        self.flat = np.empty(total, dtype=np.float32)
        for p, off, size, shape in zip(self.params, self.offsets, self.sizes, self.shapes):
            self.flat[off : off + size] = p.data.reshape(-1)
            p.data = self.flat[off : off + size].reshape(shape)
        if _metrics.COLLECT:
            _metrics.REGISTRY.counter("arena.builds").inc()
            _metrics.REGISTRY.gauge("arena.bytes").set(float(self.flat.nbytes))

    # ------------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        return int(self.flat.nbytes)

    def segments(self) -> Iterator[tuple[Parameter, int, int]]:
        """Yield ``(param, offset, size)`` in arena order."""
        yield from zip(self.params, self.offsets, self.sizes)

    def view(self, index: int) -> np.ndarray:
        """The flat view backing parameter ``index``."""
        off, size = self.offsets[index], self.sizes[index]
        return self.flat[off : off + size]

    def intact(self) -> bool:
        """True while every ``p.data`` is still a view of :attr:`flat`.

        Anything that rebinds ``p.data`` (AMP's cast round-trip, a
        non-in-place ``load_state_dict``) breaks the aliasing; consumers
        check this per step and rebuild lazily.
        """
        return all(
            p.data.base is self.flat and p.data.shape == shape
            for p, shape in zip(self.params, self.shapes)
        )

    # ------------------------------------------------------------------

    def gather_grad(self, out: np.ndarray | None = None) -> np.ndarray:
        """Pack every ``p.grad`` into a flat float32 buffer (zeros where a
        parameter received no gradient)."""
        if out is None:
            out = np.empty(self.size, dtype=np.float32)
        elif out.shape != (self.size,):
            raise ValueError(f"gather buffer has shape {out.shape}, need ({self.size},)")
        for p, off, size in self.segments():
            seg = out[off : off + size]
            if p.grad is None:
                seg.fill(0.0)
            else:
                seg[...] = p.grad.reshape(-1)
        return out

    def scatter_grad(self, vec: np.ndarray) -> None:
        """Point every ``p.grad`` at the matching slice of ``vec`` (views,
        no copies — ``vec`` must stay alive until the step consumes it)."""
        if vec.shape != (self.size,):
            raise ValueError(f"gradient vector has shape {vec.shape}, need ({self.size},)")
        for p, off, size in self.segments():
            p.grad = vec[off : off + size].reshape(p.data.shape)
