"""Dropout module."""

from __future__ import annotations

from ..tensor import Tensor, dropout
from ..utils import get_rng
from .module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.5):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.p, self.training, get_rng())

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
