"""Mixed-precision training emulation (the paper's "AMP" rows).

PyTorch AMP runs the forward/backward in float16 while keeping float32
master weights and scaling the loss to avoid fp16 gradient underflow.  We
emulate exactly that numerics on CPU:

* :class:`GradScaler` — multiplies the loss by a scale factor, unscales the
  gradients before the optimizer step, skips steps whose gradients contain
  inf/NaN, and adapts the scale (growth/backoff) like
  ``torch.cuda.amp.GradScaler``.
* :func:`autocast_round_trip` — casts parameters to fp16 and back, injecting
  the representational error fp16 compute would introduce.

This reproduces the paper's claim under test — that Pufferfish's accuracy is
stable under mixed precision — without GPU hardware.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .module import Module, Parameter

__all__ = ["GradScaler", "autocast_round_trip", "cast_gradients_fp16"]


class GradScaler:
    """Dynamic loss scaling with inf/NaN step skipping."""

    def __init__(
        self,
        init_scale: float = 2.0**16,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        growth_interval: int = 200,
    ):
        self.scale = init_scale
        self.growth_factor = growth_factor
        self.backoff_factor = backoff_factor
        self.growth_interval = growth_interval
        self._good_steps = 0

    def scale_loss(self, loss):
        """Multiply the loss tensor by the current scale (returns Tensor)."""
        return loss * self.scale

    def unscale_and_check(self, params: Iterable[Parameter]) -> bool:
        """Divide grads by scale; return False (skip step) on inf/NaN."""
        params = [p for p in params if p.grad is not None]
        found_bad = False
        for p in params:
            if not np.all(np.isfinite(p.grad)):
                found_bad = True
                break
        if found_bad:
            self.scale *= self.backoff_factor
            self._good_steps = 0
            for p in params:
                p.grad = None
            return False
        inv = 1.0 / self.scale
        for p in params:
            p.grad *= inv
        self._good_steps += 1
        if self._good_steps >= self.growth_interval:
            self.scale *= self.growth_factor
            self._good_steps = 0
        return True


def autocast_round_trip(model: Module) -> None:
    """Inject fp16 representation error into all parameters (in place).

    Emulates the numerics of running the forward pass in half precision:
    values are rounded to the nearest representable float16 and restored to
    float32 master storage.
    """
    for p in model.parameters():
        p.data = p.data.astype(np.float16).astype(np.float32)


def cast_gradients_fp16(params: Iterable[Parameter]) -> None:
    """Round gradients through fp16, emulating a half-precision backward."""
    for p in params:
        if p.grad is not None:
            p.grad = p.grad.astype(np.float16).astype(np.float32)
