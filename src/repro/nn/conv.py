"""Convolution layers."""

from __future__ import annotations

import math

from ..tensor import Tensor, conv2d
from . import init
from .module import Module, Parameter

__all__ = ["Conv2d"]


class Conv2d(Module):
    """2-D convolution with OIHW weights ``(c_out, c_in, k, k)``.

    ``padding`` may be a single int or an ``(pad_h, pad_w)`` pair for
    asymmetric (per-axis) zero padding.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | tuple[int, int] = 0,
        bias: bool = True,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kernel_size, kernel_size))
        )
        if bias:
            bound = 1.0 / math.sqrt(in_channels * kernel_size * kernel_size)
            self.bias = Parameter(init.uniform((out_channels,), bound))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding}, bias={self.bias is not None})"
        )
