"""Loss modules."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, cross_entropy, nll_loss
from .module import Module

__all__ = ["CrossEntropyLoss", "NLLLoss", "MSELoss"]


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over logits, with optional label smoothing and
    an ``ignore_index`` for padded tokens (mean over non-ignored entries)."""

    def __init__(self, label_smoothing: float = 0.0, ignore_index: int | None = None):
        super().__init__()
        self.label_smoothing = label_smoothing
        self.ignore_index = ignore_index

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return cross_entropy(
            logits,
            targets,
            label_smoothing=self.label_smoothing,
            ignore_index=self.ignore_index,
        )


class NLLLoss(Module):
    """Negative log-likelihood over log-probabilities."""

    def __init__(self, ignore_index: int | None = None):
        super().__init__()
        self.ignore_index = ignore_index

    def forward(self, log_probs: Tensor, targets: np.ndarray) -> Tensor:
        return nll_loss(log_probs, targets, ignore_index=self.ignore_index)


class MSELoss(Module):
    """Mean squared error."""

    def forward(self, pred: Tensor, target) -> Tensor:
        target = target if isinstance(target, Tensor) else Tensor(target)
        diff = pred - target
        return (diff * diff).mean()
