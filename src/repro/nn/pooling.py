"""Pooling modules."""

from __future__ import annotations

from ..tensor import Tensor, avg_pool2d, global_avg_pool2d, max_pool2d
from .module import Module

__all__ = ["MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "Flatten"]


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class GlobalAvgPool2d(Module):
    """Adaptive average pool to 1×1, returned flattened as (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return global_avg_pool2d(x)

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def __repr__(self) -> str:
        return "Flatten()"
