"""NumPy-backed reverse-mode autodiff engine.

The substrate for the Pufferfish reproduction: a :class:`Tensor` with a
dynamic autograd graph, convolution/pooling kernels via im2col, and fused
functional primitives (softmax, cross-entropy, embedding, dropout).
"""

from . import backend
from .tensor import Tensor, graph_nodes_created, is_grad_enabled, no_grad
from .conv_ops import conv2d, max_pool2d, avg_pool2d, global_avg_pool2d, im2col, col2im
from .functional import (
    softmax,
    log_softmax,
    cross_entropy,
    nll_loss,
    embedding,
    dropout,
    one_hot,
    bias_relu,
)
from .grad_check import numerical_grad, check_gradients
from .profiler import count_macs

__all__ = [
    "Tensor",
    "backend",
    "no_grad",
    "is_grad_enabled",
    "graph_nodes_created",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "im2col",
    "col2im",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "embedding",
    "dropout",
    "one_hot",
    "bias_relu",
    "numerical_grad",
    "check_gradients",
    "count_macs",
]
