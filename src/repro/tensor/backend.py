"""Pluggable op backends for the tensor engine.

Every hot kernel in :mod:`repro.tensor` (im2col convolution, GEMM, relu,
the fused bias+relu chain, and the :class:`repro.optim.FusedSGD` update)
dispatches through the *active* backend:

``numpy``
    The reference implementation — the exact code the engine has always
    run, bit-for-bit.  Every other backend is validated against it.

``fast``
    BLAS-oriented kernels: the im2col conv path gathers patches directly
    into a transposed ``(C·kh·kw, N·oh·ow)`` layout so the forward pass
    is one ``w2d @ cols`` GEMM (1×1 convs — the Pufferfish factorized
    V-factor hot path — become a single batched ``np.matmul`` with no
    transpose copies at all), fused elementwise chains (``bias_relu`` in
    one pass via ``np.maximum(x + b, 0, out=...)``), and optional
    threaded per-sample patch gathering (``REPRO_BACKEND_THREADS``).

Selection, in precedence order: ``repro.tensor.backend.use()`` context
manager > ``set_backend()`` / the ``--backend`` CLI flag > the
``REPRO_BACKEND`` environment variable (read once at import) > the
``numpy`` default.

Parity policy: every dispatched op carries a tag in :data:`PARITY` —
``bit-exact`` ops must return arrays equal under ``==`` to the numpy
reference (``-0.0`` vs ``+0.0`` is tolerated), ``tolerance`` ops must
agree within a small relative error (GEMM orientation changes the
floating-point summation order).  ``tests/test_backend_parity.py``
enforces the tags; ``benchmarks/test_kernels.py`` re-checks them while
measuring per-op speedups.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

__all__ = [
    "Backend",
    "NumpyBackend",
    "FastBackend",
    "PARITY",
    "active",
    "available",
    "get",
    "register",
    "set_backend",
    "use",
]

# Parity contract per dispatched op, shared by the parity tests and the
# kernel benchmark.  ``tolerance`` ops change GEMM orientation and hence
# float summation order; everything else must match the reference under
# ``np.array_equal``.
PARITY: dict[str, str] = {
    "matmul": "bit-exact",
    "relu": "bit-exact",
    "bias_relu": "bit-exact",
    "im2col": "bit-exact",
    "col2im": "bit-exact",
    "conv2d_forward": "tolerance",
    "conv2d_backward": "tolerance",
    "sgd_update": "bit-exact",
    # Fused-optimizer arena updates.  adam_update runs the identical
    # elementwise chain under both backends; lamb_update's per-layer
    # trust ratios come from segmented reductions whose summation order
    # differs (per-segment BLAS dot vs np.add.reduceat), so it carries
    # the tolerance tag.
    "adam_update": "bit-exact",
    "lamb_update": "tolerance",
}

# Tolerances for ``tolerance``-tagged ops.  fp32 reassociation error in a
# reordered reduction grows with its length (conv bias gradients sum
# N·oh·ow terms); at this repo's widths the observed relative error stays
# under 1e-5, so these bounds leave an order of magnitude of margin.
TOLERANCE_RTOL = 1e-4
TOLERANCE_ATOL = 1e-5


def _out_size(size: int, k: int, stride: int, pad: int) -> int:
    return (size + 2 * pad - k) // stride + 1


def _pad_pair(padding: int | tuple[int, int]) -> tuple[int, int]:
    """Normalize ``padding`` to per-axis ``(pad_h, pad_w)``."""
    if isinstance(padding, tuple):
        ph, pw = padding
        return int(ph), int(pw)
    return int(padding), int(padding)


# ----------------------------------------------------------------------
# Scratch buffers
# ----------------------------------------------------------------------
# Keyed by (tag, shape, dtype).  Backward passes and inference loops hit
# the same few shapes every iteration; reusing buffers avoids a large
# zeroed allocation (and its mmap/page-fault churn) per call.  The engine
# is single-threaded per op, and no scratch buffer ever escapes: callers
# either copy the result out or only use it transiently within one call.

_SCRATCH: dict[tuple, np.ndarray] = {}
_SCRATCH_MAX = 32


def _scratch(tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
    key = (tag, shape, np.dtype(dtype).str)
    buf = _SCRATCH.get(key)
    if buf is None:
        if len(_SCRATCH) >= _SCRATCH_MAX:
            _SCRATCH.clear()
        buf = _SCRATCH[key] = np.empty(shape, dtype=dtype)
    return buf


def _zeroed_scratch(tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
    buf = _scratch(tag, shape, dtype)
    buf.fill(0)
    return buf


# ----------------------------------------------------------------------
# Reference backend
# ----------------------------------------------------------------------


class Backend:
    """Op namespace; :class:`NumpyBackend` is the reference semantics.

    Conv ops return/accept an opaque ``ctx`` so each backend can cache
    whatever its own backward pass needs (the reference keeps the im2col
    rows, the fast backend keeps the transposed column matrix).  The
    forward's backend owns the ctx layout, so the autograd closure binds
    the backend that ran the forward even if the active backend changes
    before ``backward()``.
    """

    name = "base"

    # -- GEMM ----------------------------------------------------------

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    # -- elementwise ---------------------------------------------------

    def relu(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Return ``(out, mask)``; ``mask=None`` means derive ``out > 0``."""
        mask = x > 0
        return x * mask, mask

    def bias_relu(self, x: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Fused ``relu(x + b)``; same ``(out, mask)`` contract as relu."""
        y = x + b
        mask = y > 0
        return y * mask, mask

    # -- im2col / col2im ----------------------------------------------

    def im2col(self, x: np.ndarray, kh: int, kw: int, stride: int, ph: int, pw: int) -> np.ndarray:
        """Patch rows: ``(N*oh*ow, C*kh*kw)``, one receptive field per row."""
        n, c, h, w = x.shape
        out_h = _out_size(h, kh, stride, ph)
        out_w = _out_size(w, kw, stride, pw)
        if kh == 1 and kw == 1 and stride == 1 and ph == 0 and pw == 0:
            # 1×1 convs have one pixel per receptive field: the transform
            # is a pure transpose, no window view, no pad copy.
            return np.ascontiguousarray(x.transpose(0, 2, 3, 1).reshape(n * h * w, c))
        if ph > 0 or pw > 0:
            x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

        # as_strided view over all (kh, kw) windows: (N, C, oh, ow, kh, kw)
        sn, sc, sh, sw = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, out_h, out_w, kh, kw),
            strides=(sn, sc, sh * stride, sw * stride, sh, sw),
            writeable=False,
        )
        # -> (N, oh, ow, C, kh, kw) -> rows
        cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
        return np.ascontiguousarray(cols)

    def col2im(
        self,
        cols: np.ndarray,
        x_shape: tuple[int, int, int, int],
        kh: int,
        kw: int,
        stride: int,
        ph: int,
        pw: int,
    ) -> np.ndarray:
        """Adjoint of :meth:`im2col`: scatter-add columns back to NCHW.

        The returned array is always freshly owned by the caller; the
        padded accumulator itself is a reused scratch buffer.
        """
        n, c, h, w = x_shape
        out_h = _out_size(h, kh, stride, ph)
        out_w = _out_size(w, kw, stride, pw)
        if kh == 1 and kw == 1 and stride == 1 and ph == 0 and pw == 0:
            # 1×1 adjoint: windows never overlap, so the scatter-add is a
            # plain transpose back to NCHW.
            return np.ascontiguousarray(cols.reshape(n, h, w, c).transpose(0, 3, 1, 2))

        cols6 = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
        if ph > 0 or pw > 0:
            padded = _zeroed_scratch("col2im", (n, c, h + 2 * ph, w + 2 * pw), cols.dtype)
        else:
            # No pad: the accumulator is the result, so it must be fresh.
            padded = np.zeros((n, c, h, w), dtype=cols.dtype)
        # Accumulate each kernel offset in a vectorized slab assignment.
        for i in range(kh):
            i_max = i + stride * out_h
            for j in range(kw):
                j_max = j + stride * out_w
                padded[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, :, :, i, j]
        if ph > 0 or pw > 0:
            return np.ascontiguousarray(padded[:, :, ph : ph + h, pw : pw + w])
        return padded

    # -- conv2d --------------------------------------------------------

    def conv2d_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: np.ndarray | None,
        stride: int,
        ph: int,
        pw: int,
        want_ctx: bool,
    ) -> tuple[np.ndarray, tuple | None]:
        """NCHW conv forward; returns ``(out, ctx)`` for :meth:`conv2d_backward`."""
        n, c_in, h, w = x.shape
        c_out, _, kh, kw = weight.shape
        out_h = _out_size(h, kh, stride, ph)
        out_w = _out_size(w, kw, stride, pw)

        cols = self.im2col(x, kh, kw, stride, ph, pw)  # (N*oh*ow, C*kh*kw)
        w2d = weight.reshape(c_out, -1)  # (c_out, C*kh*kw)
        out = cols @ w2d.T  # (N*oh*ow, c_out)
        if bias is not None:
            out = out + bias
        out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
        ctx = (cols, w2d, x.shape, kh, kw, stride, ph, pw)
        return np.ascontiguousarray(out), ctx

    def conv2d_backward(
        self,
        g: np.ndarray,
        ctx: tuple,
        need_gw: bool,
        need_gb: bool,
        need_gx: bool,
    ) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
        cols, w2d, x_shape, kh, kw, stride, ph, pw = ctx
        c_out = g.shape[1]
        g2d = g.transpose(0, 2, 3, 1).reshape(-1, c_out)  # (N*oh*ow, c_out)
        gw = (g2d.T @ cols).reshape(c_out, -1, kh, kw) if need_gw else None
        gb = g2d.sum(axis=0) if need_gb else None
        gx = None
        if need_gx:
            gcols = g2d @ w2d  # (N*oh*ow, C*kh*kw)
            gx = self.col2im(gcols, x_shape, kh, kw, stride, ph, pw)
        return gw, gb, gx

    # -- optimizer -----------------------------------------------------

    def sgd_update(
        self,
        flat: np.ndarray,
        g: np.ndarray,
        tmp: np.ndarray,
        decay_mask: np.ndarray | None,
        momentum_buf: np.ndarray | None,
        lr: float,
        momentum: float,
        nesterov: bool,
    ) -> np.ndarray | None:
        """In-place ``flat -= lr * d`` where ``d`` is the decayed,
        momentum-filtered gradient.  ``g`` is clobbered; returns the
        (possibly newly allocated) momentum buffer.

        This is already a fused vector chain — four in-place passes over
        the arena.  The update is memory-bandwidth-bound, so the fast
        backend shares it: measured alternatives (cache-blocked chunking,
        BLAS level-1 ``axpy`` chains) were no faster or strictly slower.
        """
        if decay_mask is not None:
            # g += decay_mask * flat  (mask is 0 on no_decay segments)
            np.multiply(decay_mask, flat, out=tmp)
            g += tmp
        if momentum > 0:
            if momentum_buf is None:
                momentum_buf = g.copy()
            else:
                momentum_buf *= momentum
                momentum_buf += g
            if nesterov:
                np.multiply(momentum_buf, momentum, out=tmp)
                g += tmp
                d = g
            else:
                d = momentum_buf
        else:
            d = g
        np.multiply(d, np.float32(lr), out=tmp)
        flat -= tmp
        return momentum_buf

    def adam_update(
        self,
        flat: np.ndarray,
        g: np.ndarray,
        m: np.ndarray,
        v: np.ndarray,
        tmp: np.ndarray,
        decay_mask: np.ndarray | None,
        lr: float,
        beta1: float,
        beta2: float,
        eps: float,
        step: int,
    ) -> None:
        """One bias-corrected Adam step over the flat arena, in place.

        ``m``/``v`` are the flat first/second-moment slabs (updated in
        place), ``step`` is the 1-based shared step count, ``g`` may be
        clobbered.  The elementwise chain is exactly the per-tensor
        :class:`repro.optim.Adam` loop, only batched — bit-exact parity
        is the contract (the fast backend reorders nothing, it only
        removes the temporaries).
        """
        if decay_mask is not None:
            g = g + decay_mask * flat
        m *= beta1
        m += (1 - beta1) * g
        v *= beta2
        v += (1 - beta2) * g * g
        m_hat = m / (1 - beta1**step)
        v_hat = v / (1 - beta2**step)
        flat -= lr * m_hat / (np.sqrt(v_hat) + eps)

    def segment_norms(
        self, x: np.ndarray, seg_starts: np.ndarray, seg_sizes: np.ndarray
    ) -> np.ndarray:
        """Per-segment L2 norms of ``x`` under the arena tiling.

        Reference semantics: one BLAS dot per segment, matching what the
        per-tensor LAMB loop computes with ``np.linalg.norm``.  The fast
        backend replaces the loop with one squared pass plus
        ``np.add.reduceat``, which changes the float32 summation order —
        hence :data:`PARITY` tags ``lamb_update`` as ``tolerance``.
        """
        return np.array(
            [
                np.sqrt(np.dot(x[o : o + s], x[o : o + s]))
                for o, s in zip(seg_starts, seg_sizes)
            ],
            dtype=np.float32,
        )

    def lamb_update(
        self,
        flat: np.ndarray,
        g: np.ndarray,
        m: np.ndarray,
        v: np.ndarray,
        tmp: np.ndarray,
        decay_mask: np.ndarray | None,
        seg_starts: np.ndarray,
        seg_sizes: np.ndarray,
        lr: float,
        beta1: float,
        beta2: float,
        eps: float,
        step: int,
    ) -> None:
        """One LAMB step (You et al. 2020) over the flat arena, in place.

        Adam moments plus a per-layer *trust ratio* ``‖w‖/‖u‖`` scaling
        the update ``u = m̂/(√v̂ + eps) + wd·w``; segments are the arena
        tiling (one per parameter tensor).  The reference walks segments
        one at a time — the per-tensor loop, verbatim; ``g`` may be
        clobbered.
        """
        bc1 = 1 - beta1**step
        bc2 = 1 - beta2**step
        for off, size in zip(seg_starts, seg_sizes):
            sl = slice(int(off), int(off) + int(size))
            w_s, g_s, m_s, v_s = flat[sl], g[sl], m[sl], v[sl]
            m_s *= beta1
            m_s += (1 - beta1) * g_s
            v_s *= beta2
            v_s += (1 - beta2) * g_s * g_s
            u = (m_s / bc1) / (np.sqrt(v_s / bc2) + eps)
            if decay_mask is not None:
                u += decay_mask[sl] * w_s
            w_norm = float(np.sqrt(np.dot(w_s, w_s)))
            u_norm = float(np.sqrt(np.dot(u, u)))
            ratio = w_norm / u_norm if w_norm > 0 and u_norm > 0 else 1.0
            w_s -= (lr * ratio) * u


class NumpyBackend(Backend):
    """The reference backend: today's code, bit-exact with today's results."""

    name = "numpy"


# ----------------------------------------------------------------------
# Fast backend
# ----------------------------------------------------------------------


class FastBackend(Backend):
    """BLAS-batched / fused kernels, parity-gated against the reference.

    Conv strategy: gather patches straight into the transposed layout
    ``colsT = (C·kh·kw, N·oh·ow)`` with one slab assignment per kernel
    offset (kh·kw assignments instead of an N·oh·ow-row strided copy),
    then run the forward as a single ``w2d @ colsT`` GEMM with an
    in-place bias add.  The backward reuses ``colsT`` for the weight
    gradient and scatter-adds the input gradient with the same slab
    loop.  Outputs change GEMM orientation vs the reference, so conv
    forward/backward are ``tolerance``-tagged; everything else is
    bit-exact.
    """

    name = "fast"

    def __init__(self, threads: int | None = None):
        if threads is None:
            threads = int(os.environ.get("REPRO_BACKEND_THREADS", "0") or "0")
        self.threads = max(threads, 0)
        self._pool = None

    # -- elementwise ---------------------------------------------------

    def relu(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        # Single-pass maximum; the backward mask is derived lazily from
        # ``out > 0`` (identical to ``x > 0`` everywhere, including ±0).
        return np.maximum(x, 0), None

    def bias_relu(self, x: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        y = x + b
        np.maximum(y, 0, out=y)
        return y, None

    # -- im2col --------------------------------------------------------

    def im2col(self, x: np.ndarray, kh: int, kw: int, stride: int, ph: int, pw: int) -> np.ndarray:
        """Row-layout im2col via per-offset slab assignment (bit-exact).

        The 6-D strided gather in the reference touches memory in
        N·oh·ow-row order; assigning one ``(N, oh, ow, C)`` slab per
        kernel offset keeps each copy dense and measurably faster.
        """
        n, c, h, w = x.shape
        out_h = _out_size(h, kh, stride, ph)
        out_w = _out_size(w, kw, stride, pw)
        if kh == 1 and kw == 1 and stride == 1 and ph == 0 and pw == 0:
            return np.ascontiguousarray(x.transpose(0, 2, 3, 1).reshape(n * h * w, c))
        if ph > 0 or pw > 0:
            x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
        rows6 = np.empty((n, out_h, out_w, c, kh, kw), dtype=x.dtype)
        for i in range(kh):
            i_max = i + stride * out_h
            for j in range(kw):
                j_max = j + stride * out_w
                rows6[:, :, :, :, i, j] = x[:, :, i:i_max:stride, j:j_max:stride].transpose(
                    0, 2, 3, 1
                )
        return rows6.reshape(n * out_h * out_w, c * kh * kw)

    # -- conv2d --------------------------------------------------------

    def _gather_colsT(
        self,
        xp: np.ndarray,
        cols4: np.ndarray,
        kh: int,
        kw: int,
        stride: int,
        out_h: int,
        out_w: int,
        lo: int,
        hi: int,
    ) -> None:
        """Fill ``cols4[:, i, j, lo:hi]`` slabs for samples ``lo:hi``."""
        for i in range(kh):
            i_max = i + stride * out_h
            for j in range(kw):
                j_max = j + stride * out_w
                cols4[:, i, j, lo:hi] = xp[lo:hi, :, i:i_max:stride, j:j_max:stride].transpose(
                    1, 0, 2, 3
                )

    def _maybe_threaded_gather(
        self,
        xp: np.ndarray,
        cols4: np.ndarray,
        kh: int,
        kw: int,
        stride: int,
        out_h: int,
        out_w: int,
        n: int,
    ) -> None:
        if self.threads > 1 and n >= self.threads:
            # Per-sample partitioning: every worker writes a disjoint
            # batch slice of cols4, so the result is deterministic and
            # identical to the serial gather.
            if self._pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self.threads, thread_name_prefix="repro-fast"
                )
            chunk = -(-n // self.threads)
            futures = [
                self._pool.submit(
                    self._gather_colsT,
                    xp, cols4, kh, kw, stride, out_h, out_w, lo, min(lo + chunk, n),
                )
                for lo in range(0, n, chunk)
            ]
            for f in futures:
                f.result()
        else:
            self._gather_colsT(xp, cols4, kh, kw, stride, out_h, out_w, 0, n)

    def conv2d_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: np.ndarray | None,
        stride: int,
        ph: int,
        pw: int,
        want_ctx: bool,
    ) -> tuple[np.ndarray, tuple | None]:
        n, c_in, h, w = x.shape
        c_out, _, kh, kw = weight.shape
        out_h = _out_size(h, kh, stride, ph)
        out_w = _out_size(w, kw, stride, pw)
        w2d = weight.reshape(c_out, -1)

        if kh == 1 and kw == 1 and stride == 1 and ph == 0 and pw == 0:
            # Batched GEMM straight over NCHW: (c_out, C) @ (N, C, H·W)
            # broadcasts to (N, c_out, H·W) — no transpose copies at all.
            x3 = x.reshape(n, c_in, h * w)
            out3 = np.matmul(w2d, x3)
            if bias is not None:
                out3 += bias[:, None]
            ctx = ("1x1", x3, w2d, x.shape) if want_ctx else None
            return out3.reshape(n, c_out, h, w), ctx

        if ph > 0 or pw > 0:
            xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
        else:
            xp = x
        cshape = (c_in * kh * kw, n * out_h * out_w)
        if want_ctx:
            # The backward closure captures colsT, so it must be freshly
            # owned — a reused scratch buffer would be clobbered by the
            # next same-shape conv before backward() runs.
            colsT = np.empty(cshape, dtype=x.dtype)
        else:
            colsT = _scratch("colsT", cshape, x.dtype)
        cols4 = colsT.reshape(c_in, kh, kw, n, out_h, out_w)
        self._maybe_threaded_gather(xp, cols4, kh, kw, stride, out_h, out_w, n)

        # One big GEMM into a transient scratch, bias fused in place.
        oT = _scratch("convT_out", (c_out, n * out_h * out_w), np.result_type(x, weight))
        np.matmul(w2d, colsT, out=oT)
        if bias is not None:
            oT += bias[:, None]
        out = np.ascontiguousarray(
            oT.reshape(c_out, n, out_h, out_w).transpose(1, 0, 2, 3)
        )
        ctx = ("gen", colsT, w2d, x.shape, kh, kw, stride, ph, pw) if want_ctx else None
        return out, ctx

    def conv2d_backward(
        self,
        g: np.ndarray,
        ctx: tuple,
        need_gw: bool,
        need_gb: bool,
        need_gx: bool,
    ) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
        if ctx[0] == "1x1":
            _, x3, w2d, x_shape = ctx
            n, c_in, h, w = x_shape
            c_out = g.shape[1]
            g3 = g.reshape(n, c_out, h * w)
            gw = None
            if need_gw:
                # Batched per-sample outer products, reduced over N.
                gw = np.matmul(g3, x3.transpose(0, 2, 1)).sum(axis=0)
                gw = gw.reshape(c_out, c_in, 1, 1)
            gb = g.sum(axis=(0, 2, 3)) if need_gb else None
            gx = None
            if need_gx:
                gx = np.matmul(w2d.T, g3).reshape(x_shape)
            return gw, gb, gx

        _, colsT, w2d, x_shape, kh, kw, stride, ph, pw = ctx
        n, c_in, h, w = x_shape
        c_out = g.shape[1]
        out_h = _out_size(h, kh, stride, ph)
        out_w = _out_size(w, kw, stride, pw)
        # (N, c_out, oh, ow) -> (c_out, N*oh*ow), matching colsT's columns.
        gT = np.ascontiguousarray(g.transpose(1, 0, 2, 3)).reshape(c_out, -1)
        gw = (gT @ colsT.T).reshape(c_out, c_in, kh, kw) if need_gw else None
        gb = gT.sum(axis=1) if need_gb else None
        gx = None
        if need_gx:
            gcolsT = _scratch("gcolsT", colsT.shape, colsT.dtype)
            np.matmul(w2d.T, gT, out=gcolsT)
            gc6 = gcolsT.reshape(c_in, kh, kw, n, out_h, out_w)
            if ph > 0 or pw > 0:
                padded = _zeroed_scratch(
                    "conv_gx", (n, c_in, h + 2 * ph, w + 2 * pw), gcolsT.dtype
                )
            else:
                padded = np.zeros((n, c_in, h, w), dtype=gcolsT.dtype)
            for i in range(kh):
                i_max = i + stride * out_h
                for j in range(kw):
                    j_max = j + stride * out_w
                    padded[:, :, i:i_max:stride, j:j_max:stride] += gc6[:, i, j].transpose(
                        1, 0, 2, 3
                    )
            if ph > 0 or pw > 0:
                gx = np.ascontiguousarray(padded[:, :, ph : ph + h, pw : pw + w])
            else:
                gx = padded
        return gw, gb, gx

    # -- fused optimizers ----------------------------------------------

    def adam_update(
        self,
        flat: np.ndarray,
        g: np.ndarray,
        m: np.ndarray,
        v: np.ndarray,
        tmp: np.ndarray,
        decay_mask: np.ndarray | None,
        lr: float,
        beta1: float,
        beta2: float,
        eps: float,
        step: int,
    ) -> None:
        """Allocation-free Adam chain: the reference's exact elementwise
        ops rewritten in ``out=`` form over ``tmp`` and the (dead after
        the moment updates) gradient buffer — bit-exact, zero fresh
        temporaries per step."""
        if decay_mask is not None:
            np.multiply(decay_mask, flat, out=tmp)
            g += tmp
        m *= beta1
        np.multiply(g, 1 - beta1, out=tmp)
        m += tmp
        v *= beta2
        np.multiply(g, 1 - beta2, out=tmp)
        tmp *= g
        v += tmp
        # g is dead now: reuse it for the denominator √(v̂) + eps.
        np.divide(v, 1 - beta2**step, out=g)
        np.sqrt(g, out=g)
        g += eps
        np.divide(m, 1 - beta1**step, out=tmp)
        tmp *= lr
        tmp /= g
        flat -= tmp

    def segment_norms(
        self, x: np.ndarray, seg_starts: np.ndarray, seg_sizes: np.ndarray
    ) -> np.ndarray:
        """Segmented L2 norms in two vector ops: square the whole slab
        into pooled scratch, ``np.add.reduceat`` at the precomputed
        segment boundaries, one sqrt over the per-segment sums."""
        sq = _scratch("segnorm_sq", x.shape, np.float32)
        np.multiply(x, x, out=sq)
        sums = np.add.reduceat(sq, seg_starts)
        return np.sqrt(sums, out=sums)

    def lamb_update(
        self,
        flat: np.ndarray,
        g: np.ndarray,
        m: np.ndarray,
        v: np.ndarray,
        tmp: np.ndarray,
        decay_mask: np.ndarray | None,
        seg_starts: np.ndarray,
        seg_sizes: np.ndarray,
        lr: float,
        beta1: float,
        beta2: float,
        eps: float,
        step: int,
    ) -> None:
        """Whole-arena LAMB: one vectorized moment/update chain, then
        segmented trust-ratio norms via :meth:`segment_norms` broadcast
        back over the tiling with ``np.repeat``.  Tolerance-tagged: the
        reduceat summation order differs from the per-segment dots."""
        m *= beta1
        np.multiply(g, 1 - beta1, out=tmp)
        m += tmp
        v *= beta2
        np.multiply(g, 1 - beta2, out=tmp)
        tmp *= g
        v += tmp
        # g is dead: reuse it as the update vector u = m̂/(√v̂+eps)+wd·w.
        den = _scratch("lamb_den", flat.shape, np.float32)
        np.divide(v, 1 - beta2**step, out=den)
        np.sqrt(den, out=den)
        den += eps
        np.divide(m, 1 - beta1**step, out=g)
        g /= den
        if decay_mask is not None:
            np.multiply(decay_mask, flat, out=den)
            g += den
        w_norm = self.segment_norms(flat, seg_starts, seg_sizes)
        u_norm = self.segment_norms(g, seg_starts, seg_sizes)
        ratio = np.ones_like(w_norm)
        ok = (w_norm > 0) & (u_norm > 0)
        np.divide(w_norm, u_norm, out=ratio, where=ok)
        ratio *= np.float32(lr)
        np.multiply(g, np.repeat(ratio, seg_sizes), out=tmp)
        flat -= tmp


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_BACKENDS: dict[str, Backend] = {}


def register(backend: Backend) -> Backend:
    """Add a backend instance to the registry (name collisions replace)."""
    _BACKENDS[backend.name] = backend
    return backend


register(NumpyBackend())
register(FastBackend())


def available() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def get(name: str) -> Backend:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(available())}"
        ) from None


def _default() -> Backend:
    return get(os.environ.get("REPRO_BACKEND", "numpy"))


_ACTIVE: Backend = _default()


def active() -> Backend:
    """The backend every dispatched op currently routes through."""
    return _ACTIVE


def set_backend(name: str) -> Backend:
    """Select the active backend process-wide; returns it."""
    global _ACTIVE
    _ACTIVE = get(name)
    return _ACTIVE


@contextmanager
def use(name: str):
    """Temporarily select a backend::

        with backend.use("fast"):
            model(x)
    """
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = get(name)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = prev
