"""Operation-level kernel accounting, bridged into the observability layer.

The engine's two kernels — GEMM (:meth:`Tensor.matmul`) and im2col
convolution (:func:`conv2d`) — call :func:`record_gemm` /
:func:`record_conv` when profiling is active.  Because every layer in the
library (Linear, Conv2d, LSTM, attention, and their low-rank variants)
bottoms out in these two kernels, a single instrumented forward pass
yields the exact multiply-accumulate count the paper reports in its
"MACs (G)" columns — no per-layer analytic bookkeeping required.

Two consumers can be active, independently or together:

* :class:`count_macs` — the original scoped counter.  Frames form a stack
  and the *innermost* frame receives the MACs, so a nested counter shadows
  its enclosing one (each region is counted exactly once, and
  ``outer.total`` covers only work outside the inner context — the
  documented historical semantics).
* the global metrics registry — when
  :func:`repro.observability.enable_metrics` is on, every recorded kernel
  also increments the ``macs``, ``gemm_calls`` and ``conv_calls``
  counters exactly once, regardless of how many ``count_macs`` frames are
  stacked.

Robustness: earlier versions chained restoration through a ``_prev``
attribute stored *on the context-manager object*, so re-entering the same
``count_macs`` instance overwrote the saved state and leaked an active
counter forever — every later kernel kept accumulating into the leaked
frame (and, under the registry, double-counted).  The frame stack below
pops by identity and discards any frames leaked above the exiting one, so
mismatched or exception-interrupted exits always restore a clean state.
"""

from __future__ import annotations

from ..observability import metrics as _metrics

__all__ = [
    "count_macs",
    "macs_active",
    "add_macs",
    "profiling_active",
    "record_gemm",
    "record_conv",
]

# Stack of active count_macs frames (innermost last).  Each frame is a
# one-element list so the accumulated total is mutable in place.
_STACK: list[list[int]] = []


class count_macs:
    """Context manager; ``.total`` holds the MACs accumulated inside.

    Re-entrant: one instance may be entered multiple times (even nested);
    each ``with`` block gets its own frame and ``.total`` reflects the most
    recently exited block.
    """

    def __init__(self) -> None:
        self.total = 0
        self._frames: list[list[int]] = []

    def __enter__(self) -> "count_macs":
        frame = [0]
        self._frames.append(frame)
        _STACK.append(frame)
        return self

    def __exit__(self, *exc) -> None:
        frame = self._frames.pop()
        self.total = frame[0]
        # Pop by identity: also discards frames leaked above this one by a
        # context that never exited (e.g. a generator abandoned mid-block),
        # so the global state always returns to a well-defined stack.
        for i in range(len(_STACK) - 1, -1, -1):
            if _STACK[i] is frame:
                del _STACK[i:]
                return


def macs_active() -> bool:
    """True while at least one :class:`count_macs` context is open."""
    return bool(_STACK)


def profiling_active() -> bool:
    """True when any kernel-accounting consumer wants updates."""
    return bool(_STACK) or _metrics.COLLECT


def add_macs(n: int) -> None:
    """Credit ``n`` MACs to the innermost counter and the registry."""
    n = int(n)
    if _STACK:
        _STACK[-1][0] += n
    if _metrics.COLLECT:
        _metrics.REGISTRY.counter("macs").inc(n)


def record_gemm(macs: int) -> None:
    """One GEMM kernel launch executing ``macs`` multiply-accumulates."""
    add_macs(macs)
    if _metrics.COLLECT:
        _metrics.REGISTRY.counter("gemm_calls").inc()


def record_conv(macs: int) -> None:
    """One im2col-convolution kernel launch of ``macs`` MACs."""
    add_macs(macs)
    if _metrics.COLLECT:
        _metrics.REGISTRY.counter("conv_calls").inc()
