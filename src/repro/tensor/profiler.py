"""Operation-level MAC accounting.

A process-global counter that the engine's GEMM and convolution kernels
increment while a :class:`count_macs` context is active.  Because every
layer in the library (Linear, Conv2d, LSTM, attention, and their low-rank
variants) bottoms out in these two kernels, a single instrumented forward
pass yields the exact multiply-accumulate count the paper reports in its
"MACs (G)" columns — no per-layer analytic bookkeeping required.
"""

from __future__ import annotations

__all__ = ["count_macs", "macs_active", "add_macs"]

_COUNTER: list[int] | None = None


class count_macs:
    """Context manager; ``.total`` holds the MACs accumulated inside."""

    def __init__(self) -> None:
        self.total = 0

    def __enter__(self) -> "count_macs":
        global _COUNTER
        self._prev = _COUNTER
        _COUNTER = [0]
        return self

    def __exit__(self, *exc) -> None:
        global _COUNTER
        self.total = _COUNTER[0]
        _COUNTER = self._prev


def macs_active() -> bool:
    return _COUNTER is not None


def add_macs(n: int) -> None:
    if _COUNTER is not None:
        _COUNTER[0] += int(n)
