"""Functional neural-network primitives on top of :class:`repro.tensor.Tensor`.

Fused implementations of softmax / log-softmax / cross-entropy, embedding
lookup and dropout.  These are fused (single graph node with a hand-written
backward) both for numerical stability and to keep graphs shallow on long
sequences.
"""

from __future__ import annotations

import numpy as np

from . import backend as _backend
from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "embedding",
    "dropout",
    "one_hot",
    "bias_relu",
]


def bias_relu(x: Tensor, bias: Tensor) -> Tensor:
    """Fused ``relu(x + bias)`` — one graph node instead of two.

    The heavy lifting dispatches through the active backend: the ``fast``
    backend computes ``maximum(x + b, 0)`` in a single in-place pass; the
    ``numpy`` reference keeps the two-step mask form, bit-exact with an
    unfused ``(x + bias).relu()``.  The gradient masks agree everywhere
    (``out > 0`` equals ``x + b > 0``, including at ±0), and
    ``Tensor._accumulate`` unbroadcasts the bias gradient to its shape.
    """
    out, mask = _backend.active().bias_relu(x.data, bias.data)

    def backward(g: np.ndarray) -> None:
        m = mask if mask is not None else out > 0
        gm = g * m
        x._accumulate(gm)
        bias._accumulate(gm)

    return Tensor._from_op(out, (x, bias), backward, "bias_relu")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray) -> None:
        # dL/dx = s * (g - sum(g * s))
        dot = (g * out).sum(axis=axis, keepdims=True)
        x._accumulate(out * (g - dot))

    return Tensor._from_op(out.astype(x.dtype, copy=False), (x,), backward, "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_z
    s = np.exp(out)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g - s * g.sum(axis=axis, keepdims=True))

    return Tensor._from_op(out.astype(x.dtype, copy=False), (x,), backward, "log_softmax")


def nll_loss(log_probs: Tensor, targets: np.ndarray, ignore_index: int | None = None) -> Tensor:
    """Negative log-likelihood of integer ``targets`` under ``log_probs``.

    ``log_probs`` is ``(N, C)``; ``targets`` is ``(N,)`` of ints.  Entries
    equal to ``ignore_index`` contribute nothing (used for padding tokens).
    """
    targets = np.asarray(targets)
    n = log_probs.data.shape[0]
    rows = np.arange(n)
    if ignore_index is not None:
        keep = targets != ignore_index
        count = max(int(keep.sum()), 1)
    else:
        keep = np.ones(n, dtype=bool)
        count = n
    picked = log_probs.data[rows, np.where(keep, targets, 0)]
    loss_val = -(picked * keep).sum() / count

    def backward(g: np.ndarray) -> None:
        grad = np.zeros_like(log_probs.data)
        grad[rows[keep], targets[keep]] = -1.0 / count
        log_probs._accumulate(grad * g)

    return Tensor._from_op(
        np.asarray(loss_val, dtype=log_probs.dtype), (log_probs,), backward, "nll"
    )


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    label_smoothing: float = 0.0,
    ignore_index: int | None = None,
) -> Tensor:
    """Softmax cross-entropy with optional label smoothing.

    A fused node: computes log-softmax internally and backpropagates the
    classic ``p - y`` gradient directly to ``logits``.
    """
    targets = np.asarray(targets)
    x = logits.data
    n, c = x.shape[0], x.shape[-1]
    x2d = x.reshape(-1, c)
    t1d = targets.reshape(-1)
    rows = np.arange(x2d.shape[0])

    if ignore_index is not None:
        keep = t1d != ignore_index
    else:
        keep = np.ones(x2d.shape[0], dtype=bool)
    count = max(int(keep.sum()), 1)

    shifted = x2d - x2d.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logp = shifted - log_z

    safe_t = np.where(keep, t1d, 0)
    if label_smoothing > 0.0:
        eps = label_smoothing
        # Smoothed target: (1-eps) on the true class, eps/C elsewhere.
        loss_rows = -(1.0 - eps) * logp[rows, safe_t] - (eps / c) * logp.sum(axis=1)
    else:
        loss_rows = -logp[rows, safe_t]
    loss_val = (loss_rows * keep).sum() / count

    probs = np.exp(logp)

    def backward(g: np.ndarray) -> None:
        grad = probs.copy()
        if label_smoothing > 0.0:
            grad -= label_smoothing / c
            grad[rows, safe_t] -= 1.0 - label_smoothing
        else:
            grad[rows, safe_t] -= 1.0
        grad *= (keep / count)[:, None]
        logits._accumulate(grad.reshape(x.shape) * g)

    return Tensor._from_op(
        np.asarray(loss_val, dtype=x.dtype), (logits,), backward, "cross_entropy"
    )


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``weight[indices]`` with scatter-add backward.

    ``indices`` may have any shape; the result appends the embedding
    dimension.
    """
    indices = np.asarray(indices)
    out = weight.data[indices]

    def backward(g: np.ndarray) -> None:
        grad = np.zeros_like(weight.data)
        np.add.at(grad, indices.reshape(-1), g.reshape(-1, weight.data.shape[1]))
        weight._accumulate(grad)

    return Tensor._from_op(out, (weight,), backward, "embedding")


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: identity at eval time, scaled mask at train time."""
    if not training or p <= 0.0:
        return x
    mask = (rng.random(x.data.shape) >= p).astype(x.dtype) / (1.0 - p)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * mask)

    return Tensor._from_op(x.data * mask, (x,), backward, "dropout")


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Plain one-hot encoding helper (returns ndarray, not Tensor)."""
    indices = np.asarray(indices)
    out = np.zeros((indices.size, num_classes), dtype=np.float32)
    out[np.arange(indices.size), indices.reshape(-1)] = 1.0
    return out.reshape(*indices.shape, num_classes)
