"""Convolution and pooling primitives built on im2col.

All routines operate on NCHW layout.  The im2col transform turns a
convolution into one big matrix multiplication, which keeps both the
forward and backward passes inside BLAS instead of Python loops — the
standard trick for NumPy-only deep-learning stacks.
"""

from __future__ import annotations

import numpy as np

from . import profiler as _profiler
from .tensor import Tensor

__all__ = ["conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d", "im2col", "col2im"]


def _out_size(size: int, k: int, stride: int, pad: int) -> int:
    return (size + 2 * pad - k) // stride + 1


# Scratch buffers for col2im's padded accumulator, keyed by (shape, dtype).
# Backward passes call col2im with the same few shapes every iteration;
# reusing the accumulator avoids a large zeroed allocation (and its
# mmap/page-fault churn) per call.  Training is single-threaded, and the
# buffer never escapes: callers receive a copy of the inner region.
_COL2IM_SCRATCH: dict[tuple, np.ndarray] = {}
_COL2IM_SCRATCH_MAX = 16


def _col2im_scratch(shape: tuple[int, ...], dtype) -> np.ndarray:
    key = (shape, np.dtype(dtype).str)
    buf = _COL2IM_SCRATCH.get(key)
    if buf is None:
        if len(_COL2IM_SCRATCH) >= _COL2IM_SCRATCH_MAX:
            _COL2IM_SCRATCH.clear()
        buf = _COL2IM_SCRATCH[key] = np.empty(shape, dtype=dtype)
    buf.fill(0)
    return buf


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x: ``(N, C, H, W)`` input.

    Returns
    -------
    ``(N * out_h * out_w, C * kh * kw)`` matrix where each row is one
    receptive field.
    """
    n, c, h, w = x.shape
    out_h = _out_size(h, kh, stride, pad)
    out_w = _out_size(w, kw, stride, pad)
    if kh == 1 and kw == 1 and stride == 1 and pad == 0:
        # 1×1 convs — the Pufferfish factorized V-factor hot path — have
        # one pixel per receptive field: the transform is a pure
        # transpose, no window view, no pad copy.
        return np.ascontiguousarray(x.transpose(0, 2, 3, 1).reshape(n * h * w, c))
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))

    # as_strided view over all (kh, kw) windows: (N, C, out_h, out_w, kh, kw)
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # -> (N, out_h, out_w, C, kh, kw) -> rows
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to image layout.

    The returned array is always freshly owned by the caller (gradients
    returned here are stored directly by ``Tensor._accumulate``); the
    padded accumulator itself is a reused scratch buffer.
    """
    n, c, h, w = x_shape
    out_h = _out_size(h, kh, stride, pad)
    out_w = _out_size(w, kw, stride, pad)
    if kh == 1 and kw == 1 and stride == 1 and pad == 0:
        # 1×1 adjoint: windows never overlap, so the scatter-add is a
        # plain transpose back to NCHW.
        return np.ascontiguousarray(cols.reshape(n, h, w, c).transpose(0, 3, 1, 2))

    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    if pad > 0:
        padded = _col2im_scratch((n, c, h + 2 * pad, w + 2 * pad), cols.dtype)
    else:
        # No pad: the accumulator is the result, so it must be fresh.
        padded = np.zeros((n, c, h, w), dtype=cols.dtype)
    # Accumulate each kernel offset in a vectorized slab assignment.
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, :, :, i, j]
    if pad > 0:
        return np.ascontiguousarray(padded[:, :, pad : pad + h, pad : pad + w])
    return padded


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution (cross-correlation) in NCHW with OIHW weights.

    ``weight`` has shape ``(c_out, c_in, kh, kw)``.  The forward pass is a
    single GEMM over the im2col matrix; the backward pass reuses the cached
    columns for the weight gradient and col2im for the input gradient.
    """
    n, c_in, h, w = x.data.shape
    c_out, c_in_w, kh, kw = weight.data.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    out_h = _out_size(h, kh, stride, padding)
    out_w = _out_size(w, kw, stride, padding)

    cols = im2col(x.data, kh, kw, stride, padding)  # (N*oh*ow, C*kh*kw)
    w2d = weight.data.reshape(c_out, -1)  # (c_out, C*kh*kw)
    out = cols @ w2d.T  # (N*oh*ow, c_out)
    if _profiler.profiling_active():
        # c_in·c_out·k²·H_out·W_out MACs per image (Table 1's conv formula).
        _profiler.record_conv(cols.shape[0] * cols.shape[1] * c_out)
    if bias is not None:
        out = out + bias.data
    out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(g: np.ndarray) -> None:
        g2d = g.transpose(0, 2, 3, 1).reshape(-1, c_out)  # (N*oh*ow, c_out)
        if weight.requires_grad:
            weight._accumulate((g2d.T @ cols).reshape(weight.data.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(g2d.sum(axis=0))
        if x.requires_grad:
            gcols = g2d @ w2d  # (N*oh*ow, C*kh*kw)
            x._accumulate(col2im(gcols, x.data.shape, kh, kw, stride, padding))

    return Tensor._from_op(np.ascontiguousarray(out), parents, backward, "conv2d")


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling with square window; ``stride`` defaults to ``kernel``."""
    stride = stride or kernel
    n, c, h, w = x.data.shape
    out_h = _out_size(h, kernel, stride, 0)
    out_w = _out_size(w, kernel, stride, 0)

    sn, sc, sh, sw = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    flat = windows.reshape(n, c, out_h, out_w, kernel * kernel)
    argmax = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

    def backward(g: np.ndarray) -> None:
        grad_flat = np.zeros(flat.shape, dtype=g.dtype)
        np.put_along_axis(grad_flat, argmax[..., None], g[..., None], axis=-1)
        # Reorder to im2col's row convention: rows are (n, oh, ow), cols (c, kh, kw)
        grad_cols = grad_flat.transpose(0, 2, 3, 1, 4).reshape(
            n * out_h * out_w, c * kernel * kernel
        )
        x._accumulate(col2im(grad_cols, x.data.shape, kernel, kernel, stride, 0))

    return Tensor._from_op(np.ascontiguousarray(out), (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling with square window."""
    stride = stride or kernel
    n, c, h, w = x.data.shape
    out_h = _out_size(h, kernel, stride, 0)
    out_w = _out_size(w, kernel, stride, 0)

    sn, sc, sh, sw = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    out = windows.mean(axis=(-1, -2))
    scale = 1.0 / (kernel * kernel)

    def backward(g: np.ndarray) -> None:
        g_spread = np.broadcast_to(
            (g * scale)[..., None, None], (n, c, out_h, out_w, kernel, kernel)
        )
        grad_cols = g_spread.transpose(0, 2, 3, 1, 4, 5).reshape(
            n * out_h * out_w, c * kernel * kernel
        )
        x._accumulate(col2im(grad_cols, x.data.shape, kernel, kernel, stride, 0))

    return Tensor._from_op(np.ascontiguousarray(out), (x,), backward, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning ``(N, C)``."""
    return x.mean(axis=(2, 3))
