"""Convolution and pooling primitives built on im2col.

All routines operate on NCHW layout.  The im2col transform turns a
convolution into one big matrix multiplication, which keeps both the
forward and backward passes inside BLAS instead of Python loops — the
standard trick for NumPy-only deep-learning stacks.

The actual kernels live in :mod:`repro.tensor.backend`; everything here
dispatches through the active backend, so the same autograd graph runs
on the bit-exact ``numpy`` reference or the BLAS-batched ``fast`` path.
``padding`` may be an int or an ``(pad_h, pad_w)`` pair.
"""

from __future__ import annotations

import numpy as np

from . import backend as _backend
from . import profiler as _profiler
from .backend import _out_size, _pad_pair
from .tensor import Tensor, is_grad_enabled

__all__ = ["conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d", "im2col", "col2im"]


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int | tuple[int, int]
) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x: ``(N, C, H, W)`` input.

    Returns
    -------
    ``(N * out_h * out_w, C * kh * kw)`` matrix where each row is one
    receptive field.
    """
    ph, pw = _pad_pair(pad)
    return _backend.active().im2col(x, kh, kw, stride, ph, pw)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int | tuple[int, int],
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to image layout.

    The returned array is always freshly owned by the caller (gradients
    returned here are stored directly by ``Tensor._accumulate``); any
    padded accumulator is backend-managed scratch.
    """
    ph, pw = _pad_pair(pad)
    return _backend.active().col2im(cols, x_shape, kh, kw, stride, ph, pw)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None,
    stride: int = 1,
    padding: int | tuple[int, int] = 0,
) -> Tensor:
    """2-D convolution (cross-correlation) in NCHW with OIHW weights.

    ``weight`` has shape ``(c_out, c_in, kh, kw)``.  The forward pass is a
    single GEMM over the im2col matrix; the backward pass reuses the cached
    columns for the weight gradient and col2im for the input gradient.  The
    backend that runs the forward owns the cached context, so the backward
    stays consistent even if the active backend changes in between.
    """
    n, c_in, h, w = x.data.shape
    c_out, c_in_w, kh, kw = weight.data.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")
    ph, pw = _pad_pair(padding)
    out_h = _out_size(h, kh, stride, ph)
    out_w = _out_size(w, kw, stride, pw)

    be = _backend.active()
    want_ctx = is_grad_enabled() and (
        x.requires_grad
        or weight.requires_grad
        or (bias is not None and bias.requires_grad)
    )
    out, ctx = be.conv2d_forward(
        x.data,
        weight.data,
        bias.data if bias is not None else None,
        stride,
        ph,
        pw,
        want_ctx,
    )
    if _profiler.profiling_active():
        # c_in·c_out·k²·H_out·W_out MACs per image (Table 1's conv formula).
        _profiler.record_conv(n * out_h * out_w * c_in * kh * kw * c_out)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(g: np.ndarray) -> None:
        gw, gb, gx = be.conv2d_backward(
            g,
            ctx,
            need_gw=weight.requires_grad,
            need_gb=bias is not None and bias.requires_grad,
            need_gx=x.requires_grad,
        )
        if gw is not None:
            weight._accumulate(gw)
        if gb is not None:
            bias._accumulate(gb)
        if gx is not None:
            x._accumulate(gx)

    return Tensor._from_op(out, parents, backward, "conv2d")


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling with square window; ``stride`` defaults to ``kernel``."""
    stride = stride or kernel
    n, c, h, w = x.data.shape
    out_h = _out_size(h, kernel, stride, 0)
    out_w = _out_size(w, kernel, stride, 0)

    sn, sc, sh, sw = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    flat = windows.reshape(n, c, out_h, out_w, kernel * kernel)
    argmax = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

    def backward(g: np.ndarray) -> None:
        grad_flat = np.zeros(flat.shape, dtype=g.dtype)
        np.put_along_axis(grad_flat, argmax[..., None], g[..., None], axis=-1)
        # Reorder to im2col's row convention: rows are (n, oh, ow), cols (c, kh, kw)
        grad_cols = grad_flat.transpose(0, 2, 3, 1, 4).reshape(
            n * out_h * out_w, c * kernel * kernel
        )
        x._accumulate(col2im(grad_cols, x.data.shape, kernel, kernel, stride, 0))

    return Tensor._from_op(np.ascontiguousarray(out), (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling with square window."""
    stride = stride or kernel
    n, c, h, w = x.data.shape
    out_h = _out_size(h, kernel, stride, 0)
    out_w = _out_size(w, kernel, stride, 0)

    sn, sc, sh, sw = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    out = windows.mean(axis=(-1, -2))
    scale = 1.0 / (kernel * kernel)

    def backward(g: np.ndarray) -> None:
        g_spread = np.broadcast_to(
            (g * scale)[..., None, None], (n, c, out_h, out_w, kernel, kernel)
        )
        grad_cols = g_spread.transpose(0, 2, 3, 1, 4, 5).reshape(
            n * out_h * out_w, c * kernel * kernel
        )
        x._accumulate(col2im(grad_cols, x.data.shape, kernel, kernel, stride, 0))

    return Tensor._from_op(np.ascontiguousarray(out), (x,), backward, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning ``(N, C)``."""
    return x.mean(axis=(2, 3))
