"""Reverse-mode automatic differentiation over NumPy arrays.

This module is the computational substrate for the whole reproduction: a
single :class:`Tensor` class that wraps a ``numpy.ndarray`` and records a
dynamic computation graph, plus the elementwise / reduction / shape
primitives that the neural-network layers in :mod:`repro.nn` are built from.

The design follows the usual define-by-run scheme: every differentiable
operation produces a new ``Tensor`` holding references to its parents and a
closure that propagates the output gradient to them.  Calling
:meth:`Tensor.backward` runs a topological sort of the recorded graph and
accumulates gradients into every leaf with ``requires_grad=True``.

All math is vectorized NumPy; there are no Python loops over elements.
Gradients are stored in the same dtype as the data (float32 by default).
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Sequence

import numpy as np

from . import backend as _backend
from . import profiler as _profiler

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "graph_nodes_created"]

DEFAULT_DTYPE = np.float32

# ---------------------------------------------------------------------------
# Global autograd switch (mirrors torch.no_grad semantics).
# ---------------------------------------------------------------------------

_GRAD_ENABLED = True

# Optional observer called as ``GRAD_ARRIVAL_HOOK(tensor)`` the moment a
# leaf's gradient is first materialized during backward.  The DDP overlap
# simulator installs one to measure when each parameter's gradient becomes
# ready (the signal that lets a gradient bucket start communicating while
# the rest of the backward pass still runs).  ``None`` (the default) costs
# a single global read on the first accumulation per tensor.
GRAD_ARRIVAL_HOOK = None


class no_grad:
    """Context manager that disables graph recording inside its block."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


# Monotonic count of autograd graph nodes recorded since process start.
# Eval paths must leave it untouched: serving forwards and Trainer
# evaluation run under ``no_grad``, and the regression tests assert the
# delta across an evaluation is exactly zero (any nonzero delta means a
# code path silently rebuilt the graph — wasted memory and time that
# the serving latency profiles would otherwise absorb as noise).
_GRAPH_NODES_CREATED = 0


def graph_nodes_created() -> int:
    """Total autograd nodes recorded so far (monotonic; compare deltas)."""
    return _GRAPH_NODES_CREATED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Broadcasting prepends singleton axes and stretches length-1 axes; the
    adjoint of both is a sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched length-1 axes.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class Tensor:
    """A NumPy-backed array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Floating data is kept in
        ``float32`` unless another float dtype is passed explicitly.
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_op", "_seq")

    # Monotonic creation counter.  Backward executes nodes in reverse
    # creation order — a valid topological order (an op's parents always
    # exist before its output) that also keeps execution *layer-local*:
    # side branches such as the ``weight.T`` node inside Linear run right
    # after the op that consumed them, so leaf gradients materialize in
    # reverse layer order instead of piling up at the end of the pass.
    # The DDP overlap simulator's measured bucket-ready times depend on
    # this promptness.
    _seq_counter = itertools.count()

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        arr = np.asarray(data, dtype=dtype)
        if arr.dtype.kind == "f" and dtype is None:
            arr = arr.astype(DEFAULT_DTYPE, copy=False)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = ()
        self._backward: Callable[[np.ndarray], None] | None = None
        self._op: str = ""
        self._seq: int = next(Tensor._seq_counter)

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------

    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str = "",
    ) -> "Tensor":
        """Build an op output, recording the graph only when tracking is on."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = cls(data)
        out.requires_grad = requires
        if requires:
            global _GRAPH_NODES_CREATED
            _GRAPH_NODES_CREATED += 1
            out._parents = tuple(parents)
            out._backward = backward
            out._op = op
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (allocating on first use)."""
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
            if GRAD_ARRIVAL_HOOK is not None:
                GRAD_ARRIVAL_HOOK(self)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a scalar output"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Reachable set via iterative DFS (recursion would overflow on
        # deep nets such as ResNet-50), then execute in reverse *creation*
        # order.  Creation order is a topological order of the recorded
        # graph (parents exist before their outputs), and unlike DFS
        # postorder it keeps execution layer-local: side branches like
        # Linear's ``weight.T`` run immediately after their consumer, so
        # leaf gradients arrive in reverse layer order — the property the
        # DDP bucket-overlap measurement relies on.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tensor] = [self]
        while stack:
            node = stack.pop()
            if id(node) in visited:
                continue
            visited.add(id(node))
            topo.append(node)
            for p in node._parents:
                if id(p) not in visited:
                    stack.append(p)
        topo.sort(key=lambda t: t._seq, reverse=True)

        # Seed and propagate.  Gradients flow through ``grad`` buffers on
        # each node; intermediate buffers are released as soon as a node
        # has been processed.
        self._accumulate_out(grad)
        for node in topo:
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                if node is not self and not node._is_leaf():
                    node.grad = None  # free intermediate gradient memory

    def _accumulate_out(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
            if GRAD_ARRIVAL_HOOK is not None:
                GRAD_ARRIVAL_HOOK(self)
        else:
            self.grad += grad

    def _is_leaf(self) -> bool:
        return self._backward is None

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        return self.data

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = Tensor._coerce(other)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g)
            other._accumulate(g)

        return Tensor._from_op(self.data + other.data, (self, other), backward, "add")

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = Tensor._coerce(other)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g)
            other._accumulate(-g)

        return Tensor._from_op(self.data - other.data, (self, other), backward, "sub")

    def __rsub__(self, other) -> "Tensor":
        return Tensor._coerce(other) - self

    def __mul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * other.data)
            other._accumulate(g * self.data)

        return Tensor._from_op(self.data * other.data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor._coerce(other)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g / other.data)
            other._accumulate(-g * self.data / (other.data * other.data))

        return Tensor._from_op(self.data / other.data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor._coerce(other) / self

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(-g)

        return Tensor._from_op(-self.data, (self,), backward, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(out_data, (self,), backward, "pow")

    # Comparison helpers return plain (non-differentiable) tensors.
    def __gt__(self, other):
        return Tensor(self.data > (other.data if isinstance(other, Tensor) else other))

    def __lt__(self, other):
        return Tensor(self.data < (other.data if isinstance(other, Tensor) else other))

    # ------------------------------------------------------------------
    # Transcendental / nonlinear elementwise ops
    # ------------------------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * out_data)

        return Tensor._from_op(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(g / self.data)

        return Tensor._from_op(np.log(self.data), (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * 0.5 / out_data)

        return Tensor._from_op(out_data, (self,), backward, "sqrt")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * (1.0 - out_data * out_data))

        return Tensor._from_op(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic: evaluate each branch only where it is
        # stable (avoids exp overflow on large |x|).
        x = self.data
        out_data = np.empty_like(x)
        pos = x >= 0
        out_data[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out_data[~pos] = ex / (1.0 + ex)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._from_op(out_data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        out_data, mask = _backend.active().relu(self.data)

        def backward(g: np.ndarray) -> None:
            # Backends may skip materializing the mask on the forward pass
            # (``out > 0`` is identical to ``x > 0``, including at ±0).
            m = mask if mask is not None else out_data > 0
            self._accumulate(g * m)

        return Tensor._from_op(out_data, (self,), backward, "relu")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * sign)

        return Tensor._from_op(np.abs(self.data), (self,), backward, "abs")

    def clip(self, lo: float, hi: float) -> "Tensor":
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * mask)

        return Tensor._from_op(np.clip(self.data, lo, hi), (self,), backward, "clip")

    def maximum(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        mask = self.data >= other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * mask)
            other._accumulate(g * ~mask)

        return Tensor._from_op(
            np.maximum(self.data, other.data), (self, other), backward, "maximum"
        )

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------

    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product supporting 2-D and batched (>2-D) operands."""
        other = Tensor._coerce(other)
        out_data = _backend.active().matmul(self.data, other.data)
        if _profiler.profiling_active():
            # MACs = (#output elements) × (contracted dimension).
            k = self.data.shape[-1]
            _profiler.record_gemm(int(np.prod(out_data.shape)) * k)

        def backward(g: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1:
                ga = g @ np.swapaxes(b, -1, -2)
            else:
                ga = g @ np.swapaxes(b, -1, -2) if b.ndim > 1 else np.outer(g, b)
            if b.ndim == 1:
                gb = np.swapaxes(a, -1, -2) @ g if a.ndim > 1 else a * g
            else:
                gb = np.swapaxes(a, -1, -2) @ g
            self._accumulate(_unbroadcast(np.asarray(ga), a.shape))
            other._accumulate(_unbroadcast(np.asarray(gb), b.shape))

        return Tensor._from_op(out_data, (self, other), backward, "matmul")

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if axis is None:
                self._accumulate(np.broadcast_to(g, self.data.shape))
            else:
                g_exp = g if keepdims else np.expand_dims(g, axis)
                self._accumulate(np.broadcast_to(g_exp, self.data.shape))

        return Tensor._from_op(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else np.prod(
            [self.data.shape[a] for a in np.atleast_1d(axis)]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if axis is None:
                mask = self.data == out_data
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data, axis)
                mask = self.data == expanded
                g = g if keepdims else np.expand_dims(g, axis)
            # Spread the gradient evenly over ties.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts)

        return Tensor._from_op(out_data, (self,), backward, "max")

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        diff = self - mu
        return (diff * diff).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        in_shape = self.data.shape

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.reshape(in_shape))

        return Tensor._from_op(out_data, (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inv = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.transpose(inv))

        return Tensor._from_op(self.data.transpose(axes), (self,), backward, "transpose")

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]

        def backward(g: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, idx, g)
            self._accumulate(full)

        return Tensor._from_op(out_data, (self,), backward, "getitem")

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad; ``pad_width`` follows ``np.pad`` convention."""
        out_data = np.pad(self.data, pad_width)
        slices = tuple(
            slice(before, before + dim)
            for (before, _after), dim in zip(pad_width, self.data.shape)
        )

        def backward(g: np.ndarray) -> None:
            self._accumulate(g[slices])

        return Tensor._from_op(out_data, (self,), backward, "pad")

    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = list(tensors)
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(g: np.ndarray) -> None:
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(start, stop)
                t._accumulate(g[tuple(sl)])

        return Tensor._from_op(out_data, tensors, backward, "concat")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def randn(
        *shape, rng: np.random.Generator | None = None, requires_grad: bool = False
    ) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(
            rng.standard_normal(shape).astype(DEFAULT_DTYPE), requires_grad=requires_grad
        )
