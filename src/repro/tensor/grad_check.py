"""Numerical gradient checking for the autograd engine.

Used heavily in the test suite to validate every analytic backward pass
against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_grad", "check_gradients"]


def numerical_grad(
    fn: Callable[[], Tensor], param: Tensor, eps: float = 1e-3
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``param``.

    ``fn`` must rebuild the forward pass from scratch on each call (the graph
    is re-recorded); ``param.data`` is perturbed in place and restored.
    """
    grad = np.zeros_like(param.data, dtype=np.float64)
    flat = param.data.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = float(fn().data)
        flat[i] = orig - eps
        minus = float(fn().data)
        flat[i] = orig
        grad.reshape(-1)[i] = (plus - minus) / (2 * eps)
    return grad.astype(param.data.dtype)


def check_gradients(
    fn: Callable[[], Tensor],
    params: Sequence[Tensor],
    eps: float = 1e-3,
    rtol: float = 1e-2,
    atol: float = 1e-3,
    max_bad_frac: float = 0.0,
) -> None:
    """Assert the analytic gradients of ``fn`` match finite differences.

    ``max_bad_frac`` permits a small fraction of violating elements: around
    ReLU / max-pool kinks, central differences straddle the non-smooth point
    and legitimately disagree with the (correct) subgradient.

    Raises ``AssertionError`` with the worst offender on mismatch.
    """
    for p in params:
        p.zero_grad()
    loss = fn()
    loss.backward()
    for idx, p in enumerate(params):
        assert p.grad is not None, f"param {idx} received no gradient"
        num = numerical_grad(fn, p, eps=eps)
        err = np.abs(p.grad.astype(np.float64) - num.astype(np.float64))
        tol = atol + rtol * np.abs(num.astype(np.float64))
        bad = err > tol
        frac = bad.mean()
        if frac > max_bad_frac:
            worst = np.unravel_index(np.argmax(err - tol), err.shape)
            raise AssertionError(
                f"gradient mismatch for param {idx}: {bad.sum()}/{bad.size} elements "
                f"({frac:.2%}) exceed tolerance; worst at {worst}: "
                f"analytic={p.grad[worst]:.6g} numeric={num[worst]:.6g}"
            )
