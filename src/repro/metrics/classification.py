"""Accuracy metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["topk_accuracy", "accuracy"]


def topk_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 1) -> float:
    """Fraction of rows whose true label is among the top-``k`` logits."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if logits.ndim != 2:
        logits = logits.reshape(-1, logits.shape[-1])
        targets = targets.reshape(-1)
    topk = np.argpartition(-logits, kth=min(k, logits.shape[1] - 1), axis=1)[:, :k]
    hit = (topk == targets[:, None]).any(axis=1)
    return float(hit.mean())


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy."""
    return topk_accuracy(logits, targets, k=1)
