"""Corpus BLEU (Papineni et al. 2002) for the translation benchmark.

Standard BLEU-4 with uniform n-gram weights and the brevity penalty,
operating on integer token sequences (pad/eos stripped by the caller or
via ``strip_ids``).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

__all__ = ["corpus_bleu", "sentence_ngrams"]


def sentence_ngrams(tokens: Sequence[int], n: int) -> Counter:
    """Multiset of n-grams of order ``n``."""
    return Counter(tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1))


def _strip(seq: Sequence[int], strip_ids: frozenset) -> list[int]:
    return [t for t in seq if t not in strip_ids]


def corpus_bleu(
    hypotheses: Iterable[Sequence[int]],
    references: Iterable[Sequence[int]],
    max_n: int = 4,
    strip_ids: Iterable[int] = (),
    smooth: float = 1e-9,
) -> float:
    """Corpus-level BLEU in [0, 100].

    ``smooth`` is added to clipped counts so short corpora with a missing
    n-gram order don't collapse to exactly zero (add-epsilon smoothing).
    """
    strip = frozenset(strip_ids)
    clipped = [0] * max_n
    totals = [0] * max_n
    hyp_len = 0
    ref_len = 0
    for hyp, ref in zip(hypotheses, references):
        hyp = _strip(hyp, strip)
        ref = _strip(ref, strip)
        hyp_len += len(hyp)
        ref_len += len(ref)
        for n in range(1, max_n + 1):
            h_ngrams = sentence_ngrams(hyp, n)
            r_ngrams = sentence_ngrams(ref, n)
            totals[n - 1] += max(sum(h_ngrams.values()), 0)
            clipped[n - 1] += sum(
                min(count, r_ngrams.get(gram, 0)) for gram, count in h_ngrams.items()
            )
    if hyp_len == 0:
        return 0.0
    log_precisions = []
    for n in range(max_n):
        if totals[n] == 0:
            continue
        p = (clipped[n] + smooth) / totals[n]
        log_precisions.append(math.log(p))
    if not log_precisions:
        return 0.0
    geo_mean = math.exp(sum(log_precisions) / len(log_precisions))
    brevity = 1.0 if hyp_len >= ref_len else math.exp(1.0 - ref_len / hyp_len)
    return 100.0 * brevity * geo_mean
