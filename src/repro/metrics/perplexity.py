"""Perplexity for language modeling."""

from __future__ import annotations

import math

__all__ = ["perplexity"]


def perplexity(mean_nll: float, cap: float = 1e9) -> float:
    """``exp(mean negative log-likelihood)``, clamped against overflow."""
    try:
        return min(math.exp(mean_nll), cap)
    except OverflowError:
        return cap
