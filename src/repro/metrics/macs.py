"""MAC (multiply-accumulate) counting.

Two complementary routes:

* :func:`measure_macs` — run one real forward pass under the engine's
  instrumented kernels and report exactly what was executed.  This is the
  number reported in EXPERIMENTS.md (the paper likewise measures a single
  forward pass).
* Analytic formulas from Table 1 (:func:`fc_macs` … :func:`ffn_macs`),
  used by the Table 1 benchmark to validate the measured counts.
"""

from __future__ import annotations


from ..nn.module import Module
from ..tensor import count_macs, no_grad

__all__ = [
    "measure_macs",
    "fc_macs",
    "lowrank_fc_macs",
    "conv_macs",
    "lowrank_conv_macs",
    "lstm_macs",
    "lowrank_lstm_macs",
    "attention_macs",
    "lowrank_attention_macs",
    "ffn_macs",
    "lowrank_ffn_macs",
    "fc_params",
    "lowrank_fc_params",
    "conv_params",
    "lowrank_conv_params",
    "lstm_params",
    "lowrank_lstm_params",
    "attention_params",
    "lowrank_attention_params",
    "ffn_params",
    "lowrank_ffn_params",
]


def measure_macs(model: Module, *example_inputs) -> int:
    """Forward-pass MACs for one example (paper's single-input convention).

    ``example_inputs`` are passed to ``model(...)`` verbatim; wrap arrays in
    :class:`Tensor` yourself if the model expects tensors.
    """
    model.eval()
    with no_grad(), count_macs() as counter:
        model(*example_inputs)
    return counter.total


# ---------------------------------------------------------------------------
# Table 1 closed forms — parameters
# ---------------------------------------------------------------------------

def fc_params(m: int, n: int) -> int:
    return m * n


def lowrank_fc_params(m: int, n: int, r: int) -> int:
    return r * (m + n)


def conv_params(c_in: int, c_out: int, k: int) -> int:
    return c_in * c_out * k * k


def lowrank_conv_params(c_in: int, c_out: int, k: int, r: int) -> int:
    return c_in * r * k * k + r * c_out


def lstm_params(d: int, h: int) -> int:
    return 4 * (d * h + h * h)


def lowrank_lstm_params(d: int, h: int, r: int) -> int:
    return 4 * d * r + 12 * h * r


def attention_params(p: int, d: int) -> int:
    return 4 * p * p * d * d


def lowrank_attention_params(p: int, d: int, r: int) -> int:
    return (3 * p + 5) * p * r * d


def ffn_params(p: int, d: int) -> int:
    return 8 * p * p * d * d


def lowrank_ffn_params(p: int, d: int, r: int) -> int:
    return 10 * p * d * r


# ---------------------------------------------------------------------------
# Table 1 closed forms — MACs (weights only, biases/softmax ignored, as the
# paper's complexity columns do)
# ---------------------------------------------------------------------------

def fc_macs(m: int, n: int) -> int:
    return m * n


def lowrank_fc_macs(m: int, n: int, r: int) -> int:
    return r * (m + n)


def conv_macs(c_in: int, c_out: int, k: int, h: int, w: int) -> int:
    return c_in * c_out * k * k * h * w


def lowrank_conv_macs(c_in: int, c_out: int, k: int, h: int, w: int, r: int) -> int:
    return r * c_in * k * k * h * w + r * h * w * c_out


def lstm_macs(d: int, h: int) -> int:
    return 4 * (d * h + h * h)


def lowrank_lstm_macs(d: int, h: int, r: int) -> int:
    return 4 * (d * r + r * h) + 4 * (h * r + r * h)


def attention_macs(p: int, d: int, n: int) -> int:
    """One encoder self-attention: projections + score/context matmuls."""
    pd = p * d
    return 3 * pd * d * p * n + 2 * n * n * pd + pd * pd * n


def lowrank_attention_macs(p: int, d: int, n: int, r: int) -> int:
    pd = p * d
    proj = 3 * p * (pd * r + r * d) * n  # per-head factorized Q/K/V
    out = (pd * r + r * pd) * n
    scores = 2 * n * n * pd
    return proj + out + scores


def ffn_macs(p: int, d: int, n: int) -> int:
    pd = p * d
    return 2 * (pd * 4 * pd) * n


def lowrank_ffn_macs(p: int, d: int, n: int, r: int) -> int:
    pd = p * d
    return (pd * r + r * 4 * pd) * n + (4 * pd * r + r * pd) * n
