"""Synthetic datasets and loaders (substitutes for CIFAR-10 / ImageNet /
WikiText-2 / WMT16 — see DESIGN.md for the substitution rationale)."""

from .synthetic import (
    SyntheticImageDataset,
    make_cifar_like,
    make_imagenet_like,
    random_crop_flip,
    CIFAR_MEAN,
    CIFAR_STD,
    IMAGENET_MEAN,
    IMAGENET_STD,
)
from .text import (
    MarkovCorpus,
    make_lm_corpus,
    batchify,
    get_lm_batch,
    TranslationDataset,
    make_translation_dataset,
)
from .loader import DataLoader, shard_dataset

__all__ = [
    "SyntheticImageDataset",
    "make_cifar_like",
    "make_imagenet_like",
    "random_crop_flip",
    "CIFAR_MEAN",
    "CIFAR_STD",
    "IMAGENET_MEAN",
    "IMAGENET_STD",
    "MarkovCorpus",
    "make_lm_corpus",
    "batchify",
    "get_lm_batch",
    "TranslationDataset",
    "make_translation_dataset",
    "DataLoader",
    "shard_dataset",
]
