"""Minibatch loading with shuffling, augmentation, and data-parallel shards."""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..utils import spawn_rng

__all__ = ["DataLoader", "shard_dataset"]


class DataLoader:
    """Iterates ``(x_batch, y_batch)`` over in-memory arrays.

    Parameters
    ----------
    x, y: aligned arrays; first axis is the example axis.
    batch_size: minibatch size (last partial batch dropped when
        ``drop_last``).
    shuffle: new permutation each epoch.
    transform: optional per-batch augmentation ``(x, rng) -> x``.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int,
        shuffle: bool = False,
        transform: Callable | None = None,
        drop_last: bool = False,
        rng: np.random.Generator | None = None,
    ):
        if len(x) != len(y):
            raise ValueError("x and y must have the same length")
        self.x = x
        self.y = y
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.transform = transform
        self.drop_last = drop_last
        self.rng = rng or spawn_rng()

    def __len__(self) -> int:
        n = len(self.x)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.x)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            xb = self.x[idx]
            if self.transform is not None:
                xb = self.transform(xb, self.rng)
            yield xb, self.y[idx]


def shard_dataset(
    x: np.ndarray, y: np.ndarray, num_shards: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Contiguous equal shards for data-parallel workers (extras dropped)."""
    per = len(x) // num_shards
    return [(x[i * per : (i + 1) * per], y[i * per : (i + 1) * per]) for i in range(num_shards)]
