"""Synthetic text tasks: a Markov language-model corpus (WikiText-2
stand-in) and a deterministic-mapping translation task (WMT16 stand-in).

Language modeling: tokens are drawn from an order-1 Markov chain whose
transition rows are sparse Zipf-weighted distributions.  The corpus has
genuine sequential structure, so a model's perplexity falls well below the
uniform baseline as it learns — enabling the vanilla vs low-rank vs
hybrid+warm-up orderings the paper's Tables 2/9 measure.

Translation: the target is the source passed through a fixed vocabulary
permutation and *reversed*, with BOS/EOS framing.  Reversal forces the
decoder to use attention positionally (a pure token-copy shortcut can't
solve it), which is what makes BLEU a meaningful metric here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import spawn_rng

__all__ = [
    "MarkovCorpus",
    "make_lm_corpus",
    "batchify",
    "get_lm_batch",
    "TranslationDataset",
    "make_translation_dataset",
]


@dataclass
class MarkovCorpus:
    """Token streams for train/val/test plus the generator's vocab size."""

    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray
    vocab_size: int


def _markov_matrix(vocab: int, branching: int, rng: np.random.Generator) -> np.ndarray:
    """Row-stochastic transitions: each token can be followed by only
    ``branching`` successors, Zipf-weighted, giving low entropy per step."""
    probs = np.zeros((vocab, vocab))
    weights = 1.0 / np.arange(1, branching + 1)
    weights /= weights.sum()
    for tok in range(vocab):
        successors = rng.choice(vocab, size=branching, replace=False)
        probs[tok, successors] = weights
    return probs


def _sample_chain(probs: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
    vocab = probs.shape[0]
    # Inverse-CDF sampling over precomputed cumulative rows.
    cdf = probs.cumsum(axis=1)
    out = np.empty(n, dtype=np.int64)
    tok = int(rng.integers(0, vocab))
    u = rng.random(n)
    for i in range(n):
        tok = int(np.searchsorted(cdf[tok], u[i]))
        tok = min(tok, vocab - 1)
        out[i] = tok
    return out


def make_lm_corpus(
    vocab_size: int = 200,
    n_train: int = 20000,
    n_valid: int = 4000,
    n_test: int = 4000,
    branching: int = 8,
    rng: np.random.Generator | None = None,
) -> MarkovCorpus:
    """Generate a Markov LM corpus; all splits share one transition matrix."""
    rng = rng or spawn_rng()
    probs = _markov_matrix(vocab_size, branching, rng)
    return MarkovCorpus(
        train=_sample_chain(probs, n_train, rng),
        valid=_sample_chain(probs, n_valid, rng),
        test=_sample_chain(probs, n_test, rng),
        vocab_size=vocab_size,
    )


def batchify(stream: np.ndarray, batch_size: int) -> np.ndarray:
    """Fold a token stream into ``(T, B)`` columns (PyTorch LM example)."""
    n = (len(stream) // batch_size) * batch_size
    return stream[:n].reshape(batch_size, -1).T.copy()


def get_lm_batch(data: np.ndarray, i: int, bptt: int) -> tuple[np.ndarray, np.ndarray]:
    """Slice inputs ``(bptt, B)`` and next-token targets from batchified data."""
    seq_len = min(bptt, len(data) - 1 - i)
    x = data[i : i + seq_len]
    y = data[i + 1 : i + 1 + seq_len]
    return x, y


@dataclass
class TranslationDataset:
    """Parallel corpus of padded integer sequences ``(N, T)``.

    Special tokens: 0 = PAD, 1 = BOS, 2 = EOS; real tokens start at 3.
    """

    src: np.ndarray
    tgt: np.ndarray
    vocab_size: int
    pad_idx: int = 0
    bos_idx: int = 1
    eos_idx: int = 2

    def __len__(self) -> int:
        return len(self.src)

    def split(self, n_train: int) -> tuple["TranslationDataset", "TranslationDataset"]:
        a = TranslationDataset(self.src[:n_train], self.tgt[:n_train], self.vocab_size)
        b = TranslationDataset(self.src[n_train:], self.tgt[n_train:], self.vocab_size)
        return a, b


def make_translation_dataset(
    n: int = 1024,
    vocab_size: int = 64,
    min_len: int = 4,
    max_len: int = 10,
    rng: np.random.Generator | None = None,
) -> TranslationDataset:
    """Reverse-and-relabel translation pairs.

    src:  ``[t1 .. tk EOS PAD…]``
    tgt:  ``[BOS perm(tk) .. perm(t1) EOS PAD…]``
    """
    rng = rng or spawn_rng()
    n_special = 3
    real = vocab_size - n_special
    perm = rng.permutation(real) + n_special  # bijection on real tokens

    width = max_len + 2
    src = np.zeros((n, width), dtype=np.int64)
    tgt = np.zeros((n, width), dtype=np.int64)
    for i in range(n):
        k = int(rng.integers(min_len, max_len + 1))
        tokens = rng.integers(n_special, vocab_size, k)
        mapped = perm[tokens - n_special][::-1]
        src[i, :k] = tokens
        src[i, k] = 2  # EOS
        tgt[i, 0] = 1  # BOS
        tgt[i, 1 : 1 + k] = mapped
        tgt[i, 1 + k] = 2  # EOS
    return TranslationDataset(src, tgt, vocab_size)
