"""Synthetic image-classification tasks (CIFAR-10 / ImageNet stand-ins).

The paper's datasets are not redistributable here, so we generate images
with *learnable class structure*: each class owns a smooth spatial
prototype (low-frequency random field) and samples are
``prototype + structured noise``.  Difficulty is controlled by the
signal-to-noise ratio.  The tasks exercise the identical code paths
(augmentation, normalization, conv nets, accuracy) and — because difficulty
is tunable — reproduce the orderings the paper's experiments rest on
(vanilla ≥ hybrid+warm-up > low-rank-from-scratch).

Normalization constants follow the paper's appendix H.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import spawn_rng

__all__ = [
    "SyntheticImageDataset",
    "make_cifar_like",
    "make_imagenet_like",
    "random_crop_flip",
    "CIFAR_MEAN",
    "CIFAR_STD",
    "IMAGENET_MEAN",
    "IMAGENET_STD",
]

CIFAR_MEAN = np.array([0.491, 0.482, 0.447], dtype=np.float32)
CIFAR_STD = np.array([0.247, 0.244, 0.262], dtype=np.float32)
IMAGENET_MEAN = np.array([0.485, 0.456, 0.406], dtype=np.float32)
IMAGENET_STD = np.array([0.229, 0.224, 0.225], dtype=np.float32)


def _smooth_field(rng: np.random.Generator, channels: int, size: int, cutoff: int) -> np.ndarray:
    """Low-frequency random field via truncated 2-D Fourier synthesis."""
    freq = np.zeros((channels, size, size), dtype=np.complex128)
    k = min(cutoff, size)
    block = rng.standard_normal((channels, k, k)) + 1j * rng.standard_normal((channels, k, k))
    freq[:, :k, :k] = block
    field = np.fft.ifft2(freq, axes=(-2, -1)).real
    field /= np.abs(field).max(axis=(-2, -1), keepdims=True) + 1e-9
    return field.astype(np.float32)


@dataclass
class SyntheticImageDataset:
    """In-memory dataset of normalized images (N, C, H, W) + int labels."""

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    mean: np.ndarray
    std: np.ndarray

    def __len__(self) -> int:
        return len(self.labels)

    def split(self, n_train: int) -> tuple["SyntheticImageDataset", "SyntheticImageDataset"]:
        """Deterministic train/val split."""
        train = SyntheticImageDataset(
            self.images[:n_train], self.labels[:n_train], self.num_classes, self.mean, self.std
        )
        val = SyntheticImageDataset(
            self.images[n_train:], self.labels[n_train:], self.num_classes, self.mean, self.std
        )
        return train, val


def _make_images(
    n: int,
    num_classes: int,
    size: int,
    channels: int,
    noise: float,
    cutoff: int,
    mean: np.ndarray,
    std: np.ndarray,
    rng: np.random.Generator | None,
) -> SyntheticImageDataset:
    rng = rng or spawn_rng()
    prototypes = np.stack(
        [_smooth_field(rng, channels, size, cutoff) for _ in range(num_classes)]
    )  # (K, C, H, W)
    labels = rng.integers(0, num_classes, n)
    # Sample = 0.5 + 0.3*prototype + noise, clipped to [0, 1] "pixel" range.
    raw = 0.5 + 0.3 * prototypes[labels] + noise * rng.standard_normal(
        (n, channels, size, size)
    ).astype(np.float32)
    raw = np.clip(raw, 0.0, 1.0).astype(np.float32)
    images = (raw - mean[:, None, None]) / std[:, None, None]
    return SyntheticImageDataset(images, labels, num_classes, mean, std)


def make_cifar_like(
    n: int = 2048,
    num_classes: int = 10,
    size: int = 32,
    noise: float = 0.25,
    rng: np.random.Generator | None = None,
) -> SyntheticImageDataset:
    """CIFAR-10 stand-in: 32×32×3, 10 classes, CIFAR normalization."""
    return _make_images(
        n, num_classes, size, 3, noise, cutoff=4, mean=CIFAR_MEAN, std=CIFAR_STD, rng=rng
    )


def make_imagenet_like(
    n: int = 2048,
    num_classes: int = 100,
    size: int = 64,
    noise: float = 0.25,
    rng: np.random.Generator | None = None,
) -> SyntheticImageDataset:
    """Scaled ImageNet stand-in: more classes, larger images, finer structure."""
    return _make_images(
        n, num_classes, size, 3, noise, cutoff=6, mean=IMAGENET_MEAN, std=IMAGENET_STD, rng=rng
    )


def random_crop_flip(
    batch: np.ndarray, rng: np.random.Generator, pad: int = 4
) -> np.ndarray:
    """Standard CIFAR augmentation: pad+random-crop and horizontal flip."""
    n, c, h, w = batch.shape
    padded = np.pad(batch, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="reflect")
    out = np.empty_like(batch)
    ys = rng.integers(0, 2 * pad + 1, n)
    xs = rng.integers(0, 2 * pad + 1, n)
    flips = rng.random(n) < 0.5
    for i in range(n):
        crop = padded[i, :, ys[i] : ys[i] + h, xs[i] : xs[i] + w]
        out[i] = crop[:, :, ::-1] if flips[i] else crop
    return out
