"""ATOMO (Wang et al. 2018): unbiased atomic sparsification of gradients in
the singular-value (spectral) domain.

The paper's introduction names ATOMO as the motivating example of a
compressor whose *per-step* cost is prohibitive: "ATOMO requires to
compute gradient factorizations using SVD for every single batch".
Pufferfish's whole design replaces this per-step SVD with a single SVD at
the warm-up boundary.  Implementing ATOMO lets the benchmarks measure that
trade-off directly.

Algorithm (spectral-ATOMO, sparsity budget ``s``): per matrix gradient,
compute the SVD, then sample each rank-1 atom ``σᵢ uᵢ vᵢᵀ`` with the
probabilities produced by ATOMO's water-filling scheme (∝ σᵢ, clipped at
1, renormalized to sum to ``s``); kept atoms are rescaled by ``1/pᵢ`` so
the estimate stays unbiased.
"""

from __future__ import annotations

import numpy as np

from ..utils import spawn_rng
from .base import FLOAT32_BYTES, Compressor, EncodeResult, register_compressor

__all__ = ["Atomo", "atomo_probabilities"]


def atomo_probabilities(sigma: np.ndarray, budget: float) -> np.ndarray:
    """ATOMO's closed-form sampling probabilities.

    Water-filling: scale ``σ / Σσ · s`` and clip at 1; mass clipped off is
    redistributed over the unclipped entries until convergence.
    """
    sigma = np.asarray(sigma, dtype=np.float64)
    if sigma.sum() == 0:
        return np.zeros_like(sigma)
    budget = min(budget, float(len(sigma)))
    p = np.zeros_like(sigma)
    active = np.ones(len(sigma), dtype=bool)
    remaining = budget
    for _ in range(len(sigma)):
        mass = sigma[active].sum()
        if mass == 0 or remaining <= 0:
            break
        scaled = sigma[active] / mass * remaining
        if (scaled <= 1.0 + 1e-12).all():
            p[active] = np.minimum(scaled, 1.0)
            break
        # Clip the overflowing atoms to probability 1 and recurse.
        idx = np.where(active)[0]
        over = idx[scaled > 1.0]
        p[over] = 1.0
        active[over] = False
        remaining = budget - p.sum()
    return np.clip(p, 0.0, 1.0)


@register_compressor
class Atomo(Compressor):
    """Spectral ATOMO with per-batch SVD.

    Parameters
    ----------
    budget: expected number of rank-1 atoms kept per matrix (the paper's
        sparsity budget ``s``).
    """

    allreduce_compatible = False  # sampled atom sets differ per worker
    name = "atomo"
    # Kept atoms are rescaled by 1/p, so the estimate is unbiased.
    agg_contract = "unbiased"
    agg_tolerance = 0.25

    def __init__(self, num_workers: int, budget: int = 3):
        super().__init__(num_workers)
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = budget
        self._rng = spawn_rng()

    def encode(
        self, worker: int, grads: list[np.ndarray], layer_offset: int = 0
    ) -> EncodeResult:
        payloads = []
        nbytes = 0
        for g in grads:
            if g.ndim < 2:
                payloads.append(("raw", g.copy()))
                nbytes += g.size * FLOAT32_BYTES
                continue
            m = g.reshape(g.shape[0], -1).astype(np.float64)
            u, s, vt = np.linalg.svd(m, full_matrices=False)
            p = atomo_probabilities(s, self.budget)
            keep = self._rng.random(len(s)) < p
            # Unbiased rescale of kept atoms.
            scale = np.zeros_like(s)
            scale[keep] = s[keep] / np.maximum(p[keep], 1e-12)
            idx = np.where(keep)[0]
            payloads.append(
                ("atoms", u[:, idx].astype(np.float32),
                 scale[idx].astype(np.float32), vt[idx].astype(np.float32),
                 g.shape)
            )
            nbytes += int(idx.size) * (m.shape[0] + m.shape[1] + 1) * FLOAT32_BYTES
        return EncodeResult(payload=payloads, nbytes=nbytes)

    def decode_aggregate(self, results: list[EncodeResult]) -> list[np.ndarray]:
        n_workers = len(results)
        n_layers = len(results[0].payload)
        out: list[np.ndarray] = []
        for i in range(n_layers):
            first = results[0].payload[i]
            if first[0] == "raw":
                acc = np.zeros_like(first[1], dtype=np.float64)
                for res in results:
                    acc += res.payload[i][1]
                out.append((acc / n_workers).astype(np.float32))
                continue
            shape = first[4]
            acc = np.zeros((shape[0], int(np.prod(shape[1:]))), dtype=np.float64)
            for res in results:
                _, u, scale, vt, _ = res.payload[i]
                if scale.size:
                    acc += (u * scale) @ vt
            out.append((acc / n_workers).astype(np.float32).reshape(shape))
        return out
