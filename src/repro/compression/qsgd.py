"""QSGD (Alistarh et al. 2017): stochastic uniform quantization to
``s`` levels with per-tensor L2 scaling.

Each coordinate is rounded stochastically to one of ``s`` buckets of
``|g|/‖g‖₂``, keeping the estimate unbiased.  Wire format: one fp32 norm +
one sign bit + ceil(log2(s+1)) bits per coordinate (we pack into uint8 for
simplicity, charging 8 bits when s > 127 would in practice need it).
Encoded payloads are not sum-compatible → allgather.
"""

from __future__ import annotations

import math

import numpy as np

from ..utils import spawn_rng
from .base import FLOAT32_BYTES, Compressor, EncodeResult, register_compressor

__all__ = ["QSGD"]


@register_compressor
class QSGD(Compressor):
    allreduce_compatible = False
    name = "qsgd"
    # Stochastic rounding is unbiased: E[decode] equals the mean.
    agg_contract = "unbiased"
    agg_tolerance = 0.25

    def __init__(self, num_workers: int, levels: int = 16):
        super().__init__(num_workers)
        if not 1 <= levels <= 127:
            raise ValueError("levels must be in [1, 127] (int8 wire format)")
        self.levels = levels
        self.bits = max(1, math.ceil(math.log2(levels + 1))) + 1  # + sign bit
        self._rng = spawn_rng()

    def encode(
        self, worker: int, grads: list[np.ndarray], layer_offset: int = 0
    ) -> EncodeResult:
        payloads = []
        nbytes = 0
        for g in grads:
            flat = g.reshape(-1).astype(np.float32)
            norm = float(np.linalg.norm(flat))
            if norm == 0.0:
                payloads.append((norm, np.zeros(flat.size, dtype=np.int8), g.shape))
                nbytes += FLOAT32_BYTES + flat.size * self.bits // 8
                continue
            scaled = np.abs(flat) / norm * self.levels
            lower = np.floor(scaled)
            prob = scaled - lower
            rounded = lower + (self._rng.random(flat.size) < prob)
            q = (np.sign(flat) * rounded).astype(np.int8)
            payloads.append((norm, q, g.shape))
            nbytes += FLOAT32_BYTES + flat.size * self.bits // 8
        return EncodeResult(payload=payloads, nbytes=nbytes)

    def decode_aggregate(self, results: list[EncodeResult]) -> list[np.ndarray]:
        n_workers = len(results)
        n_layers = len(results[0].payload)
        out = []
        for i in range(n_layers):
            shape = results[0].payload[i][2]
            acc = np.zeros(int(np.prod(shape)), dtype=np.float64)
            for res in results:
                norm, q, _ = res.payload[i]
                acc += q.astype(np.float64) * (norm / self.levels)
            out.append((acc / n_workers).astype(np.float32).reshape(shape))
        return out

    def min_payload_nbytes(self, result: EncodeResult) -> int:
        # The wire format bit-packs to ``bits`` per coordinate; the int8
        # staging array in the payload is wider than the claimed size, so
        # the honest lower bound is the packed size, not the array bytes.
        return sum(
            FLOAT32_BYTES + q.size * self.bits // 8 for _, q, _ in result.payload
        )
