"""Gradient compressor interface for the distributed simulator.

A compressor sees each worker's gradient (as the list of per-parameter
arrays), produces a wire payload plus its byte size, and turns the set of
worker payloads back into one aggregated (averaged) gradient.

``allreduce_compatible`` decides which collective the simulator charges:
sum-compatible encodings ride the ring allreduce; everything else falls
back to allgather, whose cost grows linearly in the node count — the
effect behind Fig. 4's Signum communication bars and Appendix F.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Compressor", "EncodeResult", "NoCompression"]

FLOAT32_BYTES = 4


@dataclass
class EncodeResult:
    """One worker's encoded gradient: opaque payload + wire size in bytes."""

    payload: object
    nbytes: int


class Compressor:
    """Base class.  Subclasses may keep per-worker state (momentum, error
    feedback); ``num_workers`` is fixed at construction so state arrays can
    be indexed by worker id."""

    #: True if payloads can be summed by a ring allreduce.
    allreduce_compatible: bool = True
    name: str = "base"

    def __init__(self, num_workers: int):
        self.num_workers = num_workers

    def encode(self, worker: int, grads: list[np.ndarray]) -> EncodeResult:
        raise NotImplementedError

    def decode_aggregate(self, results: list[EncodeResult]) -> list[np.ndarray]:
        """Average of all workers' gradients, reconstructed from payloads."""
        raise NotImplementedError


class NoCompression(Compressor):
    """Vanilla SGD baseline: raw fp32 gradients over allreduce."""

    allreduce_compatible = True
    name = "sgd"

    def encode(self, worker: int, grads: list[np.ndarray]) -> EncodeResult:
        nbytes = sum(g.size for g in grads) * FLOAT32_BYTES
        return EncodeResult(payload=[g.copy() for g in grads], nbytes=nbytes)

    def decode_aggregate(self, results: list[EncodeResult]) -> list[np.ndarray]:
        n = len(results)
        out = [g.astype(np.float64) for g in results[0].payload]
        for res in results[1:]:
            for acc, g in zip(out, res.payload):
                acc += g
        return [(acc / n).astype(np.float32) for acc in out]
