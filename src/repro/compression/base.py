"""Gradient compressor interface for the distributed simulator.

A compressor sees each worker's gradient (as the list of per-parameter
arrays), produces a wire payload plus its byte size, and turns the set of
worker payloads back into one aggregated (averaged) gradient.

``allreduce_compatible`` decides which collective the simulator charges:
sum-compatible encodings ride the ring allreduce; everything else falls
back to allgather, whose cost grows linearly in the node count — the
effect behind Fig. 4's Signum communication bars and Appendix F.

The contract (enforced by ``tests/test_compression_properties.py`` for
every registered compressor, and documented in docs/COMPRESSION.md):

* ``encode(worker, grads, layer_offset=k)`` must treat layer ``i`` of the
  sub-list as global layer ``k + i``, so per-bucket encoding of a tiled
  gradient is indistinguishable from whole-gradient encoding.  For
  allreduce-compatible compressors this is a hard requirement — the
  overlap path encodes bucket by bucket as gradients arrive.
* ``EncodeResult.nbytes`` is the *claimed* wire size; it must be at least
  :meth:`Compressor.min_payload_nbytes`, the byte count of the
  wire-essential data actually present in the payload.
* ``agg_contract`` + ``agg_tolerance`` publish what ``decode_aggregate``
  guarantees relative to the exact gradient mean (see class docstring).
* Stateful compressors expose residual magnitude via :meth:`error_norm`
  and advance protocol state (step counters, gates) only in
  :meth:`advance_step`, never inside ``decode_aggregate`` — decode may be
  called many times per step (once per bucket).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Compressor",
    "EncodeResult",
    "NoCompression",
    "register_compressor",
    "registered_compressors",
    "make_compressor",
]

FLOAT32_BYTES = 4


@dataclass
class EncodeResult:
    """One worker's encoded gradient: opaque payload + wire size in bytes."""

    payload: object
    nbytes: int


def _payload_nbytes(obj) -> int:
    """Bytes of every ndarray reachable in a payload (the default honest
    lower bound for the wire size)."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, dict):
        return sum(_payload_nbytes(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(_payload_nbytes(v) for v in obj)
    return 0


class Compressor:
    """Base class.  Subclasses may keep per-worker state (momentum, error
    feedback); ``num_workers`` is fixed at construction so state arrays can
    be indexed by worker id.

    Aggregation contract (published, property-tested):

    * ``agg_contract`` names the regime in which ``decode_aggregate`` is
      checked against the exact mean, within relative ``agg_tolerance``:

      - ``"exact"`` — any input;
      - ``"low_rank"`` — inputs whose matrix gradients have rank ≤ the
        compressor's rank (PowerSGD/AB-Training after a sync step);
      - ``"dense"`` — the compressor configured to keep everything
        (Top-k with ratio=1, variance gating with an infinite threshold);
      - ``"unbiased"`` — only ``E[decode] = mean`` holds; checked by
        averaging repeated stochastic encodings;
      - ``"sign"`` — only the coordinate signs of the mean are recovered
        (Signum's majority vote).
    """

    #: True if payloads can be summed by a ring allreduce.
    allreduce_compatible: bool = True
    name: str = "base"
    #: Aggregation guarantee: exact | low_rank | dense | unbiased | sign.
    agg_contract: str = "exact"
    #: Relative L2 tolerance for the contract above (where applicable).
    agg_tolerance: float = 1e-5

    def __init__(self, num_workers: int):
        self.num_workers = num_workers

    def encode(
        self, worker: int, grads: list[np.ndarray], layer_offset: int = 0
    ) -> EncodeResult:
        """Encode one worker's (possibly tiled) gradient list.

        ``layer_offset`` is the global index of ``grads[0]`` — stateful
        compressors must key warm starts / residuals on
        ``layer_offset + i`` so bucket tiling commutes with encoding.
        """
        raise NotImplementedError

    def decode_aggregate(self, results: list[EncodeResult]) -> list[np.ndarray]:
        """Average of all workers' gradients, reconstructed from payloads."""
        raise NotImplementedError

    def advance_step(self) -> None:
        """Advance protocol state by one optimizer step.

        Called exactly once per training iteration by the simulator (after
        all buckets of the step are decoded).  Stateless compressors
        ignore it; protocol compressors (AB-Training's A/B alternation,
        variance gating's deferral counters) move their schedule here so
        per-bucket decode calls within one step see frozen state.
        """

    def error_norm(self, worker: int) -> float:
        """L2 norm of this worker's error-feedback residual (0 if none).

        Public so the property suite can assert residuals stay bounded
        without reaching into private state.
        """
        return 0.0

    def min_payload_nbytes(self, result: EncodeResult) -> int:
        """Lower bound on the wire size of ``result``'s payload.

        Default: total bytes of every ndarray in the payload.  Compressors
        whose payload carries decode-side state that never hits the wire
        (PowerSGD's full matrices) or whose wire format is tighter than
        the in-memory arrays (QSGD's bit-packing) override this.
        """
        return _payload_nbytes(result.payload)


# ---------------------------------------------------------------------------
# Registry: every concrete compressor registers under its wire name so the
# CLI, the benchmarks and the property suite enumerate one source of truth.

_REGISTRY: dict[str, type[Compressor]] = {}


def register_compressor(cls: type[Compressor]) -> type[Compressor]:
    """Class decorator: register ``cls`` under ``cls.name``."""
    if not cls.name or cls.name == "base":
        raise ValueError("registered compressors need a unique name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"compressor name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def registered_compressors() -> dict[str, type[Compressor]]:
    """Name → class for every registered compressor (copy)."""
    return dict(_REGISTRY)


def make_compressor(name: str, num_workers: int, **kwargs) -> Compressor:
    """Instantiate a registered compressor by wire name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown compressor {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    return cls(num_workers, **kwargs)


@register_compressor
class NoCompression(Compressor):
    """Vanilla SGD baseline: raw fp32 gradients over allreduce."""

    allreduce_compatible = True
    name = "sgd"
    agg_contract = "exact"
    agg_tolerance = 1e-6

    def encode(
        self, worker: int, grads: list[np.ndarray], layer_offset: int = 0
    ) -> EncodeResult:
        nbytes = sum(g.size for g in grads) * FLOAT32_BYTES
        return EncodeResult(payload=[g.copy() for g in grads], nbytes=nbytes)

    def decode_aggregate(self, results: list[EncodeResult]) -> list[np.ndarray]:
        n = len(results)
        out = [g.astype(np.float64) for g in results[0].payload]
        for res in results[1:]:
            for acc, g in zip(out, res.payload):
                acc += g
        return [(acc / n).astype(np.float32) for acc in out]
