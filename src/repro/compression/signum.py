"""Signum (Bernstein et al. 2018): communicate only the sign of the local
momentum, aggregate by majority vote.

1 bit per coordinate on the wire, but the encoding is not sum-compatible,
so the simulator charges an allgather whose cost (and decode work — one
unpack+add per peer) scales with the node count.  This is the effect the
paper measures in Fig. 4: high compression ratio, yet slower than
Pufferfish end-to-end.
"""

from __future__ import annotations

import numpy as np

from .base import Compressor, EncodeResult, register_compressor

__all__ = ["Signum"]


@register_compressor
class Signum(Compressor):
    allreduce_compatible = False
    name = "signum"
    # Majority vote recovers only the coordinate signs of the mean
    # momentum; the property suite checks sign agreement, not values.
    agg_contract = "sign"
    agg_tolerance = 0.0

    def __init__(self, num_workers: int, momentum: float = 0.9):
        super().__init__(num_workers)
        self.momentum = momentum
        self._momenta: dict[tuple[int, int], np.ndarray] = {}

    def encode(
        self, worker: int, grads: list[np.ndarray], layer_offset: int = 0
    ) -> EncodeResult:
        signs = []
        shapes = []
        nbytes = 0
        for i, g in enumerate(grads):
            key = (worker, layer_offset + i)
            buf = self._momenta.get(key)
            if buf is None:
                buf = np.zeros_like(g, dtype=np.float32)
                self._momenta[key] = buf
            buf *= self.momentum
            buf += (1 - self.momentum) * g
            # Pack the sign bits for an honest wire-size (and to pay the real
            # encoding cost the paper's appendix F discusses).
            bits = np.packbits(buf.reshape(-1) >= 0)
            signs.append(bits)
            shapes.append(g.shape)
            nbytes += bits.nbytes
        return EncodeResult(payload=(signs, shapes), nbytes=nbytes)

    def decode_aggregate(self, results: list[EncodeResult]) -> list[np.ndarray]:
        _, shapes = results[0].payload
        out = []
        for i, shape in enumerate(shapes):
            size = int(np.prod(shape))
            votes = np.zeros(size, dtype=np.int32)
            for res in results:
                bits = np.unpackbits(res.payload[0][i], count=size)
                votes += bits.astype(np.int32) * 2 - 1  # {0,1} -> {-1,+1}
            out.append(np.sign(votes).astype(np.float32).reshape(shape))
        return out
