"""Stochastic binary quantization (Suresh et al. 2016), the Appendix-F
case study.

Each tensor is quantized to one bit per coordinate: coordinate ``x`` in
``[min, max]`` becomes ``max`` with probability ``(x-min)/(max-min)`` and
``min`` otherwise — an unbiased estimator with only two fp32 scalars of
side information.  Cheap to *encode*; the expensive part the paper measures
is *decoding*: with allgather every worker unpacks and sums ``p`` bit
streams, so decode time scales linearly in the node count (Fig. 7).
"""

from __future__ import annotations

import numpy as np

from ..utils import spawn_rng
from .base import FLOAT32_BYTES, Compressor, EncodeResult, register_compressor

__all__ = ["StochasticBinary"]


@register_compressor
class StochasticBinary(Compressor):
    allreduce_compatible = False
    name = "binary"
    # One-bit quantization is unbiased per coordinate.
    agg_contract = "unbiased"
    agg_tolerance = 0.25

    def __init__(self, num_workers: int):
        super().__init__(num_workers)
        self._rng = spawn_rng()

    def encode(
        self, worker: int, grads: list[np.ndarray], layer_offset: int = 0
    ) -> EncodeResult:
        payloads = []
        nbytes = 0
        for g in grads:
            flat = g.reshape(-1).astype(np.float32)
            lo = float(flat.min())
            hi = float(flat.max())
            if hi - lo < 1e-12:
                bits = np.zeros((flat.size + 7) // 8, dtype=np.uint8)
            else:
                prob = (flat - lo) / (hi - lo)
                bits = np.packbits(self._rng.random(flat.size) < prob)
            payloads.append((lo, hi, bits, g.shape))
            nbytes += 2 * FLOAT32_BYTES + bits.nbytes
        return EncodeResult(payload=payloads, nbytes=nbytes)

    def decode_aggregate(self, results: list[EncodeResult]) -> list[np.ndarray]:
        n_workers = len(results)
        n_layers = len(results[0].payload)
        out = []
        for i in range(n_layers):
            shape = results[0].payload[i][3]
            size = int(np.prod(shape))
            acc = np.zeros(size, dtype=np.float64)
            for res in results:
                lo, hi, bits, _ = res.payload[i]
                values = np.unpackbits(bits, count=size).astype(np.float64)
                acc += values * (hi - lo) + lo
            out.append((acc / n_workers).astype(np.float32).reshape(shape))
        return out
