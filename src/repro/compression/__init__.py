"""Gradient-compression baselines, pluggable into the distributed simulator."""

from .base import Compressor, EncodeResult, NoCompression
from .powersgd import PowerSGD
from .signum import Signum
from .qsgd import QSGD
from .topk import TopK
from .binary import StochasticBinary
from .atomo import Atomo, atomo_probabilities

__all__ = [
    "Compressor",
    "EncodeResult",
    "NoCompression",
    "PowerSGD",
    "Signum",
    "QSGD",
    "TopK",
    "StochasticBinary",
    "Atomo",
    "atomo_probabilities",
]
