"""Gradient-compression baselines, pluggable into the distributed simulator.

Importing this package populates the compressor registry
(:func:`registered_compressors` / :func:`make_compressor`) — one source of
truth shared by the CLI, the benchmarks and the property suite.
"""

from .base import (
    Compressor,
    EncodeResult,
    NoCompression,
    make_compressor,
    register_compressor,
    registered_compressors,
)
from .powersgd import PowerSGD
from .signum import Signum
from .qsgd import QSGD
from .topk import TopK
from .binary import StochasticBinary
from .atomo import Atomo, atomo_probabilities
from .abtraining import ABTraining
from .variance import VarianceGated

__all__ = [
    "Compressor",
    "EncodeResult",
    "NoCompression",
    "PowerSGD",
    "Signum",
    "QSGD",
    "TopK",
    "StochasticBinary",
    "Atomo",
    "ABTraining",
    "VarianceGated",
    "atomo_probabilities",
    "make_compressor",
    "register_compressor",
    "registered_compressors",
]
