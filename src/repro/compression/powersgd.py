"""PowerSGD (Vogels et al. 2019): rank-r gradient compression via a single
power-iteration step, with error feedback and warm-started Q factors.

Matrix-shaped gradients ``M (n×m)`` are approximated as ``P Q^T`` where
``P = M Q`` (orthogonalized) and ``Q = M^T P``; both P and Q are
sum-compatible, so PowerSGD — unlike sign/top-k schemes — rides the ring
allreduce, which is why it is the strongest compression baseline in the
paper.  Rank-1 tensors (biases, BN parameters) are sent uncompressed, as
in the reference implementation.

Determinism: the warm-start Q for global layer ``i`` with ``m`` columns is
drawn from ``default_rng([seed, i, m])`` — a pure function of the
construction-time ``seed`` and the layer's identity, independent of the
order layers are first encoded in.  Two instances built with the same
seed therefore reproduce each other exactly, and per-bucket encoding
(which visits layers in bucket order, not forward order) is bit-identical
to whole-gradient encoding.
"""

from __future__ import annotations

import numpy as np

from .base import (
    FLOAT32_BYTES,
    Compressor,
    EncodeResult,
    register_compressor,
)

__all__ = ["PowerSGD"]


def _orthogonalize(m: np.ndarray) -> np.ndarray:
    """Gram-Schmidt orthonormalization of the columns (in float64)."""
    q, _ = np.linalg.qr(m.astype(np.float64))
    return q.astype(np.float32)


def _as_matrix(g: np.ndarray) -> np.ndarray:
    """Collapse a >=2-D tensor to (dim0, rest)."""
    return g.reshape(g.shape[0], -1)


@register_compressor
class PowerSGD(Compressor):
    """Parameters
    ----------
    num_workers: world size.
    rank: compression rank (the paper uses 2 to match SGD accuracy, 4 for
        Pufferfish warm-up).
    error_feedback: accumulate the compression residual per worker and add
        it back the next step (on by default, as in the paper).
    seed: seeds the synchronized-random Q initialization.  Instances built
        with equal seeds produce identical encodings regardless of how
        many other compressors (or RNG consumers) exist in the process.
    """

    allreduce_compatible = True
    name = "powersgd"
    # Exact on matrices of rank ≤ ``rank`` once Q spans the column space —
    # a single power iteration from random init already does for such
    # inputs (up to fp32 rounding).
    agg_contract = "low_rank"
    agg_tolerance = 1e-4

    def __init__(
        self,
        num_workers: int,
        rank: int = 2,
        error_feedback: bool = True,
        seed: int = 0,
    ):
        super().__init__(num_workers)
        self.rank = rank
        self.error_feedback = error_feedback
        self.seed = int(seed)
        # Per-layer warm-start Q (shared across workers, as in the paper's
        # synchronized-random-init scheme) and per-worker error memory,
        # both keyed by *global* layer index.
        self._qs: dict[int, np.ndarray] = {}
        self._errors: dict[tuple[int, int], np.ndarray] = {}

    def _q_for(self, layer: int, m_cols: int) -> np.ndarray:
        q = self._qs.get(layer)
        if q is None or q.shape[0] != m_cols:
            rng = np.random.default_rng([self.seed, layer, m_cols])
            q = rng.standard_normal((m_cols, self.rank)).astype(np.float32)
            self._qs[layer] = q
        return q

    def encode(
        self, worker: int, grads: list[np.ndarray], layer_offset: int = 0
    ) -> EncodeResult:
        ps: dict[int, np.ndarray] = {}
        matrices: dict[int, np.ndarray] = {}
        raw: dict[int, np.ndarray] = {}
        shapes = [g.shape for g in grads]
        nbytes = 0
        for i, g in enumerate(grads):
            layer = layer_offset + i
            if g.ndim < 2:
                raw[i] = g.copy()
                nbytes += g.size * FLOAT32_BYTES
                continue
            m = _as_matrix(g).astype(np.float32)
            if self.error_feedback:
                err = self._errors.get((worker, layer))
                if err is not None:
                    m = m + err
            q = self._q_for(layer, m.shape[1])
            rank = min(self.rank, *m.shape)
            p = m @ q[:, :rank]  # (n, r)
            ps[i] = p
            matrices[i] = m
            # Both power-iteration rounds hit the wire: P then Q.
            nbytes += (p.size + m.shape[1] * rank) * FLOAT32_BYTES
        return EncodeResult(
            payload=(ps, matrices, raw, worker, shapes, layer_offset), nbytes=nbytes
        )

    def decode_aggregate(self, results: list[EncodeResult]) -> list[np.ndarray]:
        n_workers = len(results)
        first_ps, first_ms, first_raw, _, shapes, layer_offset = results[0].payload
        out: list[np.ndarray | None] = [None] * len(shapes)

        # Rank-1 tensors: plain averaging.
        for i in first_raw:
            acc = np.zeros_like(first_raw[i], dtype=np.float64)
            for res in results:
                acc += res.payload[2][i]
            out[i] = (acc / n_workers).astype(np.float32)

        # Matrices: allreduce P -> orthogonalize -> Q = M^T P (allreduced)
        # -> M_hat = P Q^T; error feedback updated per worker.
        for i in first_ps:
            layer = layer_offset + i
            p_mean = np.mean([res.payload[0][i] for res in results], axis=0)
            p_hat = _orthogonalize(p_mean)
            q_acc = np.zeros((first_ms[i].shape[1], p_hat.shape[1]), dtype=np.float64)
            for res in results:
                q_acc += res.payload[1][i].T @ p_hat
            q_new = (q_acc / n_workers).astype(np.float32)
            # Warm-start next round's Q.
            full_q = self._qs.get(layer)
            if full_q is not None and full_q.shape == q_new.shape:
                self._qs[layer] = q_new
            m_hat = p_hat @ q_new.T
            if self.error_feedback:
                for res in results:
                    worker = res.payload[3]
                    self._errors[(worker, layer)] = res.payload[1][i] - m_hat
            out[i] = m_hat.reshape(shapes[i])
        return out

    def error_norm(self, worker: int) -> float:
        return float(
            np.sqrt(
                sum(
                    float(np.sum(e.astype(np.float64) ** 2))
                    for (w, _), e in self._errors.items()
                    if w == worker
                )
            )
        )

    def min_payload_nbytes(self, result: EncodeResult) -> int:
        # Wire-essential data is P per matrix plus the Q round (m·r fp32)
        # plus raw rank-1 tensors; the full matrices riding in the payload
        # are decode-side state for error feedback, never serialized.
        ps, matrices, raw, _, _, _ = result.payload
        total = sum(r.nbytes for r in raw.values())
        for i, p in ps.items():
            total += p.nbytes + matrices[i].shape[1] * p.shape[1] * FLOAT32_BYTES
        return total
