"""AB-Training (Coquelin et al. 2024): alternating low-rank factor
synchronization with periodic full resync.

AB-Training keeps a shared low-rank basis ``M ≈ U V^T`` per matrix layer
and alternates which side of the factorization is synchronized: on
*A-steps* workers exchange the gradient projected onto the shared right
basis (``M V``, an ``n×r`` message), on *B-steps* the projection onto the
shared left basis (``U^T M``, ``r×m``).  Every ``resync_every`` steps the
full gradient is exchanged and the bases are refreshed from the SVD of
the aggregated gradient — this bounds both the basis drift and the error
feedback (the residual is flushed with the full-rank exchange).

Adapted here as a gradient compressor for the bake-off: projections are
linear in the local gradient, so payloads are sum-compatible and ride the
ring allreduce; the basis refresh happens decode-side from data every
worker already holds, costing no extra wire bytes.  The step schedule
advances only in :meth:`advance_step`, so per-bucket encode/decode within
one iteration sees a frozen schedule and bucket tiling commutes with
whole-gradient encoding.

Schedule (step counter ``t``): ``t % resync_every == 0`` → full resync;
otherwise A-steps and B-steps alternate.  Step 0 is a resync, which also
initializes the bases from real gradient spectra.
"""

from __future__ import annotations

import numpy as np

from .base import (
    FLOAT32_BYTES,
    Compressor,
    EncodeResult,
    register_compressor,
)

__all__ = ["ABTraining"]


def _as_matrix(g: np.ndarray) -> np.ndarray:
    return g.reshape(g.shape[0], -1)


@register_compressor
class ABTraining(Compressor):
    """Parameters
    ----------
    num_workers: world size.
    rank: width of the shared factor bases.
    resync_every: steps between full-gradient exchanges (basis refresh and
        error-feedback flush).  Must be >= 2 so factor steps exist.
    error_feedback: accumulate each worker's projection residual and add
        it back the next step.
    """

    allreduce_compatible = True
    name = "abtrain"
    # Exact on rank ≤ ``rank`` matrices once the bases are synchronized
    # (resync initializes them from the gradient's own SVD).
    agg_contract = "low_rank"
    agg_tolerance = 1e-4

    def __init__(
        self,
        num_workers: int,
        rank: int = 4,
        resync_every: int = 10,
        error_feedback: bool = True,
    ):
        super().__init__(num_workers)
        if rank < 1:
            raise ValueError("rank must be >= 1")
        if resync_every < 2:
            raise ValueError("resync_every must be >= 2")
        self.rank = rank
        self.resync_every = int(resync_every)
        self.error_feedback = error_feedback
        self._step = 0
        # Shared per-(global layer) bases, refreshed at resync steps.
        self._us: dict[int, np.ndarray] = {}
        self._vs: dict[int, np.ndarray] = {}
        # Per-(worker, global layer) error feedback.
        self._errors: dict[tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------

    def _mode(self) -> str:
        """Wire mode for the current step: resync | a | b."""
        phase = self._step % self.resync_every
        if phase == 0:
            return "resync"
        return "a" if phase % 2 == 1 else "b"

    def advance_step(self) -> None:
        self._step += 1

    # ------------------------------------------------------------------

    def encode(
        self, worker: int, grads: list[np.ndarray], layer_offset: int = 0
    ) -> EncodeResult:
        mode = self._mode()
        entries: list[tuple] = []
        nbytes = 0
        for i, g in enumerate(grads):
            layer = layer_offset + i
            if g.ndim < 2:
                entries.append(("raw", g.copy()))
                nbytes += g.size * FLOAT32_BYTES
                continue
            m = _as_matrix(g).astype(np.float32)
            if self.error_feedback:
                err = self._errors.get((worker, layer))
                if err is not None:
                    m = m + err
            u, v = self._us.get(layer), self._vs.get(layer)
            if mode == "resync" or u is None or v is None:
                # Full-rank exchange: flushes error feedback, and decode
                # refreshes the bases from the aggregated gradient.
                entries.append(("full", m, g.shape, worker))
                nbytes += m.size * FLOAT32_BYTES
                if self.error_feedback:
                    self._errors[(worker, layer)] = np.zeros_like(m)
            elif mode == "a":
                p = m @ v  # (n, r)
                entries.append(("a", p, m, g.shape, worker))
                nbytes += p.size * FLOAT32_BYTES
            else:
                p = u.T @ m  # (r, m)
                entries.append(("b", p, m, g.shape, worker))
                nbytes += p.size * FLOAT32_BYTES
        return EncodeResult(payload=(entries, layer_offset), nbytes=nbytes)

    def decode_aggregate(self, results: list[EncodeResult]) -> list[np.ndarray]:
        n_workers = len(results)
        entries0, layer_offset = results[0].payload
        out: list[np.ndarray] = []
        for i, entry in enumerate(entries0):
            layer = layer_offset + i
            kind = entry[0]
            if kind == "raw":
                acc = np.zeros_like(entry[1], dtype=np.float64)
                for res in results:
                    acc += res.payload[0][i][1]
                out.append((acc / n_workers).astype(np.float32))
                continue
            if kind == "full":
                shape = entry[2]
                acc = np.zeros_like(entry[1], dtype=np.float64)
                for res in results:
                    acc += res.payload[0][i][1]
                mean = (acc / n_workers).astype(np.float32)
                self._refresh_basis(layer, mean)
                out.append(mean.reshape(shape))
                continue
            # Factor steps: average the (linear) projections, lift back
            # through the shared basis, update each worker's residual
            # against its *own* projection.
            shape = entry[3]
            p_mean = np.mean(
                [res.payload[0][i][1] for res in results], axis=0
            ).astype(np.float32)
            if kind == "a":
                v = self._vs[layer]
                m_hat = p_mean @ v.T
                lift = lambda p: p @ v.T
            else:
                u = self._us[layer]
                m_hat = u @ p_mean
                lift = lambda p: u @ p
            if self.error_feedback:
                for res in results:
                    e = res.payload[0][i]
                    self._errors[(e[4], layer)] = e[2] - lift(e[1])
            out.append(m_hat.reshape(shape))
        return out

    def _refresh_basis(self, layer: int, mean: np.ndarray) -> None:
        u, _, vt = np.linalg.svd(mean.astype(np.float64), full_matrices=False)
        r = min(self.rank, u.shape[1])
        self._us[layer] = u[:, :r].astype(np.float32)
        self._vs[layer] = vt[:r].T.astype(np.float32)

    # ------------------------------------------------------------------

    def error_norm(self, worker: int) -> float:
        return float(
            np.sqrt(
                sum(
                    float(np.sum(e.astype(np.float64) ** 2))
                    for (w, _), e in self._errors.items()
                    if w == worker
                )
            )
        )

    def min_payload_nbytes(self, result: EncodeResult) -> int:
        # Wire data per entry: the raw tensor, the full matrix, or the
        # projection; the local matrix carried on factor steps is
        # decode-side error-feedback state, never serialized.
        entries, _ = result.payload
        total = 0
        for entry in entries:
            total += entry[1].nbytes
        return total
