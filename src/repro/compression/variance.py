"""Variance-based gradient gating (Tsuzuku et al. 2018).

Tsuzuku's observation: coordinates whose mini-batch gradient is dominated
by sampling noise — high variance relative to the mean — carry little
signal, and delaying them (accumulating locally until they become
unambiguous) saves most of the wire traffic without hurting convergence.

This implementation gates per *layer*: layer ``L`` is sent densely when
its inter-worker relative variance (estimated from the most recently
*committed* aggregation statistics, i.e. through step ``t−1``) is at most
``threshold``; otherwise the layer is deferred and its gradient
accumulates in per-worker residual memory.  Because the gate is a pure
function of shared state every worker holds, all workers agree on it with
no extra negotiation round, and the dense payloads of open layers are
sum-compatible — the scheme rides the ring allreduce.

Two bounds keep the protocol honest and the error feedback from
exploding:

* a layer deferred for ``max_defer`` consecutive steps is force-sent on
  the next one, so residual norms are bounded by ``max_defer`` gradient
  norms;
* statistics commit only in :meth:`advance_step` — per-bucket decode
  calls within one iteration record *pending* statistics and never move
  the gate mid-step, so bucket tiling commutes with whole-gradient
  encoding.

Wire accounting: one byte of gate metadata per layer (the open/closed
bit, byte-aligned) plus 4 bytes per coordinate of every open layer.
"""

from __future__ import annotations

import numpy as np

from .base import (
    FLOAT32_BYTES,
    Compressor,
    EncodeResult,
    register_compressor,
)

__all__ = ["VarianceGated"]

GATE_HEADER_BYTES = 1


@register_compressor
class VarianceGated(Compressor):
    """Parameters
    ----------
    num_workers: world size.
    threshold: maximum relative inter-worker variance
        (``E_w‖g_w − ḡ‖² / ‖ḡ‖²``) for a layer to stay open; ``inf``
        sends everything (the "dense" contract regime).
    max_defer: force-send a layer after this many consecutive deferrals.
    """

    allreduce_compatible = True
    name = "vargate"
    # With threshold=inf every gate stays open and decode is the exact
    # mean of (gradient + residual) — the regime the property suite pins.
    agg_contract = "dense"
    agg_tolerance = 1e-6

    def __init__(
        self,
        num_workers: int,
        threshold: float = 4.0,
        max_defer: int = 4,
    ):
        super().__init__(num_workers)
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if max_defer < 1:
            raise ValueError("max_defer must be >= 1")
        self.threshold = float(threshold)
        self.max_defer = int(max_defer)
        self._step = 0
        # Committed relative-variance estimate per global layer (through
        # step t−1) and pending statistics gathered during step t.
        self._variance: dict[int, float] = {}
        self._pending: dict[int, float] = {}
        # Consecutive deferrals per layer; per-(worker, layer) residuals.
        self._deferred: dict[int, int] = {}
        self._errors: dict[tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------

    def gate_open(self, layer: int) -> bool:
        """Send layer ``layer`` this step?  Pure function of committed
        state, identical on every worker."""
        if self._deferred.get(layer, 0) >= self.max_defer:
            return True
        ratio = self._variance.get(layer)
        if ratio is None:  # no statistics yet: send
            return True
        return ratio <= self.threshold

    def advance_step(self) -> None:
        # Commit this step's statistics and move the deferral counters.
        for layer, ratio in self._pending.items():
            self._variance[layer] = ratio
            self._deferred[layer] = 0
        self._pending.clear()
        for layer in list(self._variance):
            if layer not in self._deferred:
                self._deferred[layer] = 0
        # Layers known to the gate but absent from this step's pending
        # stats were deferred (or simply not part of this model — then the
        # counter is harmless).
        self._step += 1

    # ------------------------------------------------------------------

    def encode(
        self, worker: int, grads: list[np.ndarray], layer_offset: int = 0
    ) -> EncodeResult:
        entries: list[tuple] = []
        nbytes = 0
        for i, g in enumerate(grads):
            layer = layer_offset + i
            nbytes += GATE_HEADER_BYTES
            residual = self._errors.get((worker, layer))
            if self.gate_open(layer):
                dense = g.astype(np.float32)
                if residual is not None:
                    dense = dense + residual
                    self._errors[(worker, layer)] = np.zeros_like(residual)
                entries.append(("dense", dense, worker))
                nbytes += dense.size * FLOAT32_BYTES
            else:
                acc = g.astype(np.float32) if residual is None else residual + g
                self._errors[(worker, layer)] = acc
                entries.append(("deferred", g.shape, worker))
        return EncodeResult(payload=(entries, layer_offset), nbytes=nbytes)

    def decode_aggregate(self, results: list[EncodeResult]) -> list[np.ndarray]:
        n_workers = len(results)
        entries0, layer_offset = results[0].payload
        out: list[np.ndarray] = []
        for i, entry in enumerate(entries0):
            layer = layer_offset + i
            if entry[0] == "deferred":
                # Deferral counters move in advance_step; decode only
                # reports the (zero) aggregate for this layer.
                self._deferred[layer] = self._deferred.get(layer, 0) + 1
                self._pending.pop(layer, None)
                out.append(np.zeros(entry[1], dtype=np.float32))
                continue
            stacked = [res.payload[0][i][1].astype(np.float64) for res in results]
            mean = sum(stacked) / n_workers
            # Relative inter-worker variance feeds the next step's gate.
            mean_sq = float(np.sum(mean**2))
            var = sum(float(np.sum((s - mean) ** 2)) for s in stacked) / n_workers
            self._pending[layer] = var / (mean_sq + 1e-12)
            out.append(mean.astype(np.float32))
        return out

    # ------------------------------------------------------------------

    def error_norm(self, worker: int) -> float:
        return float(
            np.sqrt(
                sum(
                    float(np.sum(e.astype(np.float64) ** 2))
                    for (w, _), e in self._errors.items()
                    if w == worker
                )
            )
        )

    def min_payload_nbytes(self, result: EncodeResult) -> int:
        entries, _ = result.payload
        return sum(e[1].nbytes for e in entries if e[0] == "dense")
