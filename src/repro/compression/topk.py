"""Top-k sparsification with error feedback (Stich et al. 2018; Lin et al.
2017's deep gradient compression family).

Each worker keeps only the ``k`` largest-magnitude coordinates of
(gradient + residual); the rest accumulate in the residual for later
rounds.  Wire format: k × (int32 index + fp32 value).  Sparse payloads are
not sum-compatible with a ring allreduce → allgather.

The appendix E discussion — that Pufferfish composes best with compressors
that work on the *flattened* gradient such as Top-k — is tested by the
Fig. 6 benchmark using this class.
"""

from __future__ import annotations

import numpy as np

from .base import FLOAT32_BYTES, Compressor, EncodeResult, register_compressor

__all__ = ["TopK"]

INT32_BYTES = 4


@register_compressor
class TopK(Compressor):
    allreduce_compatible = False
    name = "topk"
    # Exact mean when nothing is dropped (ratio=1, empty residuals).
    agg_contract = "dense"
    agg_tolerance = 1e-6

    def __init__(self, num_workers: int, ratio: float = 0.01, error_feedback: bool = True):
        super().__init__(num_workers)
        if not 0 < ratio <= 1:
            raise ValueError("ratio must be in (0, 1]")
        self.ratio = ratio
        self.error_feedback = error_feedback
        self._errors: dict[int, np.ndarray] = {}

    def encode(
        self, worker: int, grads: list[np.ndarray], layer_offset: int = 0
    ) -> EncodeResult:
        # Operates on the flat buffer (appendix E's preferred composition).
        flat = np.concatenate([g.reshape(-1) for g in grads]).astype(np.float32)
        shapes = [g.shape for g in grads]
        if self.error_feedback:
            err = self._errors.get(worker)
            if err is not None:
                flat = flat + err
        k = max(1, int(self.ratio * flat.size))
        idx = np.argpartition(np.abs(flat), -k)[-k:]
        values = flat[idx]
        if self.error_feedback:
            residual = flat.copy()
            residual[idx] = 0.0
            self._errors[worker] = residual
        nbytes = k * (INT32_BYTES + FLOAT32_BYTES)
        return EncodeResult(
            payload=(idx.astype(np.int32), values, flat.size, shapes), nbytes=nbytes
        )

    def decode_aggregate(self, results: list[EncodeResult]) -> list[np.ndarray]:
        _, _, size, shapes = results[0].payload
        acc = np.zeros(size, dtype=np.float64)
        for res in results:
            idx, values, _, _ = res.payload
            np.add.at(acc, idx, values)
        acc /= len(results)
        out = []
        offset = 0
        for shape in shapes:
            n = int(np.prod(shape))
            out.append(acc[offset : offset + n].astype(np.float32).reshape(shape))
            offset += n
        return out

    def error_norm(self, worker: int) -> float:
        err = self._errors.get(worker)
        if err is None:
            return 0.0
        return float(np.linalg.norm(err.astype(np.float64)))
