"""Checkpointing: save/load model and optimizer state as ``.npz`` files.

Keeps the whole training state restartable — model parameters and buffers,
optimizer hyper-parameters and per-parameter state (momentum buffers, Adam
moments), and arbitrary user metadata (epoch, best metric, ...).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # imported lazily to keep repro.utils free of cycles
    from ..nn.module import Module
    from ..optim.optimizer import Optimizer

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_model",
    "load_model",
    "peek_checkpoint",
    "amend_checkpoint",
]

_META_KEY = "__meta_json__"


def save_model(model: Module, path: str | Path) -> None:
    """Write a model's state dict to ``path`` (.npz)."""
    arrays = {f"model/{k}": v for k, v in model.state_dict().items()}
    np.savez(path, **arrays)


def load_model(model: Module, path: str | Path, strict: bool = True) -> None:
    """Load a state dict saved by :func:`save_model` into ``model``."""
    with np.load(path) as data:
        state = {k[len("model/"):]: data[k] for k in data.files if k.startswith("model/")}
    model.load_state_dict(state, strict=strict)


def save_checkpoint(
    path: str | Path,
    model: Module,
    optimizer: Optimizer | None = None,
    **metadata,
) -> None:
    """Write model + optimizer + JSON-serializable metadata to one .npz."""
    arrays: dict[str, np.ndarray] = {
        f"model/{k}": v for k, v in model.state_dict().items()
    }
    meta: dict = {"metadata": metadata}
    if optimizer is not None:
        meta["optimizer"] = {"lr": optimizer.lr, "type": type(optimizer).__name__}
        # Optimizer state is keyed by parameter position (stable across a
        # save/load as long as the parameter list order is unchanged).
        for idx, p in enumerate(optimizer.params):
            state = optimizer.state.get(id(p), {})
            for key, value in state.items():
                if isinstance(value, np.ndarray):
                    arrays[f"opt/{idx}/{key}"] = value
                else:
                    meta.setdefault("opt_scalars", {})[f"{idx}/{key}"] = value
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(path, **arrays)


def peek_checkpoint(path: str | Path) -> dict:
    """The metadata dict of a checkpoint without touching any model.

    Lets loaders decide *how* to build the architecture before loading
    weights — e.g. a promoted lifecycle checkpoint carries its rank map,
    which must shape the hybrid before ``load_model`` can succeed.
    Returns ``{}`` for plain :func:`save_model` files.
    """
    with np.load(path) as data:
        if _META_KEY not in data.files:
            return {}
        meta = json.loads(bytes(data[_META_KEY]).decode())
    return meta.get("metadata", {})


def amend_checkpoint(src: str | Path, dst: str | Path, **metadata) -> None:
    """Copy a checkpoint while merging ``metadata`` into its metadata dict.

    Arrays are carried over verbatim — only the embedded JSON changes.
    Used by the promotion registry to stamp lineage into an existing
    training artifact without re-serializing the model.
    """
    with np.load(src) as data:
        arrays = {k: data[k] for k in data.files if k != _META_KEY}
        meta = (
            json.loads(bytes(data[_META_KEY]).decode())
            if _META_KEY in data.files
            else {}
        )
    meta.setdefault("metadata", {}).update(metadata)
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(dst, **arrays)


def load_checkpoint(
    path: str | Path,
    model: Module,
    optimizer: Optimizer | None = None,
    strict: bool = True,
) -> dict:
    """Restore model (+ optimizer) state; returns the saved metadata dict."""
    with np.load(path) as data:
        meta = json.loads(bytes(data[_META_KEY]).decode()) if _META_KEY in data.files else {}
        state = {k[len("model/"):]: data[k] for k in data.files if k.startswith("model/")}
        model.load_state_dict(state, strict=strict)
        if optimizer is not None:
            if "optimizer" in meta:
                optimizer.lr = float(meta["optimizer"]["lr"])
            for key in data.files:
                if not key.startswith("opt/"):
                    continue
                _, idx, state_key = key.split("/", 2)
                p = optimizer.params[int(idx)]
                optimizer._state_for(p)[state_key] = data[key].copy()
            for flat_key, value in meta.get("opt_scalars", {}).items():
                idx, state_key = flat_key.split("/", 1)
                p = optimizer.params[int(idx)]
                optimizer._state_for(p)[state_key] = value
    return meta.get("metadata", {})
