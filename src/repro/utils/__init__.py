"""Shared utilities: seeding, logging, checkpointing."""

from .seed import set_seed, get_rng, spawn_rng
from .logging import Logger
from .serialization import (
    save_checkpoint,
    load_checkpoint,
    save_model,
    load_model,
    peek_checkpoint,
    amend_checkpoint,
)

__all__ = [
    "set_seed",
    "get_rng",
    "spawn_rng",
    "Logger",
    "save_checkpoint",
    "load_checkpoint",
    "save_model",
    "load_model",
    "peek_checkpoint",
    "amend_checkpoint",
]
