"""Tiny structured logger used by trainers and benchmark harnesses."""

from __future__ import annotations

import sys
import time

__all__ = ["Logger"]


class Logger:
    """Prints key=value records with an elapsed-time prefix.

    Parameters
    ----------
    name: tag prepended to every line.
    stream: file-like sink; defaults to stdout.
    enabled: set False to silence (used by tests).
    """

    def __init__(self, name: str = "repro", stream=None, enabled: bool = True):
        self.name = name
        self.stream = stream or sys.stdout
        self.enabled = enabled
        self._t0 = time.perf_counter()

    def log(self, msg: str = "", /, **fields) -> None:
        if not self.enabled:
            return
        elapsed = time.perf_counter() - self._t0
        parts = [f"[{self.name} +{elapsed:8.2f}s]"]
        if msg:
            parts.append(msg)
        parts.extend(f"{k}={_fmt(v)}" for k, v in fields.items())
        print(" ".join(parts), file=self.stream)

    def metrics(self, snapshot: dict, msg: str = "metrics") -> None:
        """Log a :meth:`MetricsRegistry.snapshot` (or counters map) compactly.

        Accepts either the structured ``{"counters": ..., "gauges": ...,
        "histograms": ...}`` form or a flat ``name -> value`` map.
        """
        if not self.enabled:
            return
        if set(snapshot) <= {"counters", "gauges", "histograms"}:
            flat: dict = {}
            flat.update(snapshot.get("counters", {}))
            flat.update(snapshot.get("gauges", {}))
            for name, h in snapshot.get("histograms", {}).items():
                flat[name] = f"n={h.get('count', 0)},p50={_fmt(h.get('p50', 0.0))}"
            snapshot = flat
        self.log(msg, **snapshot)


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)
