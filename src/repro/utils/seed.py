"""Global randomness control.

Every stochastic component in the library (initializers, dropout, data
generators, compressors) draws from a generator obtained here, so a single
:func:`set_seed` call makes an entire run reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["set_seed", "get_rng", "spawn_rng"]

_GLOBAL_RNG = np.random.default_rng(0)


def set_seed(seed: int) -> None:
    """Re-seed the library-wide generator."""
    global _GLOBAL_RNG
    _GLOBAL_RNG = np.random.default_rng(seed)


def get_rng() -> np.random.Generator:
    """Return the library-wide generator."""
    return _GLOBAL_RNG


def spawn_rng() -> np.random.Generator:
    """Return an independent child generator (stable under set_seed)."""
    return np.random.default_rng(_GLOBAL_RNG.integers(0, 2**63 - 1))
