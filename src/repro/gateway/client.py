"""Seeded async load-testing client for the gateway.

The simulator's load generator repurposed for real sockets.  A
:func:`build_trace` call turns an :class:`~repro.serve.loadgen.ArrivalSpec`
into a fully-materialized offered trace — request ids, arrival offsets,
payload seeds — using the same counter-keyed RNG discipline as
:func:`~repro.serve.loadgen.generate_arrivals` (payload draws are keyed
``(seed, kind=payload, rid)``).  The trace is a **pure function of the
spec**: no draw depends on server scheduling, connection reuse, or how
much of the trace is replayed, so the same seed offers byte-identical
load to the simulator and to the live gateway — the precondition for the
sim-vs-live twin gate.

Two replay modes:

* **open loop** — every request fires at its trace offset regardless of
  server state (one connection per request), the honest overload model
  and the one the simulator assumes;
* **closed loop** — ``workers`` keep-alive connections issue requests
  back-to-back, each waiting for its response first (think step-wise
  agents, not an arrival process); trace offsets are ignored.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from ..serve.loadgen import _KIND_IDS, ArrivalSpec, generate_arrivals
from . import http as _http

__all__ = [
    "TraceRequest",
    "RequestRecord",
    "build_trace",
    "trace_digest",
    "LoadClient",
    "summarize_records",
]


@dataclass(frozen=True)
class TraceRequest:
    """One offered request: fully determined by (spec.seed, rid)."""

    rid: int
    at_s: float
    payload: int
    steps: int = 1

    def as_dict(self) -> dict:
        return {
            "rid": self.rid,
            "at_s": round(self.at_s, 9),
            "payload": self.payload,
            "steps": self.steps,
        }


def build_trace(
    spec: ArrivalSpec, steps: int = 1, rid_offset: int = 0
) -> list[TraceRequest]:
    """Materialize the offered trace for ``spec``.

    Arrival offsets come from :func:`generate_arrivals`; each request's
    payload seed is an independent counter-keyed draw on its rid, so
    consuming a prefix of the trace (or replaying it out of order) never
    changes any request's identity.  ``rid_offset`` shifts the id range
    (payloads are keyed on the shifted rid, so the trace stays a pure
    function of ``(spec, steps, rid_offset)``) — request ids are unique
    for a server's lifetime, so a second trace replayed against the same
    server needs a disjoint range.
    """
    arrivals = generate_arrivals(spec)
    trace = []
    for i, at_s in enumerate(arrivals):
        rid = rid_offset + i
        rng = np.random.default_rng((spec.seed, _KIND_IDS["payload"], rid))
        payload = int(rng.integers(0, 2**31 - 1))
        trace.append(TraceRequest(rid=rid, at_s=float(at_s), payload=payload, steps=steps))
    return trace


def trace_digest(trace: list[TraceRequest]) -> str:
    """Stable hash of the full offered trace (ids, times, payloads)."""
    payload = json.dumps([t.as_dict() for t in trace], sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class RequestRecord:
    """Client-side view of one request's round trip."""

    rid: int
    sent_s: float  # offset on the client clock when the request was written
    http_status: int = 0
    status: str = ""  # server-reported outcome status
    latency_s: float | None = None  # client-observed, write → final byte
    batch: int | None = None
    result: object = None
    chunk_times: list[float] = field(default_factory=list)  # per-step recv offsets
    final_s: float | None = None  # recv offset of the terminal frame
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.status == "completed"

    def as_dict(self) -> dict:
        return {
            "rid": self.rid,
            "sent_s": round(self.sent_s, 6),
            "http_status": self.http_status,
            "status": self.status,
            "latency_ms": None if self.latency_s is None else round(self.latency_s * 1e3, 3),
            "batch": self.batch,
            "n_chunks": len(self.chunk_times),
            "error": self.error,
        }


class LoadClient:
    """Replay a trace against a live gateway over localhost sockets."""

    def __init__(self, host: str, port: int, timeout_s: float = 30.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- one request over one (reader, writer) pair ----------------------

    async def _issue(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        req: TraceRequest,
        record: RequestRecord,
        t0: float,
        keep_alive: bool,
    ) -> None:
        loop = asyncio.get_running_loop()
        body = {"id": req.rid, "payload": req.payload, "steps": req.steps}
        writer.write(
            _http.render_request(
                "POST", "/v1/infer", body, host=self.host, keep_alive=keep_alive
            )
        )
        await writer.drain()
        record.sent_s = loop.time() - t0
        status, headers = await _http._read_status_and_headers(reader)
        record.http_status = status
        if headers.get("transfer-encoding", "").lower() == "chunked":
            async for chunk in _http.iter_chunks(reader):
                frame = json.loads(chunk)
                t = loop.time() - t0
                if frame.get("final"):
                    record.final_s = t
                    record.status = frame.get("status", "")
                    record.batch = frame.get("batch")
                else:
                    record.chunk_times.append(t)
                    record.result = frame.get("result")
        else:
            length = int(headers.get("content-length", "0") or "0")
            data = await reader.readexactly(length) if length else b""
            frame = json.loads(data or b"{}")
            record.final_s = loop.time() - t0
            record.status = frame.get("status", "")
            record.batch = frame.get("batch")
            record.result = frame.get("result")
        record.latency_s = record.final_s - record.sent_s

    async def _one_shot(self, req: TraceRequest, t0: float) -> RequestRecord:
        record = RequestRecord(rid=req.rid, sent_s=0.0)
        try:
            reader, writer = await asyncio.open_connection(self.host, self.port)
            try:
                await asyncio.wait_for(
                    self._issue(reader, writer, req, record, t0, keep_alive=False),
                    timeout=self.timeout_s,
                )
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, asyncio.CancelledError):
                    pass
        except asyncio.TimeoutError:
            record.error = "timeout"
        except (ConnectionError, _http.HttpError, asyncio.IncompleteReadError) as e:
            record.error = f"{type(e).__name__}: {e}"
        return record

    # -- replay modes ----------------------------------------------------

    async def run_open(self, trace: list[TraceRequest]) -> list[RequestRecord]:
        """Open loop: fire each request at its trace offset, come what may."""
        loop = asyncio.get_running_loop()
        t0 = loop.time()

        async def _fire(req: TraceRequest) -> RequestRecord:
            delay = req.at_s - (loop.time() - t0)
            if delay > 0:
                await asyncio.sleep(delay)
            return await self._one_shot(req, t0)

        return list(await asyncio.gather(*(_fire(r) for r in trace)))

    async def run_closed(
        self, trace: list[TraceRequest], workers: int = 4
    ) -> list[RequestRecord]:
        """Closed loop: ``workers`` keep-alive connections, back-to-back."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        queue: asyncio.Queue[TraceRequest] = asyncio.Queue()
        for req in trace:
            queue.put_nowait(req)
        records: list[RequestRecord] = []

        async def _worker() -> None:
            reader = writer = None
            try:
                while True:
                    try:
                        req = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    record = RequestRecord(rid=req.rid, sent_s=0.0)
                    try:
                        if writer is None:
                            reader, writer = await asyncio.open_connection(
                                self.host, self.port
                            )
                        await asyncio.wait_for(
                            self._issue(reader, writer, req, record, t0, keep_alive=True),
                            timeout=self.timeout_s,
                        )
                    except asyncio.TimeoutError:
                        record.error = "timeout"
                        writer = reader = None
                    except (
                        ConnectionError,
                        _http.HttpError,
                        asyncio.IncompleteReadError,
                    ) as e:
                        record.error = f"{type(e).__name__}: {e}"
                        writer = reader = None
                    records.append(record)
            finally:
                if writer is not None:
                    writer.close()

        await asyncio.gather(*(_worker() for _ in range(min(workers, len(trace) or 1))))
        return sorted(records, key=lambda r: r.rid)


def summarize_records(records: list[RequestRecord], duration_s: float) -> dict:
    """Client-side aggregate of one replay (the loadtest CLI's output)."""
    n = len(records)
    by_status: dict[str, int] = {}
    for r in records:
        key = r.status or (r.error and "error") or f"http_{r.http_status}"
        by_status[key] = by_status.get(key, 0) + 1
    completed = [r for r in records if r.ok]
    lat = sorted(r.latency_s for r in completed if r.latency_s is not None)

    def q(p: float) -> float:
        if not lat:
            return 0.0
        pos = p * (len(lat) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(lat) - 1)
        return lat[lo] + (lat[hi] - lat[lo]) * (pos - lo)

    # Streaming evidence: a chunk observed strictly before the terminal
    # frame of the same response.
    leads = [
        r.final_s - r.chunk_times[0]
        for r in records
        if r.chunk_times and r.final_s is not None
    ]
    return {
        "n_requests": n,
        "n_completed": len(completed),
        "by_status": dict(sorted(by_status.items())),
        "shed_rate": round(1.0 - len(completed) / n, 6) if n else 0.0,
        "throughput_rps": round(len(completed) / duration_s, 6) if duration_s > 0 else 0.0,
        "p50_ms": round(q(0.50) * 1e3, 3),
        "p95_ms": round(q(0.95) * 1e3, 3),
        "p99_ms": round(q(0.99) * 1e3, 3),
        "streamed": len(leads),
        "stream_lead_ms_max": round(max(leads, default=0.0) * 1e3, 3),
    }
