"""A real asyncio serving gateway over the simulator's policy core.

``repro.gateway`` lifts the serving stack off the discrete-event
simulator and onto real localhost sockets: a stdlib-only HTTP/1.1 server
(:mod:`repro.gateway.server`) drives the *same*
:class:`~repro.serve.core.ServingCore` — dynamic batcher + SLO admission,
clock injected — that :class:`~repro.serve.simulator.ServeSimulator`
drives, against real batched ``no_grad`` forwards
(:mod:`repro.gateway.executor`).  Streaming responses flush one chunked
frame per completed batch step; graceful shutdown sheds the queue with
accounted reasons.

The seeded load generator is repurposed as an async open/closed-loop
client (:mod:`repro.gateway.client`): a seed fully determines the
offered trace, so :mod:`repro.gateway.validate` can replay one trace
through the simulator *and* the live server and gate that the two agree
— the simulator becomes the model a real server is validated against.

CLI: ``repro gateway serve`` / ``repro gateway loadtest``.
Docs: ``docs/GATEWAY.md``.
"""

from .client import (
    LoadClient,
    RequestRecord,
    TraceRequest,
    build_trace,
    summarize_records,
    trace_digest,
)
from .executor import ModelExecutor, ProfileExecutor
from .http import HttpError, HttpRequest, HttpResponse
from .server import GatewayServer, run_server
from .validate import TwinResult, replay_decisions, run_twin, run_twin_async

__all__ = [
    "LoadClient",
    "RequestRecord",
    "TraceRequest",
    "build_trace",
    "summarize_records",
    "trace_digest",
    "ModelExecutor",
    "ProfileExecutor",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "GatewayServer",
    "run_server",
    "TwinResult",
    "replay_decisions",
    "run_twin",
    "run_twin_async",
]
