"""Minimal HTTP/1.1 on asyncio streams — no dependencies, both sides.

The gateway speaks just enough HTTP for its own clients: request-line +
headers + ``Content-Length`` bodies on the way in, fixed-length or
``Transfer-Encoding: chunked`` responses on the way out.  Chunked
encoding is what makes streaming inference work over plain HTTP — the
server flushes one chunk per completed batch step and the client sees
partial results while later steps are still computing.

Deliberately not here: TLS, compression, pipelining, HTTP/2, multipart.
A reproduction's gateway needs a wire format, not a web framework.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "read_request",
    "read_response",
    "render_response",
    "render_request",
    "encode_chunk",
    "LAST_CHUNK",
    "iter_chunks",
    "MAX_LINE",
    "MAX_BODY",
]

# Hard limits so a malformed or hostile peer cannot balloon memory.
MAX_LINE = 16 * 1024
MAX_BODY = 8 * 1024 * 1024

CRLF = b"\r\n"
LAST_CHUNK = b"0\r\n\r\n"

STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Protocol violation; carries the status the server should answer."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        try:
            return json.loads(self.body or b"{}")
        except json.JSONDecodeError as e:
            raise HttpError(400, f"invalid JSON body: {e}") from e

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


@dataclass
class HttpResponse:
    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        return json.loads(self.body or b"{}")

    @property
    def chunked(self) -> bool:
        return self.headers.get("transfer-encoding", "").lower() == "chunked"


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(CRLF)
    except asyncio.IncompleteReadError as e:
        if not e.partial:
            return b""  # clean EOF between requests
        raise HttpError(400, "truncated line") from e
    except asyncio.LimitOverrunError as e:
        raise HttpError(413, "header line too long") from e
    if len(line) > MAX_LINE:
        raise HttpError(413, "header line too long")
    return line[:-2]


async def _read_headers(reader: asyncio.StreamReader) -> dict[str, str]:
    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if not line:
            return headers
        if len(headers) > 100:
            raise HttpError(413, "too many headers")
        name, sep, value = line.partition(b":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.decode("latin-1").strip().lower()] = value.decode("latin-1").strip()


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request; ``None`` on clean EOF (client closed keep-alive)."""
    line = await _read_line(reader)
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {line!r}")
    method, path, _version = parts
    headers = await _read_headers(reader)
    body = b""
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > MAX_BODY:
        raise HttpError(413, "body too large")
    if length:
        body = await reader.readexactly(length)
    return HttpRequest(method=method.upper(), path=path, headers=headers, body=body)


def render_response(
    status: int,
    body: bytes | dict | list | None = None,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    chunked: bool = False,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Response head (+ body unless ``chunked``), ready to write.

    With ``chunked=True`` only the head is returned; the caller streams
    :func:`encode_chunk` frames and finishes with :data:`LAST_CHUNK`.
    """
    if isinstance(body, (dict, list)):
        body = json.dumps(body, sort_keys=True).encode()
    body = body or b""
    lines = [f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}"]
    lines.append(f"Content-Type: {content_type}")
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    else:
        lines.append(f"Content-Length: {len(body)}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    for k, v in (extra_headers or {}).items():
        lines.append(f"{k}: {v}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head if chunked else head + body


def encode_chunk(data: bytes | dict) -> bytes:
    """One chunked-transfer frame (JSON payloads get a trailing newline so
    a streaming client can split frames on lines too)."""
    if isinstance(data, dict):
        data = json.dumps(data, sort_keys=True).encode() + b"\n"
    return f"{len(data):x}".encode() + CRLF + data + CRLF


# -- client side --------------------------------------------------------


def render_request(
    method: str,
    path: str,
    body: bytes | dict | None = None,
    *,
    host: str = "localhost",
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    if isinstance(body, dict):
        body = json.dumps(body, sort_keys=True).encode()
    body = body or b""
    lines = [f"{method} {path} HTTP/1.1", f"Host: {host}"]
    if body:
        lines.append("Content-Type: application/json")
    lines.append(f"Content-Length: {len(body)}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    for k, v in (extra_headers or {}).items():
        lines.append(f"{k}: {v}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def _read_status_and_headers(reader: asyncio.StreamReader) -> tuple[int, dict[str, str]]:
    line = await _read_line(reader)
    if not line:
        raise HttpError(400, "connection closed before response")
    parts = line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HttpError(400, f"malformed status line {line!r}")
    return int(parts[1]), await _read_headers(reader)


async def iter_chunks(reader: asyncio.StreamReader):
    """Yield decoded chunk payloads until the terminal zero-length chunk."""
    while True:
        size_line = await _read_line(reader)
        try:
            size = int(size_line.split(b";")[0], 16)
        except ValueError as e:
            raise HttpError(400, f"malformed chunk size {size_line!r}") from e
        if size > MAX_BODY:
            raise HttpError(413, "chunk too large")
        data = await reader.readexactly(size)
        await reader.readexactly(2)  # trailing CRLF
        if size == 0:
            return
        yield data


async def read_response(reader: asyncio.StreamReader) -> HttpResponse:
    """Read one full response, reassembling chunked bodies."""
    status, headers = await _read_status_and_headers(reader)
    if headers.get("transfer-encoding", "").lower() == "chunked":
        body = b"".join([c async for c in iter_chunks(reader)])
    else:
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            raise HttpError(413, "body too large")
        body = await reader.readexactly(length) if length else b""
    return HttpResponse(status=status, headers=headers, body=body)
