"""Sim-vs-live validation: the simulator as the gateway's model.

Every serving number this repo reports historically came from the
discrete-event simulator.  The gateway closes the loop: replay **one
seeded trace** through both

* the simulator on a pinned :class:`LatencyProfile` (pure, modeled
  clock), and
* the live gateway on localhost with a :class:`ProfileExecutor` that
  sleeps exactly that profile (real sockets, real event loop, same
  ``ServingCore`` policy),

then compare what each decided.  Two layers of comparison:

* :func:`replay_decisions` — a *synchronous* gateway-style driver
  (``offer`` / ``dispatch_due`` / ``cut_batch`` over a replica
  busy-until list) on the same injected timestamps the simulator uses.
  This must be **bit-identical** to the simulator's timeline — a
  Hypothesis property enforces it.  Any divergence is a seam bug in the
  shared core, not timing noise.
* :func:`run_twin` — the live replay.  Real scheduling adds jitter
  (connection setup, loop wakeups, sleep granularity), so the gate is
  banded: shed-rate delta, throughput ratio, and per-request
  admission/status agreement against the sim within committed bands.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from ..serve.core import ServingCore
from ..serve.latency import LatencyProfile
from ..serve.loadgen import ArrivalSpec
from ..serve.simulator import COMPLETED, ServeConfig, ServeReport, ServeSimulator
from .client import LoadClient, RequestRecord, build_trace, trace_digest
from .executor import ProfileExecutor
from .server import GatewayServer

__all__ = ["replay_decisions", "TwinResult", "run_twin", "run_twin_async"]


def replay_decisions(
    profile: LatencyProfile, config: ServeConfig, arrival_times
) -> list[str]:
    """Gateway-style synchronous replay → per-request final statuses.

    Drives :class:`ServingCore` exactly the way the gateway's event loop
    does — ``offer`` at each arrival with ``min(busy_until)``, dispatch
    at ``dispatch_due``, service times from the profile — but on the
    injected timestamps instead of a wall clock.  Bit-identical to
    :meth:`ServeSimulator.run` by construction; the property tests
    assert it stays that way.
    """
    arrivals = [float(t) for t in arrival_times]
    from ..serve.batcher import Request

    requests = [Request(i, t, t + config.slo_s) for i, t in enumerate(arrivals)]
    statuses: dict[int, str] = {}
    core = ServingCore(profile, config, namespace="serve.gateway")
    busy_until = [0.0] * config.replicas
    i, n = 0, len(requests)
    while i < n or len(core):
        earliest_free = min(busy_until)
        dispatch_s = core.dispatch_due(earliest_free)
        if i < n and (dispatch_s is None or requests[i].arrival_s < dispatch_s):
            req = requests[i]
            i += 1
            decision = core.offer(req, earliest_free)
            if not decision.admitted:
                statuses[req.rid] = "shed_admission"
            continue
        live, expired = core.cut_batch(dispatch_s)
        for req in expired:
            statuses[req.rid] = "shed_deadline"
        if not live:
            continue
        replica = busy_until.index(min(busy_until))
        busy_until[replica] = dispatch_s + profile.latency(len(live))
        for req in live:
            statuses[req.rid] = COMPLETED
    return [statuses[r] for r in range(n)]


@dataclass
class TwinResult:
    """One sim-vs-live twin run, reduced to the gated quantities."""

    trace_digest: str
    n_requests: int
    sim: dict
    live: dict
    shed_rate_delta: float
    throughput_ratio: float
    admission_agreement: float
    status_agreement: float
    n_client_errors: int

    def as_dict(self) -> dict:
        return {
            "trace_digest": self.trace_digest,
            "n_requests": self.n_requests,
            "sim": self.sim,
            "live": self.live,
            "shed_rate_delta": round(self.shed_rate_delta, 6),
            "throughput_ratio": round(self.throughput_ratio, 6),
            "admission_agreement": round(self.admission_agreement, 6),
            "status_agreement": round(self.status_agreement, 6),
            "n_client_errors": self.n_client_errors,
        }


def _compare(
    trace, sim_report: ServeReport, live_report: ServeReport, records: list[RequestRecord]
) -> TwinResult:
    sim_status = {o.rid: o.status for o in sim_report.outcomes}
    live_status = {o.rid: o.status for o in live_report.outcomes}
    n = len(trace)
    adm_agree = sum(
        (sim_status.get(t.rid) == "shed_admission")
        == (live_status.get(t.rid) == "shed_admission")
        for t in trace
    )
    status_agree = sum(sim_status.get(t.rid) == live_status.get(t.rid) for t in trace)
    sim_tp = sim_report.throughput_rps
    live_tp = live_report.throughput_rps
    return TwinResult(
        trace_digest=trace_digest(trace),
        n_requests=n,
        sim=sim_report.summary(),
        live=live_report.summary(),
        shed_rate_delta=live_report.shed_rate - sim_report.shed_rate,
        throughput_ratio=(live_tp / sim_tp) if sim_tp > 0 else 0.0,
        admission_agreement=adm_agree / n if n else 1.0,
        status_agreement=status_agree / n if n else 1.0,
        n_client_errors=sum(1 for r in records if r.error is not None),
    )


async def run_twin_async(
    profile: LatencyProfile,
    config: ServeConfig,
    spec: ArrivalSpec,
    timeout_s: float = 30.0,
) -> TwinResult:
    """Replay ``spec``'s trace through the simulator and a live localhost
    gateway (profile-timed executor), and reduce to the gated deltas."""
    trace = build_trace(spec)
    sim_report = ServeSimulator(profile, config).run(
        [t.at_s for t in trace], duration_s=spec.duration_s
    )
    server = GatewayServer(ProfileExecutor(profile), config, port=0)
    await server.start()
    try:
        client = LoadClient("127.0.0.1", server.port, timeout_s=timeout_s)
        records = await client.run_open(trace)
    finally:
        await server.stop()
    live_report = server.report(spec.duration_s)
    return _compare(trace, sim_report, live_report, records)


def run_twin(
    profile: LatencyProfile,
    config: ServeConfig,
    spec: ArrivalSpec,
    timeout_s: float = 30.0,
) -> TwinResult:
    """Synchronous wrapper around :func:`run_twin_async`."""
    return asyncio.run(run_twin_async(profile, config, spec, timeout_s=timeout_s))
