"""Async batch inference executors for the gateway.

Two implementations behind one tiny interface (``estimate`` + awaitable
``run_step``):

* :class:`ModelExecutor` runs *real* ``no_grad`` eval-mode forwards of a
  registry model.  The forward is pure CPU work, so it is offloaded to a
  single worker thread via ``run_in_executor`` — the event loop keeps
  accepting connections and running admission while a GEMM is in flight.
  One thread (not a pool) mirrors the one-replica-one-device reality the
  latency profile was measured under; multi-replica gateways get one
  executor each.

* :class:`ProfileExecutor` *sleeps* the profile's measured latency
  instead of computing.  This is the sim-vs-live twin's instrument: the
  live gateway runs the full socket/asyncio/admission path while service
  times stay exactly the pinned profile the simulator used, so any
  divergence between the two is attributable to the serving machinery,
  not to host noise in the forwards.

Batch *steps* model progressive inference (snippet-1-style streaming
sessions): a request asking for ``steps=k`` receives ``k`` partial
results, one per executor step of its batch, each flushed to the client
as soon as that step completes.
"""

from __future__ import annotations

import asyncio
import concurrent.futures

import numpy as np

from ..serve.batcher import Request
from ..serve.inputs import InputSpec
from ..serve.latency import LatencyProfile

__all__ = ["ProfileExecutor", "ModelExecutor"]


class ProfileExecutor:
    """Replays a pinned :class:`LatencyProfile` as real elapsed time."""

    kind = "profile"

    def __init__(self, profile: LatencyProfile):
        self.profile = profile

    def estimate(self, batch_size: int, steps: int = 1) -> float:
        """Expected service seconds for one batch (the admission estimate)."""
        return self.profile.latency(batch_size) * steps

    async def run_step(self, requests: list[Request], payloads: list[int], step: int) -> list:
        """One batch step: sleep the measured latency, echo the payloads.

        The result is a pure function of (payload, step) so a client can
        verify end-to-end integrity of the streamed chunks.
        """
        await asyncio.sleep(self.profile.latency(len(requests)))
        return [{"echo": int(p), "step": step} for p in payloads]

    def describe(self) -> dict:
        return {
            "executor": self.kind,
            "profile": self.profile.to_dict(),
        }


class ModelExecutor:
    """Real batched ``no_grad`` forwards of a served model, off the loop."""

    kind = "model"

    def __init__(self, served, profile: LatencyProfile | None = None):
        self.served = served
        self.model = served.model
        self.spec: InputSpec = served.input_spec
        # Admission still needs a service estimate; measure lazily if the
        # caller did not bring a profile.
        if profile is None:
            from ..serve.latency import measure_latency_profile

            profile = measure_latency_profile(
                self.model, self.spec, batch_sizes=(1, 4, 8), repeats=1
            )
        self.profile = profile
        self.model.eval()
        self._thread = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="gateway-infer"
        )

    def estimate(self, batch_size: int, steps: int = 1) -> float:
        return self.profile.latency(batch_size) * steps

    def _forward(self, payloads: list[int], step: int) -> list:
        from ..tensor import no_grad

        # The batch inputs are a pure function of the request payload
        # seeds (counter-keyed, like every other seeded draw in the repo)
        # so a given trace always computes the same batches.
        rng = np.random.default_rng([int(p) for p in payloads] + [step])
        args = self.spec.example_batch(len(payloads), rng)
        with no_grad():
            out = self.model(*args)
        data = getattr(out, "data", out)
        data = np.asarray(data)
        # Collapse to one class id per example: argmax over the last axis,
        # then (for sequence outputs) take the last position per example.
        pred = np.argmax(data, axis=-1).reshape(len(payloads), -1)[:, -1]
        return [{"class": int(c), "step": step} for c in pred]

    async def run_step(self, requests: list[Request], payloads: list[int], step: int) -> list:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._thread, self._forward, payloads, step)

    def describe(self) -> dict:
        out = {
            "executor": self.kind,
            "model": self.served.name,
            "variant": self.served.variant,
            "params": int(self.served.params),
            "macs": int(self.served.macs),
            "input_spec": self.spec.to_dict(),
        }
        if self.served.lineage:
            # Promoted lifecycle artifact: expose checkpoint version,
            # parent run and rank-map digest on GET /v1/model.
            out["lineage"] = dict(self.served.lineage)
        return out

    def close(self) -> None:
        self._thread.shutdown(wait=False)
