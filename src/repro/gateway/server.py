"""The asyncio serving gateway: real sockets over the simulator's policy.

:class:`GatewayServer` is the live twin of
:class:`~repro.serve.simulator.ServeSimulator`.  Both drive the *same*
:class:`~repro.serve.core.ServingCore` (admission + dynamic batching,
clock injected); the simulator feeds it modeled timestamps, the gateway
feeds it the event-loop clock (``loop.time()`` rebased to a run epoch, so
all timestamps are small floats like the sim's).  Everything else maps
one-to-one:

===========================  =====================================
simulator                    gateway
===========================  =====================================
modeled arrival time         ``now()`` when the POST body is parsed
replica min-heap ``free_at``  per-replica ``busy_until`` estimates
batch dispatch event         per-replica worker task waking at
                             ``core.dispatch_due(now())``
``profile.latency(B)``       executor ``run_step`` (real forwards or
                             a profile-timed sleep)
``ServeReport``              the same class, built from live outcomes
===========================  =====================================

Streaming: a request with ``steps=k`` gets a chunked response whose
frames are flushed one per completed batch step — partial results arrive
while later steps are still computing.  Graceful shutdown stops
accepting, sheds the queue with reason ``shutdown`` (clients get 503s,
the report accounts every request), then drains in-flight batches.

Metrics mirror the simulator's under the ``serve.gateway.*`` namespace.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from ..observability import metrics as _metrics
from ..observability import trace as _trace
from ..serve.admission import SHED_DEADLINE, SHED_SHUTDOWN
from ..serve.batcher import Request
from ..serve.core import ServingCore
from ..serve.simulator import (
    COMPLETED,
    BatchRecord,
    RequestOutcome,
    ServeConfig,
    ServeReport,
)
from . import http as _http

__all__ = ["GatewayServer", "run_server", "NAMESPACE"]

NAMESPACE = "serve.gateway"

# Auto-assigned request ids start far above any client-chosen trace id so
# the two ranges never collide in the outcome map.
_AUTO_RID_BASE = 1 << 30


@dataclass
class _Pending:
    """Server-side state of one admitted request."""

    request: Request
    payload: int
    steps: int
    stream: bool
    events: asyncio.Queue = field(default_factory=asyncio.Queue)


class GatewayServer:
    """One replica pool serving HTTP on localhost, policy-identical to the sim.

    ``executor`` is a :class:`~repro.gateway.executor.ModelExecutor` (real
    forwards) or :class:`~repro.gateway.executor.ProfileExecutor` (pinned
    profile, for twin validation).  ``config`` is the same
    :class:`~repro.serve.simulator.ServeConfig` the simulator takes.
    """

    def __init__(
        self,
        executor,
        config: ServeConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        pool: str = "gateway0",
    ):
        self.executor = executor
        self.config = config
        self.host = host
        self.port = port  # rebound to the real port once listening
        self.pool = pool
        self.core = ServingCore(executor.profile, config, pool=pool, namespace=NAMESPACE)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._t0 = 0.0
        self._stopping = False
        self._work = asyncio.Event()
        self._workers: list[asyncio.Task] = []
        self._conn_tasks: set[asyncio.Task] = set()
        self._pending: dict[int, _Pending] = {}
        self._outcomes: dict[int, RequestOutcome] = {}
        self._batches: list[BatchRecord] = []
        self._queue_depths: list[int] = []
        self._busy_until = [0.0] * config.replicas
        self._auto_rid = _AUTO_RID_BASE

    # -- clock ----------------------------------------------------------

    def now(self) -> float:
        """Seconds since the server started, on the event-loop clock.

        This is the *only* clock the serving path uses — it feeds the same
        ``ServingCore`` calls the simulator makes with its modeled clock.
        """
        return self._loop.time() - self._t0

    def _earliest_free(self) -> float:
        """The pool's earliest replica-free estimate (the sim's heap head)."""
        return min(self._busy_until)

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._t0 = self._loop.time()
        self._server = await asyncio.start_server(self._handle_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._workers = [
            asyncio.ensure_future(self._worker(r)) for r in range(self.config.replicas)
        ]
        if _metrics.COLLECT:
            _metrics.REGISTRY.gauge(f"{NAMESPACE}.pool.replicas").labels(
                pool=self.pool
            ).set(self.config.replicas)

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, shed the queue with reason
        ``shutdown``, drain in-flight batches, flush every response."""
        if self._stopping:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
        for req in self.core.shed_queue(SHED_SHUTDOWN):
            self._finish_shed(req, SHED_SHUTDOWN)
        self._work.set()
        if self._workers:
            await asyncio.gather(*self._workers)
        if self._conn_tasks:
            # Every handler now has its terminal event queued; give the
            # flushes a bounded window rather than hanging on a dead peer.
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        if self._server is not None:
            await self._server.wait_closed()
        close = getattr(self.executor, "close", None)
        if close is not None:
            close()

    async def serve_until(self, stop_event: asyncio.Event) -> None:
        """Run until ``stop_event`` fires, then shut down gracefully."""
        await self.start()
        await stop_event.wait()
        await self.stop()

    # -- report ----------------------------------------------------------

    def report(self, duration_s: float | None = None) -> ServeReport:
        """The run so far as the simulator's own report class."""
        outcomes = sorted(self._outcomes.values(), key=lambda o: (o.arrival_s, o.rid))
        horizon = duration_s
        if horizon is None:
            last_completion = max((b.completion_s for b in self._batches), default=0.0)
            last_arrival = max((o.arrival_s for o in outcomes), default=0.0)
            horizon = max(last_completion, last_arrival)
        return ServeReport(
            duration_s=float(horizon),
            slo_s=self.config.slo_s,
            outcomes=outcomes,
            batches=list(self._batches),
            queue_depths=list(self._queue_depths),
            replicas=self.config.replicas,
        )

    # -- dispatch workers ------------------------------------------------

    async def _worker(self, replica: int) -> None:
        """One replica: wake at ``core.dispatch_due``, cut, execute.

        The due/cut pair runs without an intervening ``await``, so on the
        single-threaded loop two workers can never cut the same batch.
        """
        core = self.core
        while True:
            if not core.queue_depth:
                if self._stopping:
                    return
                self._work.clear()
                # Nothing can enqueue between the depth check and this
                # wait (no await in between) — the clear/wait pair is safe.
                await self._work.wait()
                continue
            due = core.dispatch_due(self.now())
            delay = due - self.now()
            if delay > 0:
                self._work.clear()
                try:
                    # Sleep until the flush deadline, but wake early when a
                    # new arrival may have filled the batch.
                    await asyncio.wait_for(self._work.wait(), timeout=delay)
                except asyncio.TimeoutError:
                    pass
                continue
            dispatch_s = self.now()
            live, expired = core.cut_batch(dispatch_s)
            for req in expired:
                self._finish_shed(req, SHED_DEADLINE)
            if not live:
                continue
            await self._run_batch(replica, live, dispatch_s)

    async def _run_batch(self, replica: int, live: list[Request], dispatch_s: float) -> None:
        pendings = [self._pending.pop(r.rid) for r in live]
        payloads = [p.payload for p in pendings]
        steps = max(p.steps for p in pendings)
        # Publish the busy estimate *before* the first await so admission
        # decisions made while this batch is in flight see it — the live
        # analogue of the simulator's replica heap.
        self._busy_until[replica] = dispatch_s + self.executor.estimate(len(live), steps)
        with _trace.span(
            f"{NAMESPACE}.batch", replica=replica, size=len(live), steps=steps
        ):
            for step in range(steps):
                results = await self.executor.run_step(live, payloads, step)
                t = self.now()
                for req, pend, result in zip(live, pendings, results):
                    if step < pend.steps:
                        pend.events.put_nowait(("step", step, result, t))
        completion = self.now()
        self._busy_until[replica] = completion
        record = BatchRecord(
            index=len(self._batches),
            replica=replica,
            dispatch_s=dispatch_s,
            size=len(live),
            service_s=completion - dispatch_s,
            completion_s=completion,
        )
        self._batches.append(record)
        for req, pend in zip(live, pendings):
            outcome = RequestOutcome(
                req.rid,
                req.arrival_s,
                COMPLETED,
                completion_s=completion,
                latency_s=completion - req.arrival_s,
                slo_ok=completion <= req.deadline_s,
                batch=record.index,
            )
            self._outcomes[req.rid] = outcome
            pend.events.put_nowait(("done", outcome))
        if _metrics.COLLECT:
            _metrics.REGISTRY.counter(f"{NAMESPACE}.batches").inc()
            _metrics.REGISTRY.counter(f"{NAMESPACE}.completed").inc(len(live))
            _metrics.REGISTRY.histogram(f"{NAMESPACE}.batch_size").observe(len(live))
            for req in live:
                _metrics.REGISTRY.histogram(f"{NAMESPACE}.latency_ms").observe(
                    (completion - req.arrival_s) * 1e3
                )

    def _finish_shed(self, req: Request, reason: str) -> None:
        outcome = RequestOutcome(req.rid, req.arrival_s, f"shed_{reason}")
        self._outcomes[req.rid] = outcome
        pend = self._pending.pop(req.rid, None)
        if pend is not None:
            pend.events.put_nowait(("done", outcome))

    # -- connection handling ---------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        if _metrics.COLLECT:
            _metrics.REGISTRY.counter(f"{NAMESPACE}.connections").inc()
        try:
            while True:
                request = await _http.read_request(reader)
                if request is None:
                    break
                keep = await self._route(request, writer)
                await writer.drain()
                if not keep:
                    break
        except _http.HttpError as e:
            try:
                writer.write(
                    _http.render_response(
                        e.status, {"error": str(e)}, keep_alive=False
                    )
                )
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _route(self, request: _http.HttpRequest, writer) -> bool:
        path, _, query = request.path.partition("?")
        keep = request.keep_alive
        if request.method == "POST" and path == "/v1/infer":
            return await self._handle_infer(request, writer)
        if request.method == "GET" and path == "/healthz":
            body = {"ok": True, "t_s": round(self.now(), 6), "stopping": self._stopping}
        elif request.method == "GET" and path == "/v1/model":
            body = self.executor.describe() | {
                "slo_ms": self.config.slo_s * 1e3,
                "max_batch_size": self.config.policy.max_batch_size,
                "max_wait_ms": self.config.policy.max_wait_s * 1e3,
                "replicas": self.config.replicas,
            }
        elif request.method == "GET" and path == "/v1/report":
            duration = None
            for part in query.split("&"):
                if part.startswith("duration_s="):
                    duration = float(part.removeprefix("duration_s="))
            report = self.report(duration)
            body = {"summary": report.summary(), "timeline": report.timeline()}
        elif request.method == "GET" and path == "/metrics":
            body = _metrics.REGISTRY.snapshot()
        else:
            writer.write(
                _http.render_response(404, {"error": f"no route {request.method} {path}"})
            )
            return keep
        writer.write(_http.render_response(200, body, keep_alive=keep))
        return keep

    async def _handle_infer(self, request: _http.HttpRequest, writer) -> bool:
        body = request.json()
        if not isinstance(body, dict):
            raise _http.HttpError(400, "infer body must be a JSON object")
        keep = request.keep_alive
        try:
            rid = int(body.get("id", self._auto_rid))
            payload = int(body.get("payload", 0))
            steps = int(body.get("steps", 1))
        except (TypeError, ValueError) as e:
            raise _http.HttpError(400, f"bad infer field: {e}") from e
        stream = bool(body.get("stream", steps > 1))
        if steps < 1 or steps > 64:
            raise _http.HttpError(400, "steps must be in [1, 64]")
        if rid in self._pending or rid in self._outcomes:
            raise _http.HttpError(400, f"duplicate request id {rid}")
        if rid == self._auto_rid:
            self._auto_rid += 1

        arrival = self.now()
        req = Request(rid, arrival, arrival + self.config.slo_s)
        if self._stopping:
            # Late arrival during drain: accounted, never queued.
            self._outcomes[rid] = RequestOutcome(rid, arrival, f"shed_{SHED_SHUTDOWN}")
            writer.write(
                _http.render_response(
                    503,
                    {"rid": rid, "status": f"shed_{SHED_SHUTDOWN}"},
                    keep_alive=False,
                )
            )
            return False

        with _trace.span(f"{NAMESPACE}.request", rid=rid, steps=steps):
            decision = self.core.offer(req, self._earliest_free())
            self._queue_depths.append(self.core.queue_depth)
            if not decision.admitted:
                outcome = RequestOutcome(rid, arrival, "shed_admission")
                self._outcomes[rid] = outcome
                writer.write(
                    _http.render_response(
                        503,
                        {
                            "rid": rid,
                            "status": outcome.status,
                            "est_completion_ms": round(
                                (decision.est_completion_s - arrival) * 1e3, 3
                            ),
                            "slo_ms": self.config.slo_s * 1e3,
                        },
                        keep_alive=keep,
                    )
                )
                return keep
            pend = _Pending(request=req, payload=payload, steps=steps, stream=stream)
            self._pending[rid] = pend
            self._work.set()
            if stream:
                return await self._stream_response(rid, pend, writer, keep)
            return await self._unary_response(rid, pend, writer, keep)

    async def _unary_response(self, rid: int, pend: _Pending, writer, keep: bool) -> bool:
        result = None
        while True:
            event = await pend.events.get()
            if event[0] == "step":
                result = event[2]
                continue
            outcome: RequestOutcome = event[1]
            break
        if outcome.status == COMPLETED:
            writer.write(
                _http.render_response(
                    200,
                    {
                        "rid": rid,
                        "status": COMPLETED,
                        "result": result,
                        "batch": outcome.batch,
                        "latency_ms": round(outcome.latency_s * 1e3, 3),
                        "slo_ok": bool(outcome.slo_ok),
                    },
                    keep_alive=keep,
                )
            )
            return keep
        writer.write(
            _http.render_response(
                503, {"rid": rid, "status": outcome.status}, keep_alive=keep
            )
        )
        return keep

    async def _stream_response(self, rid: int, pend: _Pending, writer, keep: bool) -> bool:
        """Chunked response: one frame per completed batch step, flushed
        immediately — the client sees partials before the batch finishes."""
        writer.write(_http.render_response(200, chunked=True, keep_alive=keep))
        await writer.drain()
        while True:
            event = await pend.events.get()
            if event[0] == "step":
                _, step, result, t = event
                writer.write(
                    _http.encode_chunk(
                        {
                            "rid": rid,
                            "step": step,
                            "of": pend.steps,
                            "result": result,
                            "t_s": round(t, 6),
                        }
                    )
                )
                await writer.drain()
                continue
            outcome: RequestOutcome = event[1]
            final = {"rid": rid, "final": True, "status": outcome.status}
            if outcome.status == COMPLETED:
                final |= {
                    "batch": outcome.batch,
                    "latency_ms": round(outcome.latency_s * 1e3, 3),
                    "slo_ok": bool(outcome.slo_ok),
                }
            writer.write(_http.encode_chunk(final) + _http.LAST_CHUNK)
            await writer.drain()
            return keep


def run_server(server: GatewayServer, duration_s: float | None = None) -> ServeReport:
    """Blocking convenience runner: start, serve, stop, report.

    With ``duration_s`` the server stops itself after that many seconds;
    otherwise it runs until the surrounding task is cancelled (the CLI
    wires SIGINT/SIGTERM to the stop event).
    """

    async def _main() -> ServeReport:
        stop = asyncio.Event()
        await server.start()
        if duration_s is not None:
            asyncio.get_running_loop().call_later(duration_s, stop.set)
        try:
            await stop.wait()
        finally:
            await server.stop()
        return server.report()

    return asyncio.run(_main())
