"""Early-Bird Tickets (You et al. 2019) — the Table 7 structured-pruning
baseline.

EB Train ranks channels by the magnitude of their BatchNorm scale γ,
computes a prune mask at a target channel-prune ratio each epoch, and
declares the "early-bird ticket" drawn once the mask stops changing (the
normalized Hamming distance between consecutive masks stays below a
threshold for a few epochs).  Training then stops early, the network is
*structurally* slimmed (channels physically removed, giving a dense
smaller model like Pufferfish's), and the slim model is fine-tuned.

Structured removal is implemented for the architectures the paper
evaluates: VGG-style conv→BN chains and ResNet blocks, where only
block-internal channels are pruned so residual shapes stay intact.
"""

from __future__ import annotations


import numpy as np

from ..models.resnet import BasicBlock, Bottleneck, ResNet
from ..models.vgg import VGG
from ..nn import BatchNorm2d, Conv2d, Linear, MaxPool2d, ReLU, Sequential, Flatten
from ..nn.module import Module

__all__ = [
    "bn_channel_scores",
    "channel_mask",
    "mask_distance",
    "EarlyBirdDetector",
    "prune_vgg",
    "prune_resnet",
    "bn_l1_penalty_grad",
]


def bn_channel_scores(
    model: Module, prunable_bns: list[str] | None = None
) -> dict[str, np.ndarray]:
    """|γ| per channel for each prunable BatchNorm layer."""
    scores = {}
    for path, mod in model.named_modules():
        if isinstance(mod, BatchNorm2d):
            if prunable_bns is None or path in prunable_bns:
                scores[path] = np.abs(mod.weight.data)
    return scores


def channel_mask(
    scores: dict[str, np.ndarray], prune_ratio: float
) -> dict[str, np.ndarray]:
    """Keep-masks from a *global* threshold over all scored channels."""
    all_scores = np.concatenate([s for s in scores.values()])
    k = int(prune_ratio * all_scores.size)
    if k == 0:
        return {p: np.ones_like(s, dtype=bool) for p, s in scores.items()}
    threshold = np.partition(all_scores, k)[k]
    masks = {}
    for path, s in scores.items():
        keep = s >= threshold
        if not keep.any():  # never remove a whole layer
            keep[np.argmax(s)] = True
        masks[path] = keep
    return masks


def mask_distance(a: dict[str, np.ndarray], b: dict[str, np.ndarray]) -> float:
    """Normalized Hamming distance between two channel-mask sets."""
    diff = 0
    total = 0
    for path in a:
        diff += int((a[path] != b[path]).sum())
        total += a[path].size
    return diff / max(total, 1)


class EarlyBirdDetector:
    """Declares the early-bird ticket when masks stabilize.

    ``update`` is called once per epoch with the current model; returns True
    once the last ``patience`` consecutive mask distances were all below
    ``threshold`` (You et al. use a FIFO of distances with threshold 0.1).
    """

    def __init__(
        self,
        prune_ratio: float,
        threshold: float = 0.1,
        patience: int = 3,
        prunable_bns: list[str] | None = None,
    ):
        self.prune_ratio = prune_ratio
        self.threshold = threshold
        self.patience = patience
        self.prunable_bns = prunable_bns
        self._last_mask: dict[str, np.ndarray] | None = None
        self._distances: list[float] = []
        self.found_at: int | None = None

    def update(self, model: Module, epoch: int) -> bool:
        mask = channel_mask(
            bn_channel_scores(model, self.prunable_bns), self.prune_ratio
        )
        if self._last_mask is not None:
            self._distances.append(mask_distance(mask, self._last_mask))
        self._last_mask = mask
        recent = self._distances[-self.patience :]
        if len(recent) == self.patience and all(d < self.threshold for d in recent):
            if self.found_at is None:
                self.found_at = epoch
            return True
        return False

    @property
    def mask(self) -> dict[str, np.ndarray] | None:
        return self._last_mask


def bn_l1_penalty_grad(model: Module, coeff: float = 1e-4) -> None:
    """Add the sparsity-inducing L1 subgradient on BN scales (network
    slimming's regularizer, used during the EB search phase).  Call after
    ``backward()`` and before ``optimizer.step()``."""
    for mod in model.modules():
        if isinstance(mod, BatchNorm2d):
            g = coeff * np.sign(mod.weight.data)
            if mod.weight.grad is None:
                mod.weight.grad = g.astype(np.float32)
            else:
                mod.weight.grad += g


# ---------------------------------------------------------------------------
# Structural slimming
# ---------------------------------------------------------------------------

def _slice_conv(conv: Conv2d, keep_out: np.ndarray | None, keep_in: np.ndarray | None) -> Conv2d:
    """New Conv2d with selected in/out channels, weights copied."""
    w = conv.weight.data
    if keep_out is not None:
        w = w[keep_out]
    if keep_in is not None:
        w = w[:, keep_in]
    new = Conv2d(
        w.shape[1], w.shape[0], conv.kernel_size, conv.stride, conv.padding,
        bias=conv.bias is not None,
    )
    new.weight.data = w.copy()
    if conv.bias is not None:
        b = conv.bias.data
        new.bias.data = (b[keep_out] if keep_out is not None else b).copy()
    return new


def _slice_bn(bn: BatchNorm2d, keep: np.ndarray) -> BatchNorm2d:
    new = BatchNorm2d(int(keep.sum()), eps=bn.eps, momentum=bn.momentum)
    new.weight.data = bn.weight.data[keep].copy()
    new.bias.data = bn.bias.data[keep].copy()
    new._set_buffer("running_mean", bn.running_mean[keep].copy())
    new._set_buffer("running_var", bn.running_var[keep].copy())
    return new


def prune_vgg(model: VGG, masks: dict[str, np.ndarray]) -> Module:
    """Structurally slim a VGG: every conv's output channels follow its BN
    keep-mask; the next conv's input channels follow suit.  Returns a new
    (generic Module) network with the same topology."""
    mods = list(model.features._modules.values())
    new_layers: list[Module] = []
    keep_prev: np.ndarray | None = None
    paths = {id(m): p for p, m in model.named_modules()}

    i = 0
    while i < len(mods):
        mod = mods[i]
        if isinstance(mod, Conv2d):
            bn = mods[i + 1]
            bn_path = paths[id(bn)]
            keep = masks.get(bn_path, np.ones(mod.out_channels, dtype=bool))
            new_layers.append(_slice_conv(mod, keep, keep_prev))
            new_layers.append(_slice_bn(bn, keep))
            new_layers.append(ReLU())
            keep_prev = keep
            i += 3
        elif isinstance(mod, MaxPool2d):
            new_layers.append(MaxPool2d(mod.kernel_size, mod.stride))
            i += 1
        else:
            i += 1

    # Classifier: first Linear's input features follow the final conv mask.
    cls_mods = list(model.classifier._modules.values())
    new_cls: list[Module] = [Flatten()]
    first_linear = True
    for mod in cls_mods:
        if isinstance(mod, Linear):
            if first_linear and keep_prev is not None:
                # feature layout: (C, H, W) flattened; compute H*W block size
                c_full = keep_prev.size
                hw = mod.in_features // c_full
                col_mask = np.repeat(keep_prev, hw)
                new_lin = Linear(int(col_mask.sum()), mod.out_features, bias=mod.bias is not None)
                new_lin.weight.data = mod.weight.data[:, col_mask].copy()
                if mod.bias is not None:
                    new_lin.bias.data = mod.bias.data.copy()
                new_cls.append(new_lin)
                first_linear = False
            else:
                new_lin = Linear(mod.in_features, mod.out_features, bias=mod.bias is not None)
                new_lin.weight.data = mod.weight.data.copy()
                if mod.bias is not None:
                    new_lin.bias.data = mod.bias.data.copy()
                new_cls.append(new_lin)
        elif isinstance(mod, ReLU):
            new_cls.append(ReLU())

    class SlimVGG(Module):
        def __init__(self, features, classifier):
            super().__init__()
            self.features = features
            self.classifier = classifier

        def forward(self, x):
            return self.classifier(self.features(x))

    return SlimVGG(Sequential(*new_layers), Sequential(*new_cls))


def prune_resnet(model: ResNet, masks: dict[str, np.ndarray]) -> ResNet:
    """Slim a ResNet in place-copy: only block-*internal* channels are
    removed (BasicBlock: conv1/bn1 outputs; Bottleneck: conv1/bn1 and
    conv2/bn2), so every residual join keeps its original width — the same
    restriction real channel-pruning implementations apply."""
    import copy

    new_model = copy.deepcopy(model)
    paths = dict(new_model.named_modules())
    for path, mod in list(paths.items()):
        if isinstance(mod, BasicBlock):
            keep = masks.get(f"{path}.bn1")
            if keep is None:
                continue
            mod.conv1 = _slice_conv(mod.conv1, keep, None)
            mod.bn1 = _slice_bn(mod.bn1, keep)
            mod.conv2 = _slice_conv(mod.conv2, None, keep)
        elif isinstance(mod, Bottleneck):
            keep1 = masks.get(f"{path}.bn1")
            keep2 = masks.get(f"{path}.bn2")
            if keep1 is not None:
                mod.conv1 = _slice_conv(mod.conv1, keep1, None)
                mod.bn1 = _slice_bn(mod.bn1, keep1)
                mod.conv2 = _slice_conv(mod.conv2, None, keep1)
            if keep2 is not None:
                mod.conv2 = _slice_conv(mod.conv2, keep2, None)
                mod.bn2 = _slice_bn(mod.bn2, keep2)
                mod.conv3 = _slice_conv(mod.conv3, None, keep2)
    return new_model


def resnet_internal_bns(model: ResNet) -> list[str]:
    """BN paths safe to prune in a ResNet (block-internal only)."""
    out = []
    for path, mod in model.named_modules():
        if isinstance(mod, BasicBlock):
            out.append(f"{path}.bn1")
        elif isinstance(mod, Bottleneck):
            out.append(f"{path}.bn1")
            out.append(f"{path}.bn2")
    return out
