"""Pruning baselines: Lottery Ticket iterative magnitude pruning and
Early-Bird structured channel pruning."""

from .lth import (
    prunable_weights,
    global_magnitude_mask,
    apply_masks,
    sparsity,
    LTHRunner,
    LTHRound,
)
from .early_bird import (
    bn_channel_scores,
    channel_mask,
    mask_distance,
    EarlyBirdDetector,
    prune_vgg,
    prune_resnet,
    resnet_internal_bns,
    bn_l1_penalty_grad,
)

__all__ = [
    "prunable_weights",
    "global_magnitude_mask",
    "apply_masks",
    "sparsity",
    "LTHRunner",
    "LTHRound",
    "bn_channel_scores",
    "channel_mask",
    "mask_distance",
    "EarlyBirdDetector",
    "prune_vgg",
    "prune_resnet",
    "resnet_internal_bns",
    "bn_l1_penalty_grad",
]
