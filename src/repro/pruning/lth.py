"""Lottery Ticket Hypothesis iterative magnitude pruning (Frankle & Carbin
2018) — the Fig. 5 baseline.

The iterative algorithm the paper times against Pufferfish:

1. Save the random initialization ``θ₀``.
2. Train the (masked) network to convergence.
3. Globally prune the ``p`` fraction of smallest-magnitude *remaining*
   weights.
4. Rewind the surviving weights to their values in ``θ₀`` and repeat.

Each round costs a full training run, which is why LTH is ~(rounds)×
more expensive than Pufferfish for the same final sparsity — the paper
measures 5.67× on VGG-19.

Only weight matrices/kernels of Conv2d/Linear layers are pruned (biases
and norms stay dense), matching open_lth's defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..nn.conv import Conv2d
from ..nn.linear import Linear
from ..nn.module import Module

__all__ = [
    "prunable_weights",
    "global_magnitude_mask",
    "apply_masks",
    "sparsity",
    "LTHRunner",
    "LTHRound",
]


def prunable_weights(model: Module) -> list[tuple[str, np.ndarray]]:
    """(path, weight array) for every Conv2d/Linear weight."""
    out = []
    for path, mod in model.named_modules():
        if isinstance(mod, (Conv2d, Linear)):
            out.append((f"{path}.weight" if path else "weight", mod.weight.data))
    return out


def global_magnitude_mask(
    model: Module,
    prune_fraction: float,
    current_masks: dict[str, np.ndarray] | None = None,
) -> dict[str, np.ndarray]:
    """Prune the smallest ``prune_fraction`` of *currently unmasked* weights,
    ranked globally across all prunable tensors."""
    weights = prunable_weights(model)
    masks = current_masks or {name: np.ones_like(w, dtype=bool) for name, w in weights}
    alive_vals = np.concatenate(
        [np.abs(w[masks[name]]).reshape(-1) for name, w in weights]
    )
    if alive_vals.size == 0:
        return masks
    k = int(prune_fraction * alive_vals.size)
    if k == 0:
        return {name: m.copy() for name, m in masks.items()}
    threshold = np.partition(alive_vals, k)[k]
    new_masks = {}
    for name, w in weights:
        new_masks[name] = masks[name] & (np.abs(w) >= threshold)
    return new_masks


def apply_masks(model: Module, masks: dict[str, np.ndarray]) -> None:
    """Zero out masked weights (and their pending gradients) in place."""
    params = dict(model.named_parameters())
    for name, mask in masks.items():
        p = params[name]
        p.data *= mask
        if p.grad is not None:
            p.grad *= mask


def sparsity(masks: dict[str, np.ndarray]) -> float:
    """Fraction of pruned (zeroed) weights across all masked tensors."""
    total = sum(m.size for m in masks.values())
    alive = sum(int(m.sum()) for m in masks.values())
    return 1.0 - alive / max(total, 1)


@dataclass
class LTHRound:
    """Outcome of one iterative-pruning round."""

    round_index: int
    sparsity: float
    remaining_params: int
    val_metric: float
    seconds: float
    cumulative_seconds: float


class LTHRunner:
    """Drives train → prune → rewind for a fixed number of rounds.

    Parameters
    ----------
    model_factory: builds a fresh model; called once (θ₀ is its init).
    train_fn: ``(model, post_step) -> val_metric`` — trains the model in
        place (applying ``post_step`` after each optimizer step so pruned
        weights stay zero) and returns the final validation metric.
    prune_fraction: per-round fraction of remaining weights to prune
        (open_lth default 0.2).
    """

    def __init__(
        self,
        model_factory: Callable[[], Module],
        train_fn: Callable[[Module, Callable], float],
        prune_fraction: float = 0.2,
    ):
        self.model_factory = model_factory
        self.train_fn = train_fn
        self.prune_fraction = prune_fraction
        self.history: list[LTHRound] = []

    def run(self, rounds: int) -> list[LTHRound]:
        import time

        model = self.model_factory()
        theta0 = model.state_dict()
        masks = {name: np.ones_like(w, dtype=bool) for name, w in prunable_weights(model)}
        cumulative = 0.0

        for rnd in range(rounds):
            apply_masks(model, masks)
            t0 = time.perf_counter()
            val_metric = self.train_fn(model, lambda m: apply_masks(m, masks))
            elapsed = time.perf_counter() - t0
            cumulative += elapsed

            masks = global_magnitude_mask(model, self.prune_fraction, masks)
            remaining = sum(int(m.sum()) for m in masks.values())
            self.history.append(
                LTHRound(
                    round_index=rnd,
                    sparsity=sparsity(masks),
                    remaining_params=remaining,
                    val_metric=val_metric,
                    seconds=elapsed,
                    cumulative_seconds=cumulative,
                )
            )
            # Rewind surviving weights to their initial values.
            model.load_state_dict(theta0)
            apply_masks(model, masks)
        self.final_model = model
        self.final_masks = masks
        return self.history
