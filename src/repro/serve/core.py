"""Clock-agnostic serving core: admission + batching + shed accounting.

One object owns every *policy* decision a serving frontend makes —
admit or shed at arrival, when the head batch is due, which queued
requests expired before dispatch — with **time injected at every call**.
Nothing in this module reads a clock: the discrete-event simulator feeds
it modeled timestamps, the asyncio gateway feeds it event-loop
timestamps, and on the same timestamps both drivers make bit-identical
decisions (a Hypothesis property in ``tests/test_gateway_core.py`` pins
this).  That seam is what lets the simulator act as the *model* the live
gateway is validated against.

The core also owns the request/shed metric accounting so the simulator
and the gateway report through one code path; the metric ``namespace``
separates their series (``serve.*`` vs ``serve.gateway.*``).
"""

from __future__ import annotations

from ..observability import metrics as _metrics
from .admission import SHED_ADMISSION, SHED_DEADLINE, AdmissionController, AdmissionDecision
from .batcher import DynamicBatcher, Request
from .latency import LatencyProfile

__all__ = ["ServingCore"]


class ServingCore:
    """Admission + batching policy for one replica pool, clock injected.

    Drivers call, in whatever loop they own:

    * :meth:`offer` at each request's arrival instant — runs admission
      against the queue depth and the pool's earliest free time, enqueues
      on admit, accounts the shed on reject;
    * :meth:`dispatch_due` to learn when the head batch should leave
      (batch-full: the fill instant; otherwise the oldest request's
      deadline flush), lower-bounded by the replica's free time;
    * :meth:`cut_batch` at the dispatch instant — pops the head batch and
      splits it into live requests and ones whose deadline already
      passed (accounted as ``shed_deadline``);
    * :meth:`shed_queue` on shutdown — drains the queue shedding every
      request with an explicit reason (the gateway's graceful drain).

    ``config`` is a :class:`~repro.serve.simulator.ServeConfig` (duck-typed:
    anything with ``slo_s``, ``policy`` and ``replicas``).
    """

    def __init__(self, profile: LatencyProfile, config, pool: str = "pool0",
                 namespace: str = "serve"):
        self.profile = profile
        self.config = config
        self.pool = pool
        self.namespace = namespace
        self.admission = AdmissionController(profile, config.policy)
        self.batcher = DynamicBatcher(config.policy)
        self.n_seen = 0
        self.n_shed = 0
        self.shed_counts: dict[str, int] = {}

    # -- metric plumbing ------------------------------------------------

    def _counter(self, name: str):
        return _metrics.REGISTRY.counter(f"{self.namespace}.{name}")

    def shed_gauge(self):
        """The live per-pool shed-rate gauge (the autoscaler's signal)."""
        return _metrics.REGISTRY.gauge(f"{self.namespace}.pool.shed_rate").labels(
            pool=self.pool
        )

    def _account_shed(self, reason: str) -> None:
        self.n_shed += 1
        self.shed_counts[reason] = self.shed_counts.get(reason, 0) + 1
        if _metrics.COLLECT:
            self._counter("shed").labels(reason=reason).inc()

    def _update_shed_gauge(self) -> None:
        if _metrics.COLLECT and self.n_seen:
            self.shed_gauge().set(self.n_shed / self.n_seen)

    # -- policy surface -------------------------------------------------

    def __len__(self) -> int:
        return len(self.batcher)

    @property
    def queue_depth(self) -> int:
        return len(self.batcher)

    def offer(self, request: Request, earliest_free_s: float) -> AdmissionDecision:
        """Admission at ``request``'s arrival instant.

        ``earliest_free_s`` is the pool's earliest (possibly estimated)
        replica-free time on the *caller's* clock — the simulator passes
        the completion heap's head, the gateway its per-replica
        busy-until estimates.  Enqueues on admit; accounts the shed on
        reject.  The caller owns the outcome record.
        """
        decision = self.admission.assess(request, len(self.batcher), earliest_free_s)
        self.n_seen += 1
        if _metrics.COLLECT:
            self._counter("requests").inc()
            _metrics.REGISTRY.histogram(f"{self.namespace}.queue_depth").observe(
                len(self.batcher)
            )
        if decision.admitted:
            self.batcher.enqueue(request)
            if _metrics.COLLECT:
                self._counter("admitted").inc()
        else:
            self._account_shed(SHED_ADMISSION)
        self._update_shed_gauge()
        return decision

    def dispatch_due(self, earliest_free_s: float) -> float | None:
        """When the head batch should dispatch, or ``None`` on empty queue.

        A full head batch is due the instant its last member arrived; a
        partial one at the oldest request's ``max_wait_s`` flush.  Either
        way a batch cannot leave before a replica is free, so the result
        is lower-bounded by ``earliest_free_s``.
        """
        if not len(self.batcher):
            return None
        if self.batcher.full:
            return max(earliest_free_s, self.batcher.fill_time())
        return max(earliest_free_s, self.batcher.flush_at())

    def cut_batch(self, dispatch_s: float) -> tuple[list[Request], list[Request]]:
        """Pop the head batch at ``dispatch_s`` → ``(live, expired)``.

        Requests whose deadline passed while queued are accounted as
        ``shed_deadline`` and returned in ``expired`` so the driver can
        record outcomes / fail their futures.
        """
        live: list[Request] = []
        expired: list[Request] = []
        for req in self.batcher.take():
            if req.deadline_s < dispatch_s:
                expired.append(req)
                self._account_shed(SHED_DEADLINE)
            else:
                live.append(req)
        self._update_shed_gauge()
        return live, expired

    def shed_queue(self, reason: str) -> list[Request]:
        """Drain the whole queue, shedding every request with ``reason``
        (graceful-shutdown accounting: nothing disappears silently)."""
        shed: list[Request] = []
        while len(self.batcher):
            shed.extend(self.batcher.take())
        for _ in shed:
            self._account_shed(reason)
        self._update_shed_gauge()
        return shed
