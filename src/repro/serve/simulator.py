"""Discrete-event serving simulation over measured latency profiles.

The simulator composes the serving pieces — seeded arrivals, SLO
admission control, the dynamic batcher, and a pool of replica workers —
into one event loop on the modeled clock.  Per-batch service times come
from a :class:`~repro.serve.latency.LatencyProfile` (measured ``no_grad``
forwards of the real model), so the run is a *pure function* of
``(arrival times, profile, config)``: two runs with the same inputs
produce identical request timelines, shed decisions, and digests — the
serving analogue of the fault injector's determinism guarantee.

Events processed in strict time order:

* **arrival** — the admission controller predicts the request's
  completion from the queue depth and replica occupancy; predicted SLO
  misses are shed immediately (``shed_admission``).
* **dispatch** — when a replica is free and the batcher's head batch is
  full (or its oldest request hits ``max_wait_s``), up to
  ``max_batch_size`` requests leave the queue; any whose deadline already
  passed are shed (``shed_deadline``), the rest ride one measured-latency
  forward together.

Latency quantiles, throughput, queue depth and shed rate flow through
:mod:`repro.observability` under the ``serve.*`` namespace.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass, field

import numpy as np

from ..observability import metrics as _metrics
from ..observability import trace as _trace
from .admission import SHED_ADMISSION, SHED_DEADLINE, AdmissionController
from .batcher import BatchPolicy, Request
from .core import ServingCore
from .latency import LatencyProfile

__all__ = ["ServeConfig", "BatchRecord", "RequestOutcome", "ServeReport", "ServeSimulator"]

COMPLETED = "completed"


@dataclass(frozen=True)
class ServeConfig:
    """Serving-side knobs: the SLO, the batcher, and the replica pool."""

    slo_s: float
    policy: BatchPolicy = field(default_factory=BatchPolicy)
    replicas: int = 1

    def __post_init__(self) -> None:
        if self.slo_s <= 0:
            raise ValueError("slo_s must be positive")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")


@dataclass(frozen=True)
class BatchRecord:
    """One dispatched batch on the modeled clock."""

    index: int
    replica: int
    dispatch_s: float
    size: int
    service_s: float
    completion_s: float

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "replica": self.replica,
            "dispatch_s": round(self.dispatch_s, 9),
            "size": self.size,
            "service_s": round(self.service_s, 9),
            "completion_s": round(self.completion_s, 9),
        }


@dataclass
class RequestOutcome:
    """Final status of one request: served (latency, SLO hit/miss) or shed."""

    rid: int
    arrival_s: float
    status: str  # completed | shed_admission | shed_deadline
    completion_s: float | None = None
    latency_s: float | None = None
    slo_ok: bool | None = None
    batch: int | None = None

    def as_dict(self) -> dict:
        out = {"rid": self.rid, "arrival_s": round(self.arrival_s, 9), "status": self.status}
        if self.status == COMPLETED:
            out.update(
                completion_s=round(self.completion_s, 9),
                latency_s=round(self.latency_s, 9),
                slo_ok=bool(self.slo_ok),
                batch=self.batch,
            )
        return out


@dataclass
class ServeReport:
    """Everything one simulation produced, with derived SLO accounting."""

    duration_s: float
    slo_s: float
    outcomes: list[RequestOutcome]
    batches: list[BatchRecord]
    queue_depths: list[int]  # sampled at every arrival, post-decision
    replicas: int = 1

    # -- derived --------------------------------------------------------

    @property
    def n_requests(self) -> int:
        return len(self.outcomes)

    @property
    def n_completed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == COMPLETED)

    @property
    def n_shed(self) -> int:
        return self.n_requests - self.n_completed

    def shed_by_reason(self) -> dict[str, int]:
        # The two simulator reasons are always present (baselines key on
        # them); extra reasons — e.g. the gateway's shutdown drain — get
        # counted under their own key rather than raising.
        out = {SHED_ADMISSION: 0, SHED_DEADLINE: 0}
        for o in self.outcomes:
            if o.status != COMPLETED:
                reason = o.status.removeprefix("shed_")
                out[reason] = out.get(reason, 0) + 1
        return out

    @property
    def shed_rate(self) -> float:
        return self.n_shed / self.n_requests if self.n_requests else 0.0

    @property
    def slo_miss_rate(self) -> float:
        """Completed-but-late fraction (shed requests counted separately)."""
        done = self.n_completed
        if not done:
            return 0.0
        return sum(1 for o in self.outcomes if o.status == COMPLETED and not o.slo_ok) / done

    @property
    def goodput_rps(self) -> float:
        """Completed-within-SLO requests per offered second."""
        ok = sum(1 for o in self.outcomes if o.status == COMPLETED and o.slo_ok)
        return ok / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.n_completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def busy_s(self) -> float:
        """Total replica-seconds spent inside measured forward passes."""
        return sum(b.service_s for b in self.batches)

    @property
    def utilization(self) -> float:
        """Busy fraction of the replica pool over the run — the
        autoscaler's scale-down signal (shed rate is its scale-up one)."""
        wall = self.duration_s * self.replicas
        return min(self.busy_s / wall, 1.0) if wall > 0 else 0.0

    def latency_quantile(self, q: float) -> float:
        xs = [o.latency_s for o in self.outcomes if o.status == COMPLETED]
        if not xs:
            return 0.0
        return float(np.quantile(xs, q))

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.size for b in self.batches) / len(self.batches)

    def summary(self) -> dict:
        shed = self.shed_by_reason()
        out = {
            "duration_s": self.duration_s,
            "slo_ms": round(self.slo_s * 1e3, 6),
            "n_requests": self.n_requests,
            "n_completed": self.n_completed,
            "n_shed_admission": shed[SHED_ADMISSION],
            "n_shed_deadline": shed[SHED_DEADLINE],
        }
        # Extra reasons (gateway shutdown drains) appear only when present,
        # so simulator summaries keep their exact baseline key set.
        for reason in sorted(shed):
            if reason not in (SHED_ADMISSION, SHED_DEADLINE):
                out[f"n_shed_{reason}"] = shed[reason]
        out |= {
            "shed_rate": round(self.shed_rate, 6),
            "slo_miss_rate": round(self.slo_miss_rate, 6),
            "utilization": round(self.utilization, 6),
            "throughput_rps": round(self.throughput_rps, 6),
            "goodput_rps": round(self.goodput_rps, 6),
            "p50_ms": round(self.latency_quantile(0.50) * 1e3, 6),
            "p95_ms": round(self.latency_quantile(0.95) * 1e3, 6),
            "p99_ms": round(self.latency_quantile(0.99) * 1e3, 6),
            "n_batches": len(self.batches),
            "mean_batch_size": round(self.mean_batch_size, 6),
            "queue_depth_max": max(self.queue_depths, default=0),
            "timeline_digest": self.digest(),
        }
        return out

    def timeline(self) -> list[dict]:
        return [o.as_dict() for o in self.outcomes]

    def digest(self) -> str:
        """Stable hash of the full request/batch timeline.

        Two runs are behaviorally identical iff their digests match —
        the CLI prints it and the determinism tests compare it.
        """
        payload = json.dumps(
            {
                "timeline": self.timeline(),
                "batches": [b.as_dict() for b in self.batches],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


class ServeSimulator:
    """One replica pool serving one model variant under offered load.

    ``pool`` names this replica pool in the observability registry: the
    run maintains *live* ``serve.pool.shed_rate{pool=...}`` and
    ``serve.pool.utilization{pool=...}`` gauges, updated at every
    admission decision and batch dispatch rather than once at the end —
    they are the autoscaler's input signal, and at run end they equal the
    report summary exactly.
    """

    def __init__(self, profile: LatencyProfile, config: ServeConfig, pool: str = "pool0"):
        self.profile = profile
        self.config = config
        self.pool = pool
        self.admission = AdmissionController(profile, config.policy)

    def run(self, arrival_times, duration_s: float | None = None) -> ServeReport:
        """Simulate serving every arrival; returns the full report.

        ``duration_s`` normalizes throughput (defaults to the later of the
        last arrival and the last completion).
        """
        cfg = self.config
        arrivals = [float(t) for t in arrival_times]
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ValueError("arrival times must be sorted")
        requests = [Request(i, t, t + cfg.slo_s) for i, t in enumerate(arrivals)]
        outcomes: list[RequestOutcome | None] = [None] * len(requests)
        # All policy decisions (admit/shed, batch cut points) and their
        # request/shed metrics live in the shared core; the simulator owns
        # the modeled clock, the replica heap, and the outcome records —
        # exactly the split the live gateway mirrors on the event loop.
        core = ServingCore(self.profile, cfg, pool=self.pool, namespace="serve")
        # Replica pool as a min-heap of (free_at, replica_id).
        pool = [(0.0, r) for r in range(cfg.replicas)]
        heapq.heapify(pool)
        batches: list[BatchRecord] = []
        queue_depths: list[int] = []
        collect = _metrics.COLLECT
        last_completion = 0.0
        # Live busy-fraction signal, updated as the modeled clock advances
        # (the core keeps the shed-rate twin up to date itself).
        util_gauge = None
        busy_s = 0.0
        if collect:
            util_gauge = _metrics.REGISTRY.gauge("serve.pool.utilization").labels(
                pool=self.pool
            )
            _metrics.REGISTRY.gauge("serve.pool.replicas").labels(pool=self.pool).set(
                cfg.replicas
            )

        i, n = 0, len(requests)
        with _trace.span("serve.run", requests=n, replicas=cfg.replicas):
            while i < n or len(core):
                dispatch_s = core.dispatch_due(pool[0][0])
                # Arrivals strictly before the next dispatch are processed
                # first — the admission estimate must see the queue state
                # as it stands at their arrival instant.
                if i < n and (dispatch_s is None or requests[i].arrival_s < dispatch_s):
                    req = requests[i]
                    i += 1
                    decision = core.offer(req, pool[0][0])
                    if not decision.admitted:
                        outcomes[req.rid] = RequestOutcome(
                            req.rid, req.arrival_s, f"shed_{SHED_ADMISSION}"
                        )
                    queue_depths.append(len(core))
                    continue

                # Dispatch the head batch at ``dispatch_s``.
                live, expired = core.cut_batch(dispatch_s)
                for req in expired:
                    outcomes[req.rid] = RequestOutcome(
                        req.rid, req.arrival_s, f"shed_{SHED_DEADLINE}"
                    )
                if not live:
                    continue
                service = self.profile.latency(len(live))
                completion = dispatch_s + service
                free_at, replica = heapq.heapreplace(pool, (completion, pool[0][1]))
                record = BatchRecord(
                    len(batches), replica, dispatch_s, len(live), service, completion
                )
                batches.append(record)
                last_completion = max(last_completion, completion)
                with _trace.span(
                    "serve.batch",
                    batch=record.index,
                    size=record.size,
                    dispatch_s=record.dispatch_s,
                    service_s=record.service_s,
                ):
                    for req in live:
                        outcomes[req.rid] = RequestOutcome(
                            req.rid,
                            req.arrival_s,
                            COMPLETED,
                            completion_s=completion,
                            latency_s=completion - req.arrival_s,
                            slo_ok=completion <= req.deadline_s,
                            batch=record.index,
                        )
                busy_s += service
                if collect:
                    util_gauge.set(
                        min(busy_s / (last_completion * cfg.replicas), 1.0)
                        if last_completion > 0
                        else 0.0
                    )
                    _metrics.REGISTRY.counter("serve.batches").inc()
                    _metrics.REGISTRY.counter("serve.completed").inc(len(live))
                    _metrics.REGISTRY.histogram("serve.batch_size").observe(len(live))
                    for req in live:
                        _metrics.REGISTRY.histogram("serve.latency_ms").observe(
                            (completion - req.arrival_s) * 1e3
                        )

        horizon = duration_s
        if horizon is None:
            horizon = max([last_completion, *arrivals[-1:]], default=0.0)
        report = ServeReport(
            duration_s=float(horizon),
            slo_s=cfg.slo_s,
            outcomes=[o for o in outcomes if o is not None],
            batches=batches,
            queue_depths=queue_depths,
            replicas=cfg.replicas,
        )
        if collect:
            # Final gauge state equals the run summary exactly (the live
            # updates above converge to these values).
            core.shed_gauge().set(report.shed_rate)
            util_gauge.set(report.utilization)
            _metrics.REGISTRY.gauge("serve.shed_rate").set(report.shed_rate)
            _metrics.REGISTRY.gauge("serve.throughput_rps").set(report.throughput_rps)
            _metrics.REGISTRY.gauge("serve.p95_ms").set(
                report.latency_quantile(0.95) * 1e3
            )
        return report
