"""Model registry: named builders, variant materialization, cost accounting.

The serving layer's source of truth for *what* can be served: every model
in the zoo registers a builder, and :meth:`ModelRegistry.materialize`
turns ``(name, variant)`` into a ready :class:`ServedModel` — the
``full`` variant as trained, or the ``factorized`` variant rebuilt
through the paper's truncated-SVD hybrid conversion.  Each materialized
variant reports its parameter count and measured per-example MACs, which
is exactly the quantity Pufferfish permanently shrinks (unlike
gradient-compression schemes, which leave the served model full-rank).

Checkpoints saved by :func:`repro.utils.save_model` /
:func:`~repro.utils.save_checkpoint` load into either variant; for
``factorized`` the architecture is hybridized first so a checkpoint from
:class:`~repro.core.PufferfishTrainer` drops straight in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..observability import metrics as _metrics
from .inputs import InputSpec

__all__ = [
    "VARIANTS",
    "ServedModel",
    "ModelRegistry",
    "build_model",
    "input_spec_for",
    "hybrid_config_for",
    "default_registry",
    "IMAGE_MODELS",
    "SEQUENCE_MODELS",
]

VARIANTS = ("full", "factorized")

# The conv models take NCHW CIFAR-shaped images (MLP flattens them
# internally); the sequence zoo declares its own token specs below.
INPUT_SHAPE = (3, 32, 32)

IMAGE_MODELS = ("mlp", "vgg11", "vgg19", "resnet18", "resnet50", "wideresnet50")
SEQUENCE_MODELS = ("lstm", "transformer")

# Serving-scale sequence-model knobs: vocab and sequence length are fixed
# per model (they are task properties, not capacity knobs); ``width``
# scales the embedding/d_model dimension like the conv width multiplier.
_SEQ_VOCAB = 50
_LSTM_SEQ_LEN = 16
_TRANSFORMER_SEQ_LEN = 12
_BASE_DIM = 128  # width 1.0 embedding / d_model


def _seq_dim(width: float, multiple_of: int = 4) -> int:
    """Width-scaled embedding dim, floored and rounded for head splits."""
    dim = max(multiple_of, int(_BASE_DIM * width))
    return dim - dim % multiple_of


def build_model(name: str, num_classes: int = 4, width: float = 0.25):
    """Construct a zoo model by name (the CLI's model table lives here).

    For the sequence models ``num_classes`` is ignored (their output space
    is the fixed vocabulary) and ``width`` scales the hidden dimension.
    """
    from .. import models

    if name == "mlp":
        return models.MLP(3 * 32 * 32, [256, 128], num_classes)
    if name == "vgg11":
        return models.vgg11(num_classes=num_classes, width_mult=width)
    if name == "vgg19":
        return models.vgg19(num_classes=num_classes, width_mult=width)
    if name == "resnet18":
        return models.resnet18(num_classes=num_classes, width_mult=width)
    if name == "resnet50":
        return models.resnet50(num_classes=num_classes, width_mult=width, small_input=True)
    if name == "wideresnet50":
        return models.wide_resnet50_2(
            num_classes=num_classes, width_mult=width, small_input=True
        )
    if name == "lstm":
        return models.LSTMLanguageModel(_SEQ_VOCAB, embed_dim=_seq_dim(width))
    if name == "transformer":
        return models.Seq2SeqTransformer(
            _SEQ_VOCAB,
            d_model=_seq_dim(width),
            n_heads=4,
            num_layers=2,
            max_len=4 * _TRANSFORMER_SEQ_LEN,
        )
    raise ValueError(f"unknown model {name!r}")


def input_spec_for(name: str) -> InputSpec:
    """The example-input metadata for a zoo model (see :mod:`.inputs`)."""
    if name in IMAGE_MODELS:
        return InputSpec("image", INPUT_SHAPE)
    if name == "lstm":
        return InputSpec("tokens", (_LSTM_SEQ_LEN,), vocab_size=_SEQ_VOCAB)
    if name == "transformer":
        return InputSpec("seq2seq", (_TRANSFORMER_SEQ_LEN,), vocab_size=_SEQ_VOCAB)
    raise ValueError(f"unknown model {name!r}")


def hybrid_config_for(
    name: str,
    model,
    rank_ratio: float = 0.25,
    rank_overrides: dict | None = None,
):
    """The per-model hybrid factorization config (paper Section 3.3).

    ``rank_overrides`` (path → exact rank) is merged on top of the model's
    paper config, so allocator- or lifecycle-chosen per-layer ranks reuse
    the same skip rules (first conv, last FC, full-rank prefixes) as the
    global-ratio baseline.
    """
    from dataclasses import replace

    from .. import models
    from ..core import FactorizationConfig

    if name == "vgg19":
        config = models.vgg19_hybrid_config(rank_ratio)
    elif name == "vgg11":
        config = models.vgg11_hybrid_config(rank_ratio)
    elif name == "resnet18":
        config = models.resnet18_hybrid_config(model, rank_ratio)
    elif name in ("resnet50", "wideresnet50"):
        config = models.resnet50_hybrid_config(model, rank_ratio)
    elif name == "lstm":
        config = models.lstm_lm_hybrid_config(rank_ratio)
    elif name == "transformer":
        config = models.transformer_hybrid_config(rank_ratio)
    else:
        config = FactorizationConfig(rank_ratio=rank_ratio)
    if rank_overrides:
        config = replace(
            config,
            rank_overrides={**config.rank_overrides, **rank_overrides},
        )
    return config


@dataclass
class ServedModel:
    """A materialized model variant plus its serving-relevant costs."""

    name: str
    variant: str
    model: object
    params: int
    macs: int
    input_shape: tuple[int, ...]
    factorization: dict | None = None  # params_before/after, compression, ...
    input_spec: InputSpec | None = None
    # Promotion provenance (checkpoint version, parent run, rank-map
    # digest, ...) when materialized from a promoted lifecycle artifact.
    lineage: dict | None = None

    def __post_init__(self) -> None:
        if self.input_spec is None:
            self.input_spec = InputSpec("image", self.input_shape)

    def memory_bytes(self, bytes_per_param: int = 4) -> int:
        """Resident weight footprint of one replica (fp32 by default) —
        the memory cost the cluster placement engine bin-packs."""
        return self.params * bytes_per_param

    def describe(self) -> dict:
        out = {
            "name": self.name,
            "variant": self.variant,
            "params": self.params,
            "macs": self.macs,
            "input": self.input_spec.to_dict(),
        }
        if self.factorization:
            out["factorization"] = dict(self.factorization)
        if self.lineage:
            out["lineage"] = dict(self.lineage)
        return out


class ModelRegistry:
    """Name → builder table with cached variant materialization.

    Materializing the factorized variant pays the one-time truncated SVD,
    so repeated lookups (rate sweeps, CLI reruns in one process) hit the
    cache; the cache key covers every argument that changes the result.
    """

    def __init__(self):
        self._builders: dict[str, object] = {}
        self._cache: dict[tuple, ServedModel] = {}

    def register(self, name: str, builder) -> None:
        self._builders[name] = builder

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._builders))

    def materialize(
        self,
        name: str,
        variant: str = "full",
        *,
        num_classes: int = 4,
        width: float = 0.25,
        rank_ratio: float = 0.25,
        rank_overrides: dict | None = None,
        seed: int = 0,
        checkpoint=None,
    ) -> ServedModel:
        """Build (or fetch) one ready-to-serve model variant.

        ``rank_overrides`` threads allocator-chosen per-layer ranks into
        the factorized architecture.  ``checkpoint`` may be any
        :func:`repro.utils.save_model` / ``save_checkpoint`` file — a
        *promoted lifecycle artifact* carries its rank map and lineage in
        the metadata, so the matching per-layer hybrid is rebuilt
        automatically before the weights load and the lineage is exposed
        on the served model.
        """
        if name not in self._builders:
            raise ValueError(f"unknown model {name!r}; registered: {self.names()}")
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
        key = (name, variant, num_classes, width, rank_ratio, seed,
               tuple(sorted(rank_overrides.items())) if rank_overrides else None,
               str(checkpoint) if checkpoint is not None else None)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        from ..core import build_hybrid
        from ..metrics import measure_macs
        from ..utils import set_seed

        lineage = None
        if checkpoint is not None:
            from ..utils import peek_checkpoint

            lineage = peek_checkpoint(checkpoint).get("lifecycle")
            if lineage and variant == "factorized" and not rank_overrides:
                # The artifact knows its own architecture: adopt its
                # per-layer rank map so the state dict matches exactly.
                rank_overrides = {
                    path: int(r) for path, r in lineage.get("rank_map", {}).items()
                }

        set_seed(seed)
        model = self._builders[name](num_classes, width)
        factorization = None
        if variant == "factorized":
            model, report = build_hybrid(
                model,
                hybrid_config_for(name, model, rank_ratio, rank_overrides),
            )
            factorization = {
                "params_before": report.params_before,
                "params_after": report.params_after,
                "compression": report.compression,
                "n_factorized": len(report.replaced),
            }
        if checkpoint is not None:
            from ..utils import load_model

            load_model(model, checkpoint)
        model.eval()
        spec = input_spec_for(name)
        example = spec.example_batch(1, np.random.default_rng(0))
        served = ServedModel(
            name=name,
            variant=variant,
            model=model,
            params=int(model.num_parameters()),
            macs=int(measure_macs(model, *example)),
            input_shape=spec.shape,
            factorization=factorization,
            input_spec=spec,
            # Expose digests, not the full rank map — /v1/model stays small.
            lineage={k: v for k, v in lineage.items() if k != "rank_map"}
            if lineage
            else None,
        )
        self._cache[key] = served
        if _metrics.COLLECT:
            _metrics.REGISTRY.counter("serve.models_materialized").labels(
                variant=variant
            ).inc()
        return served


def default_registry() -> ModelRegistry:
    """A fresh registry holding the full model zoo (conv + sequence)."""
    registry = ModelRegistry()
    for name in IMAGE_MODELS + SEQUENCE_MODELS:
        registry.register(name, lambda c, w, _n=name: build_model(_n, c, w))
    return registry
