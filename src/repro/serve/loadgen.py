"""Seeded open-loop load generation for the serving simulator.

Request arrivals are drawn window by window with the same counter-keyed
RNG discipline as :mod:`repro.distributed.faults`: every window's draws
come from a generator keyed on ``(seed, kind, window_index)``, so a fixed
seed produces the *same* arrival timeline regardless of how much of it a
caller consumes, how many replicas serve it, or what ran before.  Two
runs with the same :class:`ArrivalSpec` are byte-identical.

Two arrival processes:

* ``poisson`` — a homogeneous Poisson process at ``rate_rps`` (the
  classic open-loop load model: clients fire independently of server
  state).
* ``bursty``  — a two-phase Markov-modulated Poisson process: each
  generation window is independently a *burst* window with probability
  ``burst_prob``, during which the rate is ``burst_factor``× the normal
  phase.  The normal-phase rate is scaled down so the long-run mean
  offered load still equals ``rate_rps`` — burstiness redistributes the
  load in time, it does not add more of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ArrivalSpec", "generate_arrivals"]

PROCESSES = ("poisson", "bursty")

# Stable event-kind ids mixed into the RNG key (same discipline as
# repro.distributed.faults._KIND_IDS).  Appending new kinds is fine;
# renumbering existing ones would silently change every seeded scenario.
# ``payload`` keys the per-request payload seeds drawn by the gateway
# load-testing client (repro.gateway.client.build_trace).
_KIND_IDS = {"window": 1, "payload": 2}


@dataclass(frozen=True)
class ArrivalSpec:
    """Declarative description of an offered-load scenario.

    Attributes
    ----------
    rate_rps: long-run mean arrival rate (requests/second).
    duration_s: length of the generated timeline.
    process: ``poisson`` or ``bursty``.
    seed: fully determines the timeline.
    window_s: generation granularity — each window's draws are
        independently keyed, so the timeline is query-order independent.
    burst_factor / burst_prob: bursty-process knobs (ignored for
        ``poisson``).
    """

    rate_rps: float
    duration_s: float
    process: str = "poisson"
    seed: int = 0
    window_s: float = 1.0
    burst_factor: float = 4.0
    burst_prob: float = 0.1

    def __post_init__(self) -> None:
        if self.process not in PROCESSES:
            raise ValueError(f"unknown arrival process {self.process!r}")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not 0.0 <= self.burst_prob < 1.0:
            raise ValueError("burst_prob must be in [0, 1)")

    @property
    def normal_rate_rps(self) -> float:
        """Non-burst-phase rate; equals ``rate_rps`` for ``poisson``.

        Chosen so that ``E[rate] = (1-q)·r + q·f·r = rate_rps`` for burst
        probability ``q`` and factor ``f``.
        """
        if self.process != "bursty":
            return self.rate_rps
        return self.rate_rps / (1.0 + self.burst_prob * (self.burst_factor - 1.0))


def generate_arrivals(spec: ArrivalSpec) -> np.ndarray:
    """Sorted arrival times in ``[0, duration_s)`` for ``spec``.

    Each window draws its phase, its Poisson count, and its (uniform
    order-statistic) arrival offsets from one counter-keyed generator —
    the standard construction of a Poisson process conditioned on the
    count, windowed so determinism survives partial consumption.
    """
    n_windows = int(np.ceil(spec.duration_s / spec.window_s))
    chunks: list[np.ndarray] = []
    for w in range(n_windows):
        start = w * spec.window_s
        length = min(spec.window_s, spec.duration_s - start)
        rng = np.random.default_rng((spec.seed, _KIND_IDS["window"], w))
        rate = spec.normal_rate_rps
        if spec.process == "bursty" and rng.random() < spec.burst_prob:
            rate *= spec.burst_factor
        count = rng.poisson(rate * length)
        if count:
            chunks.append(np.sort(start + rng.uniform(0.0, length, count)))
    if not chunks:
        return np.empty(0, dtype=np.float64)
    return np.concatenate(chunks)
