"""Dynamic request batching (torch-serve style).

Inference throughput on this substrate — like on a GPU — grows strongly
with batch size (one im2col + one GEMM amortizes over the whole batch),
so the server trades a bounded amount of queueing delay for it: requests
wait in a FIFO queue until either ``max_batch_size`` of them are ready or
the oldest has waited ``max_wait_s`` (the deadline flush).  Batch-size
invariance of the model outputs — asserted by the inference-parity test
suite — is what makes this transparent to clients.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

__all__ = ["Request", "BatchPolicy", "DynamicBatcher"]


@dataclass(frozen=True)
class Request:
    """One inference request on the modeled clock."""

    rid: int
    arrival_s: float
    deadline_s: float  # arrival + SLO


@dataclass(frozen=True)
class BatchPolicy:
    """Batching knobs: flush when full, or when the oldest waited too long."""

    max_batch_size: int = 8
    max_wait_s: float = 0.005

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")


class DynamicBatcher:
    """FIFO request queue with batch-full and deadline-flush triggers.

    The batcher itself is clock-free: it reports *when* the next flush is
    due (:meth:`fill_time`, :meth:`flush_at`) and the simulator — which
    owns the modeled clock — decides when to :meth:`take` a batch.  That
    split keeps the batcher reusable under any event loop.
    """

    def __init__(self, policy: BatchPolicy):
        self.policy = policy
        self._queue: deque[Request] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, request: Request) -> None:
        if self._queue and request.arrival_s < self._queue[-1].arrival_s:
            raise ValueError("requests must be enqueued in arrival order")
        self._queue.append(request)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.policy.max_batch_size

    def fill_time(self) -> float:
        """When the head batch became full (arrival of its last member).

        Only meaningful when :attr:`full`; raises otherwise.
        """
        if not self.full:
            raise ValueError("queue does not hold a full batch")
        return self._queue[self.policy.max_batch_size - 1].arrival_s

    def flush_at(self) -> float:
        """Deadline-flush time for the current head request (``inf`` when
        empty): the oldest request waits at most ``max_wait_s``."""
        if not self._queue:
            return math.inf
        return self._queue[0].arrival_s + self.policy.max_wait_s

    def take(self) -> list[Request]:
        """Pop the head batch (up to ``max_batch_size`` requests)."""
        n = min(len(self._queue), self.policy.max_batch_size)
        return [self._queue.popleft() for _ in range(n)]
