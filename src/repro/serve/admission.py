"""SLO-aware admission control: deadline-based load shedding.

An overloaded server that admits everything misses *every* deadline (the
queue grows without bound); shedding the requests that cannot possibly
meet their SLO keeps the served ones fast and makes the overload visible
as a shed rate instead of a latency collapse.  The controller estimates
each arriving request's completion time from the queue depth, the
replicas' earliest free time, and the measured per-batch service time,
and rejects it up front when the estimate already misses the deadline.

The estimate is deliberately simple (full batches, FIFO drain) — it is a
*policy*, evaluated against the ground-truth timeline by the simulator's
shed accounting, not an oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .batcher import BatchPolicy, Request
from .latency import LatencyProfile

__all__ = [
    "AdmissionDecision",
    "AdmissionController",
    "SHED_ADMISSION",
    "SHED_DEADLINE",
    "SHED_SHUTDOWN",
]

# Shed reasons, used as metric labels and timeline statuses.
SHED_ADMISSION = "admission"  # predicted SLO miss at arrival
SHED_DEADLINE = "deadline"  # expired in the queue before dispatch
SHED_SHUTDOWN = "shutdown"  # queue drained by a gateway graceful shutdown


@dataclass(frozen=True)
class AdmissionDecision:
    admitted: bool
    est_start_s: float
    est_completion_s: float

    @property
    def reason(self) -> str:
        return "ok" if self.admitted else SHED_ADMISSION


class AdmissionController:
    """Deadline-based admission for one replica pool."""

    def __init__(self, profile: LatencyProfile, policy: BatchPolicy):
        self.profile = profile
        self.policy = policy
        # Service estimate: a full batch's measured latency.  Using the
        # throughput-optimal batch would under-estimate the wait whenever
        # the batcher flushes early.
        self._service_s = profile.latency(policy.max_batch_size)

    def assess(
        self, request: Request, queue_len: int, earliest_free_s: float
    ) -> AdmissionDecision:
        """Predict ``request``'s completion given the state at its arrival.

        ``queue_len`` requests drain ahead of it in
        ``ceil(queue_len / max_batch_size)`` full batches; its own batch
        then takes one more service time.
        """
        batches_ahead = math.ceil(queue_len / self.policy.max_batch_size)
        est_start = max(request.arrival_s, earliest_free_s) + batches_ahead * self._service_s
        est_completion = est_start + self._service_s
        return AdmissionDecision(
            admitted=est_completion <= request.deadline_s,
            est_start_s=est_start,
            est_completion_s=est_completion,
        )
