"""Input-spec metadata: what one example looks like, per zoo model.

The original serving registry assumed every model eats NCHW CIFAR-shaped
images, which locked the LSTM/Transformer zoo out of the serving stack
(their inputs are integer token sequences, and the seq2seq model takes
*two* of them).  An :class:`InputSpec` records the modality and shape of
one example and knows how to synthesize a batch of them, so
:func:`~repro.serve.latency.measure_latency_profile` and the registry's
MACs accounting work for any registered architecture.

Three kinds cover the zoo:

* ``image``   — float32 batch of shape ``(B, *shape)`` wrapped in a
  :class:`~repro.tensor.Tensor` (conv/MLP models);
* ``tokens``  — int64 token matrix of shape ``(T, B)`` (time-major, the
  LSTM LM convention); ``shape == (T,)``;
* ``seq2seq`` — a ``(src, tgt)`` pair of int64 ``(B, T)`` matrices (the
  encoder-decoder Transformer convention); ``shape == (T,)``.

Token draws avoid index 0 so a model's ``padding_idx`` never receives
accidental pad tokens during measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["InputSpec", "INPUT_KINDS"]

INPUT_KINDS = ("image", "tokens", "seq2seq")


@dataclass(frozen=True)
class InputSpec:
    """Shape/modality of one example input for a served model.

    ``shape`` is per-example: channel-height-width for images, sequence
    length for token models.  ``vocab_size`` bounds the integer draws for
    the token kinds (required there, meaningless for images).
    """

    kind: str
    shape: tuple[int, ...]
    vocab_size: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in INPUT_KINDS:
            raise ValueError(f"unknown input kind {self.kind!r}; expected {INPUT_KINDS}")
        if not self.shape or any(int(d) <= 0 for d in self.shape):
            raise ValueError("shape must be non-empty with positive dims")
        if self.kind in ("tokens", "seq2seq"):
            if len(self.shape) != 1:
                raise ValueError(f"{self.kind} spec needs shape (seq_len,)")
            if self.vocab_size is None or self.vocab_size < 2:
                raise ValueError(f"{self.kind} spec needs vocab_size >= 2")

    def example_batch(self, batch: int, rng: np.random.Generator) -> tuple:
        """Positional args for one ``model(*args)`` call of ``batch`` examples."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if self.kind == "image":
            from ..tensor import Tensor

            x = rng.standard_normal((batch, *self.shape)).astype(np.float32)
            return (Tensor(x),)
        t = int(self.shape[0])
        if self.kind == "tokens":
            # Time-major (T, B), matching LSTMLanguageModel.forward.
            return (rng.integers(1, self.vocab_size, size=(t, batch)),)
        src = rng.integers(1, self.vocab_size, size=(batch, t))
        tgt = rng.integers(1, self.vocab_size, size=(batch, t))
        return (src, tgt)

    # -- serialization (ServedModel.describe / CLI output) --------------

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "shape": list(self.shape)}
        if self.vocab_size is not None:
            out["vocab_size"] = self.vocab_size
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "InputSpec":
        return cls(
            kind=str(data["kind"]),
            shape=tuple(int(d) for d in data["shape"]),
            vocab_size=(int(data["vocab_size"]) if data.get("vocab_size") else None),
        )
