"""Measured per-batch inference latency profiles.

Mirrors the measured-compute + modeled-cost design of
:mod:`repro.distributed`: the serving simulator runs entirely on a
modeled clock, but every batch's service time comes from *measured*
``no_grad`` forward passes of the real model on this host, captured once
into a :class:`LatencyProfile` (a small batch-size → seconds table with
linear interpolation between grid points).

Profiles serialize to JSON so a CLI run — and the CI-gated benchmark
scenario — can be replayed bit-identically on any machine: given the
same profile, arrival seed and config, the simulator's request timeline
and shed decisions are a pure function of its inputs.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..observability import metrics as _metrics
from ..observability import trace as _trace
from ..tensor import no_grad

__all__ = ["LatencyProfile", "measure_latency_profile", "DEFAULT_BATCH_SIZES"]

DEFAULT_BATCH_SIZES = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class LatencyProfile:
    """Batch-size → forward-seconds table for one model variant.

    ``batch_sizes`` must be strictly ascending; ``latency_s`` aligns with
    it.  ``meta`` carries provenance (model name, variant, host) and is
    round-tripped through JSON untouched.
    """

    batch_sizes: tuple[int, ...]
    latency_s: tuple[float, ...]
    meta: tuple[tuple[str, str], ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.batch_sizes) != len(self.latency_s) or not self.batch_sizes:
            raise ValueError("batch_sizes and latency_s must align and be non-empty")
        if any(b <= 0 for b in self.batch_sizes) or any(
            a >= b for a, b in zip(self.batch_sizes, self.batch_sizes[1:])
        ):
            raise ValueError("batch_sizes must be positive and strictly ascending")
        if any(t <= 0 for t in self.latency_s):
            raise ValueError("latencies must be positive")

    # -- lookup ---------------------------------------------------------

    def latency(self, batch: int) -> float:
        """Service seconds for a batch of ``batch`` requests.

        Linear interpolation between grid points; beyond the largest
        measured batch, extrapolates with the marginal per-item slope of
        the last segment (per-item cost is flat once the GEMMs saturate).
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        bs, lat = self.batch_sizes, self.latency_s
        if batch <= bs[0]:
            return lat[0]
        if batch >= bs[-1]:
            if len(bs) == 1:
                return lat[0] * batch / bs[0]
            slope = (lat[-1] - lat[-2]) / (bs[-1] - bs[-2])
            return lat[-1] + max(slope, 0.0) * (batch - bs[-1])
        return float(np.interp(batch, bs, lat))

    def throughput_rps(self, batch: int) -> float:
        return batch / self.latency(batch)

    def best_batch(self) -> int:
        """Grid batch size with the highest service throughput."""
        return max(self.batch_sizes, key=self.throughput_rps)

    def capacity_rps(self) -> float:
        """Peak service rate of one replica (requests/second at the best
        batch size) — the knee of the throughput/latency crossover."""
        return self.throughput_rps(self.best_batch())

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "batch_sizes": list(self.batch_sizes),
            "latency_s": list(self.latency_s),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyProfile":
        return cls(
            batch_sizes=tuple(int(b) for b in data["batch_sizes"]),
            latency_s=tuple(float(t) for t in data["latency_s"]),
            meta=tuple(sorted((str(k), str(v)) for k, v in data.get("meta", {}).items())),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "LatencyProfile":
        return cls.from_dict(json.loads(Path(path).read_text()))


def measure_latency_profile(
    model,
    input_spec,
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    repeats: int = 3,
    warmup: int = 1,
    meta: dict | None = None,
) -> LatencyProfile:
    """Time real ``no_grad`` eval-mode forwards at each batch size.

    ``input_spec`` is either an :class:`~repro.serve.inputs.InputSpec`
    (any modality — images, token sequences, seq2seq pairs) or a plain
    per-example shape tuple, which is treated as an image spec for
    backward compatibility.

    Best-of-``repeats`` per batch size (minimum is the standard estimator
    for a noise-floored quantity).  The model is put in eval mode so
    dropout/BN behave as they will in serving, and the whole measurement
    runs under ``no_grad`` — no autograd graph is built, which the
    eval-path test suite asserts engine-wide.
    """
    from .inputs import InputSpec

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if not isinstance(input_spec, InputSpec):
        input_spec = InputSpec("image", tuple(int(d) for d in input_spec))
    model.eval()
    rng = np.random.default_rng(0)
    latencies: list[float] = []
    with no_grad():
        for b in batch_sizes:
            args = input_spec.example_batch(b, rng)
            with _trace.span("serve.measure", batch=b):
                for _ in range(warmup):
                    model(*args)
                best = float("inf")
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    model(*args)
                    best = min(best, time.perf_counter() - t0)
            latencies.append(best)
            if _metrics.COLLECT:
                _metrics.REGISTRY.histogram("serve.measured_forward_ms").observe(best * 1e3)
    meta_items = tuple(sorted((str(k), str(v)) for k, v in (meta or {}).items()))
    return LatencyProfile(tuple(batch_sizes), tuple(latencies), meta_items)
