"""SLO-aware inference serving over full-rank and factorized models.

The serving subsystem quantifies what Pufferfish's permanently smaller
models buy at inference time: a model registry materializes ``full`` or
``factorized`` variants of any zoo model (params/MACs accounted per
variant), replica workers take their per-batch service times from
*measured* ``no_grad`` forward passes, and a discrete-event simulator
drives them with seeded Poisson/bursty offered load through a dynamic
batcher and deadline-based admission control.

Pieces (each usable standalone):

* :mod:`repro.serve.registry`  — named builders → :class:`ServedModel`
  variants with params/MACs accounting and checkpoint loading.
* :mod:`repro.serve.latency`   — measured :class:`LatencyProfile`
  (batch size → forward seconds), JSON round-trip for replayable runs.
* :mod:`repro.serve.loadgen`   — counter-keyed seeded arrival processes
  (Poisson / bursty), same RNG discipline as the fault injector.
* :mod:`repro.serve.batcher`   — torch-serve-style dynamic batching
  (``max_batch_size`` + ``max_wait_ms`` deadline flush).
* :mod:`repro.serve.admission` — SLO-aware deadline shedding.
* :mod:`repro.serve.simulator` — the event loop; emits per-request
  timelines, shed accounting and ``serve.*`` observability metrics.

Typical use::

    from repro.serve import (
        ArrivalSpec, BatchPolicy, ServeConfig, ServeSimulator,
        default_registry, generate_arrivals, measure_latency_profile,
    )

    served = default_registry().materialize("vgg19", "factorized", width=0.25)
    profile = measure_latency_profile(served.model, served.input_spec)
    sim = ServeSimulator(profile, ServeConfig(slo_s=0.15, policy=BatchPolicy(16, 0.01)))
    report = sim.run(generate_arrivals(ArrivalSpec(rate_rps=300, duration_s=10, seed=0)))
    print(report.summary())
"""

from .admission import (
    SHED_ADMISSION,
    SHED_DEADLINE,
    SHED_SHUTDOWN,
    AdmissionController,
    AdmissionDecision,
)
from .batcher import BatchPolicy, DynamicBatcher, Request
from .core import ServingCore
from .inputs import INPUT_KINDS, InputSpec
from .latency import DEFAULT_BATCH_SIZES, LatencyProfile, measure_latency_profile
from .loadgen import ArrivalSpec, generate_arrivals
from .registry import (
    IMAGE_MODELS,
    SEQUENCE_MODELS,
    VARIANTS,
    ModelRegistry,
    ServedModel,
    build_model,
    default_registry,
    hybrid_config_for,
    input_spec_for,
)
from .simulator import BatchRecord, RequestOutcome, ServeConfig, ServeReport, ServeSimulator

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "SHED_ADMISSION",
    "SHED_DEADLINE",
    "SHED_SHUTDOWN",
    "ServingCore",
    "ArrivalSpec",
    "generate_arrivals",
    "BatchPolicy",
    "DynamicBatcher",
    "Request",
    "InputSpec",
    "INPUT_KINDS",
    "LatencyProfile",
    "DEFAULT_BATCH_SIZES",
    "measure_latency_profile",
    "VARIANTS",
    "IMAGE_MODELS",
    "SEQUENCE_MODELS",
    "ModelRegistry",
    "ServedModel",
    "build_model",
    "default_registry",
    "hybrid_config_for",
    "input_spec_for",
    "BatchRecord",
    "RequestOutcome",
    "ServeConfig",
    "ServeReport",
    "ServeSimulator",
]
