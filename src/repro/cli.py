"""Command-line experiment runner: ``python -m repro <command> ...``.

The subcommands cover the library's main entry points:

* ``train``     — train a model on a synthetic task, vanilla or Pufferfish.
* ``factorize`` — print the factorization report (params, per-layer ranks,
  SVD cost) for a model at a given rank ratio, without training.
* ``simulate``  — run the distributed simulator and print the per-epoch
  compute/encode/comm/decode breakdown for a chosen compressor.
* ``profile``   — run a workload with the observability layer enabled and
  dump a Chrome-trace timeline plus a metrics snapshot.
* ``serve``     — serve a model variant under seeded offered load with
  dynamic batching and SLO admission control (measured latencies,
  deterministic timeline for a fixed seed + profile).
* ``cluster``   — the fleet control plane over ``serve``: ``place`` packs
  replicas onto hosts and compares full vs factorized fleet cost,
  ``autoscale`` steps a seeded load scenario through the windowed
  control loop, ``canary`` walks a gated traffic shift full → factorized.
* ``gateway``   — the live twin of ``serve``: ``gateway serve`` runs a real
  asyncio HTTP server on localhost driving the same batcher + admission
  core against real inference, ``gateway loadtest`` replays a seeded
  arrival trace against it.
* ``lifecycle`` — the train → factorize → deploy pipeline: ``run`` trains
  with spectrum monitoring and online re-factorization, ``promote``
  versions the checkpoint with lineage into a promotion registry,
  ``deploy`` stages it through the cluster canary (optionally booting
  the gateway on the promoted artifact).

Examples::

    python -m repro train --model resnet18 --method pufferfish --epochs 10
    python -m repro train --task transformer --optimizer adam --fused --epochs 6
    python -m repro factorize --model vgg19 --rank-ratio 0.25
    python -m repro simulate --model resnet18 --nodes 8 --compressor powersgd
    python -m repro profile quickstart --out trace.json
    python -m repro serve --model vgg19 --variant factorized --rate 300 --slo-ms 150
    python -m repro cluster place --model vgg19 --replicas 6 --host-mem-mb 12
    python -m repro cluster autoscale --phases 250x60,450x60,250x60 --policy shed_rate
    python -m repro cluster canary --phases 400x120 --steps 0.05,0.25,0.5,1.0
    python -m repro gateway serve --model mlp --port 8123 --duration 30
    python -m repro gateway loadtest --port 8123 --rate 120 --duration 5 --seed 0
    python -m repro lifecycle run --model vgg11 --seed 7 --energy-threshold 0.75 \\
        --max-ratio 0.5 --checkpoint run.npz --out run.json
    python -m repro lifecycle promote --run run.json --registry-dir registry/
    python -m repro lifecycle deploy --registry-dir registry/ --name vgg11
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .tensor import backend as tensor_backend

__all__ = ["main", "build_parser"]

MODELS = ("mlp", "vgg11", "vgg19", "resnet18", "resnet50", "wideresnet50")
# The serving registry also covers the sequence zoo (non-image InputSpecs).
SERVE_MODELS = MODELS + ("lstm", "transformer")
COMPRESSORS = (
    "none", "powersgd", "signum", "qsgd", "topk", "binary", "atomo",
    "abtrain", "vargate",
)


def _make_model(name: str, num_classes: int, width: float):
    # The model table lives with the serving registry so the CLI and the
    # serving subsystem materialize identical architectures.
    from .serve.registry import build_model

    return build_model(name, num_classes, width)


def _hybrid_config(name: str, model, rank_ratio: float):
    from .serve.registry import hybrid_config_for

    return hybrid_config_for(name, model, rank_ratio)


# CLI defaults per compressor; construction goes through the registry so
# the CLI, benchmarks and property suite share one source of truth.
_COMPRESSOR_DEFAULTS = {
    "powersgd": {"rank": 2},
    "qsgd": {"levels": 16},
    "topk": {"ratio": 0.01},
    "atomo": {"budget": 2},
    "abtrain": {"rank": 4, "resync_every": 10},
    "vargate": {"threshold": 4.0},
}


def _compressor_name(cli_name: str) -> str:
    """CLI spelling → registry wire name."""
    return "sgd" if cli_name == "none" else cli_name


def _make_compressor(name: str, num_workers: int):
    from .compression import make_compressor

    wire = _compressor_name(name)
    return make_compressor(wire, num_workers, **_COMPRESSOR_DEFAULTS.get(wire, {}))


def _overlap_compatible(cli_name: str) -> bool:
    from .compression import registered_compressors

    return registered_compressors()[_compressor_name(cli_name)].allreduce_compatible


OPTIMIZERS = ("sgd", "adam", "lamb")
# Per-optimizer CLI default learning rate (SGD matches the CIFAR recipe,
# Adam/LAMB the transformer translation task).
_OPT_DEFAULT_LR = {"sgd": 0.05, "adam": 2e-3, "lamb": 2e-3}


def _optimizer_factory(name: str, lr: float, fused: bool):
    """Factory for loop or fused optimizers; all three loop/fused pairs
    share semantics (Adam bit-exact, LAMB within its tolerance tag)."""
    from .optim import LAMB, SGD, Adam, FusedAdam, FusedLAMB, FusedSGD

    if name == "sgd":
        cls = FusedSGD if fused else SGD
        return lambda ps: cls(ps, lr=lr, momentum=0.9, weight_decay=1e-4)
    loop_cls, fused_cls = {"adam": (Adam, FusedAdam), "lamb": (LAMB, FusedLAMB)}[name]
    cls = fused_cls if fused else loop_cls
    return lambda ps: cls(ps, lr=lr)


_OVERLAP_REJECTION = (
    "--overlap requires an allreduce-compatible compressor (none, powersgd, "
    "abtrain, vargate): sum-incompatible encodings allgather the whole "
    "gradient at once, so their communication cannot overlap the backward "
    "pass"
)


# ---------------------------------------------------------------------------


def _train_transformer(args, opt_factory) -> int:
    """The paper's WMT16 transformer experiment at laptop scale: synthetic
    reverse-and-relabel translation, Adam/LAMB-driven, greedy-decode BLEU."""
    from . import nn
    from .core import build_hybrid
    from .data import make_translation_dataset
    from .metrics import corpus_bleu, perplexity
    from .models import Seq2SeqTransformer, transformer_hybrid_config
    from .tensor import no_grad
    from .utils import set_seed

    vocab = 20
    set_seed(args.seed)
    full = make_translation_dataset(
        n=args.samples, vocab_size=vocab, min_len=4, max_len=8,
        rng=np.random.default_rng(args.seed),
    )
    train_ds, val_ds = full.split(int(0.85 * args.samples))
    loss_fn = nn.CrossEntropyLoss(ignore_index=0, label_smoothing=0.1)
    model = Seq2SeqTransformer(vocab_size=vocab, d_model=32, n_heads=4,
                               num_layers=2, d_ff=64, dropout=0.0, max_len=16)

    def run_epochs(m, opt, epochs):
        for _ in range(epochs):
            m.train()
            for i in range(0, len(train_ds), args.batch_size):
                src = train_ds.src[i : i + args.batch_size]
                tgt = train_ds.tgt[i : i + args.batch_size]
                opt.zero_grad()
                logits = m(src, tgt[:, :-1])
                loss_fn(logits.reshape(-1, vocab), tgt[:, 1:].reshape(-1)).backward()
                opt.step()

    if args.method == "pufferfish":
        run_epochs(model, opt_factory(model.parameters()), args.warmup_epochs)
        model, report = build_hybrid(model, transformer_hybrid_config(rank_ratio=args.rank_ratio))
        print(f"factorized: {report.params_before:,} -> {report.params_after:,} "
              f"params ({report.compression:.2f}x), SVD {report.svd_seconds*1e3:.0f} ms")
        run_epochs(model, opt_factory(model.parameters()),
                   max(args.epochs - args.warmup_epochs, 0))
    else:
        run_epochs(model, opt_factory(model.parameters()), args.epochs)

    model.eval()
    with no_grad():
        logits = model(val_ds.src, val_ds.tgt[:, :-1])
        nll = nn.CrossEntropyLoss(ignore_index=0)(
            logits.reshape(-1, vocab), val_ds.tgt[:, 1:].reshape(-1)
        )
    hyp = model.greedy_decode(val_ds.src, bos=1, eos=2, max_len=val_ds.tgt.shape[1])
    bleu = corpus_bleu([list(h) for h in hyp], [list(t) for t in val_ds.tgt],
                       strip_ids={0, 1, 2})
    print(f"val perplexity: {perplexity(float(nll.data)):.2f}")
    print(f"val BLEU: {bleu:.2f}")
    if args.checkpoint:
        from .utils import save_checkpoint

        save_checkpoint(args.checkpoint, model, epoch=args.epochs, best=bleu)
        print(f"checkpoint written to {args.checkpoint}")
    return 0


def cmd_train(args) -> int:
    from .core import PufferfishTrainer, Trainer
    from .data import DataLoader, make_cifar_like
    from .optim import MultiStepLR
    from .utils import Logger, set_seed

    if args.fused and args.amp:
        # The AMP cast round-trip rebinds every p.data each batch, which
        # would rebuild the arena (and reset optimizer state) every step.
        print("--fused is incompatible with --amp", file=sys.stderr)
        return 2
    opt_name = args.optimizer or ("adam" if args.task == "transformer" else "sgd")
    lr = args.lr if args.lr is not None else _OPT_DEFAULT_LR[opt_name]
    opt_factory = _optimizer_factory(opt_name, lr, args.fused)

    if args.task == "transformer":
        if args.amp:
            print("--task transformer does not support --amp", file=sys.stderr)
            return 2
        return _train_transformer(args, opt_factory)

    set_seed(args.seed)
    rng = np.random.default_rng(args.seed)
    ds = make_cifar_like(n=args.samples, num_classes=args.classes, noise=args.noise, rng=rng)
    tr, va = ds.split(int(0.8 * args.samples))
    train_loader = DataLoader(tr.images, tr.labels, args.batch_size, shuffle=True)
    val_loader = DataLoader(va.images, va.labels, 2 * args.batch_size)

    model = _make_model(args.model, args.classes, args.width)
    logger = Logger(args.model)
    sched_factory = lambda opt: MultiStepLR(opt, [int(0.75 * args.epochs)], gamma=0.1)

    if args.method == "pufferfish":
        trainer = PufferfishTrainer(
            model,
            _hybrid_config(args.model, model, args.rank_ratio),
            optimizer_factory=opt_factory,
            scheduler_factory=sched_factory,
            warmup_epochs=args.warmup_epochs,
            total_epochs=args.epochs,
            amp=args.amp,
            logger=logger,
        )
        trainer.fit(train_loader, val_loader)
        report = trainer.report
        print(f"\nfactorized: {report.params_before:,} -> {report.params_after:,} "
              f"params ({report.compression:.2f}x), SVD {report.svd_seconds*1e3:.0f} ms")
        history = trainer.history
        final_model = trainer.hybrid_model
    else:
        opt = opt_factory(model.parameters())
        trainer = Trainer(model, opt, scheduler=sched_factory(opt), amp=args.amp,
                          logger=logger)
        trainer.fit(train_loader, val_loader, epochs=args.epochs)
        history = trainer.history
        final_model = model

    best = max(s.val_metric for s in history)
    print(f"best val accuracy: {best:.4f}")
    if args.checkpoint:
        from .utils import save_checkpoint

        save_checkpoint(args.checkpoint, final_model, epoch=args.epochs, best=best)
        print(f"checkpoint written to {args.checkpoint}")
    return 0


def cmd_factorize(args) -> int:
    from .core import build_hybrid
    from .metrics import measure_macs
    from .tensor import Tensor
    from .utils import set_seed

    set_seed(args.seed)
    model = _make_model(args.model, args.classes, args.width)
    config = _hybrid_config(args.model, model, args.rank_ratio)
    hybrid, report = build_hybrid(model, config)

    print(f"model: {args.model} (width {args.width})")
    print(f"parameters: {report.params_before:,} -> {report.params_after:,} "
          f"({report.compression:.2f}x smaller)")
    print(f"SVD cost: {report.svd_seconds*1e3:.1f} ms")
    if args.model != "mlp":
        x = Tensor(np.zeros((1, 3, 32, 32), dtype=np.float32))
        print(f"MACs: {measure_macs(model, x)/1e6:.1f} M -> "
              f"{measure_macs(hybrid, x)/1e6:.1f} M")
    print(f"\nfactorized layers ({len(report.replaced)}):")
    for path, rank in report.replaced:
        print(f"  {path:<40} rank {rank}")
    print(f"kept full-rank ({len(report.kept)}): {', '.join(report.kept)}")
    return 0


def cmd_simulate(args) -> int:
    from .core import build_hybrid
    from .data import DataLoader, make_cifar_like, shard_dataset
    from .distributed import (
        ClusterSpec,
        CollectiveTimeoutError,
        DistributedTrainer,
        FaultSpecError,
        HierarchicalSpec,
        parse_fault_spec,
    )
    from .optim import SGD, FusedSGD
    from .utils import set_seed

    if args.overlap and not _overlap_compatible(args.compressor):
        print(_OVERLAP_REJECTION, file=sys.stderr)
        return 2
    if args.gpus_per_node < 1:
        print("--gpus-per-node must be >= 1", file=sys.stderr)
        return 2
    faults = None
    if args.faults:
        try:
            faults = parse_fault_spec(args.faults)
        except FaultSpecError as e:
            print(f"bad --faults spec: {e}", file=sys.stderr)
            return 2

    set_seed(args.seed)
    rng = np.random.default_rng(args.seed)
    model = _make_model(args.model, args.classes, args.width)
    if args.method == "pufferfish":
        model, report = build_hybrid(model, _hybrid_config(args.model, model, args.rank_ratio))
        print(f"pufferfish model: {report.compression:.2f}x smaller")

    if args.gpus_per_node > 1:
        cluster = HierarchicalSpec(
            args.nodes,
            gpus_per_node=args.gpus_per_node,
            inter_bandwidth_gbps=args.bandwidth,
            intra_bandwidth_gbps=args.intra_bandwidth,
        )
    else:
        cluster = ClusterSpec(args.nodes, bandwidth_gbps=args.bandwidth)
    world = cluster.world_size
    n = world * args.batch_size * args.iterations
    ds = make_cifar_like(n=n, num_classes=args.classes, noise=args.noise, rng=rng)
    shards = shard_dataset(ds.images, ds.labels, world)
    loaders = [DataLoader(x, y, args.batch_size) for x, y in shards]

    # The fused optimizers are the default fast path: every parameter
    # receives an averaged gradient here, so FusedSGD/FusedAdam are
    # bit-exact vs their per-tensor loops (FusedLAMB within its
    # tolerance tag), with or without --compressor on the
    # allreduce-compatible overlap path.
    opt_name = args.optimizer
    lr = args.lr if args.lr is not None else _OPT_DEFAULT_LR[opt_name]
    if opt_name == "sgd":
        opt_cls = FusedSGD if args.fused else SGD
        opt = opt_cls(model.parameters(), lr=lr, momentum=0.9)
    else:
        opt = _optimizer_factory(opt_name, lr, args.fused)(model.parameters())
    trainer = DistributedTrainer(
        model, opt, cluster,
        compressor=_make_compressor(args.compressor, world),
        faults=faults,
        overlap=args.overlap,
        bucket_mb=args.bucket_mb,
    )
    try:
        tl = trainer.train_epoch(loaders)
    except CollectiveTimeoutError as e:
        print(f"simulation aborted: {e}")
        return 1
    if args.gpus_per_node > 1:
        print(f"\ncluster: {args.nodes} nodes x {args.gpus_per_node} gpus "
              f"@ {args.bandwidth} Gbps inter / {args.intra_bandwidth} Gbps intra "
              f"| compressor: {args.compressor}")
    else:
        print(f"\ncluster: {args.nodes} nodes @ {args.bandwidth} Gbps "
              f"| compressor: {args.compressor}")
    print(f"compute {tl.compute:.3f}s | encode {tl.encode:.3f}s | "
          f"comm {tl.comm:.3f}s | decode {tl.decode:.3f}s | total {tl.total:.3f}s")
    print(f"wire bytes per iteration: {tl.bytes_per_iteration/1e6:.2f} MB")
    if tl.overlap:
        ov = tl.overlap
        print(f"overlap: {ov['n_buckets']} buckets @ {ov['bucket_bytes']/1e6:.2f} MB | "
              f"comm raw {ov['comm_total_s']:.3f}s -> exposed {ov['comm_exposed_s']:.3f}s "
              f"({ov['overlap_fraction']:.1%} hidden)")
    if trainer.faults is not None and trainer.faults.spec.active:
        s = trainer.faults.summary()
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(s["by_kind"].items())) or "none"
        print(f"faults (seed {faults.seed}): {s['events']} events [{kinds}]")
        print(f"  retries {s['retries']} | backoff {s['backoff_s']*1e3:.1f} ms | "
              f"recovery {s['recovery_s']:.3f}s")
    return 0


def cmd_serve(args) -> int:
    from . import observability as obs
    from .serve import (
        ArrivalSpec,
        BatchPolicy,
        LatencyProfile,
        ServeConfig,
        ServeSimulator,
        default_registry,
        generate_arrivals,
        measure_latency_profile,
    )

    try:
        spec = ArrivalSpec(
            rate_rps=args.rate,
            duration_s=args.duration,
            process=args.arrival,
            seed=args.seed,
            burst_factor=args.burst_factor,
            burst_prob=args.burst_prob,
        )
        config = ServeConfig(
            slo_s=args.slo_ms / 1e3,
            policy=BatchPolicy(args.max_batch, args.max_wait_ms / 1e3),
            replicas=args.replicas,
        )
    except ValueError as e:
        print(f"bad serve configuration: {e}", file=sys.stderr)
        return 2

    obs.enable_metrics()
    try:
        served = default_registry().materialize(
            args.model,
            args.variant,
            num_classes=args.classes,
            width=args.width,
            rank_ratio=args.rank_ratio,
            seed=args.seed,
            checkpoint=args.checkpoint,
        )
        print(f"model: {args.model} ({args.variant}, width {args.width}) — "
              f"{served.params:,} params, {served.macs/1e6:.1f} M MACs/example")
        if served.factorization:
            f = served.factorization
            print(f"factorized: {f['params_before']:,} -> {f['params_after']:,} params "
                  f"({f['compression']:.2f}x), {f['n_factorized']} low-rank layers")
        if served.lineage:
            li = served.lineage
            print(f"lineage: {li.get('name')} v{li.get('version')} from run "
                  f"{li.get('parent_run')} (rank map {li.get('rank_map_digest')})")

        if args.latency_profile:
            profile = LatencyProfile.load(args.latency_profile)
            print(f"latency profile loaded from {args.latency_profile}")
        else:
            profile = measure_latency_profile(
                served.model,
                served.input_spec,
                repeats=args.profile_repeats,
                meta={"model": args.model, "variant": args.variant, "width": args.width},
            )
        if args.save_profile:
            profile.save(args.save_profile)
            print(f"latency profile written to {args.save_profile}")
        grid = "  ".join(
            f"{b}:{t * 1e3:.1f}ms" for b, t in zip(profile.batch_sizes, profile.latency_s)
        )
        print(f"per-batch forward latency: {grid}")
        print(f"single-replica capacity: {profile.capacity_rps():.0f} rps "
              f"at batch {profile.best_batch()}")

        arrivals = generate_arrivals(spec)
        report = ServeSimulator(profile, config).run(arrivals, duration_s=args.duration)
    finally:
        obs.disable_metrics()

    s = report.summary()
    print(f"\noffered load: {args.rate:.0f} rps {args.arrival} x {args.duration:.0f}s "
          f"(seed {args.seed}) -> {s['n_requests']} requests")
    print(f"serving: {args.replicas} replica(s) | batch <= {args.max_batch} | "
          f"wait <= {args.max_wait_ms:.0f} ms | SLO {args.slo_ms:.0f} ms")
    print(f"completed {s['n_completed']} | shed {s['n_shed_admission']} at admission, "
          f"{s['n_shed_deadline']} past deadline (shed rate {s['shed_rate']:.1%})")
    print(f"throughput {s['throughput_rps']:.1f} rps | goodput {s['goodput_rps']:.1f} rps | "
          f"SLO miss (served) {s['slo_miss_rate']:.1%}")
    print(f"latency p50 {s['p50_ms']:.1f} ms | p95 {s['p95_ms']:.1f} ms | "
          f"p99 {s['p99_ms']:.1f} ms")
    print(f"batches {s['n_batches']} (mean size {s['mean_batch_size']:.1f}) | "
          f"peak queue depth {s['queue_depth_max']}")
    print(f"timeline digest: {s['timeline_digest']}")
    if args.timeline:
        import json as _json

        with open(args.timeline, "w") as f:
            _json.dump(
                {"summary": s, "timeline": report.timeline(),
                 "batches": [b.as_dict() for b in report.batches]},
                f, indent=2, sort_keys=True,
            )
        print(f"timeline written to {args.timeline}")
    return 0


# -- gateway ----------------------------------------------------------------


def _gateway_executor(args):
    """Build the inference executor + the profile admission reasons about."""
    from .serve import LatencyProfile, default_registry, measure_latency_profile

    profile = None
    if args.latency_profile:
        profile = LatencyProfile.load(args.latency_profile)
    if args.executor == "profile":
        if profile is None:
            raise ValueError("--executor profile requires --latency-profile")
        from .gateway import ProfileExecutor

        return ProfileExecutor(profile)
    served = default_registry().materialize(
        args.model,
        args.variant,
        num_classes=args.classes,
        width=args.width,
        rank_ratio=args.rank_ratio,
        seed=args.seed,
        checkpoint=args.checkpoint,
    )
    if profile is None:
        profile = measure_latency_profile(
            served.model,
            served.input_spec,
            meta={"model": args.model, "variant": args.variant},
        )
    from .gateway import ModelExecutor

    return ModelExecutor(served, profile)


def cmd_gateway_serve(args) -> int:
    import asyncio
    import signal

    from . import observability as obs
    from .serve import BatchPolicy, ServeConfig

    try:
        config = ServeConfig(
            slo_s=args.slo_ms / 1e3,
            policy=BatchPolicy(args.max_batch, args.max_wait_ms / 1e3),
            replicas=args.replicas,
        )
        executor = _gateway_executor(args)
    except (ValueError, FileNotFoundError) as e:
        print(f"bad gateway configuration: {e}", file=sys.stderr)
        return 2

    from .gateway import GatewayServer

    obs.enable_metrics()
    try:
        server = GatewayServer(executor, config, host=args.host, port=args.port)

        async def _main():
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, stop.set)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-unix loop, or running off the main thread
            await server.start()
            desc = executor.describe()
            print(f"gateway listening on http://{server.host}:{server.port} "
                  f"({desc['executor']} executor, {args.replicas} replica(s), "
                  f"batch <= {args.max_batch}, SLO {args.slo_ms:.0f} ms)", flush=True)
            if args.ready_file:
                with open(args.ready_file, "w") as f:
                    f.write(str(server.port))
            if args.duration is not None:
                loop.call_later(args.duration, stop.set)
            try:
                await stop.wait()
            finally:
                await server.stop()
            return server.report()

        report = asyncio.run(_main())
    finally:
        obs.disable_metrics()

    s = report.summary()
    shed = report.shed_by_reason()
    print(f"\nserved {s['n_requests']} requests: {s['n_completed']} completed, "
          f"{s['n_shed_admission']} shed at admission, {s['n_shed_deadline']} past "
          f"deadline, {shed.get('shutdown', 0)} shed at shutdown")
    print(f"throughput {s['throughput_rps']:.1f} rps | shed rate {s['shed_rate']:.1%} | "
          f"p50 {s['p50_ms']:.1f} ms | p95 {s['p95_ms']:.1f} ms")
    print(f"batches {s['n_batches']} (mean size {s['mean_batch_size']:.1f}) | "
          f"timeline digest: {s['timeline_digest']}")
    if args.report:
        import json as _json

        with open(args.report, "w") as f:
            _json.dump(
                {"summary": s, "timeline": report.timeline(),
                 "batches": [b.as_dict() for b in report.batches]},
                f, indent=2, sort_keys=True,
            )
        print(f"report written to {args.report}")
    return 0


def cmd_gateway_loadtest(args) -> int:
    import asyncio

    from .serve import ArrivalSpec

    try:
        spec = ArrivalSpec(
            rate_rps=args.rate,
            duration_s=args.duration,
            process=args.arrival,
            seed=args.seed,
            burst_factor=args.burst_factor,
            burst_prob=args.burst_prob,
            window_s=args.window_s,
        )
        if args.steps < 1:
            raise ValueError("--steps must be >= 1")
        if args.workers < 1:
            raise ValueError("--workers must be >= 1")
    except ValueError as e:
        print(f"bad loadtest configuration: {e}", file=sys.stderr)
        return 2

    from .gateway import LoadClient, build_trace, summarize_records, trace_digest

    trace = build_trace(spec, steps=args.steps, rid_offset=args.rid_offset)
    print(f"offered trace: {len(trace)} requests over {args.duration:.0f}s "
          f"({args.arrival}, seed {args.seed}) | digest {trace_digest(trace)}")
    client = LoadClient(args.host, args.port, timeout_s=args.timeout_s)

    async def _run():
        if args.mode == "open":
            return await client.run_open(trace)
        return await client.run_closed(trace, workers=args.workers)

    try:
        records = asyncio.run(_run())
    except ConnectionRefusedError:
        print(f"no gateway listening on {args.host}:{args.port}", file=sys.stderr)
        return 1

    s = summarize_records(records, duration_s=args.duration)
    by = ", ".join(f"{k}={v}" for k, v in s["by_status"].items())
    print(f"{args.mode}-loop replay: {s['n_completed']}/{s['n_requests']} completed "
          f"[{by}]")
    print(f"shed rate {s['shed_rate']:.1%} | throughput {s['throughput_rps']:.1f} rps | "
          f"p50 {s['p50_ms']:.1f} ms | p95 {s['p95_ms']:.1f} ms | p99 {s['p99_ms']:.1f} ms")
    if s["streamed"]:
        print(f"streaming: {s['streamed']} responses streamed, first partial led the "
              f"final frame by up to {s['stream_lead_ms_max']:.1f} ms")
    errors = [r for r in records if r.error is not None]
    if errors:
        print(f"client errors: {len(errors)} (first: {errors[0].error})", file=sys.stderr)
    if args.out:
        import json as _json

        with open(args.out, "w") as f:
            _json.dump(
                {"spec": {"rate_rps": args.rate, "duration_s": args.duration,
                          "process": args.arrival, "seed": args.seed,
                          "steps": args.steps, "mode": args.mode},
                 "trace_digest": trace_digest(trace),
                 "summary": s,
                 "records": [r.as_dict() for r in records]},
                f, indent=2, sort_keys=True,
            )
        print(f"loadtest results written to {args.out}")
    return 0 if not errors else 1


# -- cluster ----------------------------------------------------------------


def _cluster_served(args, variant: str):
    """Materialize one variant for exact memory accounting."""
    from .serve import default_registry

    return default_registry().materialize(
        args.model,
        variant,
        num_classes=args.classes,
        width=args.width,
        rank_ratio=args.rank_ratio,
        seed=args.seed,
    )


def _cluster_profile(args, served, path):
    """Load a saved latency profile, or measure one from the live model."""
    from .serve import LatencyProfile, measure_latency_profile

    if path:
        return LatencyProfile.load(path)
    return measure_latency_profile(
        served.model,
        served.input_spec,
        meta={"model": served.name, "variant": served.variant},
    )


def cmd_cluster_place(args) -> int:
    from . import observability as obs
    from .cluster import ClusterConfigError, HostSpec, lower_bound_hosts, pack, replica_spec_for

    try:
        host = HostSpec(
            mem_bytes=int(args.host_mem_mb * 1e6),
            compute_rps=args.host_rps,
            cost=args.host_cost,
        )
        if args.replicas < 1:
            raise ClusterConfigError("--replicas must be >= 1")
    except ClusterConfigError as e:
        print(f"bad cluster configuration: {e}", file=sys.stderr)
        return 2

    obs.enable_metrics()
    try:
        results = {}
        for variant, path in (
            ("full", args.profile_full),
            ("factorized", args.profile_factorized),
        ):
            served = _cluster_served(args, variant)
            profile = _cluster_profile(args, served, path)
            replica = replica_spec_for(served, profile, overhead_bytes=int(args.overhead_mb * 1e6))
            fleet = [replica] * args.replicas
            try:
                res = pack(fleet, host, policy=args.placement, max_hosts=args.max_hosts)
            except ClusterConfigError as e:
                print(f"bad cluster configuration: {e}", file=sys.stderr)
                return 2
            results[variant] = (replica, res)
            print(f"{variant}: {served.params:,} params "
                  f"({replica.mem_bytes / 1e6:.2f} MB/replica, "
                  f"{replica.capacity_rps:.0f} rps/replica)")
            print(f"  {args.replicas} replicas -> {res.n_hosts} hosts "
                  f"({args.placement}, lower bound {lower_bound_hosts(fleet, host)}) | "
                  f"fleet cost {res.fleet_cost:.1f} | "
                  f"mem packed {res.mem_utilization:.1%} | rejected {len(res.rejected)}")
    finally:
        obs.disable_metrics()

    full_hosts = results["full"][1].n_hosts
    fact_hosts = results["factorized"][1].n_hosts
    if full_hosts and fact_hosts:
        print(f"\nfactorized fleet uses {fact_hosts}/{full_hosts} hosts "
              f"({full_hosts - fact_hosts} fewer) for the same replica count")
    if args.out:
        import json as _json

        with open(args.out, "w") as f:
            _json.dump(
                {v: res.as_dict() for v, (_, res) in results.items()},
                f, indent=2, sort_keys=True,
            )
        print(f"placement written to {args.out}")
    return 0


def cmd_cluster_autoscale(args) -> int:
    from . import observability as obs
    from .cluster import (
        ClusterAutoscaler,
        ClusterConfigError,
        ClusterScenario,
        HostSpec,
        PoolConfig,
        make_policy,
        parse_phases,
        replica_spec_for,
    )
    from .serve import BatchPolicy

    try:
        scenario = ClusterScenario(
            parse_phases(args.phases),
            window_s=args.window,
            process=args.arrival,
            seed=args.seed,
        )
        policy_kwargs = {}
        if args.target is not None:
            policy_kwargs["target"] = args.target
        if args.stable_windows is not None:
            policy_kwargs["stable_windows"] = args.stable_windows
        policy = make_policy(args.policy, **policy_kwargs)
        host = None
        if args.host_mem_mb is not None:
            host = HostSpec(
                mem_bytes=int(args.host_mem_mb * 1e6), compute_rps=args.host_rps
            )
    except ClusterConfigError as e:
        print(f"bad cluster configuration: {e}", file=sys.stderr)
        return 2

    obs.enable_metrics()
    try:
        served = _cluster_served(args, args.variant)
        profile = _cluster_profile(args, served, args.latency_profile)
        try:
            pool = PoolConfig(
                name=f"{args.model}:{args.variant}",
                replica=replica_spec_for(served, profile),
                profile=profile,
                slo_s=args.slo_ms / 1e3,
                policy=policy,
                batch=BatchPolicy(args.max_batch, args.max_wait_ms / 1e3),
                initial_replicas=args.initial_replicas,
                min_replicas=args.min_replicas,
                max_replicas=args.max_replicas,
                cooldown_windows=args.cooldown,
            )
            scaler = ClusterAutoscaler(scenario, [pool], host_spec=host)
        except ClusterConfigError as e:
            print(f"bad cluster configuration: {e}", file=sys.stderr)
            return 2
        report = scaler.run()
    finally:
        obs.disable_metrics()

    s = report.summary()
    p = s["pools"][pool.name]
    print(f"scenario: {args.phases} @ window {args.window:.0f}s "
          f"({s['n_windows']} windows, seed {args.seed})")
    print(f"pool {pool.name}: policy {args.policy} | "
          f"replicas {args.initial_replicas} -> {s['final_replicas'][pool.name]} "
          f"(peak {p['max_replicas']}) | {s['n_scale_events']} scale events, "
          f"{p['oscillations']} oscillations")
    print(f"steady-state shed {p['steady_state_shed']:.2%}")
    for e in report.events:
        print(f"  window {e.window:>3}: {e.before} -> {e.after} ({e.direction}, {e.reason})")
    if report.placement is not None:
        print(f"final fleet: {report.placement.n_hosts} hosts "
              f"(cost {report.placement.fleet_cost:.1f}, "
              f"policy {report.placement.policy})")
    print(f"timeline digest: {s['timeline_digest']}")
    if args.timeline:
        import json as _json

        with open(args.timeline, "w") as f:
            _json.dump(
                {"summary": s, "windows": report.timeline(),
                 "events": [e.as_dict() for e in report.events]},
                f, indent=2, sort_keys=True,
            )
        print(f"timeline written to {args.timeline}")
    return 0


def cmd_cluster_canary(args) -> int:
    from . import observability as obs
    from .cluster import CanaryConfig, ClusterConfigError, ClusterScenario, parse_phases, run_canary
    from .serve import BatchPolicy

    try:
        steps = tuple(float(x) for x in args.steps.split(","))
    except ValueError:
        print(f"bad cluster configuration: --steps must be comma-separated "
              f"fractions, got {args.steps!r}", file=sys.stderr)
        return 2
    try:
        scenario = ClusterScenario(
            parse_phases(args.phases),
            window_s=args.window,
            process=args.arrival,
            seed=args.seed,
        )
        config = CanaryConfig(
            steps=steps,
            windows_per_step=args.windows_per_step,
            shed_delta_tolerance=args.tolerance,
            slo_s=args.slo_ms / 1e3,
            batch=BatchPolicy(args.max_batch, args.max_wait_ms / 1e3),
        )
    except ClusterConfigError as e:
        print(f"bad cluster configuration: {e}", file=sys.stderr)
        return 2

    obs.enable_metrics()
    try:
        full = _cluster_served(args, "full")
        fact = _cluster_served(args, "factorized")
        full_profile = _cluster_profile(args, full, args.profile_full)
        fact_profile = _cluster_profile(args, fact, args.profile_factorized)
        try:
            report = run_canary(scenario, full_profile, fact_profile, config)
        except ClusterConfigError as e:
            print(f"bad cluster configuration: {e}", file=sys.stderr)
            return 2
    finally:
        obs.disable_metrics()

    print(f"canary rollout {args.model} full -> factorized "
          f"({args.phases}, seed {args.seed})")
    for rec in report.steps:
        verdict = "advance" if rec.advanced else "ROLLBACK"
        print(f"  step {rec.step}: {rec.fraction:>5.0%} canary | "
              f"baseline shed {rec.baseline_shed:.2%} ({rec.baseline_replicas} rep) | "
              f"canary shed {rec.canary_shed:.2%} ({rec.canary_replicas} rep) | "
              f"delta {rec.shed_delta:+.2%} -> {verdict}")
    print(f"status: {report.status} (final fraction {report.final_fraction:.0%})")
    print(f"timeline digest: {report.digest()}")
    return 0 if report.status == "promoted" or args.allow_rollback else 1


# -- lifecycle --------------------------------------------------------------


def cmd_lifecycle_run(args) -> int:
    import json as _json

    from . import observability as obs
    from .lifecycle import (
        LifecycleConfig,
        LifecycleConfigError,
        PromotionRegistry,
        RankPolicy,
        run_lifecycle,
    )
    from .utils import save_checkpoint

    try:
        config = LifecycleConfig(
            model=args.model,
            num_classes=args.classes,
            width=args.width,
            seed=args.seed,
            train_samples=args.samples,
            val_samples=args.val_samples,
            batch_size=args.batch_size,
            lr=args.lr,
            momentum=args.momentum,
            warmup_epochs=args.warmup_epochs,
            total_epochs=args.epochs,
            recheck_every=args.recheck_every,
            rank_ratio=args.rank_ratio,
            policy=RankPolicy(
                energy_threshold=args.energy_threshold,
                min_rank=args.min_rank,
                max_ratio=args.max_ratio,
                hysteresis=args.hysteresis,
            ),
            workers=args.workers,
        )
    except LifecycleConfigError as e:
        print(f"bad lifecycle configuration: {e}", file=sys.stderr)
        return 2

    obs.enable_metrics()
    try:
        run = run_lifecycle(config)
    finally:
        obs.disable_metrics()

    s = run.summary()
    print(f"lifecycle run {run.run_id}: {args.model} (width {args.width}, "
          f"seed {args.seed}, {config.workers} worker(s))")
    for event in s["events"]:
        kind = event["event"]
        if kind == "snapshot":
            print(f"  epoch {event['epoch']:>2} [{event['phase']}] snapshot "
                  f"{event['digest']} ({event['n_layers']} layers)")
        elif kind == "retarget":
            print(f"  epoch {event['epoch']:>2} [warmup] retarget: "
                  f"{len(event['drifted'])} layer(s) drifted")
        elif kind == "factorize":
            print(f"  epoch {event['epoch']:>2} factorize: {event['replaced']} layers, "
                  f"{event['params_before']:,} -> {event['params_after']:,} params")
        elif kind == "refactorize":
            print(f"  epoch {event['epoch']:>2} REFACTORIZE: {len(event['drifted'])} "
                  f"layer(s) drifted | {event['params_after']:,} params | "
                  f"resync {event['resync_bytes']:,} B "
                  f"({event['resync_seconds'] * 1e3:.2f} ms)")
        elif kind == "final_eval":
            print(f"  final val loss {event['val_loss']:.4f} | "
                  f"val metric {event['val_metric']:.4f}")
    print(f"rank map: {len(run.rank_map)} layers "
          f"({s['n_layers_differ_from_global']} differ from the global "
          f"{args.rank_ratio} map) | digest {s['rank_map_digest']}")
    print(f"params {s['params_full']:,} -> {s['params_factorized']:,} "
          f"({s['param_reduction']:.2f}x) | MACs {s['macs_full']:,} -> "
          f"{s['macs_factorized']:,} ({s['mac_reduction']:.2f}x)")
    print(f"spectra digest: {s['spectra_digest']}")
    print(f"timeline digest: {s['timeline_digest']}")

    if args.checkpoint:
        save_checkpoint(args.checkpoint, run.model, lifecycle=run.lineage())
        print(f"checkpoint written to {args.checkpoint}")
    if args.out:
        with open(args.out, "w") as f:
            _json.dump(
                {"summary": s, "lineage": run.lineage(), "checkpoint": args.checkpoint},
                f, indent=2, sort_keys=True,
            )
        print(f"run record written to {args.out}")
    if args.registry_dir:
        record = PromotionRegistry(args.registry_dir).promote(run, name=args.name)
        print(f"promoted to {args.registry_dir}: {record.name} v{record.version} "
              f"({record.path})")
    return 0


def cmd_lifecycle_promote(args) -> int:
    import json as _json

    from .lifecycle import PromotionError, PromotionRegistry

    try:
        with open(args.run) as f:
            record_file = _json.load(f)
    except (OSError, _json.JSONDecodeError) as e:
        print(f"bad lifecycle configuration: cannot read run record: {e}",
              file=sys.stderr)
        return 2
    checkpoint = args.checkpoint or record_file.get("checkpoint")
    lineage = record_file.get("lineage", {})
    if not checkpoint:
        print("bad lifecycle configuration: run record has no checkpoint; "
              "re-run `lifecycle run` with --checkpoint or pass --checkpoint",
              file=sys.stderr)
        return 2
    try:
        record = PromotionRegistry(args.registry_dir).promote_artifact(
            checkpoint, lineage, name=args.name
        )
    except PromotionError as e:
        print(f"promotion failed: {e}", file=sys.stderr)
        return 2
    print(f"promoted {checkpoint} -> {record.path}")
    print(f"  {record.name} v{record.version} | parent run "
          f"{record.lineage.get('parent_run')} | rank map "
          f"{record.lineage.get('rank_map_digest')} | spectra "
          f"{record.lineage.get('spectra_digest')}")
    return 0


def cmd_lifecycle_deploy(args) -> int:
    import json as _json

    from . import observability as obs
    from .cluster import CanaryConfig, ClusterConfigError, parse_phases
    from .lifecycle import (
        DeploymentConfig,
        PromotionError,
        PromotionRegistry,
        run_deployment,
    )
    from .serve import BatchPolicy, LatencyProfile

    registry = PromotionRegistry(args.registry_dir)
    try:
        if args.version is not None:
            record = registry.get(args.name, args.version)
        else:
            record = registry.latest(args.name)
        steps = tuple(float(x) for x in args.steps.split(","))
        config = DeploymentConfig(
            phases=parse_phases(args.phases),
            window_s=args.window,
            seed=args.seed,
            canary=CanaryConfig(
                steps=steps,
                windows_per_step=args.windows_per_step,
                shed_delta_tolerance=args.tolerance,
                slo_s=args.slo_ms / 1e3,
                batch=BatchPolicy(args.max_batch, args.max_wait_ms / 1e3),
            ),
            degrade_factor=args.degrade_factor,
        )
        baseline = (
            LatencyProfile.load(args.profile_full) if args.profile_full else None
        )
        canary = (
            LatencyProfile.load(args.profile_factorized)
            if args.profile_factorized
            else None
        )
    except (PromotionError, ClusterConfigError, ValueError, OSError) as e:
        print(f"bad lifecycle configuration: {e}", file=sys.stderr)
        return 2

    obs.enable_metrics()
    try:
        try:
            report = run_deployment(record, config, baseline, canary)
        except ClusterConfigError as e:
            print(f"bad lifecycle configuration: {e}", file=sys.stderr)
            return 2
    finally:
        obs.disable_metrics()

    li = record.lineage
    print(f"deploying {record.name} v{record.version} "
          f"(parent run {li.get('parent_run')}, rank map "
          f"{li.get('rank_map_digest')}) via canary ({args.phases}, seed {args.seed})")
    for rec in report.steps:
        verdict = "advance" if rec["advanced"] else "ROLLBACK"
        print(f"  step {rec['step']}: {rec['fraction']:>5.0%} canary | "
              f"baseline shed {rec['baseline_shed']:.2%} | "
              f"canary shed {rec['canary_shed']:.2%} | "
              f"delta {rec['shed_delta']:+.2%} -> {verdict}")
    print(f"status: {report.status} (final fraction {report.final_fraction:.0%})")
    print(f"deploy digest: {report.digest()}")
    if args.out:
        with open(args.out, "w") as f:
            _json.dump(report.summary(), f, indent=2, sort_keys=True)
        print(f"deployment report written to {args.out}")

    if report.promoted and args.gateway:
        print(f"\nbooting gateway on the promoted checkpoint {record.path}")
        gw = argparse.Namespace(
            model=li.get("model", record.name),
            variant="factorized",
            classes=int(li.get("num_classes", 4)),
            width=float(li.get("width", 0.25)),
            rank_ratio=0.25,
            seed=int(li.get("seed", 0)),
            checkpoint=record.path,
            executor="model",
            latency_profile=None,
            host=args.host,
            port=args.port,
            slo_ms=args.slo_ms,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            replicas=args.replicas,
            duration=args.duration,
            ready_file=args.ready_file,
            report=None,
        )
        return cmd_gateway_serve(gw)
    return 0 if report.promoted or args.allow_rollback else 1


def _profile_quickstart(args):
    """The quickstart example's Pufferfish run, scaled by the CLI args."""
    from . import nn
    from .core import FactorizationConfig, PufferfishTrainer
    from .data import DataLoader, make_cifar_like
    from .optim import SGD, MultiStepLR
    from .utils import set_seed

    set_seed(args.seed)
    rng = np.random.default_rng(args.seed)
    ds = make_cifar_like(n=args.samples, num_classes=args.classes, noise=0.2, rng=rng)
    tr, va = ds.split(int(0.8 * args.samples))
    train_loader = DataLoader(tr.images, tr.labels, args.batch_size, shuffle=True)
    val_loader = DataLoader(va.images, va.labels, 2 * args.batch_size)

    model = nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1), nn.BatchNorm2d(16), nn.ReLU(), nn.MaxPool2d(2),
        nn.Conv2d(16, 32, 3, padding=1), nn.ReLU(), nn.GlobalAvgPool2d(),
        nn.Linear(32, args.classes),
    )
    trainer = PufferfishTrainer(
        model,
        FactorizationConfig(rank_ratio=0.25),
        optimizer_factory=lambda ps: SGD(ps, lr=0.05, momentum=0.9, weight_decay=1e-4),
        warmup_epochs=args.warmup_epochs,
        total_epochs=args.epochs,
    )
    trainer.fit(train_loader, val_loader)
    return trainer.history


def _profile_simulate(args):
    """A few simulator iterations (vanilla model, chosen compressor)."""
    from .data import DataLoader, make_cifar_like, shard_dataset
    from .distributed import ClusterSpec, DistributedTrainer
    from .optim import SGD
    from .utils import set_seed

    set_seed(args.seed)
    rng = np.random.default_rng(args.seed)
    model = _make_model("mlp", args.classes, 1.0)
    n = args.nodes * args.batch_size * args.iterations
    ds = make_cifar_like(n=n, num_classes=args.classes, noise=0.2, rng=rng)
    shards = shard_dataset(ds.images, ds.labels, args.nodes)
    loaders = [DataLoader(x, y, args.batch_size) for x, y in shards]
    cluster = ClusterSpec(args.nodes, bandwidth_gbps=0.3)
    trainer = DistributedTrainer(
        model,
        SGD(model.parameters(), lr=0.05, momentum=0.9),
        cluster,
        compressor=_make_compressor(args.compressor, args.nodes),
        overlap=args.overlap,
        bucket_mb=args.bucket_mb,
    )
    tl = trainer.train_epoch(loaders)
    print(f"timeline: compute {tl.compute:.3f}s | encode {tl.encode:.3f}s | "
          f"comm {tl.comm:.3f}s | decode {tl.decode:.3f}s")
    if tl.overlap:
        ov = tl.overlap
        print(f"overlap: {ov['n_buckets']} buckets | "
              f"{ov['overlap_fraction']:.1%} of comm hidden")
    return []


def cmd_profile(args) -> int:
    from . import observability as obs

    if (
        args.target == "simulate"
        and args.overlap
        and not _overlap_compatible(args.compressor)
    ):
        print(_OVERLAP_REJECTION, file=sys.stderr)
        return 2
    tracer = obs.get_tracer()
    registry = obs.get_registry()
    tracer.clear()
    registry.reset()
    obs.enable(module_spans=args.modules)
    try:
        if args.target == "quickstart":
            history = _profile_quickstart(args)
        else:
            history = _profile_simulate(args)
    finally:
        obs.disable()

    path = tracer.write_chrome_trace(args.out)
    spans = tracer.spans()
    print(f"\nchrome trace written to {path} ({len(spans)} spans)")
    print("open it in chrome://tracing or https://ui.perfetto.dev")

    # Reconcile the span timeline against the trainer's own accounting.
    if history:
        span_total = tracer.total("epoch")
        stats_total = sum(s.seconds for s in history)
        delta = abs(span_total - stats_total) / max(stats_total, 1e-9)
        print(f"epoch spans {span_total:.3f}s vs EpochStats.seconds "
              f"{stats_total:.3f}s (delta {100 * delta:.1f}%)")

    print("\ntop spans by exclusive time:")
    summary = sorted(
        tracer.summary().items(), key=lambda kv: kv[1]["exclusive"], reverse=True
    )
    for name, agg in summary[:12]:
        print(f"  {name:<24} calls {agg['count']:>5}  total {agg['total']:8.3f}s  "
              f"exclusive {agg['exclusive']:8.3f}s")

    counters = registry.counters()
    if counters:
        print("\ncounters:")
        for name in sorted(counters):
            print(f"  {name:<24} {counters[name]:,}")
    return 0


# ---------------------------------------------------------------------------


def add_backend_arg(p) -> None:
    p.add_argument("--backend", choices=tensor_backend.available(), default=None,
                   help="tensor op backend (default: $REPRO_BACKEND or numpy)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, models=MODELS):
        p.add_argument("--model", choices=models, default="resnet18")
        p.add_argument("--width", type=float, default=0.25,
                       help="width multiplier (1.0 = paper architecture)")
        p.add_argument("--classes", type=int, default=4)
        p.add_argument("--rank-ratio", type=float, default=0.25)
        p.add_argument("--seed", type=int, default=0)
        add_backend_arg(p)

    p_train = sub.add_parser("train", help="train on a synthetic task")
    common(p_train)
    p_train.add_argument("--task", choices=("cifar", "transformer"), default="cifar",
                         help="cifar: image classification (--model/--width apply); "
                              "transformer: reverse-and-relabel translation "
                              "(Seq2SeqTransformer, Adam-driven, greedy BLEU)")
    p_train.add_argument("--optimizer", choices=OPTIMIZERS, default=None,
                         help="default: sgd for cifar, adam for transformer")
    p_train.add_argument("--method", choices=("vanilla", "pufferfish"), default="pufferfish")
    p_train.add_argument("--epochs", type=int, default=10)
    p_train.add_argument("--warmup-epochs", type=int, default=3)
    p_train.add_argument("--batch-size", type=int, default=32)
    p_train.add_argument("--lr", type=float, default=None,
                         help="default: 0.05 for sgd, 2e-3 for adam/lamb")
    p_train.add_argument("--samples", type=int, default=512)
    p_train.add_argument("--noise", type=float, default=0.2)
    p_train.add_argument("--amp", action="store_true", help="mixed-precision emulation")
    p_train.add_argument("--fused", action="store_true",
                         help="fused flat-arena optimizer updates (SGD/Adam bit-exact "
                              "when every parameter gets a gradient, LAMB within its "
                              "tolerance tag; incompatible with --amp)")
    p_train.add_argument("--checkpoint", default=None, help="write final .npz checkpoint")
    p_train.set_defaults(func=cmd_train)

    p_fact = sub.add_parser("factorize", help="print the factorization report")
    common(p_fact)
    p_fact.set_defaults(func=cmd_factorize)

    p_sim = sub.add_parser("simulate", help="distributed-training simulation")
    common(p_sim)
    p_sim.add_argument("--method", choices=("vanilla", "pufferfish"), default="vanilla")
    p_sim.add_argument("--nodes", type=int, default=8)
    p_sim.add_argument("--compressor", choices=COMPRESSORS, default="none")
    p_sim.add_argument("--bandwidth", type=float, default=0.3, help="Gbps per link")
    p_sim.add_argument("--batch-size", type=int, default=16)
    p_sim.add_argument("--iterations", type=int, default=2)
    p_sim.add_argument("--optimizer", choices=OPTIMIZERS, default="sgd",
                       help="composes with --fused and --compressor")
    p_sim.add_argument("--lr", type=float, default=None,
                       help="default: 0.05 for sgd, 2e-3 for adam/lamb")
    p_sim.add_argument("--noise", type=float, default=0.2)
    p_sim.add_argument("--overlap", action="store_true",
                       help="bucketed allreduce overlapped with backward "
                            "(requires an allreduce-compatible compressor: "
                            "none, powersgd, abtrain, vargate)")
    p_sim.add_argument("--gpus-per-node", type=int, default=1,
                       help="ranks per node; >1 switches to the two-level "
                            "hierarchical topology (intra-node fast ring + "
                            "inter-node slow ring)")
    p_sim.add_argument("--intra-bandwidth", type=float, default=100.0,
                       help="intra-node Gbps (hierarchical topology only)")
    p_sim.add_argument("--bucket-mb", type=float, default=25.0,
                       help="gradient bucket size cap in MB (DDP default 25)")
    p_sim.add_argument("--fused", action=argparse.BooleanOptionalAction, default=True,
                       help="fused flat-arena optimizer updates (bit-exact for "
                            "sgd/adam; --no-fused for the per-tensor loop)")
    p_sim.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-injection spec: JSON file/string or compact form, e.g. "
             "'seed=42,straggler=lognormal:0.2,drop=0.01,link=0.05:0.25:3,"
             "failure=0.002:shrink' (see docs/FAULTS.md)",
    )
    p_sim.set_defaults(func=cmd_simulate)

    p_prof = sub.add_parser(
        "profile", help="run a workload with tracing/metrics on and dump a Chrome trace"
    )
    p_prof.add_argument("target", choices=("quickstart", "simulate"),
                        help="workload to profile")
    p_prof.add_argument("--out", default="trace.json", help="Chrome-trace output path")
    p_prof.add_argument("--modules", action="store_true",
                        help="also record a span per Module.forward call")
    p_prof.add_argument("--seed", type=int, default=0)
    add_backend_arg(p_prof)
    p_prof.add_argument("--classes", type=int, default=4)
    p_prof.add_argument("--epochs", type=int, default=6)
    p_prof.add_argument("--warmup-epochs", type=int, default=2)
    p_prof.add_argument("--samples", type=int, default=192)
    p_prof.add_argument("--batch-size", type=int, default=32)
    p_prof.add_argument("--nodes", type=int, default=4, help="simulate: world size")
    p_prof.add_argument("--compressor", choices=COMPRESSORS, default="powersgd",
                        help="simulate: gradient compressor")
    p_prof.add_argument("--iterations", type=int, default=2, help="simulate: iterations")
    p_prof.add_argument("--overlap", action="store_true",
                        help="simulate: bucketed comm/compute overlap "
                             "(requires an allreduce-compatible compressor)")
    p_prof.add_argument("--bucket-mb", type=float, default=25.0,
                        help="simulate: gradient bucket size cap in MB")
    p_prof.set_defaults(func=cmd_profile)

    p_serve = sub.add_parser(
        "serve",
        help="serve a model variant under seeded load with dynamic batching "
             "and SLO admission control",
    )
    common(p_serve, models=SERVE_MODELS)
    p_serve.add_argument("--variant", choices=("full", "factorized"), default="full")
    p_serve.add_argument("--rate", type=float, default=100.0,
                         help="mean offered load in requests/second")
    p_serve.add_argument("--duration", type=float, default=10.0,
                         help="offered-load duration in (modeled) seconds")
    p_serve.add_argument("--slo-ms", type=float, default=150.0,
                         help="per-request latency SLO in milliseconds")
    p_serve.add_argument("--replicas", type=int, default=1)
    p_serve.add_argument("--max-batch", type=int, default=16,
                         help="dynamic batcher max_batch_size")
    p_serve.add_argument("--max-wait-ms", type=float, default=10.0,
                         help="dynamic batcher deadline flush (oldest request's "
                              "max queueing wait)")
    p_serve.add_argument("--arrival", choices=("poisson", "bursty"), default="poisson")
    p_serve.add_argument("--burst-factor", type=float, default=4.0,
                         help="bursty: in-burst rate multiplier")
    p_serve.add_argument("--burst-prob", type=float, default=0.1,
                         help="bursty: probability a 1s window is a burst")
    p_serve.add_argument("--checkpoint", default=None,
                         help="load model weights from a .npz checkpoint")
    p_serve.add_argument("--latency-profile", default=None, metavar="JSON",
                         help="replay a saved latency profile instead of measuring "
                              "(makes the whole run machine-independent)")
    p_serve.add_argument("--save-profile", default=None, metavar="JSON",
                         help="write the measured latency profile for later replay")
    p_serve.add_argument("--profile-repeats", type=int, default=3,
                         help="best-of-N forward timing repeats per batch size")
    p_serve.add_argument("--timeline", default=None, metavar="JSON",
                         help="write the full request/batch timeline")
    p_serve.set_defaults(func=cmd_serve)

    p_gateway = sub.add_parser(
        "gateway",
        help="live asyncio serving gateway (real HTTP on localhost) and its "
             "seeded load client",
    )
    gateway_sub = p_gateway.add_subparsers(dest="gateway_command", required=True)

    p_gserve = gateway_sub.add_parser(
        "serve",
        help="run the HTTP gateway: same batcher + admission control as the "
             "simulator, against real inference",
    )
    common(p_gserve, models=SERVE_MODELS)
    p_gserve.add_argument("--variant", choices=("full", "factorized"), default="full")
    p_gserve.add_argument("--host", default="127.0.0.1")
    p_gserve.add_argument("--port", type=int, default=8123,
                          help="listen port (0 picks a free one)")
    p_gserve.add_argument("--slo-ms", type=float, default=150.0,
                          help="per-request latency SLO in milliseconds")
    p_gserve.add_argument("--max-batch", type=int, default=16,
                          help="dynamic batcher max_batch_size")
    p_gserve.add_argument("--max-wait-ms", type=float, default=10.0,
                          help="dynamic batcher deadline flush")
    p_gserve.add_argument("--replicas", type=int, default=1,
                          help="concurrent batch workers")
    p_gserve.add_argument("--executor", choices=("model", "profile"), default="model",
                          help="model: real no_grad forwards off-loop; profile: "
                               "sleep a pinned latency profile (needs "
                               "--latency-profile; machine-independent)")
    p_gserve.add_argument("--checkpoint", default=None,
                          help="load model weights from a .npz checkpoint")
    p_gserve.add_argument("--latency-profile", default=None, metavar="JSON",
                          help="saved latency profile for admission estimates "
                               "(measured from the model when omitted)")
    p_gserve.add_argument("--duration", type=float, default=None,
                          help="stop after this many seconds (default: run until "
                               "SIGINT/SIGTERM)")
    p_gserve.add_argument("--ready-file", default=None, metavar="PATH",
                          help="write the bound port here once listening (for "
                               "scripted readiness checks)")
    p_gserve.add_argument("--report", default=None, metavar="JSON",
                          help="write the final serve report")
    p_gserve.set_defaults(func=cmd_gateway_serve)

    p_gload = gateway_sub.add_parser(
        "loadtest", help="replay a seeded arrival trace against a running gateway"
    )
    p_gload.add_argument("--host", default="127.0.0.1")
    p_gload.add_argument("--port", type=int, required=True)
    p_gload.add_argument("--rate", type=float, default=100.0,
                         help="mean offered load in requests/second")
    p_gload.add_argument("--duration", type=float, default=5.0,
                         help="offered-load duration in seconds")
    p_gload.add_argument("--seed", type=int, default=0,
                         help="fully determines the offered trace")
    p_gload.add_argument("--arrival", choices=("poisson", "bursty"), default="poisson")
    p_gload.add_argument("--burst-factor", type=float, default=4.0)
    p_gload.add_argument("--burst-prob", type=float, default=0.1)
    p_gload.add_argument("--window-s", type=float, default=1.0,
                         help="bursty: burst-decision window length")
    p_gload.add_argument("--rid-offset", type=int, default=0,
                         help="first request id (ids are unique per server "
                              "lifetime; offset a second run against the "
                              "same server)")
    p_gload.add_argument("--steps", type=int, default=1,
                         help=">1 requests streamed multi-step responses")
    p_gload.add_argument("--mode", choices=("open", "closed"), default="open",
                         help="open: fire at trace timestamps; closed: fixed "
                              "worker pool")
    p_gload.add_argument("--workers", type=int, default=4,
                         help="closed-loop concurrency")
    p_gload.add_argument("--timeout-s", type=float, default=30.0,
                         help="per-request client timeout")
    p_gload.add_argument("--out", default=None, metavar="JSON",
                         help="write per-request records + summary")
    p_gload.set_defaults(func=cmd_gateway_loadtest)

    p_cluster = sub.add_parser(
        "cluster",
        help="fleet control plane: replica placement, autoscaling, canary rollout",
    )
    cluster_sub = p_cluster.add_subparsers(dest="cluster_command", required=True)

    def cluster_common(p):
        common(p, models=SERVE_MODELS)
        p.add_argument("--slo-ms", type=float, default=150.0,
                       help="per-request latency SLO in milliseconds")
        p.add_argument("--max-batch", type=int, default=16,
                       help="dynamic batcher max_batch_size")
        p.add_argument("--max-wait-ms", type=float, default=10.0,
                       help="dynamic batcher deadline flush")
        p.add_argument("--arrival", choices=("poisson", "bursty"), default="poisson")
        p.add_argument("--window", type=float, default=10.0,
                       help="control-loop evaluation window in modeled seconds")

    p_place = cluster_sub.add_parser(
        "place", help="bin-pack replica fleets onto hosts, full vs factorized"
    )
    common(p_place, models=SERVE_MODELS)
    p_place.add_argument("--replicas", type=int, default=6,
                         help="replica count packed for each variant")
    p_place.add_argument("--host-mem-mb", type=float, default=12.0,
                         help="host memory budget in MB")
    p_place.add_argument("--host-rps", type=float, default=2000.0,
                         help="host compute budget in requests/second")
    p_place.add_argument("--host-cost", type=float, default=1.0,
                         help="relative cost of one host")
    p_place.add_argument("--overhead-mb", type=float, default=0.0,
                         help="per-replica runtime memory overhead in MB")
    p_place.add_argument("--placement", choices=("ffd", "best_fit", "spread"),
                         default="ffd")
    p_place.add_argument("--max-hosts", type=int, default=None,
                         help="fleet size cap (excess replicas are rejected)")
    p_place.add_argument("--profile-full", default=None, metavar="JSON",
                         help="saved latency profile for the full variant")
    p_place.add_argument("--profile-factorized", default=None, metavar="JSON",
                         help="saved latency profile for the factorized variant")
    p_place.add_argument("--out", default=None, metavar="JSON",
                         help="write the full placement result")
    p_place.set_defaults(func=cmd_cluster_place)

    p_scale = cluster_sub.add_parser(
        "autoscale", help="step a seeded load scenario through the control loop"
    )
    cluster_common(p_scale)
    p_scale.add_argument("--variant", choices=("full", "factorized"),
                         default="factorized")
    p_scale.add_argument("--phases", default="250x60,450x60,250x60",
                         metavar="RATExDUR,...",
                         help="offered-load schedule, e.g. 250x60,450x60")
    p_scale.add_argument("--policy", choices=("shed_rate", "target_utilization"),
                         default="shed_rate")
    p_scale.add_argument("--target", type=float, default=None,
                         help="policy target (shed rate or utilization)")
    p_scale.add_argument("--stable-windows", type=int, default=None,
                         help="calm windows required before scale-down")
    p_scale.add_argument("--initial-replicas", type=int, default=1)
    p_scale.add_argument("--min-replicas", type=int, default=1)
    p_scale.add_argument("--max-replicas", type=int, default=8)
    p_scale.add_argument("--cooldown", type=int, default=1,
                         help="windows to hold after a scale event")
    p_scale.add_argument("--host-mem-mb", type=float, default=None,
                         help="also pack the final fleet onto hosts of this size")
    p_scale.add_argument("--host-rps", type=float, default=2000.0)
    p_scale.add_argument("--latency-profile", default=None, metavar="JSON",
                         help="replay a saved latency profile instead of measuring")
    p_scale.add_argument("--timeline", default=None, metavar="JSON",
                         help="write the windowed timeline + scale events")
    p_scale.set_defaults(func=cmd_cluster_autoscale)

    p_canary = cluster_sub.add_parser(
        "canary", help="staged traffic shift full -> factorized, gated on shed delta"
    )
    cluster_common(p_canary)
    p_canary.add_argument("--phases", default="400x120", metavar="RATExDUR,...")
    p_canary.add_argument("--steps", default="0.05,0.25,0.5,1.0",
                          help="canary traffic fractions, comma-separated")
    p_canary.add_argument("--windows-per-step", type=int, default=3)
    p_canary.add_argument("--tolerance", type=float, default=0.01,
                          help="max allowed canary-minus-baseline shed delta")
    p_canary.add_argument("--profile-full", default=None, metavar="JSON")
    p_canary.add_argument("--profile-factorized", default=None, metavar="JSON")
    p_canary.add_argument("--allow-rollback", action="store_true",
                          help="exit 0 even when the rollout rolls back")
    p_canary.set_defaults(func=cmd_cluster_canary)

    p_lifecycle = sub.add_parser(
        "lifecycle",
        help="train -> factorize -> deploy pipeline: online re-factorization, "
             "checkpoint promotion, canary deployment",
    )
    lifecycle_sub = p_lifecycle.add_subparsers(dest="lifecycle_command", required=True)

    p_lrun = lifecycle_sub.add_parser(
        "run",
        help="seeded pipeline: warm-up with spectrum monitoring, per-layer "
             "factorization, low-rank fine-tune with online re-factorization",
    )
    common(p_lrun)
    p_lrun.add_argument("--samples", type=int, default=96,
                        help="synthetic training examples")
    p_lrun.add_argument("--val-samples", type=int, default=32)
    p_lrun.add_argument("--batch-size", type=int, default=32)
    p_lrun.add_argument("--lr", type=float, default=0.05)
    p_lrun.add_argument("--momentum", type=float, default=0.9)
    p_lrun.add_argument("--warmup-epochs", type=int, default=2,
                        help="full-rank epochs before factorization")
    p_lrun.add_argument("--epochs", type=int, default=4,
                        help="total epochs (warm-up + low-rank fine-tune)")
    p_lrun.add_argument("--recheck-every", type=int, default=1,
                        help="low-rank-phase spectra recheck cadence in epochs")
    p_lrun.add_argument("--energy-threshold", type=float, default=0.9,
                        help="retained spectral energy targeted per layer")
    p_lrun.add_argument("--min-rank", type=int, default=1)
    p_lrun.add_argument("--max-ratio", type=float, default=1.0,
                        help="per-layer rank cap as a fraction of full rank")
    p_lrun.add_argument("--hysteresis", type=int, default=2,
                        help="rank drift tolerated before re-factorizing")
    p_lrun.add_argument("--workers", type=int, default=1,
                        help=">1 trains under simulated DDP with full-resync "
                             "accounting on every re-factorization")
    p_lrun.add_argument("--checkpoint", default=None, metavar="NPZ",
                        help="save the trained hybrid + lineage metadata here")
    p_lrun.add_argument("--out", default=None, metavar="JSON",
                        help="write the run record (summary + lineage) for "
                             "`lifecycle promote`")
    p_lrun.add_argument("--registry-dir", default=None, metavar="DIR",
                        help="also promote the run into this registry")
    p_lrun.add_argument("--name", default=None,
                        help="registry name for --registry-dir (default: model)")
    p_lrun.set_defaults(func=cmd_lifecycle_run)

    p_lpromote = lifecycle_sub.add_parser(
        "promote",
        help="version a run's checkpoint into the promotion registry with lineage",
    )
    p_lpromote.add_argument("--run", required=True, metavar="JSON",
                            help="run record written by `lifecycle run --out`")
    p_lpromote.add_argument("--registry-dir", required=True, metavar="DIR")
    p_lpromote.add_argument("--checkpoint", default=None, metavar="NPZ",
                            help="override the checkpoint path in the run record")
    p_lpromote.add_argument("--name", default=None,
                            help="registry name (default: the lineage's model)")
    p_lpromote.set_defaults(func=cmd_lifecycle_promote)

    p_ldeploy = lifecycle_sub.add_parser(
        "deploy",
        help="stage a promoted checkpoint through the cluster canary "
             "(full -> factorized hot-swap with rollback)",
    )
    p_ldeploy.add_argument("--registry-dir", required=True, metavar="DIR")
    p_ldeploy.add_argument("--name", required=True,
                           help="promoted checkpoint name in the registry")
    p_ldeploy.add_argument("--version", type=int, default=None,
                           help="checkpoint version (default: latest)")
    p_ldeploy.add_argument("--phases", default="220x120", metavar="RATExDUR,...")
    p_ldeploy.add_argument("--window", type=float, default=10.0,
                           help="canary evaluation window in modeled seconds")
    p_ldeploy.add_argument("--seed", type=int, default=0)
    p_ldeploy.add_argument("--steps", default="0.05,0.25,0.5,1.0",
                           help="canary traffic fractions, comma-separated")
    p_ldeploy.add_argument("--windows-per-step", type=int, default=3)
    p_ldeploy.add_argument("--tolerance", type=float, default=0.01,
                           help="max allowed canary-minus-baseline shed delta")
    p_ldeploy.add_argument("--slo-ms", type=float, default=150.0)
    p_ldeploy.add_argument("--max-batch", type=int, default=16)
    p_ldeploy.add_argument("--max-wait-ms", type=float, default=10.0)
    p_ldeploy.add_argument("--degrade-factor", type=float, default=1.0,
                           help="scale canary latencies to inject a regression "
                                "(exercises the rollback path)")
    p_ldeploy.add_argument("--profile-full", default=None, metavar="JSON",
                           help="baseline latency profile (default: pinned)")
    p_ldeploy.add_argument("--profile-factorized", default=None, metavar="JSON",
                           help="canary latency profile (default: pinned)")
    p_ldeploy.add_argument("--allow-rollback", action="store_true",
                           help="exit 0 even when the rollout rolls back")
    p_ldeploy.add_argument("--out", default=None, metavar="JSON",
                           help="write the deployment report")
    p_ldeploy.add_argument("--gateway", action="store_true",
                           help="after a promoted verdict, boot the HTTP gateway "
                                "on the promoted checkpoint")
    p_ldeploy.add_argument("--host", default="127.0.0.1")
    p_ldeploy.add_argument("--port", type=int, default=8123,
                           help="gateway listen port (0 picks a free one)")
    p_ldeploy.add_argument("--replicas", type=int, default=1)
    p_ldeploy.add_argument("--duration", type=float, default=None,
                           help="gateway: stop after this many seconds")
    p_ldeploy.add_argument("--ready-file", default=None, metavar="PATH")
    p_ldeploy.set_defaults(func=cmd_lifecycle_deploy)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "backend", None):
        tensor_backend.set_backend(args.backend)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
