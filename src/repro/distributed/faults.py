"""Seeded fault injection for the distributed simulator.

The simulator's cost models assume a perfect cluster; real EC2 runs (the
paper's testbed) see stragglers, transient link degradation, dropped
messages and whole-worker failures.  This module adds those as a
composable, *deterministic* layer:

* :class:`FaultSpec` — declarative description of the failure scenario
  (straggler distribution, link degradation, drop/timeout/retry, worker
  failure + recovery policy), parseable from a compact CLI string or JSON
  via :func:`parse_fault_spec`.
* :class:`FaultInjector` — the stateful runtime: every injected event is
  drawn from an RNG keyed on ``(seed, event kind, iteration, entity)``, so
  a given seed produces the *same* faults regardless of query order, world
  size of unrelated draws, or how many epochs ran before.  Two runs with
  the same seed yield byte-identical event timelines.

Every event lands in the injector's event log and — when metric
collection is on — in the :mod:`repro.observability` registry under
``faults.injected``, ``faults.retries``, ``faults.backoff_ms`` and the
``faults.recovery_time`` histogram.  With no spec attached the simulator
takes its pre-existing code paths untouched (zero-overhead off path).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

import numpy as np

from ..observability import metrics as _metrics
from .errors import CollectiveTimeoutError, FaultSpecError

__all__ = [
    "StragglerSpec",
    "LinkSpec",
    "DropSpec",
    "FailureSpec",
    "FaultSpec",
    "FaultEvent",
    "FaultInjector",
    "parse_fault_spec",
    "as_injector",
]

STRAGGLER_KINDS = ("none", "constant", "lognormal", "heavytail")
RECOVERY_POLICIES = ("rejoin", "shrink")

# Stable event-kind ids mixed into the RNG key.  Appending new kinds is
# fine; renumbering existing ones would silently change every seeded
# scenario, so never reorder.
_KIND_IDS = {"straggler": 1, "link": 2, "drop": 3, "failure": 4}


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StragglerSpec:
    """Per-worker compute slowdown.

    ``kind`` picks the multiplier distribution applied to a straggling
    worker's measured compute time for one iteration:

    * ``constant``  — ``1 + scale``
    * ``lognormal`` — ``1 + scale · LogNormal(0, sigma)``
    * ``heavytail`` — ``1 + scale · Pareto(sigma)`` (``sigma`` = shape α)

    ``prob`` is the per worker-iteration probability of straggling.
    """

    kind: str = "none"
    prob: float = 0.0
    scale: float = 1.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in STRAGGLER_KINDS:
            raise FaultSpecError(f"unknown straggler kind {self.kind!r}")
        if not 0.0 <= self.prob <= 1.0:
            raise FaultSpecError("straggler prob must be in [0, 1]")
        if self.scale < 0 or self.sigma <= 0:
            raise FaultSpecError("straggler scale must be >= 0 and sigma > 0")


@dataclass(frozen=True)
class LinkSpec:
    """Transient link degradation episodes.

    Each iteration independently starts an episode with probability
    ``prob``; while any episode started in the last ``duration`` iterations
    is live, every link runs at ``factor`` of nominal bandwidth.
    """

    prob: float = 0.0
    factor: float = 0.25
    duration: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise FaultSpecError("link prob must be in [0, 1]")
        if not 0.0 < self.factor <= 1.0:
            raise FaultSpecError("link factor must be in (0, 1]")
        if self.duration < 1:
            raise FaultSpecError("link duration must be >= 1 iteration")


@dataclass(frozen=True)
class DropSpec:
    """Message drop/timeout with retry + exponential backoff.

    Each logical message independently drops with probability ``prob``;
    a dropped message costs ``timeout_s`` (the sender waits it out), then
    a backoff of ``backoff_base_s · backoff_multiplier**attempt`` before
    resending.  After ``max_retries`` failed resends the collective raises
    :class:`~repro.distributed.errors.CollectiveTimeoutError`.
    """

    prob: float = 0.0
    max_retries: int = 3
    timeout_s: float = 0.05
    backoff_base_s: float = 0.01
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise FaultSpecError("drop prob must be in [0, 1]")
        if self.max_retries < 0:
            raise FaultSpecError("max_retries must be >= 0")
        if self.timeout_s < 0 or self.backoff_base_s < 0:
            raise FaultSpecError("timeout/backoff must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise FaultSpecError("backoff_multiplier must be >= 1")


@dataclass(frozen=True)
class FailureSpec:
    """Whole-worker failure with a configurable recovery policy.

    * ``rejoin`` — the worker misses the failing iteration, then rejoins
      from a checkpoint: the run is charged ``recovery_s`` of downtime plus
      one model broadcast.
    * ``shrink`` — the worker leaves permanently; the ring shrinks and the
      remaining workers carry on (smaller world size, fewer shards).
    """

    prob: float = 0.0
    recovery: str = "rejoin"
    recovery_s: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise FaultSpecError("failure prob must be in [0, 1]")
        if self.recovery not in RECOVERY_POLICIES:
            raise FaultSpecError(
                f"unknown recovery policy {self.recovery!r} "
                f"(expected one of {RECOVERY_POLICIES})"
            )
        if self.recovery_s < 0:
            raise FaultSpecError("recovery_s must be >= 0")


@dataclass(frozen=True)
class FaultSpec:
    """Complete failure scenario: seed + the four fault dimensions."""

    seed: int = 0
    straggler: StragglerSpec = field(default_factory=StragglerSpec)
    link: LinkSpec = field(default_factory=LinkSpec)
    drop: DropSpec = field(default_factory=DropSpec)
    failure: FailureSpec = field(default_factory=FailureSpec)

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise FaultSpecError("seed must be >= 0")

    @property
    def active(self) -> bool:
        """True if any fault dimension can actually fire."""
        return (
            (self.straggler.kind != "none" and self.straggler.prob > 0)
            or self.link.prob > 0
            or self.drop.prob > 0
            or self.failure.prob > 0
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        d = dict(d)
        unknown = set(d) - {"seed", "straggler", "link", "drop", "failure"}
        if unknown:
            raise FaultSpecError(f"unknown fault spec keys: {sorted(unknown)}")
        try:
            return cls(
                seed=int(d.get("seed", 0)),
                straggler=StragglerSpec(**d.get("straggler", {})),
                link=LinkSpec(**d.get("link", {})),
                drop=DropSpec(**d.get("drop", {})),
                failure=FailureSpec(**d.get("failure", {})),
            )
        except TypeError as e:  # unexpected field inside a section
            raise FaultSpecError(str(e)) from e


# ---------------------------------------------------------------------------
# Compact CLI grammar
# ---------------------------------------------------------------------------

# repro simulate --faults "seed=42,straggler=lognormal:0.2:1.5,drop=0.01,
#                          link=0.05:0.25:3,failure=0.002:shrink"
# Colon-separated positional fields per key; trailing fields optional.


def _floats(parts: list[str], n: int, what: str) -> list[float]:
    if len(parts) > n:
        raise FaultSpecError(f"too many fields for {what!r}: {parts}")
    try:
        return [float(p) for p in parts]
    except ValueError as e:
        raise FaultSpecError(f"bad numeric field in {what!r}: {parts}") from e


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse a fault spec from JSON (inline, or a ``.json`` file path) or
    the compact ``key=value[:field...]`` comma grammar described in
    ``docs/FAULTS.md``."""
    text = text.strip()
    if not text:
        raise FaultSpecError("empty fault spec")
    if text.startswith("{"):
        return FaultSpec.from_dict(json.loads(text))
    if text.endswith(".json") or os.path.exists(text):
        with open(text) as f:
            return FaultSpec.from_dict(json.load(f))

    out: dict = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise FaultSpecError(f"expected key=value, got {item!r}")
        key, _, value = item.partition("=")
        key = key.strip()
        fields = [v.strip() for v in value.split(":")]
        if key == "seed":
            try:
                out["seed"] = int(fields[0])
            except ValueError as e:
                raise FaultSpecError(f"bad seed {value!r}") from e
        elif key == "straggler":
            kind = fields[0]
            nums = _floats(fields[1:], 3, "straggler")
            spec = {"kind": kind}
            for name, v in zip(("prob", "scale", "sigma"), nums):
                spec[name] = v
            if kind != "none" and "prob" not in spec:
                spec["prob"] = 1.0  # bare "straggler=constant" always fires
            out["straggler"] = spec
        elif key == "drop":
            nums = _floats(fields[:1], 1, "drop")
            spec = {"prob": nums[0]}
            if len(fields) > 1:
                try:
                    spec["max_retries"] = int(fields[1])
                except ValueError as e:
                    raise FaultSpecError(f"bad max_retries {fields[1]!r}") from e
            for name, v in zip(
                ("timeout_s", "backoff_base_s"), _floats(fields[2:], 2, "drop")
            ):
                spec[name] = v
            out["drop"] = spec
        elif key == "link":
            nums = _floats(fields, 3, "link")
            spec = {"prob": nums[0]}
            if len(nums) > 1:
                spec["factor"] = nums[1]
            if len(nums) > 2:
                spec["duration"] = int(nums[2])
            out["link"] = spec
        elif key == "failure":
            nums = _floats(fields[:1], 1, "failure")
            spec = {"prob": nums[0]}
            if len(fields) > 1:
                spec["recovery"] = fields[1]
            if len(fields) > 2:
                spec["recovery_s"] = _floats(fields[2:3], 1, "failure")[0]
            out["failure"] = spec
        else:
            raise FaultSpecError(f"unknown fault spec key {key!r}")
    return FaultSpec.from_dict(out)


# ---------------------------------------------------------------------------
# Runtime
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, in modeled (not wall-clock) units."""

    kind: str  # straggler | link | drop | failure | recovery | timeout
    iteration: int
    entity: int  # worker id, link id, or message index (-1 = cluster-wide)
    value: float  # multiplier, factor, backoff seconds, recovery seconds...
    attrs: tuple = ()  # extra (key, value) pairs, hashable & deterministic

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "iteration": self.iteration,
            "entity": self.entity,
            "value": self.value,
            **dict(self.attrs),
        }


class FaultInjector:
    """Draws faults from a :class:`FaultSpec`, fully determined by the seed.

    Every decision uses a fresh generator keyed on
    ``(seed, kind, iteration, entity[, attempt])`` — counter-based rather
    than sequential — so results do not depend on how many *other* draws
    happened first.  The event log therefore replays byte-identically for
    a fixed seed, whatever the caller's query pattern.
    """

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.events: list[FaultEvent] = []
        self._pending_penalty_s = 0.0
        self._link_cache: dict[int, float] = {}

    # -- plumbing -------------------------------------------------------

    def _rng(self, kind: str, *key: int) -> np.random.Generator:
        return np.random.default_rng((self.spec.seed, _KIND_IDS[kind], *key))

    def _record(self, event: FaultEvent) -> None:
        self.events.append(event)
        if _metrics.COLLECT:
            _metrics.REGISTRY.counter("faults.injected").labels(
                kind=event.kind
            ).inc()

    def timeline(self) -> list[dict]:
        """The full event log as JSON-serializable dicts (stable order)."""
        return [e.as_dict() for e in self.events]

    # -- stragglers -----------------------------------------------------

    def compute_multiplier(self, iteration: int, worker: int) -> float:
        """Slowdown factor (>= 1) for one worker's compute this iteration."""
        s = self.spec.straggler
        if s.kind == "none" or s.prob <= 0.0:
            return 1.0
        rng = self._rng("straggler", iteration, worker)
        if rng.random() >= s.prob:
            return 1.0
        if s.kind == "constant":
            mult = 1.0 + s.scale
        elif s.kind == "lognormal":
            mult = 1.0 + s.scale * rng.lognormal(0.0, s.sigma)
        else:  # heavytail
            mult = 1.0 + s.scale * rng.pareto(s.sigma)
        self._record(FaultEvent("straggler", iteration, worker, mult))
        return mult

    # -- link degradation -----------------------------------------------

    def link_factor(self, iteration: int) -> float:
        """Bandwidth multiplier (<= 1) in effect for this iteration."""
        cached = self._link_cache.get(iteration)
        if cached is not None:
            return cached
        spec = self.spec.link
        factor = 1.0
        if spec.prob > 0.0:
            lo = max(0, iteration - spec.duration + 1)
            degraded = any(
                self._rng("link", j).random() < spec.prob
                for j in range(lo, iteration + 1)
            )
            if degraded:
                factor = spec.factor
                self._record(FaultEvent("link", iteration, -1, factor))
        self._link_cache[iteration] = factor
        return factor

    # -- message drop / retry / backoff ---------------------------------

    def message_penalty(self, op: str, iteration: int, index: int) -> float:
        """Modeled extra seconds for one logical message's drops + backoff.

        Raises :class:`CollectiveTimeoutError` once ``max_retries`` resends
        have all dropped.
        """
        d = self.spec.drop
        if d.prob <= 0.0:
            return 0.0
        penalty = 0.0
        op_id = sum(op.encode())  # stable small int per op name
        for attempt in range(d.max_retries + 1):
            rng = self._rng("drop", iteration, index, attempt, op_id)
            if rng.random() >= d.prob:
                return penalty
            backoff = d.backoff_base_s * d.backoff_multiplier**attempt
            penalty += d.timeout_s + backoff
            self._record(
                FaultEvent(
                    "drop",
                    iteration,
                    index,
                    backoff,
                    attrs=(("op", op), ("attempt", attempt)),
                )
            )
            if _metrics.COLLECT:
                _metrics.REGISTRY.counter("faults.retries").inc()
                _metrics.REGISTRY.counter("faults.backoff_ms").inc(
                    backoff * 1e3
                )
        attempts = d.max_retries + 1
        self._record(
            FaultEvent(
                "timeout", iteration, index, penalty, attrs=(("op", op),)
            )
        )
        raise CollectiveTimeoutError(op, iteration, attempts, penalty)

    def collective_penalty(
        self, op: str, iteration: int, n_messages: int
    ) -> float:
        """Summed drop/retry penalty over a collective's logical messages."""
        return sum(
            self.message_penalty(op, iteration, i) for i in range(n_messages)
        )

    def add_penalty(self, seconds: float) -> None:
        """Bank modeled penalty seconds for the caller that owns the clock
        (collectives do the numerics; the trainer charges the time)."""
        self._pending_penalty_s += seconds

    def drain_penalty(self) -> float:
        """Collect and reset the banked penalty seconds."""
        out = self._pending_penalty_s
        self._pending_penalty_s = 0.0
        return out

    # -- worker failure / recovery --------------------------------------

    def worker_failed(self, iteration: int, worker: int) -> bool:
        f = self.spec.failure
        if f.prob <= 0.0:
            return False
        failed = self._rng("failure", iteration, worker).random() < f.prob
        if failed:
            self._record(
                FaultEvent(
                    "failure",
                    iteration,
                    worker,
                    1.0,
                    attrs=(("recovery", f.recovery),),
                )
            )
        return failed

    def record_recovery(self, iteration: int, worker: int, seconds: float) -> None:
        """Log a completed recovery and its modeled cost."""
        self._record(
            FaultEvent(
                "recovery",
                iteration,
                worker,
                seconds,
                attrs=(("policy", self.spec.failure.recovery),),
            )
        )
        if _metrics.COLLECT:
            _metrics.REGISTRY.histogram("faults.recovery_time").observe(seconds)

    # -- summary ---------------------------------------------------------

    def summary(self) -> dict:
        """Aggregate event counts + modeled seconds, for CLI/benchmark output."""
        by_kind: dict[str, int] = {}
        backoff_s = 0.0
        recovery_s = 0.0
        for e in self.events:
            by_kind[e.kind] = by_kind.get(e.kind, 0) + 1
            if e.kind == "drop":
                backoff_s += e.value
            elif e.kind == "recovery":
                recovery_s += e.value
        return {
            "events": len(self.events),
            "by_kind": by_kind,
            "retries": by_kind.get("drop", 0),
            "backoff_s": backoff_s,
            "recovery_s": recovery_s,
        }


def as_injector(faults) -> FaultInjector | None:
    """Coerce ``None`` / :class:`FaultSpec` / :class:`FaultInjector`."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultSpec):
        return FaultInjector(faults)
    if isinstance(faults, dict):
        return FaultInjector(FaultSpec.from_dict(faults))
    raise FaultSpecError(f"cannot build a fault injector from {type(faults).__name__}")
