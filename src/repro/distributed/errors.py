"""Typed exception hierarchy for the distributed simulator.

A collective that exhausts its retry budget must fail loudly with a
:class:`CollectiveTimeoutError` — never hang or hand back a partial sum —
so chaos tests can assert the failure mode and callers can implement
their own recovery policy on top.
"""

from __future__ import annotations

__all__ = [
    "DistributedError",
    "FaultSpecError",
    "CollectiveTimeoutError",
    "AllWorkersLostError",
]


class DistributedError(Exception):
    """Base class for every error raised by :mod:`repro.distributed`."""


class FaultSpecError(DistributedError, ValueError):
    """A fault-injection spec string/dict could not be parsed or validated."""


class CollectiveTimeoutError(DistributedError, TimeoutError):
    """A collective exhausted its retry budget for one logical message.

    Attributes
    ----------
    op: collective name (``"allreduce"``, ``"allgather"``, ``"push"``, ...).
    iteration: simulator iteration the collective ran in.
    attempts: total send attempts made (1 initial + retries).
    elapsed_s: modeled seconds burnt on timeouts + backoff before giving up.
    """

    def __init__(self, op: str, iteration: int, attempts: int, elapsed_s: float):
        self.op = op
        self.iteration = iteration
        self.attempts = attempts
        self.elapsed_s = elapsed_s
        super().__init__(
            f"collective {op!r} timed out at iteration {iteration} after "
            f"{attempts} attempts ({elapsed_s:.3f}s of timeouts/backoff)"
        )


class AllWorkersLostError(DistributedError, RuntimeError):
    """Every worker in the simulated cluster failed; training cannot continue."""

    def __init__(self, iteration: int):
        self.iteration = iteration
        super().__init__(f"all workers failed by iteration {iteration}")
