"""Numerically exact collectives over simulated workers, plus the flat
gradient buffer used by the paper's single-allreduce optimization
(Section 4.1: pack all gradient tensors into one buffer → one allreduce
per iteration, amortizing the per-call latency)."""

from __future__ import annotations

import numpy as np

from ..nn.module import Parameter
from ..observability import metrics as _metrics

__all__ = [
    "allreduce_mean",
    "allgather",
    "flatten_arrays",
    "unflatten_vector",
    "gradient_vector",
    "assign_gradient_vector",
]


def allreduce_mean(worker_vectors: list[np.ndarray]) -> np.ndarray:
    """Element-wise mean across workers (the semantic of DDP's allreduce)."""
    if not worker_vectors:
        raise ValueError("no worker vectors")
    if _metrics.COLLECT:
        _metrics.REGISTRY.counter("allreduce_calls").inc()
        _metrics.REGISTRY.counter("bytes_moved").inc(
            sum(int(v.nbytes) for v in worker_vectors)
        )
    out = worker_vectors[0].astype(np.float64)
    for v in worker_vectors[1:]:
        out += v
    return (out / len(worker_vectors)).astype(worker_vectors[0].dtype)


def allgather(worker_payloads: list) -> list:
    """Every worker receives every payload (identity here; cost is modeled
    separately)."""
    if _metrics.COLLECT:
        _metrics.REGISTRY.counter("allgather_calls").inc()
        _metrics.REGISTRY.counter("bytes_moved").inc(
            sum(int(getattr(p, "nbytes", 0)) for p in worker_payloads)
        )
    return list(worker_payloads)


def flatten_arrays(arrays: list[np.ndarray]) -> np.ndarray:
    """Concatenate arrays into one contiguous float32 vector."""
    return np.concatenate([a.reshape(-1) for a in arrays]).astype(np.float32, copy=False)


def unflatten_vector(vec: np.ndarray, shapes: list[tuple[int, ...]]) -> list[np.ndarray]:
    """Split a flat vector back into arrays with the given shapes."""
    out = []
    offset = 0
    for shape in shapes:
        size = int(np.prod(shape))
        out.append(vec[offset : offset + size].reshape(shape))
        offset += size
    if offset != vec.size:
        raise ValueError(f"vector size {vec.size} != total shape size {offset}")
    return out


def gradient_vector(params: list[Parameter]) -> np.ndarray:
    """Flat buffer of all parameter gradients (zeros where grad is None)."""
    parts = [
        (p.grad if p.grad is not None else np.zeros_like(p.data)).reshape(-1)
        for p in params
    ]
    return np.concatenate(parts).astype(np.float32, copy=False)


def assign_gradient_vector(params: list[Parameter], vec: np.ndarray) -> None:
    """Scatter a flat gradient buffer back onto the parameters."""
    offset = 0
    for p in params:
        size = p.data.size
        p.grad = vec[offset : offset + size].reshape(p.data.shape).copy()
        offset += size
    if offset != vec.size:
        raise ValueError("gradient vector does not match parameter sizes")
