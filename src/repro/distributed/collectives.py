"""Numerically exact collectives over simulated workers, plus the flat
gradient buffer used by the paper's single-allreduce optimization
(Section 4.1: pack all gradient tensors into one buffer → one allreduce
per iteration, amortizing the per-call latency).

Two families:

* :func:`allreduce_mean` / :func:`allgather` — semantic collectives: the
  mathematical result, computed directly (cost is modeled separately in
  :mod:`repro.distributed.cost_model`).
* :func:`ring_allreduce_mean` / :func:`ring_allgather` — the *actual*
  ring algorithms, executed step by step with ``np.array_split`` chunking
  (so non-divisible payloads work), used by the chaos/property suites to
  prove the simulated wire protocol is exact.

Every collective takes an optional ``faults=`` injector
(:class:`repro.distributed.faults.FaultInjector`): logical messages may
then drop and be retried with exponential backoff; the modeled penalty
seconds are banked on the injector (``drain_penalty``) for whichever
caller owns the simulated clock, and exhausting the retry budget raises
:class:`~repro.distributed.errors.CollectiveTimeoutError` instead of
hanging or returning a partial sum.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Parameter
from ..observability import metrics as _metrics

__all__ = [
    "allreduce_mean",
    "bucketed_allreduce_mean",
    "allgather",
    "ring_allreduce_mean",
    "ring_allgather",
    "flatten_arrays",
    "unflatten_vector",
    "gradient_vector",
    "assign_gradient_vector",
]


def _charge_faults(faults, op: str, iteration: int, n_messages: int) -> None:
    """Draw drop/retry outcomes for a collective's logical messages and
    bank the penalty seconds on the injector."""
    if faults is not None:
        faults.add_penalty(faults.collective_penalty(op, iteration, n_messages))


def allreduce_mean(
    worker_vectors: list[np.ndarray],
    *,
    faults=None,
    iteration: int = 0,
) -> np.ndarray:
    """Element-wise mean across workers (the semantic of DDP's allreduce)."""
    if not worker_vectors:
        raise ValueError("no worker vectors")
    if _metrics.COLLECT:
        _metrics.REGISTRY.counter("allreduce_calls").inc()
        _metrics.REGISTRY.counter("bytes_moved").inc(
            sum(int(v.nbytes) for v in worker_vectors)
        )
    # One allreduce = 2(p-1) synchronous ring steps; any dropped step
    # stalls the whole ring.
    _charge_faults(faults, "allreduce", iteration, 2 * (len(worker_vectors) - 1))
    out = worker_vectors[0].astype(np.float64)
    for v in worker_vectors[1:]:
        out += v
    return (out / len(worker_vectors)).astype(worker_vectors[0].dtype)


def bucketed_allreduce_mean(
    worker_vectors: list[np.ndarray],
    buckets,
    *,
    out: np.ndarray | None = None,
    faults=None,
    iteration: int = 0,
) -> np.ndarray:
    """Per-bucket elementwise mean over flat worker vectors.

    ``buckets`` is any sequence of objects with ``offset``/``size``
    element slices (e.g. :class:`repro.distributed.overlap.Bucket`) that
    must tile each vector exactly.  Because :func:`allreduce_mean`
    accumulates in float64 *elementwise* in worker order, slicing the
    reduction into buckets is bit-exact vs one monolithic call — the
    property the overlap simulator's correctness rests on.
    """
    if not worker_vectors:
        raise ValueError("no worker vectors")
    size = worker_vectors[0].size
    spans = sorted((int(b.offset), int(b.size)) for b in buckets)
    expected = 0
    for off, length in spans:
        if off != expected:
            raise ValueError("buckets must tile the vector exactly")
        expected = off + length
    if expected != size:
        raise ValueError(f"buckets cover {expected} elements, vectors have {size}")
    if out is None:
        out = np.empty_like(worker_vectors[0])
    for b in buckets:
        sl = slice(int(b.offset), int(b.offset) + int(b.size))
        out[sl] = allreduce_mean(
            [v[sl] for v in worker_vectors], faults=faults, iteration=iteration
        )
    return out


def allgather(worker_payloads: list, *, faults=None, iteration: int = 0) -> list:
    """Every worker receives every payload (identity here; cost is modeled
    separately)."""
    if _metrics.COLLECT:
        _metrics.REGISTRY.counter("allgather_calls").inc()
        _metrics.REGISTRY.counter("bytes_moved").inc(
            sum(int(getattr(p, "nbytes", 0)) for p in worker_payloads)
        )
    _charge_faults(faults, "allgather", iteration, max(len(worker_payloads) - 1, 0))
    return list(worker_payloads)


# ---------------------------------------------------------------------------
# Step-by-step ring algorithms (exact, chunked, fault-aware)
# ---------------------------------------------------------------------------


def ring_allreduce_mean(
    worker_vectors: list[np.ndarray],
    *,
    faults=None,
    iteration: int = 0,
) -> list[np.ndarray]:
    """Execute the 2(p-1)-step ring allreduce and return every worker's
    resulting mean vector (all identical, in each input's dtype).

    Reduce-scatter then allgather over ``p`` chunks from
    ``np.array_split`` — chunk sizes may differ by one, so arbitrary
    (including non-divisible and empty-chunk) payload sizes work.

    Messages carry per-rank provenance and the final reduction sums
    contributions in rank order, so the result is bit-identical to the
    semantic :func:`allreduce_mean` on every worker — and a schedule bug
    (a contribution delivered twice or never) trips an internal check
    instead of silently perturbing the mean.
    """
    if not worker_vectors:
        raise ValueError("no worker vectors")
    p = len(worker_vectors)
    shape = worker_vectors[0].shape
    for v in worker_vectors[1:]:
        if v.shape != shape:
            raise ValueError("all worker vectors must share a shape")
    if _metrics.COLLECT:
        _metrics.REGISTRY.counter("allreduce_calls").inc()
        _metrics.REGISTRY.counter("bytes_moved").inc(
            sum(int(v.nbytes) for v in worker_vectors)
        )
    dtype = worker_vectors[0].dtype
    if p == 1:
        return [worker_vectors[0].copy()]
    _charge_faults(faults, "ring_allreduce", iteration, 2 * (p - 1))

    # buffers[w][c] maps contributing rank -> float64 chunk payload.
    buffers: list[list[dict[int, np.ndarray]]] = [
        [{w: chunk} for chunk in np.array_split(v.reshape(-1).astype(np.float64), p)]
        for w, v in enumerate(worker_vectors)
    ]

    # Reduce-scatter: at step s, worker w sends chunk (w - s) mod p to
    # worker (w + 1) mod p, which merges it.  All sends in a step are
    # simultaneous, so snapshot payloads before mutating.
    for step in range(p - 1):
        payloads = [dict(buffers[w][(w - step) % p]) for w in range(p)]
        for w in range(p):
            dst = (w + 1) % p
            chunk = (w - step) % p
            mine = buffers[dst][chunk]
            if mine.keys() & payloads[w].keys():
                raise AssertionError("ring schedule delivered a chunk twice")
            mine.update(payloads[w])

    # Worker w now owns the fully reduced chunk (w + 1) mod p; rotate the
    # completed chunks around the ring p-1 times.
    for w in range(p):
        if len(buffers[w][(w + 1) % p]) != p:
            raise AssertionError("ring schedule missed a contribution")
    for step in range(p - 1):
        payloads = [buffers[w][(w + 1 - step) % p] for w in range(p)]
        for w in range(p):
            dst = (w + 1) % p
            chunk = (w + 1 - step) % p
            buffers[dst][chunk] = payloads[w]

    def reduce_chunks(chunks: list[dict[int, np.ndarray]]) -> np.ndarray:
        parts = []
        for contributions in chunks:
            acc = contributions[0].copy()
            for rank in range(1, p):
                acc += contributions[rank]
            parts.append(acc)
        return (np.concatenate(parts) / p).astype(dtype).reshape(shape)

    return [reduce_chunks(chunks) for chunks in buffers]


def ring_allgather(
    worker_payloads: list, *, faults=None, iteration: int = 0
) -> list[list]:
    """Execute the (p-1)-step ring allgather; returns each worker's view,
    a list of all payloads in rank order."""
    p = len(worker_payloads)
    if p == 0:
        raise ValueError("no worker payloads")
    if _metrics.COLLECT:
        _metrics.REGISTRY.counter("allgather_calls").inc()
        _metrics.REGISTRY.counter("bytes_moved").inc(
            sum(int(getattr(v, "nbytes", 0)) for v in worker_payloads)
        )
    if p == 1:
        return [list(worker_payloads)]
    _charge_faults(faults, "ring_allgather", iteration, p - 1)

    slots: list[list] = [[None] * p for _ in range(p)]
    for w in range(p):
        slots[w][w] = worker_payloads[w]
    # At step s, worker w forwards slot (w - s) mod p to worker (w+1) mod p.
    for step in range(p - 1):
        payloads = [slots[w][(w - step) % p] for w in range(p)]
        for w in range(p):
            slots[(w + 1) % p][(w - step) % p] = payloads[w]
    return [list(s) for s in slots]


# ---------------------------------------------------------------------------
# Flat gradient buffers
# ---------------------------------------------------------------------------


def flatten_arrays(arrays: list[np.ndarray]) -> np.ndarray:
    """Concatenate arrays into one contiguous float32 vector."""
    return np.concatenate([a.reshape(-1) for a in arrays]).astype(np.float32, copy=False)


def unflatten_vector(vec: np.ndarray, shapes: list[tuple[int, ...]]) -> list[np.ndarray]:
    """Split a flat vector back into arrays with the given shapes."""
    out = []
    offset = 0
    for shape in shapes:
        size = int(np.prod(shape))
        out.append(vec[offset : offset + size].reshape(shape))
        offset += size
    if offset != vec.size:
        raise ValueError(f"vector size {vec.size} != total shape size {offset}")
    return out


def gradient_vector(params: list[Parameter]) -> np.ndarray:
    """Flat buffer of all parameter gradients (zeros where grad is None)."""
    parts = [
        (p.grad if p.grad is not None else np.zeros_like(p.data)).reshape(-1)
        for p in params
    ]
    return np.concatenate(parts).astype(np.float32, copy=False)


def assign_gradient_vector(params: list[Parameter], vec: np.ndarray) -> None:
    """Scatter a flat gradient buffer back onto the parameters."""
    offset = 0
    for p in params:
        size = p.data.size
        p.grad = vec[offset : offset + size].reshape(p.data.shape).copy()
        offset += size
    if offset != vec.size:
        raise ValueError("gradient vector does not match parameter sizes")
