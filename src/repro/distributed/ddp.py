"""Data-parallel training simulator with a per-epoch timeline breakdown.

The simulator executes *real* numerics — each worker's forward/backward on
its own shard, real gradient encoding/decoding, exact averaged updates —
on a single process, while *charging* communication from the α–β cost
model of :mod:`repro.distributed.cost_model`.  Compute, encode and decode
are measured wall-clock (they really run); only the wire time is modeled.
This mirrors how the paper's own analysis separates "computation" from
"communication" in Fig. 4's stacked bars.

Two execution styles:

* :class:`DistributedTrainer` — the paper's prototype implementation:
  gradients flattened into one buffer, a single blocking allreduce per
  iteration (Section 4.1's latency optimization), optional compressor.
* :class:`DDPTimelineModel` — PyTorch-DDP-style bucketed overlap: gradient
  buckets communicate while the backward pass still runs, so the exposed
  communication is ``max(0, comm − backward)`` plus per-bucket latency.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..compression.base import Compressor, NoCompression
from ..nn.module import Module
from ..observability import metrics as _metrics
from ..observability import trace as _trace
from ..optim import Optimizer
from .collectives import allreduce_mean, gradient_vector
from .cost_model import (
    ClusterSpec,
    allgather_cost,
    allreduce_cost,
    broadcast_cost,
    bucket_comm_times,
    pipelined_broadcast_cost,
    ring_allreduce_time,
)
from .errors import AllWorkersLostError
from .faults import as_injector
from .overlap import GradientArrivalRecorder, build_buckets, schedule_overlap

__all__ = ["TimelineBreakdown", "DistributedTrainer", "DDPTimelineModel"]

FLOAT32_BYTES = 4


@dataclass
class TimelineBreakdown:
    """Accumulated per-phase seconds for one epoch (Fig. 4 bars)."""

    compute: float = 0.0
    encode: float = 0.0
    comm: float = 0.0
    decode: float = 0.0
    other: float = 0.0
    iterations: int = 0
    bytes_per_iteration: float = 0.0
    # Counter deltas accumulated over the epoch (allreduce_calls,
    # bytes_moved, macs, ...) when metric collection is enabled.
    metrics: dict = field(default_factory=dict)
    # Fault-injection summary (empty when no injector was attached, so the
    # no-faults breakdown is unchanged).
    faults: dict = field(default_factory=dict)
    # Bucketed-overlap summary (empty unless the trainer ran with
    # ``overlap=True``): raw vs exposed comm seconds, overlap_fraction,
    # bucket count/cap.
    overlap: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.compute + self.encode + self.comm + self.decode + self.other

    def as_dict(self) -> dict:
        out = {
            "compute": self.compute,
            "encode": self.encode,
            "comm": self.comm,
            "decode": self.decode,
            "other": self.other,
            "total": self.total,
        }
        if self.metrics:
            out["metrics"] = dict(self.metrics)
        if self.faults:
            out["faults"] = dict(self.faults)
        if self.overlap:
            out["overlap"] = dict(self.overlap)
        return out


class DistributedTrainer:
    """Synchronous data-parallel SGD over a simulated cluster.

    Parameters
    ----------
    model, optimizer: single authoritative replica (workers share weights —
        exact for synchronous SGD).
    cluster: node count and link parameters — a flat
        :class:`~repro.distributed.cost_model.ClusterSpec` ring or a
        two-level :class:`~repro.distributed.cost_model.HierarchicalSpec`
        (intra-node fast ring + inter-node slow ring); every collective
        charge dispatches on the topology.
    compressor: gradient compressor; default = raw fp32 (vanilla SGD).
    batch_fn: ``(model, batch) -> (loss, metric_sum, count)`` as in
        :class:`repro.core.Trainer`.
    flat_allreduce: pack all tensors into one buffer (Section 4.1).  Only
        meaningful for allreduce-compatible compressors; per-layer calls
        add ``2(p-1)α`` latency per layer.
    faults: optional :class:`~repro.distributed.faults.FaultSpec` (or
        prebuilt injector).  Adds per-worker stragglers, link degradation,
        message drop/retry and whole-worker failure with the spec's
        recovery policy; ``None`` (the default) leaves every code path and
        timing untouched.
    overlap: PyTorch-DDP-style wait-free backprop — size-capped gradient
        buckets allreduce while the backward pass still runs, using each
        parameter's *measured* gradient-arrival time.  Allreduce-compatible
        compressors participate per bucket: each bucket is encoded as soon
        as its gradients arrive, its encode seconds delay that bucket on
        the wire schedule, and the compressed (not raw) bytes are charged
        — the paper's Section 2/6 trade-off made measurable.  Compressors
        whose payloads cannot be summed on a ring (Signum, Top-k, …) must
        wait for the whole gradient and are still rejected.  With the
        default uncompressed path, numerics are bit-identical to the
        monolithic path; only the modeled comm charge changes.
    bucket_mb: bucket size cap in MB (torch DDP's ``bucket_cap_mb``,
        default 25).
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        cluster: ClusterSpec,
        compressor: Compressor | None = None,
        batch_fn=None,
        loss_fn=None,
        flat_allreduce: bool = True,
        faults=None,
        overlap: bool = False,
        bucket_mb: float = 25.0,
    ):
        from ..core.trainer import classification_batch
        from ..nn import CrossEntropyLoss

        self.model = model
        self.optimizer = optimizer
        self.cluster = cluster
        self.compressor = compressor or NoCompression(cluster.num_nodes)
        self.loss_fn = loss_fn or CrossEntropyLoss()
        self.batch_fn = batch_fn or (
            lambda m, b: classification_batch(m, b, self.loss_fn)
        )
        self.flat_allreduce = flat_allreduce
        self.overlap = bool(overlap)
        self.bucket_bytes = float(bucket_mb) * 1e6
        if self.overlap and not self.compressor.allreduce_compatible:
            raise ValueError(
                "overlap=True requires an allreduce-compatible compressor: "
                "payloads that cannot be summed on a ring (sign/top-k/"
                "sampled encodings) allgather the whole gradient at once, "
                "so their communication cannot overlap the backward pass"
            )
        # Buckets are built lazily from the optimizer's parameter list
        # (reverse layer order, contiguous slices of the flat vector).
        self._buckets = None
        # Per-iteration modeled bucket timelines (appended across epochs).
        self.overlap_events: list[dict] = []
        self.faults = as_injector(faults)
        # Workers currently in the ring (shrink-mode failures leave
        # permanently; rejoin-mode failures miss one iteration).
        self._active: list[int] = list(range(cluster.world_size))
        self._rejoining: list[int] = []
        self._global_iteration = 0

    # ------------------------------------------------------------------

    def _comm_time(
        self,
        nbytes: float,
        n_messages: int,
        degradation: float = 1.0,
        world: int | None = None,
    ) -> float:
        """Wire time for one worker's payload of ``nbytes``."""
        cluster = self.cluster
        if world is not None and world != cluster.world_size:
            cluster = cluster.with_world(world)
        if self.compressor.allreduce_compatible:
            if _metrics.COLLECT:
                _metrics.REGISTRY.counter("allreduce_calls").inc(n_messages)
            per_message = nbytes / max(n_messages, 1)
            return sum(
                allreduce_cost(per_message, cluster, degradation)
                for _ in range(n_messages)
            )
        if _metrics.COLLECT:
            _metrics.REGISTRY.counter("allgather_calls").inc()
        return allgather_cost(nbytes, cluster, degradation)

    def _model_bytes(self) -> float:
        return sum(p.data.size for p in self.optimizer.params) * FLOAT32_BYTES

    def _apply_failures(self, iteration: int, timeline: TimelineBreakdown) -> None:
        """Draw worker failures for this iteration and charge recovery."""
        injector = self.faults
        spec = injector.spec.failure
        # Rejoin-mode workers that failed last iteration come back first.
        if self._rejoining:
            self._active = sorted(self._active + self._rejoining)
            self._rejoining = []
        for w in list(self._active):
            if not injector.worker_failed(iteration, w):
                continue
            self._active.remove(w)
            if spec.recovery == "rejoin":
                # The ring stalls while the worker reloads the checkpoint
                # and receives the current model.  With overlap enabled the
                # state transfer reuses the bucket tiling and pipelines the
                # tiles down the broadcast tree, instead of paying the
                # monolithic store-and-forward cost at every tree level.
                if self.overlap:
                    wire = pipelined_broadcast_cost(
                        [b.nbytes for b in self._ensure_buckets()], self.cluster
                    )
                else:
                    wire = broadcast_cost(self._model_bytes(), self.cluster)
                recovery = spec.recovery_s + wire
                timeline.other += recovery
                injector.record_recovery(iteration, w, recovery)
                self._rejoining.append(w)
        if not self._active:
            raise AllWorkersLostError(iteration)

    def _ensure_buckets(self):
        if self._buckets is None:
            self._buckets = build_buckets(
                [p.data.size for p in self.optimizer.params], self.bucket_bytes
            )
        return self._buckets

    def _overlap_iteration(
        self, batches, active, iteration: int, timeline: TimelineBreakdown
    ) -> None:
        """One iteration with bucketed allreduce overlapping backward.

        Fault-RNG parity with the monolithic path is deliberate: the same
        ``compute_multiplier`` / ``link_factor`` / ``collective_penalty``
        draws happen with the same keys, so a fixed seed produces an
        identical fault event timeline with and without overlap.  Drop
        penalties stall the whole synchronous ring, so they land once per
        iteration as a tail penalty rather than per bucket.
        """
        params = self.optimizer.params
        injector = self.faults
        buckets = self._ensure_buckets()
        world = len(active)

        # --- compute phase: measured backward + per-bucket readiness ---
        worker_flat: list[np.ndarray] = []
        worker_compute: list[float] = []
        worker_ready: list[list[float]] = []
        gather_elapsed = 0.0
        with _trace.span("ddp.compute", iteration=timeline.iterations):
            for w in active:
                self.optimizer.zero_grad()
                with GradientArrivalRecorder(params) as rec:
                    loss, _, _ = self.batch_fn(self.model, batches[w])
                    loss.backward()
                mult = 1.0
                if injector is not None:
                    mult = injector.compute_multiplier(iteration, w)
                worker_compute.append(rec.total * mult)
                arrivals = rec.arrival_times()
                # A bucket is ready when its *last* gradient arrived; a
                # straggler's clock stretches uniformly.
                worker_ready.append(
                    [
                        max(arrivals[i] for i in b.param_indices) * mult
                        for b in buckets
                    ]
                )
                t0 = time.perf_counter()
                worker_flat.append(gradient_vector(params))
                gather_elapsed += time.perf_counter() - t0
        backward_end = max(worker_compute)
        timeline.compute += backward_end
        # Flattening into the wire buffer plays the encode role and runs
        # in parallel across workers, as in the monolithic path.
        timeline.encode += gather_elapsed / len(worker_flat)

        # --- modeled bucket schedule --------------------------------------
        degradation = injector.link_factor(iteration) if injector is not None else 1.0
        cluster = self.cluster
        if world != cluster.world_size:
            cluster = cluster.with_world(world)
        comm_times = bucket_comm_times(
            [b.nbytes for b in buckets], cluster, degradation
        )
        tail = 0.0
        if injector is not None:
            # Same RNG keys as the monolithic allreduce: one draw per ring
            # step per iteration, regardless of bucketing.
            tail = injector.collective_penalty(
                "allreduce", iteration, 2 * max(world - 1, 0)
            )
            tail += injector.drain_penalty()
        ready = [max(wr[j] for wr in worker_ready) for j in range(len(buckets))]
        sched = schedule_overlap(ready, comm_times, backward_end, tail_penalty=tail)
        # Only the exposed (non-hidden) communication reaches the clock.
        timeline.comm += sched.exposed
        nbytes = worker_flat[0].nbytes
        timeline.bytes_per_iteration = nbytes
        if _metrics.COLLECT:
            _metrics.REGISTRY.counter("ddp.wire_bytes").inc(int(nbytes) * world)

        # --- exact numerics: per-bucket mean (bit-exact vs monolithic) ----
        agg = np.empty_like(worker_flat[0])
        t0 = time.perf_counter()
        for b, ev, comm in zip(buckets, sched.events, comm_times):
            with _trace.span(
                "ddp.bucket",
                iteration=timeline.iterations,
                bucket=b.index,
                nbytes=b.nbytes,
                ready_s=ev.ready,
                start_s=ev.start,
                end_s=ev.end,
            ):
                sl = slice(b.offset, b.offset + b.size)
                agg[sl] = allreduce_mean([v[sl] for v in worker_flat])
        timeline.decode += time.perf_counter() - t0

        self.overlap_events.append(
            {
                "iteration": iteration,
                "backward_end_s": backward_end,
                "comm_total_s": sched.comm_total,
                "comm_exposed_s": sched.exposed,
                "tail_penalty_s": tail,
                "buckets": [
                    {**ev.as_dict(), "nbytes": b.nbytes, "comm_s": comm}
                    for b, ev, comm in zip(buckets, sched.events, comm_times)
                ],
            }
        )

        # --- apply ---------------------------------------------------------
        with _trace.span("ddp.step", iteration=timeline.iterations):
            offset = 0
            for p in params:
                size = p.data.size
                p.grad = agg[offset : offset + size].reshape(p.data.shape)
                offset += size
            step_flat = getattr(self.optimizer, "step_flat", None)
            if step_flat is not None:
                step_flat(agg)
            else:
                self.optimizer.step()

    def _compressed_overlap_iteration(
        self, batches, active, iteration: int, timeline: TimelineBreakdown
    ) -> None:
        """One iteration with per-bucket compression inside the overlap.

        Each bucket is encoded as soon as its gradients arrive (the encode
        seconds delay that bucket's wire readiness in the schedule), the
        *compressed* bytes are charged to the α–β model, and each bucket
        is decoded independently — sound because allreduce-compatible
        compressors commute with bucket tiling (the property suite pins
        this).  Fault-RNG parity with the monolithic and uncompressed
        overlap paths is preserved: identical draws with identical keys,
        so a fixed seed yields one fault timeline regardless of
        compression.

        Clock accounting: the schedule's exposure past ``backward_end``
        splits into wire-busy seconds (charged to ``comm``) and
        encode-stall seconds where the channel sat idle waiting for a
        bucket to finish encoding (charged to ``encode``) — so
        ``compute + encode + comm`` still reads as the modeled iteration
        critical path.
        """
        params = self.optimizer.params
        injector = self.faults
        buckets = self._ensure_buckets()
        world = len(active)

        # --- compute phase: measured backward + per-bucket readiness ---
        worker_grads: list[list[np.ndarray]] = []
        worker_compute: list[float] = []
        worker_ready: list[list[float]] = []
        with _trace.span("ddp.compute", iteration=timeline.iterations):
            for w in active:
                self.optimizer.zero_grad()
                with GradientArrivalRecorder(params) as rec:
                    loss, _, _ = self.batch_fn(self.model, batches[w])
                    loss.backward()
                mult = 1.0
                if injector is not None:
                    mult = injector.compute_multiplier(iteration, w)
                worker_compute.append(rec.total * mult)
                arrivals = rec.arrival_times()
                worker_ready.append(
                    [
                        max(arrivals[i] for i in b.param_indices) * mult
                        for b in buckets
                    ]
                )
                worker_grads.append(
                    [
                        (p.grad if p.grad is not None else np.zeros_like(p.data)).copy()
                        for p in params
                    ]
                )
        backward_end = max(worker_compute)
        timeline.compute += backward_end

        # --- per-bucket encode (workers run in parallel: each bucket's
        # wire readiness waits for its slowest worker's encoder) ---------
        encoded: list[list] = []
        encode_times: list[float] = []
        with _trace.span("ddp.encode", iteration=timeline.iterations):
            for b in buckets:
                per_worker = []
                per_worker_s = []
                for pos, w in enumerate(active):
                    sub = [worker_grads[pos][i] for i in b.param_indices]
                    t0 = time.perf_counter()
                    per_worker.append(
                        self.compressor.encode(
                            w, sub, layer_offset=b.param_indices[0]
                        )
                    )
                    per_worker_s.append(time.perf_counter() - t0)
                encoded.append(per_worker)
                encode_times.append(max(per_worker_s))

        # --- modeled bucket schedule over the compressed bytes -----------
        degradation = injector.link_factor(iteration) if injector is not None else 1.0
        cluster = self.cluster
        if world != cluster.world_size:
            cluster = cluster.with_world(world)
        bucket_nbytes = [max(r.nbytes for r in per_worker) for per_worker in encoded]
        comm_times = bucket_comm_times(bucket_nbytes, cluster, degradation)
        tail = 0.0
        if injector is not None:
            # Same RNG keys as the monolithic allreduce: one draw per ring
            # step per iteration, regardless of bucketing or compression.
            tail = injector.collective_penalty(
                "allreduce", iteration, 2 * max(world - 1, 0)
            )
            tail += injector.drain_penalty()
        ready = [max(wr[j] for wr in worker_ready) for j in range(len(buckets))]
        sched = schedule_overlap(
            ready, comm_times, backward_end, tail_penalty=tail,
            encode_times=encode_times,
        )
        # Split the exposure: seconds the channel was busy past
        # backward_end are wire time; idle seconds (waiting for encode)
        # are the compressor's per-step cost on the critical path.
        wire_busy = sum(
            max(0.0, ev.end - max(ev.start, backward_end)) for ev in sched.events
        )
        last_end = sched.events[-1].end if sched.events else 0.0
        wire_busy += max(0.0, sched.finish - max(last_end, backward_end))
        encode_stall = max(0.0, sched.exposed - wire_busy)
        timeline.comm += wire_busy
        timeline.encode += encode_stall
        nbytes = float(sum(bucket_nbytes))
        timeline.bytes_per_iteration = nbytes
        if _metrics.COLLECT:
            _metrics.REGISTRY.counter("ddp.wire_bytes").inc(int(nbytes) * world)

        # --- exact numerics: per-bucket decode ----------------------------
        agg_layers: list[np.ndarray | None] = [None] * len(params)
        t0 = time.perf_counter()
        for b, per_worker, ev, comm in zip(buckets, encoded, sched.events, comm_times):
            with _trace.span(
                "ddp.bucket",
                iteration=timeline.iterations,
                bucket=b.index,
                nbytes=bucket_nbytes[b.index],
                ready_s=ev.ready,
                start_s=ev.start,
                end_s=ev.end,
            ):
                decoded = self.compressor.decode_aggregate(per_worker)
                for local, param_idx in enumerate(b.param_indices):
                    agg_layers[param_idx] = decoded[local]
        timeline.decode += time.perf_counter() - t0

        self.overlap_events.append(
            {
                "iteration": iteration,
                "backward_end_s": backward_end,
                "comm_total_s": sched.comm_total,
                "comm_exposed_s": wire_busy,
                "encode_stall_s": encode_stall,
                "tail_penalty_s": tail,
                "compressor": self.compressor.name,
                "buckets": [
                    {
                        **ev.as_dict(),
                        "nbytes": nb,
                        "comm_s": comm,
                        "encode_s": enc,
                    }
                    for nb, ev, comm, enc in zip(
                        bucket_nbytes, sched.events, comm_times, encode_times
                    )
                ],
            }
        )

        # --- apply ---------------------------------------------------------
        with _trace.span("ddp.step", iteration=timeline.iterations):
            for p, g in zip(params, agg_layers):
                p.grad = np.ascontiguousarray(g, dtype=np.float32)
            self.optimizer.step()

    def train_epoch(self, worker_loaders: list) -> TimelineBreakdown:
        """One synchronized epoch over per-worker shard loaders.

        All loaders must yield the same number of batches; each yields that
        worker's micro-batch for the iteration.
        """
        if len(worker_loaders) != self.cluster.world_size:
            raise ValueError("need one loader per rank")
        timeline = TimelineBreakdown()
        self.model.train()
        params = self.optimizer.params
        injector = self.faults
        counters_before = _metrics.REGISTRY.counters() if _metrics.COLLECT else None
        epoch_events_start = len(self.overlap_events)

        for batches in zip(*[iter(dl) for dl in worker_loaders]):
            iteration = self._global_iteration
            if injector is not None:
                self._apply_failures(iteration, timeline)
                active: list[int] | range = list(self._active)
            else:
                active = range(len(batches))

            if self.overlap:
                if isinstance(self.compressor, NoCompression):
                    self._overlap_iteration(batches, active, iteration, timeline)
                else:
                    self._compressed_overlap_iteration(
                        batches, active, iteration, timeline
                    )
                self.compressor.advance_step()
                timeline.iterations += 1
                self._global_iteration += 1
                continue

            # --- compute phase: each worker's forward/backward ---------
            worker_grads: list[list[np.ndarray]] = []
            worker_compute: list[float] = []
            with _trace.span("ddp.compute", iteration=timeline.iterations):
                for w in active:
                    self.optimizer.zero_grad()
                    t0 = time.perf_counter()
                    loss, _, _ = self.batch_fn(self.model, batches[w])
                    loss.backward()
                    elapsed = time.perf_counter() - t0
                    if injector is not None:
                        # A straggler's iteration takes longer on the
                        # modeled clock; the numerics are unchanged.
                        elapsed *= injector.compute_multiplier(iteration, w)
                    worker_compute.append(elapsed)
                    worker_grads.append(
                        [
                            (p.grad if p.grad is not None else np.zeros_like(p.data)).copy()
                            for p in params
                        ]
                    )
            # Workers run concurrently: the slowest sets the pace.
            timeline.compute += max(worker_compute)

            # --- encode phase ------------------------------------------
            t0 = time.perf_counter()
            with _trace.span("ddp.encode", iteration=timeline.iterations):
                encoded = [
                    self.compressor.encode(w, grads)
                    for w, grads in zip(active, worker_grads)
                ]
            encode_elapsed = time.perf_counter() - t0
            # Encoding also happens in parallel across workers.
            timeline.encode += encode_elapsed / len(worker_grads)

            # --- communication (modeled) -------------------------------
            nbytes = encoded[0].nbytes
            n_messages = 1 if self.flat_allreduce else len(params)
            if injector is None:
                timeline.comm += self._comm_time(nbytes, n_messages)
                world = self.cluster.num_nodes
            else:
                world = len(worker_grads)
                degradation = injector.link_factor(iteration)
                comm = self._comm_time(nbytes, n_messages, degradation, world)
                # Message drops stall the synchronous ring; exhausted
                # retries raise CollectiveTimeoutError out of the epoch.
                op = "allreduce" if self.compressor.allreduce_compatible else "allgather"
                steps = (2 if op == "allreduce" else 1) * max(world - 1, 0)
                comm += injector.collective_penalty(op, iteration, steps)
                comm += injector.drain_penalty()
                timeline.comm += comm
            timeline.bytes_per_iteration = nbytes
            if _metrics.COLLECT:
                # Wire bytes each worker injects per iteration (the modeled
                # payload, as opposed to the in-process bytes counted by the
                # collectives themselves).
                _metrics.REGISTRY.counter("ddp.wire_bytes").inc(
                    int(nbytes) * world
                )

            # --- decode phase -------------------------------------------
            t0 = time.perf_counter()
            with _trace.span("ddp.decode", iteration=timeline.iterations):
                agg = self.compressor.decode_aggregate(encoded)
            timeline.decode += time.perf_counter() - t0

            # --- apply ---------------------------------------------------
            with _trace.span("ddp.step", iteration=timeline.iterations):
                for p, g in zip(params, agg):
                    p.grad = np.ascontiguousarray(g, dtype=np.float32)
                self.optimizer.step()
            self.compressor.advance_step()
            timeline.iterations += 1
            self._global_iteration += 1

        if self.overlap and timeline.iterations:
            events = self.overlap_events[epoch_events_start:]
            comm_total = sum(e["comm_total_s"] for e in events)
            exposed = sum(e["comm_exposed_s"] for e in events)
            fraction = 1.0 if comm_total <= 0 else (comm_total - exposed) / comm_total
            timeline.overlap = {
                "n_buckets": len(self._buckets),
                "bucket_bytes": self.bucket_bytes,
                "comm_total_s": comm_total,
                "comm_exposed_s": exposed,
                "comm_hidden_s": comm_total - exposed,
                "overlap_fraction": fraction,
            }
            if _metrics.COLLECT:
                _metrics.REGISTRY.gauge("ddp.overlap_fraction").set(fraction)
                _metrics.REGISTRY.gauge("ddp.n_buckets").set(float(len(self._buckets)))
        if counters_before is not None:
            timeline.metrics = _metrics.diff_counters(
                _metrics.REGISTRY.counters(), counters_before
            )
            # Per-epoch comm/compute split for the observability registry
            # (the ROADMAP's "next consumer" of the metrics layer).
            _metrics.REGISTRY.histogram("ddp.epoch_compute_s").observe(timeline.compute)
            _metrics.REGISTRY.histogram("ddp.epoch_comm_s").observe(timeline.comm)
            if timeline.total > 0:
                _metrics.REGISTRY.gauge("ddp.comm_fraction").set(
                    timeline.comm / timeline.total
                )
        if injector is not None and injector.spec.active:
            timeline.faults = injector.summary()
        return timeline

    def evaluate(self, loader) -> tuple[float, float]:
        """Convenience eval on a single loader (loss, accuracy-style metric)."""
        from ..core.trainer import Trainer

        t = Trainer(self.model, self.optimizer, batch_fn=self.batch_fn, loss_fn=self.loss_fn)
        return t.evaluate(loader)


class DDPTimelineModel:
    """PyTorch-DDP-style timing: bucketed allreduce overlapped with backward.

    DDP fires an asynchronous allreduce whenever a gradient bucket
    (default 25 MB) fills during the backward pass, so communication hides
    behind compute.  The exposed (non-overlapped) communication is
    approximately ``max(0, T_comm − T_backward)`` plus one latency term per
    bucket; per-epoch time is then

        ``T_epoch = n_iter · (T_fwd_bwd + exposed_comm + T_step)``.
    """

    def __init__(
        self, cluster: ClusterSpec, bucket_mb: float = 25.0, backward_fraction: float = 2 / 3
    ):
        self.cluster = cluster
        self.bucket_bytes = bucket_mb * 1e6
        # Fraction of fwd+bwd time that is backward (≈ 2/3 for conv nets).
        self.backward_fraction = backward_fraction

    def iteration_time(
        self, model_bytes: float, compute_seconds: float, degradation: float = 1.0
    ) -> dict:
        """Timing for one iteration of a model with ``model_bytes`` of
        gradients and measured per-iteration ``compute_seconds``.

        ``degradation`` scales effective link bandwidth — the knob fault
        scenarios use to model congested links."""
        n_buckets = max(1, math.ceil(model_bytes / self.bucket_bytes))
        comm = sum(
            ring_allreduce_time(
                min(self.bucket_bytes, model_bytes - i * self.bucket_bytes),
                self.cluster,
                degradation,
            )
            for i in range(n_buckets)
        )
        backward = compute_seconds * self.backward_fraction
        exposed = max(0.0, comm - backward)
        return {
            "compute": compute_seconds,
            "comm_raw": comm,
            "comm_exposed": exposed,
            "iteration": compute_seconds + exposed,
            "n_buckets": n_buckets,
        }

    def epoch_time(
        self,
        model_bytes: float,
        compute_seconds: float,
        n_iterations: int,
        degradation: float = 1.0,
    ) -> float:
        return (
            self.iteration_time(model_bytes, compute_seconds, degradation)["iteration"]
            * n_iterations
        )
