"""Data-parallel training simulator with a per-epoch timeline breakdown.

The simulator executes *real* numerics — each worker's forward/backward on
its own shard, real gradient encoding/decoding, exact averaged updates —
on a single process, while *charging* communication from the α–β cost
model of :mod:`repro.distributed.cost_model`.  Compute, encode and decode
are measured wall-clock (they really run); only the wire time is modeled.
This mirrors how the paper's own analysis separates "computation" from
"communication" in Fig. 4's stacked bars.

Two execution styles:

* :class:`DistributedTrainer` — the paper's prototype implementation:
  gradients flattened into one buffer, a single blocking allreduce per
  iteration (Section 4.1's latency optimization), optional compressor.
* :class:`DDPTimelineModel` — PyTorch-DDP-style bucketed overlap: gradient
  buckets communicate while the backward pass still runs, so the exposed
  communication is ``max(0, comm − backward)`` plus per-bucket latency.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..compression.base import Compressor, NoCompression
from ..nn.module import Module
from ..observability import metrics as _metrics
from ..observability import trace as _trace
from ..optim import Optimizer
from .cost_model import ClusterSpec, allgather_time, ring_allreduce_time

__all__ = ["TimelineBreakdown", "DistributedTrainer", "DDPTimelineModel"]

FLOAT32_BYTES = 4


@dataclass
class TimelineBreakdown:
    """Accumulated per-phase seconds for one epoch (Fig. 4 bars)."""

    compute: float = 0.0
    encode: float = 0.0
    comm: float = 0.0
    decode: float = 0.0
    other: float = 0.0
    iterations: int = 0
    bytes_per_iteration: float = 0.0
    # Counter deltas accumulated over the epoch (allreduce_calls,
    # bytes_moved, macs, ...) when metric collection is enabled.
    metrics: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.compute + self.encode + self.comm + self.decode + self.other

    def as_dict(self) -> dict:
        out = {
            "compute": self.compute,
            "encode": self.encode,
            "comm": self.comm,
            "decode": self.decode,
            "other": self.other,
            "total": self.total,
        }
        if self.metrics:
            out["metrics"] = dict(self.metrics)
        return out


class DistributedTrainer:
    """Synchronous data-parallel SGD over a simulated cluster.

    Parameters
    ----------
    model, optimizer: single authoritative replica (workers share weights —
        exact for synchronous SGD).
    cluster: node count and link parameters.
    compressor: gradient compressor; default = raw fp32 (vanilla SGD).
    batch_fn: ``(model, batch) -> (loss, metric_sum, count)`` as in
        :class:`repro.core.Trainer`.
    flat_allreduce: pack all tensors into one buffer (Section 4.1).  Only
        meaningful for allreduce-compatible compressors; per-layer calls
        add ``2(p-1)α`` latency per layer.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        cluster: ClusterSpec,
        compressor: Compressor | None = None,
        batch_fn=None,
        loss_fn=None,
        flat_allreduce: bool = True,
    ):
        from ..core.trainer import classification_batch
        from ..nn import CrossEntropyLoss

        self.model = model
        self.optimizer = optimizer
        self.cluster = cluster
        self.compressor = compressor or NoCompression(cluster.num_nodes)
        self.loss_fn = loss_fn or CrossEntropyLoss()
        self.batch_fn = batch_fn or (
            lambda m, b: classification_batch(m, b, self.loss_fn)
        )
        self.flat_allreduce = flat_allreduce

    # ------------------------------------------------------------------

    def _comm_time(self, nbytes: float, n_messages: int) -> float:
        """Wire time for one worker's payload of ``nbytes``."""
        if self.compressor.allreduce_compatible:
            if _metrics.COLLECT:
                _metrics.REGISTRY.counter("allreduce_calls").inc(n_messages)
            per_message = nbytes / max(n_messages, 1)
            return sum(
                ring_allreduce_time(per_message, self.cluster) for _ in range(n_messages)
            )
        if _metrics.COLLECT:
            _metrics.REGISTRY.counter("allgather_calls").inc()
        return allgather_time(nbytes, self.cluster)

    def train_epoch(self, worker_loaders: list) -> TimelineBreakdown:
        """One synchronized epoch over per-worker shard loaders.

        All loaders must yield the same number of batches; each yields that
        worker's micro-batch for the iteration.
        """
        if len(worker_loaders) != self.cluster.num_nodes:
            raise ValueError("need one loader per node")
        timeline = TimelineBreakdown()
        self.model.train()
        params = self.optimizer.params
        counters_before = _metrics.REGISTRY.counters() if _metrics.COLLECT else None

        for batches in zip(*[iter(dl) for dl in worker_loaders]):
            # --- compute phase: each worker's forward/backward ---------
            worker_grads: list[list[np.ndarray]] = []
            worker_compute: list[float] = []
            with _trace.span("ddp.compute", iteration=timeline.iterations):
                for batch in batches:
                    self.optimizer.zero_grad()
                    t0 = time.perf_counter()
                    loss, _, _ = self.batch_fn(self.model, batch)
                    loss.backward()
                    worker_compute.append(time.perf_counter() - t0)
                    worker_grads.append(
                        [
                            (p.grad if p.grad is not None else np.zeros_like(p.data)).copy()
                            for p in params
                        ]
                    )
            # Workers run concurrently: the slowest sets the pace.
            timeline.compute += max(worker_compute)

            # --- encode phase ------------------------------------------
            t0 = time.perf_counter()
            with _trace.span("ddp.encode", iteration=timeline.iterations):
                encoded = [
                    self.compressor.encode(w, grads)
                    for w, grads in enumerate(worker_grads)
                ]
            encode_elapsed = time.perf_counter() - t0
            # Encoding also happens in parallel across workers.
            timeline.encode += encode_elapsed / len(worker_grads)

            # --- communication (modeled) -------------------------------
            nbytes = encoded[0].nbytes
            n_messages = 1 if self.flat_allreduce else len(params)
            timeline.comm += self._comm_time(nbytes, n_messages)
            timeline.bytes_per_iteration = nbytes
            if _metrics.COLLECT:
                # Wire bytes each worker injects per iteration (the modeled
                # payload, as opposed to the in-process bytes counted by the
                # collectives themselves).
                _metrics.REGISTRY.counter("ddp.wire_bytes").inc(
                    int(nbytes) * self.cluster.num_nodes
                )

            # --- decode phase -------------------------------------------
            t0 = time.perf_counter()
            with _trace.span("ddp.decode", iteration=timeline.iterations):
                agg = self.compressor.decode_aggregate(encoded)
            timeline.decode += time.perf_counter() - t0

            # --- apply ---------------------------------------------------
            with _trace.span("ddp.step", iteration=timeline.iterations):
                for p, g in zip(params, agg):
                    p.grad = np.ascontiguousarray(g, dtype=np.float32)
                self.optimizer.step()
            timeline.iterations += 1

        if counters_before is not None:
            timeline.metrics = _metrics.diff_counters(
                _metrics.REGISTRY.counters(), counters_before
            )
        return timeline

    def evaluate(self, loader) -> tuple[float, float]:
        """Convenience eval on a single loader (loss, accuracy-style metric)."""
        from ..core.trainer import Trainer

        t = Trainer(self.model, self.optimizer, batch_fn=self.batch_fn, loss_fn=self.loss_fn)
        return t.evaluate(loader)


class DDPTimelineModel:
    """PyTorch-DDP-style timing: bucketed allreduce overlapped with backward.

    DDP fires an asynchronous allreduce whenever a gradient bucket
    (default 25 MB) fills during the backward pass, so communication hides
    behind compute.  The exposed (non-overlapped) communication is
    approximately ``max(0, T_comm − T_backward)`` plus one latency term per
    bucket; per-epoch time is then

        ``T_epoch = n_iter · (T_fwd_bwd + exposed_comm + T_step)``.
    """

    def __init__(self, cluster: ClusterSpec, bucket_mb: float = 25.0, backward_fraction: float = 2 / 3):
        self.cluster = cluster
        self.bucket_bytes = bucket_mb * 1e6
        # Fraction of fwd+bwd time that is backward (≈ 2/3 for conv nets).
        self.backward_fraction = backward_fraction

    def iteration_time(self, model_bytes: float, compute_seconds: float) -> dict:
        """Timing for one iteration of a model with ``model_bytes`` of
        gradients and measured per-iteration ``compute_seconds``."""
        n_buckets = max(1, math.ceil(model_bytes / self.bucket_bytes))
        comm = sum(
            ring_allreduce_time(
                min(self.bucket_bytes, model_bytes - i * self.bucket_bytes), self.cluster
            )
            for i in range(n_buckets)
        )
        backward = compute_seconds * self.backward_fraction
        exposed = max(0.0, comm - backward)
        return {
            "compute": compute_seconds,
            "comm_raw": comm,
            "comm_exposed": exposed,
            "iteration": compute_seconds + exposed,
            "n_buckets": n_buckets,
        }

    def epoch_time(self, model_bytes: float, compute_seconds: float, n_iterations: int) -> float:
        return self.iteration_time(model_bytes, compute_seconds)["iteration"] * n_iterations
