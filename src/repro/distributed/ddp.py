"""Data-parallel training simulator with a per-epoch timeline breakdown.

The simulator executes *real* numerics — each worker's forward/backward on
its own shard, real gradient encoding/decoding, exact averaged updates —
on a single process, while *charging* communication from the α–β cost
model of :mod:`repro.distributed.cost_model`.  Compute, encode and decode
are measured wall-clock (they really run); only the wire time is modeled.
This mirrors how the paper's own analysis separates "computation" from
"communication" in Fig. 4's stacked bars.

Two execution styles:

* :class:`DistributedTrainer` — the paper's prototype implementation:
  gradients flattened into one buffer, a single blocking allreduce per
  iteration (Section 4.1's latency optimization), optional compressor.
* :class:`DDPTimelineModel` — PyTorch-DDP-style bucketed overlap: gradient
  buckets communicate while the backward pass still runs, so the exposed
  communication is ``max(0, comm − backward)`` plus per-bucket latency.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..compression.base import Compressor, NoCompression
from ..nn.module import Module
from ..observability import metrics as _metrics
from ..observability import trace as _trace
from ..optim import Optimizer
from .cost_model import ClusterSpec, allgather_time, broadcast_time, ring_allreduce_time
from .errors import AllWorkersLostError
from .faults import as_injector

__all__ = ["TimelineBreakdown", "DistributedTrainer", "DDPTimelineModel"]

FLOAT32_BYTES = 4


@dataclass
class TimelineBreakdown:
    """Accumulated per-phase seconds for one epoch (Fig. 4 bars)."""

    compute: float = 0.0
    encode: float = 0.0
    comm: float = 0.0
    decode: float = 0.0
    other: float = 0.0
    iterations: int = 0
    bytes_per_iteration: float = 0.0
    # Counter deltas accumulated over the epoch (allreduce_calls,
    # bytes_moved, macs, ...) when metric collection is enabled.
    metrics: dict = field(default_factory=dict)
    # Fault-injection summary (empty when no injector was attached, so the
    # no-faults breakdown is unchanged).
    faults: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.compute + self.encode + self.comm + self.decode + self.other

    def as_dict(self) -> dict:
        out = {
            "compute": self.compute,
            "encode": self.encode,
            "comm": self.comm,
            "decode": self.decode,
            "other": self.other,
            "total": self.total,
        }
        if self.metrics:
            out["metrics"] = dict(self.metrics)
        if self.faults:
            out["faults"] = dict(self.faults)
        return out


class DistributedTrainer:
    """Synchronous data-parallel SGD over a simulated cluster.

    Parameters
    ----------
    model, optimizer: single authoritative replica (workers share weights —
        exact for synchronous SGD).
    cluster: node count and link parameters.
    compressor: gradient compressor; default = raw fp32 (vanilla SGD).
    batch_fn: ``(model, batch) -> (loss, metric_sum, count)`` as in
        :class:`repro.core.Trainer`.
    flat_allreduce: pack all tensors into one buffer (Section 4.1).  Only
        meaningful for allreduce-compatible compressors; per-layer calls
        add ``2(p-1)α`` latency per layer.
    faults: optional :class:`~repro.distributed.faults.FaultSpec` (or
        prebuilt injector).  Adds per-worker stragglers, link degradation,
        message drop/retry and whole-worker failure with the spec's
        recovery policy; ``None`` (the default) leaves every code path and
        timing untouched.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        cluster: ClusterSpec,
        compressor: Compressor | None = None,
        batch_fn=None,
        loss_fn=None,
        flat_allreduce: bool = True,
        faults=None,
    ):
        from ..core.trainer import classification_batch
        from ..nn import CrossEntropyLoss

        self.model = model
        self.optimizer = optimizer
        self.cluster = cluster
        self.compressor = compressor or NoCompression(cluster.num_nodes)
        self.loss_fn = loss_fn or CrossEntropyLoss()
        self.batch_fn = batch_fn or (
            lambda m, b: classification_batch(m, b, self.loss_fn)
        )
        self.flat_allreduce = flat_allreduce
        self.faults = as_injector(faults)
        # Workers currently in the ring (shrink-mode failures leave
        # permanently; rejoin-mode failures miss one iteration).
        self._active: list[int] = list(range(cluster.num_nodes))
        self._rejoining: list[int] = []
        self._global_iteration = 0

    # ------------------------------------------------------------------

    def _comm_time(
        self,
        nbytes: float,
        n_messages: int,
        degradation: float = 1.0,
        world: int | None = None,
    ) -> float:
        """Wire time for one worker's payload of ``nbytes``."""
        cluster = self.cluster
        if world is not None and world != cluster.num_nodes:
            cluster = ClusterSpec(world, cluster.bandwidth_gbps, cluster.latency_s)
        if self.compressor.allreduce_compatible:
            if _metrics.COLLECT:
                _metrics.REGISTRY.counter("allreduce_calls").inc(n_messages)
            per_message = nbytes / max(n_messages, 1)
            return sum(
                ring_allreduce_time(per_message, cluster, degradation)
                for _ in range(n_messages)
            )
        if _metrics.COLLECT:
            _metrics.REGISTRY.counter("allgather_calls").inc()
        return allgather_time(nbytes, cluster, degradation)

    def _model_bytes(self) -> float:
        return sum(p.data.size for p in self.optimizer.params) * FLOAT32_BYTES

    def _apply_failures(self, iteration: int, timeline: TimelineBreakdown) -> None:
        """Draw worker failures for this iteration and charge recovery."""
        injector = self.faults
        spec = injector.spec.failure
        # Rejoin-mode workers that failed last iteration come back first.
        if self._rejoining:
            self._active = sorted(self._active + self._rejoining)
            self._rejoining = []
        for w in list(self._active):
            if not injector.worker_failed(iteration, w):
                continue
            self._active.remove(w)
            if spec.recovery == "rejoin":
                # The ring stalls while the worker reloads the checkpoint
                # and receives the current model.
                recovery = spec.recovery_s + broadcast_time(
                    self._model_bytes(), self.cluster
                )
                timeline.other += recovery
                injector.record_recovery(iteration, w, recovery)
                self._rejoining.append(w)
        if not self._active:
            raise AllWorkersLostError(iteration)

    def train_epoch(self, worker_loaders: list) -> TimelineBreakdown:
        """One synchronized epoch over per-worker shard loaders.

        All loaders must yield the same number of batches; each yields that
        worker's micro-batch for the iteration.
        """
        if len(worker_loaders) != self.cluster.num_nodes:
            raise ValueError("need one loader per node")
        timeline = TimelineBreakdown()
        self.model.train()
        params = self.optimizer.params
        injector = self.faults
        counters_before = _metrics.REGISTRY.counters() if _metrics.COLLECT else None

        for batches in zip(*[iter(dl) for dl in worker_loaders]):
            iteration = self._global_iteration
            if injector is not None:
                self._apply_failures(iteration, timeline)
                active: list[int] | range = list(self._active)
            else:
                active = range(len(batches))

            # --- compute phase: each worker's forward/backward ---------
            worker_grads: list[list[np.ndarray]] = []
            worker_compute: list[float] = []
            with _trace.span("ddp.compute", iteration=timeline.iterations):
                for w in active:
                    self.optimizer.zero_grad()
                    t0 = time.perf_counter()
                    loss, _, _ = self.batch_fn(self.model, batches[w])
                    loss.backward()
                    elapsed = time.perf_counter() - t0
                    if injector is not None:
                        # A straggler's iteration takes longer on the
                        # modeled clock; the numerics are unchanged.
                        elapsed *= injector.compute_multiplier(iteration, w)
                    worker_compute.append(elapsed)
                    worker_grads.append(
                        [
                            (p.grad if p.grad is not None else np.zeros_like(p.data)).copy()
                            for p in params
                        ]
                    )
            # Workers run concurrently: the slowest sets the pace.
            timeline.compute += max(worker_compute)

            # --- encode phase ------------------------------------------
            t0 = time.perf_counter()
            with _trace.span("ddp.encode", iteration=timeline.iterations):
                encoded = [
                    self.compressor.encode(w, grads)
                    for w, grads in zip(active, worker_grads)
                ]
            encode_elapsed = time.perf_counter() - t0
            # Encoding also happens in parallel across workers.
            timeline.encode += encode_elapsed / len(worker_grads)

            # --- communication (modeled) -------------------------------
            nbytes = encoded[0].nbytes
            n_messages = 1 if self.flat_allreduce else len(params)
            if injector is None:
                timeline.comm += self._comm_time(nbytes, n_messages)
                world = self.cluster.num_nodes
            else:
                world = len(worker_grads)
                degradation = injector.link_factor(iteration)
                comm = self._comm_time(nbytes, n_messages, degradation, world)
                # Message drops stall the synchronous ring; exhausted
                # retries raise CollectiveTimeoutError out of the epoch.
                op = "allreduce" if self.compressor.allreduce_compatible else "allgather"
                steps = (2 if op == "allreduce" else 1) * max(world - 1, 0)
                comm += injector.collective_penalty(op, iteration, steps)
                comm += injector.drain_penalty()
                timeline.comm += comm
            timeline.bytes_per_iteration = nbytes
            if _metrics.COLLECT:
                # Wire bytes each worker injects per iteration (the modeled
                # payload, as opposed to the in-process bytes counted by the
                # collectives themselves).
                _metrics.REGISTRY.counter("ddp.wire_bytes").inc(
                    int(nbytes) * world
                )

            # --- decode phase -------------------------------------------
            t0 = time.perf_counter()
            with _trace.span("ddp.decode", iteration=timeline.iterations):
                agg = self.compressor.decode_aggregate(encoded)
            timeline.decode += time.perf_counter() - t0

            # --- apply ---------------------------------------------------
            with _trace.span("ddp.step", iteration=timeline.iterations):
                for p, g in zip(params, agg):
                    p.grad = np.ascontiguousarray(g, dtype=np.float32)
                self.optimizer.step()
            timeline.iterations += 1
            self._global_iteration += 1

        if counters_before is not None:
            timeline.metrics = _metrics.diff_counters(
                _metrics.REGISTRY.counters(), counters_before
            )
        if injector is not None and injector.spec.active:
            timeline.faults = injector.summary()
        return timeline

    def evaluate(self, loader) -> tuple[float, float]:
        """Convenience eval on a single loader (loss, accuracy-style metric)."""
        from ..core.trainer import Trainer

        t = Trainer(self.model, self.optimizer, batch_fn=self.batch_fn, loss_fn=self.loss_fn)
        return t.evaluate(loader)


class DDPTimelineModel:
    """PyTorch-DDP-style timing: bucketed allreduce overlapped with backward.

    DDP fires an asynchronous allreduce whenever a gradient bucket
    (default 25 MB) fills during the backward pass, so communication hides
    behind compute.  The exposed (non-overlapped) communication is
    approximately ``max(0, T_comm − T_backward)`` plus one latency term per
    bucket; per-epoch time is then

        ``T_epoch = n_iter · (T_fwd_bwd + exposed_comm + T_step)``.
    """

    def __init__(self, cluster: ClusterSpec, bucket_mb: float = 25.0, backward_fraction: float = 2 / 3):
        self.cluster = cluster
        self.bucket_bytes = bucket_mb * 1e6
        # Fraction of fwd+bwd time that is backward (≈ 2/3 for conv nets).
        self.backward_fraction = backward_fraction

    def iteration_time(
        self, model_bytes: float, compute_seconds: float, degradation: float = 1.0
    ) -> dict:
        """Timing for one iteration of a model with ``model_bytes`` of
        gradients and measured per-iteration ``compute_seconds``.

        ``degradation`` scales effective link bandwidth — the knob fault
        scenarios use to model congested links."""
        n_buckets = max(1, math.ceil(model_bytes / self.bucket_bytes))
        comm = sum(
            ring_allreduce_time(
                min(self.bucket_bytes, model_bytes - i * self.bucket_bytes),
                self.cluster,
                degradation,
            )
            for i in range(n_buckets)
        )
        backward = compute_seconds * self.backward_fraction
        exposed = max(0.0, comm - backward)
        return {
            "compute": compute_seconds,
            "comm_raw": comm,
            "comm_exposed": exposed,
            "iteration": compute_seconds + exposed,
            "n_buckets": n_buckets,
        }

    def epoch_time(
        self,
        model_bytes: float,
        compute_seconds: float,
        n_iterations: int,
        degradation: float = 1.0,
    ) -> float:
        return (
            self.iteration_time(model_bytes, compute_seconds, degradation)["iteration"]
            * n_iterations
        )
