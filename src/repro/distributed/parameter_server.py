"""Parameter-server cost model and time-varying bandwidth (Appendix K).

The paper notes Pufferfish is compatible with BytePS-style parameter
servers as well as allreduce.  This module adds:

* :func:`parameter_server_time` — push/pull cost model: each of ``p``
  workers pushes its gradient to ``s`` servers (sharded) and pulls the
  updated model back, so per-iteration wire time is ``2·M/B · p/s`` on the
  server side (the bottleneck) plus two latency terms.
* :class:`BandwidthTrace` — time-varying link bandwidth.  Appendix K
  reports that p3.2xlarge "up to 10 Gbps" links *decay sharply* mid-run;
  the trace lets the simulator reproduce that and measure its effect on
  each method's epoch time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cost_model import ClusterSpec

__all__ = ["parameter_server_time", "BandwidthTrace", "effective_epoch_times"]


def parameter_server_time(
    nbytes: float,
    cluster: ClusterSpec,
    num_servers: int = 1,
    *,
    degradation: float = 1.0,
    faults=None,
    iteration: int = 0,
) -> float:
    """Push+pull time for one worker's gradient of ``nbytes``.

    With ``s`` servers sharding the model, each server ingests ``p·M/s``
    bytes per phase; both push and pull phases cross the server NICs, so

        ``T = 2 α + 2 · (p/s) · M / B``.

    At ``s = p`` this matches allreduce bandwidth-wise; at ``s = 1`` the
    single server is a ``p×`` bottleneck — the classic PS scaling problem.

    ``degradation`` scales the effective bandwidth (transient congestion);
    with a ``faults`` injector attached, the push and pull messages may
    drop and be retried with exponential backoff — the penalty is added to
    the returned time, and an exhausted retry budget raises
    :class:`~repro.distributed.errors.CollectiveTimeoutError`.
    """
    if num_servers < 1:
        raise ValueError("num_servers must be >= 1")
    if not 0.0 < degradation <= 1.0:
        raise ValueError("degradation must be in (0, 1]")
    p = cluster.num_nodes
    if p == 1:
        return 0.0
    penalty = 0.0
    if faults is not None:
        # Two logical message phases per iteration: push, then pull.
        penalty += faults.message_penalty("push", iteration, 0)
        penalty += faults.message_penalty("pull", iteration, 1)
    per_server = p / num_servers
    bps = cluster.bytes_per_second * degradation
    return 2 * cluster.latency_s + 2 * per_server * nbytes / bps + penalty


@dataclass
class BandwidthTrace:
    """Piecewise-constant bandwidth over the course of a run.

    ``segments`` is a list of ``(fraction_of_run, bandwidth_gbps)`` whose
    fractions sum to 1 — e.g. Appendix K's mid-run decay is
    ``[(0.4, 10.0), (0.6, 2.0)]``.
    """

    segments: list[tuple[float, float]] = field(
        default_factory=lambda: [(1.0, 10.0)]
    )

    def __post_init__(self) -> None:
        total = sum(frac for frac, _ in self.segments)
        if abs(total - 1.0) > 1e-6:
            raise ValueError("segment fractions must sum to 1")
        if any(bw <= 0 for _, bw in self.segments):
            raise ValueError("bandwidths must be positive")

    def bandwidth_at(self, progress: float) -> float:
        """Bandwidth (Gbps) at run progress in [0, 1]."""
        progress = min(max(progress, 0.0), 1.0)
        acc = 0.0
        for frac, bw in self.segments:
            acc += frac
            if progress <= acc + 1e-12:
                return bw
        return self.segments[-1][1]

    def mean_inverse_bandwidth(self) -> float:
        """Time-averaged ``1/B`` — what cumulative comm time scales with."""
        return sum(frac / bw for frac, bw in self.segments)


def effective_epoch_times(
    comm_seconds_at_nominal: float,
    compute_seconds: float,
    n_epochs: int,
    trace: BandwidthTrace,
    nominal_gbps: float = 10.0,
) -> list[float]:
    """Per-epoch totals when bandwidth follows ``trace`` over the run.

    ``comm_seconds_at_nominal`` is the per-epoch communication time at
    ``nominal_gbps``; compute is bandwidth-independent.
    """
    out = []
    for epoch in range(n_epochs):
        progress = (epoch + 0.5) / n_epochs
        bw = trace.bandwidth_at(progress)
        out.append(compute_seconds + comm_seconds_at_nominal * nominal_gbps / bw)
    return out
