"""Distributed data-parallel training simulator: α–β cost models, exact
collectives, per-epoch timeline breakdowns, and seeded fault injection
(stragglers, link degradation, message drops, worker failures)."""

from .cost_model import (
    ClusterSpec,
    ring_allreduce_time,
    allgather_time,
    broadcast_time,
    pipelined_broadcast_time,
    bucket_comm_times,
)
from .collectives import (
    allreduce_mean,
    bucketed_allreduce_mean,
    allgather,
    ring_allreduce_mean,
    ring_allgather,
    flatten_arrays,
    unflatten_vector,
    gradient_vector,
    assign_gradient_vector,
)
from .ddp import TimelineBreakdown, DistributedTrainer, DDPTimelineModel
from .overlap import (
    Bucket,
    BucketEvent,
    OverlapTimeline,
    build_buckets,
    schedule_overlap,
    GradientArrivalRecorder,
)
from .errors import (
    AllWorkersLostError,
    CollectiveTimeoutError,
    DistributedError,
    FaultSpecError,
)
from .faults import (
    DropSpec,
    FailureSpec,
    FaultEvent,
    FaultInjector,
    FaultSpec,
    LinkSpec,
    StragglerSpec,
    parse_fault_spec,
)
from .parameter_server import parameter_server_time, BandwidthTrace, effective_epoch_times

__all__ = [
    "ClusterSpec",
    "ring_allreduce_time",
    "allgather_time",
    "broadcast_time",
    "pipelined_broadcast_time",
    "allreduce_mean",
    "allgather",
    "ring_allreduce_mean",
    "ring_allgather",
    "flatten_arrays",
    "unflatten_vector",
    "gradient_vector",
    "assign_gradient_vector",
    "TimelineBreakdown",
    "DistributedTrainer",
    "DDPTimelineModel",
    "Bucket",
    "BucketEvent",
    "OverlapTimeline",
    "build_buckets",
    "schedule_overlap",
    "GradientArrivalRecorder",
    "bucket_comm_times",
    "bucketed_allreduce_mean",
    "parameter_server_time",
    "BandwidthTrace",
    "effective_epoch_times",
    "DistributedError",
    "FaultSpecError",
    "CollectiveTimeoutError",
    "AllWorkersLostError",
    "FaultSpec",
    "FaultInjector",
    "FaultEvent",
    "StragglerSpec",
    "LinkSpec",
    "DropSpec",
    "FailureSpec",
    "parse_fault_spec",
]
