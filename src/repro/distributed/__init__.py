"""Distributed data-parallel training simulator: α–β cost models, exact
collectives, and per-epoch timeline breakdowns."""

from .cost_model import ClusterSpec, ring_allreduce_time, allgather_time, broadcast_time
from .collectives import (
    allreduce_mean,
    allgather,
    flatten_arrays,
    unflatten_vector,
    gradient_vector,
    assign_gradient_vector,
)
from .ddp import TimelineBreakdown, DistributedTrainer, DDPTimelineModel
from .parameter_server import parameter_server_time, BandwidthTrace, effective_epoch_times

__all__ = [
    "ClusterSpec",
    "ring_allreduce_time",
    "allgather_time",
    "broadcast_time",
    "allreduce_mean",
    "allgather",
    "flatten_arrays",
    "unflatten_vector",
    "gradient_vector",
    "assign_gradient_vector",
    "TimelineBreakdown",
    "DistributedTrainer",
    "DDPTimelineModel",
    "parameter_server_time",
    "BandwidthTrace",
    "effective_epoch_times",
]
