"""Analytic communication cost models (α–β model, Thakur et al. 2005).

The paper's own efficiency argument rests on these formulas: ring
allreduce moves ``2(p-1)/p · M`` bytes per node in ``2(p-1)`` latency
rounds, while allgather (the fallback for compressors whose encoding is
not sum-compatible, e.g. Signum) delivers ``(p-1) · M`` bytes *per sender*
to every node — its cost grows with the node count, which is exactly why
high-ratio compressors can lose end-to-end (Section 4.2 / Appendix F).

Bandwidth defaults to the paper's testbed: p3.2xlarge, "up to 10 Gbps".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClusterSpec", "ring_allreduce_time", "allgather_time", "broadcast_time"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster for the simulator.

    Attributes
    ----------
    num_nodes: world size ``p``.
    bandwidth_gbps: per-link bandwidth in gigabits/s (paper: 10).
    latency_s: per-message latency ``α`` (EC2 same-AZ ≈ 50 µs).
    """

    num_nodes: int
    bandwidth_gbps: float = 10.0
    latency_s: float = 50e-6

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_gbps * 1e9 / 8.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.bandwidth_gbps <= 0 or self.latency_s < 0:
            raise ValueError("invalid bandwidth/latency")


def ring_allreduce_time(nbytes: float, cluster: ClusterSpec) -> float:
    """Ring allreduce: ``2(p-1)α + 2 (p-1)/p · M/B`` seconds."""
    p = cluster.num_nodes
    if p == 1:
        return 0.0
    return 2 * (p - 1) * cluster.latency_s + 2 * (p - 1) / p * nbytes / cluster.bytes_per_second


def allgather_time(nbytes: float, cluster: ClusterSpec) -> float:
    """Ring allgather of per-node payloads of ``nbytes``:
    ``(p-1)α + (p-1) · M/B`` seconds."""
    p = cluster.num_nodes
    if p == 1:
        return 0.0
    return (p - 1) * cluster.latency_s + (p - 1) * nbytes / cluster.bytes_per_second


def broadcast_time(nbytes: float, cluster: ClusterSpec) -> float:
    """Binomial-tree broadcast: ``ceil(log2 p) (α + M/B)``."""
    import math

    p = cluster.num_nodes
    if p == 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    return rounds * (cluster.latency_s + nbytes / cluster.bytes_per_second)
