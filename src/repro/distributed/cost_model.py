"""Analytic communication cost models (α–β model, Thakur et al. 2005).

The paper's own efficiency argument rests on these formulas: ring
allreduce moves ``2(p-1)/p · M`` bytes per node in ``2(p-1)`` latency
rounds, while allgather (the fallback for compressors whose encoding is
not sum-compatible, e.g. Signum) delivers ``(p-1) · M`` bytes *per sender*
to every node — its cost grows with the node count, which is exactly why
high-ratio compressors can lose end-to-end (Section 4.2 / Appendix F).

Bandwidth defaults to the paper's testbed: p3.2xlarge, "up to 10 Gbps".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..observability import metrics as _metrics

__all__ = [
    "ClusterSpec",
    "ring_allreduce_time",
    "allgather_time",
    "broadcast_time",
    "pipelined_broadcast_time",
    "bucket_comm_times",
]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster for the simulator.

    Attributes
    ----------
    num_nodes: world size ``p``.
    bandwidth_gbps: per-link bandwidth in gigabits/s (paper: 10).
    latency_s: per-message latency ``α`` (EC2 same-AZ ≈ 50 µs).
    """

    num_nodes: int
    bandwidth_gbps: float = 10.0
    latency_s: float = 50e-6

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_gbps * 1e9 / 8.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.bandwidth_gbps <= 0 or self.latency_s < 0:
            raise ValueError("invalid bandwidth/latency")


# The simulators evaluate these formulas with identical arguments for
# every bucket of every iteration, so a small memo pays off; the hit/miss
# counters also make collective-call reuse visible in metrics snapshots.
# Keys include the link-degradation factor: a degraded and a nominal
# evaluation of the same collective must never alias.
_COST_CACHE: dict[tuple, float] = {}
_COST_CACHE_MAX = 65536


def _check_degradation(degradation: float) -> None:
    if not 0.0 < degradation <= 1.0:
        raise ValueError("degradation must be in (0, 1]")


def _cached_cost(key: tuple, compute) -> float:
    value = _COST_CACHE.get(key)
    if value is not None:
        if _metrics.COLLECT:
            _metrics.REGISTRY.counter("cost_model.cache_hits").inc()
        return value
    value = compute()
    if len(_COST_CACHE) < _COST_CACHE_MAX:
        _COST_CACHE[key] = value
    if _metrics.COLLECT:
        _metrics.REGISTRY.counter("cost_model.cache_misses").inc()
    return value


def ring_allreduce_time(
    nbytes: float, cluster: ClusterSpec, degradation: float = 1.0
) -> float:
    """Ring allreduce: ``2(p-1)α + 2 (p-1)/p · M/B`` seconds.

    ``degradation`` scales the effective link bandwidth (1.0 = nominal);
    fault injection uses it to model transient congestion.
    """
    _check_degradation(degradation)
    p = cluster.num_nodes
    if p == 1:
        return 0.0
    bps = cluster.bytes_per_second * degradation
    return _cached_cost(
        ("ring", float(nbytes), cluster, degradation),
        lambda: 2 * (p - 1) * cluster.latency_s + 2 * (p - 1) / p * nbytes / bps,
    )


def bucket_comm_times(
    bucket_nbytes, cluster: ClusterSpec, degradation: float = 1.0
) -> list[float]:
    """Ring-allreduce seconds for each bucket payload.

    Bucket caps make most buckets identically sized across iterations, so
    these evaluations are exactly what the memo cache is for — after the
    first iteration every lookup is a hit.
    """
    return [ring_allreduce_time(nb, cluster, degradation) for nb in bucket_nbytes]


def allgather_time(
    nbytes: float, cluster: ClusterSpec, degradation: float = 1.0
) -> float:
    """Ring allgather of per-node payloads of ``nbytes``:
    ``(p-1)α + (p-1) · M/B`` seconds."""
    _check_degradation(degradation)
    p = cluster.num_nodes
    if p == 1:
        return 0.0
    bps = cluster.bytes_per_second * degradation
    return _cached_cost(
        ("allgather", float(nbytes), cluster, degradation),
        lambda: (p - 1) * cluster.latency_s + (p - 1) * nbytes / bps,
    )


def broadcast_time(
    nbytes: float, cluster: ClusterSpec, degradation: float = 1.0
) -> float:
    """Binomial-tree broadcast: ``ceil(log2 p) (α + M/B)``."""
    _check_degradation(degradation)
    p = cluster.num_nodes
    if p == 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    bps = cluster.bytes_per_second * degradation
    return _cached_cost(
        ("broadcast", float(nbytes), cluster, degradation),
        lambda: rounds * (cluster.latency_s + nbytes / bps),
    )


def pipelined_broadcast_time(
    chunk_nbytes, cluster: ClusterSpec, degradation: float = 1.0
) -> float:
    """Chunked (pipelined) binomial-tree broadcast of payload tiles.

    With the payload split into chunks ``c_i`` flowing through the
    ``L = ceil(log2 p)`` tree levels store-and-forward style, the root
    injects chunks back to back and the last chunk drains the remaining
    levels behind the largest chunk:

        ``Σ_i (α + c_i/B)  +  (L − 1)(α + c_max/B)``

    For a single chunk this is exactly :func:`broadcast_time`; for a
    multi-chunk payload it is strictly cheaper whenever ``L > 1`` — the
    bandwidth term is paid once plus one max-chunk tail instead of ``L``
    times, which is why the recovery broadcast reuses the overlap
    schedule's bucket tiling.
    """
    _check_degradation(degradation)
    chunks = [float(c) for c in chunk_nbytes]
    if not chunks:
        raise ValueError("need at least one chunk")
    if any(c < 0 for c in chunks):
        raise ValueError("chunk sizes must be non-negative")
    p = cluster.num_nodes
    if p == 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    bps = cluster.bytes_per_second * degradation

    def compute() -> float:
        inject = sum(cluster.latency_s + c / bps for c in chunks)
        tail = (rounds - 1) * (cluster.latency_s + max(chunks) / bps)
        return inject + tail

    return _cached_cost(
        ("pipelined_broadcast", tuple(chunks), cluster, degradation), compute
    )
