"""Analytic communication cost models (α–β model, Thakur et al. 2005).

The paper's own efficiency argument rests on these formulas: ring
allreduce moves ``2(p-1)/p · M`` bytes per node in ``2(p-1)`` latency
rounds, while allgather (the fallback for compressors whose encoding is
not sum-compatible, e.g. Signum) delivers ``(p-1) · M`` bytes *per sender*
to every node — its cost grows with the node count, which is exactly why
high-ratio compressors can lose end-to-end (Section 4.2 / Appendix F).

Bandwidth defaults to the paper's testbed: p3.2xlarge, "up to 10 Gbps".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..observability import metrics as _metrics

__all__ = [
    "ClusterSpec",
    "HierarchicalSpec",
    "ring_allreduce_time",
    "allgather_time",
    "broadcast_time",
    "pipelined_broadcast_time",
    "hierarchical_allreduce_time",
    "hierarchical_allgather_time",
    "hierarchical_broadcast_time",
    "allreduce_cost",
    "allgather_cost",
    "broadcast_cost",
    "pipelined_broadcast_cost",
    "bucket_comm_times",
]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster for the simulator.

    Attributes
    ----------
    num_nodes: world size ``p``.
    bandwidth_gbps: per-link bandwidth in gigabits/s (paper: 10).
    latency_s: per-message latency ``α`` (EC2 same-AZ ≈ 50 µs).
    """

    num_nodes: int
    bandwidth_gbps: float = 10.0
    latency_s: float = 50e-6

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_gbps * 1e9 / 8.0

    @property
    def world_size(self) -> int:
        """Total rank count (equals ``num_nodes`` for a flat cluster)."""
        return self.num_nodes

    def with_world(self, world: int) -> "ClusterSpec":
        """The same links with ``world`` ranks (shrink-mode recovery)."""
        return ClusterSpec(world, self.bandwidth_gbps, self.latency_s)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.bandwidth_gbps <= 0 or self.latency_s < 0:
            raise ValueError("invalid bandwidth/latency")


@dataclass(frozen=True)
class HierarchicalSpec:
    """A two-level cluster: fast intra-node links, slow inter-node links.

    Production clusters are not flat rings — ``gpus_per_node`` ranks share
    NVLink/PCIe-class bandwidth inside a node while nodes see each other
    over the datacenter fabric.  Collectives go hierarchical: intra-node
    reduce-scatter, inter-node ring allreduce over the ``1/g`` shard, then
    intra-node allgather.

    Attributes
    ----------
    num_nodes: nodes in the inter-node ring.
    gpus_per_node: ranks sharing each node's fast interconnect.
    inter_bandwidth_gbps / inter_latency_s: the node-to-node fabric.
    intra_bandwidth_gbps / intra_latency_s: the in-node interconnect.
    """

    num_nodes: int
    gpus_per_node: int = 8
    inter_bandwidth_gbps: float = 10.0
    intra_bandwidth_gbps: float = 100.0
    inter_latency_s: float = 50e-6
    intra_latency_s: float = 5e-6

    @property
    def world_size(self) -> int:
        return self.num_nodes * self.gpus_per_node

    @property
    def intra_spec(self) -> ClusterSpec:
        """The in-node ring as a flat cluster."""
        return ClusterSpec(
            self.gpus_per_node, self.intra_bandwidth_gbps, self.intra_latency_s
        )

    @property
    def inter_spec(self) -> ClusterSpec:
        """The node-to-node ring as a flat cluster."""
        return ClusterSpec(
            self.num_nodes, self.inter_bandwidth_gbps, self.inter_latency_s
        )

    def with_world(self, world: int) -> "HierarchicalSpec":
        """Approximate this topology at ``world`` ranks (shrink recovery).

        Nodes drain whole: the inter-node ring shrinks to
        ``ceil(world / gpus_per_node)`` nodes; if fewer ranks than one
        node remain, the cluster degenerates to a single partially-filled
        node.  An approximation — a real shrink could leave a ragged last
        node — but a pure function of ``world``, so determinism holds.
        """
        if world < 1:
            raise ValueError("world must be >= 1")
        g = min(self.gpus_per_node, world)
        n = math.ceil(world / g)
        return HierarchicalSpec(
            n,
            g,
            self.inter_bandwidth_gbps,
            self.intra_bandwidth_gbps,
            self.inter_latency_s,
            self.intra_latency_s,
        )

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.gpus_per_node < 1:
            raise ValueError("num_nodes and gpus_per_node must be >= 1")
        if self.inter_bandwidth_gbps <= 0 or self.intra_bandwidth_gbps <= 0:
            raise ValueError("invalid bandwidth")
        if self.inter_latency_s < 0 or self.intra_latency_s < 0:
            raise ValueError("invalid latency")


# The simulators evaluate these formulas with identical arguments for
# every bucket of every iteration, so a small memo pays off; the hit/miss
# counters also make collective-call reuse visible in metrics snapshots.
# Keys include the link-degradation factor: a degraded and a nominal
# evaluation of the same collective must never alias.
_COST_CACHE: dict[tuple, float] = {}
_COST_CACHE_MAX = 65536


def _check_degradation(degradation: float) -> None:
    if not 0.0 < degradation <= 1.0:
        raise ValueError("degradation must be in (0, 1]")


def _cached_cost(key: tuple, compute) -> float:
    value = _COST_CACHE.get(key)
    if value is not None:
        if _metrics.COLLECT:
            _metrics.REGISTRY.counter("cost_model.cache_hits").inc()
        return value
    value = compute()
    if len(_COST_CACHE) < _COST_CACHE_MAX:
        _COST_CACHE[key] = value
    if _metrics.COLLECT:
        _metrics.REGISTRY.counter("cost_model.cache_misses").inc()
    return value


def ring_allreduce_time(
    nbytes: float, cluster: ClusterSpec, degradation: float = 1.0
) -> float:
    """Ring allreduce: ``2(p-1)α + 2 (p-1)/p · M/B`` seconds.

    ``degradation`` scales the effective link bandwidth (1.0 = nominal);
    fault injection uses it to model transient congestion.
    """
    _check_degradation(degradation)
    p = cluster.num_nodes
    if p == 1:
        return 0.0
    bps = cluster.bytes_per_second * degradation
    return _cached_cost(
        ("ring", float(nbytes), cluster, degradation),
        lambda: 2 * (p - 1) * cluster.latency_s + 2 * (p - 1) / p * nbytes / bps,
    )


def bucket_comm_times(
    bucket_nbytes, cluster, degradation: float = 1.0
) -> list[float]:
    """Allreduce seconds for each bucket payload (flat or hierarchical).

    Bucket caps make most buckets identically sized across iterations, so
    these evaluations are exactly what the memo cache is for — after the
    first iteration every lookup is a hit.
    """
    return [allreduce_cost(nb, cluster, degradation) for nb in bucket_nbytes]


def allgather_time(
    nbytes: float, cluster: ClusterSpec, degradation: float = 1.0
) -> float:
    """Ring allgather of per-node payloads of ``nbytes``:
    ``(p-1)α + (p-1) · M/B`` seconds."""
    _check_degradation(degradation)
    p = cluster.num_nodes
    if p == 1:
        return 0.0
    bps = cluster.bytes_per_second * degradation
    return _cached_cost(
        ("allgather", float(nbytes), cluster, degradation),
        lambda: (p - 1) * cluster.latency_s + (p - 1) * nbytes / bps,
    )


def broadcast_time(
    nbytes: float, cluster: ClusterSpec, degradation: float = 1.0
) -> float:
    """Binomial-tree broadcast: ``ceil(log2 p) (α + M/B)``."""
    _check_degradation(degradation)
    p = cluster.num_nodes
    if p == 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    bps = cluster.bytes_per_second * degradation
    return _cached_cost(
        ("broadcast", float(nbytes), cluster, degradation),
        lambda: rounds * (cluster.latency_s + nbytes / bps),
    )


def pipelined_broadcast_time(
    chunk_nbytes, cluster: ClusterSpec, degradation: float = 1.0
) -> float:
    """Chunked (pipelined) binomial-tree broadcast of payload tiles.

    With the payload split into chunks ``c_i`` flowing through the
    ``L = ceil(log2 p)`` tree levels store-and-forward style, the root
    injects chunks back to back and the last chunk drains the remaining
    levels behind the largest chunk:

        ``Σ_i (α + c_i/B)  +  (L − 1)(α + c_max/B)``

    For a single chunk this is exactly :func:`broadcast_time`; for a
    multi-chunk payload it is strictly cheaper whenever ``L > 1`` — the
    bandwidth term is paid once plus one max-chunk tail instead of ``L``
    times, which is why the recovery broadcast reuses the overlap
    schedule's bucket tiling.
    """
    _check_degradation(degradation)
    chunks = [float(c) for c in chunk_nbytes]
    if not chunks:
        raise ValueError("need at least one chunk")
    if any(c < 0 for c in chunks):
        raise ValueError("chunk sizes must be non-negative")
    p = cluster.num_nodes
    if p == 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    bps = cluster.bytes_per_second * degradation

    def compute() -> float:
        inject = sum(cluster.latency_s + c / bps for c in chunks)
        tail = (rounds - 1) * (cluster.latency_s + max(chunks) / bps)
        return inject + tail

    return _cached_cost(
        ("pipelined_broadcast", tuple(chunks), cluster, degradation), compute
    )


# ---------------------------------------------------------------------------
# Two-level hierarchical collectives.  ``degradation`` scales both fabrics
# (fault injection models cluster-wide congestion); the bandwidth term of
# the hierarchical allreduce reduces *exactly* to the flat ring's
# ``2(p-1)/p · M/B`` when both levels share one bandwidth:
#
#     2(g-1)/g·M/B + 2(n-1)/n·(M/g)/B = 2(ng-1)/(ng)·M/B
#
# so with zero latency the hierarchy is free — the win (and the loss) is
# entirely in where the latency rounds and the slow fabric's share land.


def hierarchical_allreduce_time(
    nbytes: float, cluster: HierarchicalSpec, degradation: float = 1.0
) -> float:
    """Reduce-scatter in-node → inter-node ring allreduce of the ``1/g``
    shard → allgather in-node."""
    _check_degradation(degradation)
    g = cluster.gpus_per_node
    intra = cluster.intra_spec

    def compute() -> float:
        # Reduce-scatter and allgather are each half a ring allreduce:
        # (g-1) latency rounds moving (g-1)/g · M bytes.
        half_ring = 0.0
        if g > 1:
            bps = intra.bytes_per_second * degradation
            half_ring = (g - 1) * intra.latency_s + (g - 1) / g * nbytes / bps
        mid = ring_allreduce_time(nbytes / g, cluster.inter_spec, degradation)
        return 2 * half_ring + mid

    return _cached_cost(("hier_ring", float(nbytes), cluster, degradation), compute)


def hierarchical_allgather_time(
    nbytes: float, cluster: HierarchicalSpec, degradation: float = 1.0
) -> float:
    """In-node allgather of per-rank payloads, then inter-node allgather
    of the fused ``g · M`` node payload."""
    _check_degradation(degradation)

    def compute() -> float:
        intra = allgather_time(nbytes, cluster.intra_spec, degradation)
        inter = allgather_time(
            nbytes * cluster.gpus_per_node, cluster.inter_spec, degradation
        )
        return intra + inter

    return _cached_cost(("hier_gather", float(nbytes), cluster, degradation), compute)


def hierarchical_broadcast_time(
    nbytes: float, cluster: HierarchicalSpec, degradation: float = 1.0
) -> float:
    """Binomial broadcast across nodes, then across each node's ranks."""
    _check_degradation(degradation)

    def compute() -> float:
        inter = broadcast_time(nbytes, cluster.inter_spec, degradation)
        intra = broadcast_time(nbytes, cluster.intra_spec, degradation)
        return inter + intra

    return _cached_cost(("hier_bcast", float(nbytes), cluster, degradation), compute)


# ---------------------------------------------------------------------------
# Topology dispatch: the simulator charges collectives without caring
# whether the cluster is a flat ring or a two-level hierarchy.


def allreduce_cost(nbytes: float, cluster, degradation: float = 1.0) -> float:
    """Allreduce seconds on either topology."""
    if isinstance(cluster, HierarchicalSpec):
        return hierarchical_allreduce_time(nbytes, cluster, degradation)
    return ring_allreduce_time(nbytes, cluster, degradation)


def allgather_cost(nbytes: float, cluster, degradation: float = 1.0) -> float:
    """Allgather seconds on either topology."""
    if isinstance(cluster, HierarchicalSpec):
        return hierarchical_allgather_time(nbytes, cluster, degradation)
    return allgather_time(nbytes, cluster, degradation)


def broadcast_cost(nbytes: float, cluster, degradation: float = 1.0) -> float:
    """Broadcast seconds on either topology."""
    if isinstance(cluster, HierarchicalSpec):
        return hierarchical_broadcast_time(nbytes, cluster, degradation)
    return broadcast_time(nbytes, cluster, degradation)


def pipelined_broadcast_cost(
    chunk_nbytes, cluster, degradation: float = 1.0
) -> float:
    """Pipelined broadcast seconds on either topology.

    On a hierarchy the tiles pipeline down the inter-node tree and the
    receiving node forwards them through one in-node broadcast stage,
    charged as a pipelined intra broadcast of the same tiling.
    """
    if isinstance(cluster, HierarchicalSpec):
        return pipelined_broadcast_time(
            chunk_nbytes, cluster.inter_spec, degradation
        ) + pipelined_broadcast_time(chunk_nbytes, cluster.intra_spec, degradation)
    return pipelined_broadcast_time(chunk_nbytes, cluster, degradation)
