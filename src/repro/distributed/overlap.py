"""Gradient bucketing and communication/computation overlap.

PyTorch DDP and Horovod hide allreduce latency behind the backward pass:
gradients are fused into size-capped buckets in *reverse* layer order
(the order backward produces them), and each bucket's allreduce launches
as soon as its last gradient arrives, while earlier layers are still
differentiating.  Pufferfish's Section 2/6 argument rests on exactly this
wait-free pipeline — pre-factorized models keep it, whereas explicit
compressors (PowerSGD, ATOMO, …) must wait for the *whole* gradient
before encoding and forfeit the overlap.

This module provides the three pieces the simulator composes:

* :func:`build_buckets` — greedy reverse-order bucket assembly over the
  flat parameter vector (each bucket is one contiguous slice);
* :class:`GradientArrivalRecorder` — measures, per parameter, when the
  real backward pass first materializes its gradient (via the autograd
  engine's ``GRAD_ARRIVAL_HOOK``), giving the simulator *measured*
  readiness times instead of an assumed backward fraction;
* :func:`schedule_overlap` — a discrete-event schedule of the bucket
  allreduces on a single serial in-flight channel (collectives on a ring
  cannot themselves run concurrently), yielding the *exposed* — i.e.
  non-hidden — communication time and the ``overlap_fraction`` metric.

All scheduling here is on the modeled clock and is deterministic given
the bucket communication times; fault-injection penalties enter only as
an explicit ``tail_penalty`` charged by the caller with the *same* RNG
draws as the non-overlapped path, so a fixed seed yields an identical
fault event timeline with and without overlap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..tensor import tensor as _tensor

__all__ = [
    "Bucket",
    "BucketEvent",
    "OverlapTimeline",
    "build_buckets",
    "schedule_overlap",
    "GradientArrivalRecorder",
]

FLOAT32_BYTES = 4


@dataclass(frozen=True)
class Bucket:
    """One contiguous slice of the flat gradient vector.

    ``param_indices`` are ascending positions into the forward-order
    parameter list; buckets are emitted in *ready* order (reverse layer
    order), so bucket 0 holds the model's last parameters.
    """

    index: int
    param_indices: tuple[int, ...]
    offset: int  # elements into the flat vector
    size: int  # elements

    @property
    def nbytes(self) -> int:
        return self.size * FLOAT32_BYTES


def build_buckets(param_sizes: Sequence[int], bucket_bytes: float) -> list[Bucket]:
    """Greedily fill size-capped buckets over parameters in reverse order.

    Mirrors torch DDP's ``bucket_cap_mb`` fusion: walk the parameters
    from the *last* (whose gradients backward produces first), close the
    current bucket when adding the next tensor would exceed
    ``bucket_bytes``.  A single tensor larger than the cap gets a bucket
    of its own — tensors are never split.  Because the walk is a reversed
    scan of the forward-order flat layout, every bucket is one contiguous
    slice of the flat vector.
    """
    if bucket_bytes <= 0:
        raise ValueError("bucket_bytes must be positive")
    n = len(param_sizes)
    if n == 0:
        raise ValueError("no parameters to bucket")
    offsets = []
    total = 0
    for size in param_sizes:
        offsets.append(total)
        total += int(size)

    buckets: list[Bucket] = []
    current: list[int] = []
    current_bytes = 0

    def close() -> None:
        if not current:
            return
        indices = tuple(reversed(current))  # ascending forward order
        start = offsets[indices[0]]
        size = sum(int(param_sizes[i]) for i in indices)
        buckets.append(Bucket(len(buckets), indices, start, size))

    for i in reversed(range(n)):
        nbytes = int(param_sizes[i]) * FLOAT32_BYTES
        if current and current_bytes + nbytes > bucket_bytes:
            close()
            current, current_bytes = [], 0
        current.append(i)
        current_bytes += nbytes
    close()
    return buckets


@dataclass(frozen=True)
class BucketEvent:
    """One bucket's modeled allreduce on the simulated clock (seconds
    relative to the start of the iteration's backward pass)."""

    index: int
    ready: float  # last gradient of the bucket materialized
    start: float  # allreduce began (ready, or when the channel freed up)
    end: float  # allreduce finished

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "ready": self.ready,
            "start": self.start,
            "end": self.end,
        }


@dataclass
class OverlapTimeline:
    """Result of scheduling one iteration's bucket allreduces."""

    events: list[BucketEvent]
    backward_end: float  # slowest worker's measured backward seconds
    comm_total: float  # serial (non-overlapped) comm incl. tail penalty
    finish: float  # when the last bucket (and penalties) completed

    @property
    def exposed(self) -> float:
        """Communication not hidden behind backward compute."""
        return max(0.0, self.finish - self.backward_end)

    @property
    def hidden(self) -> float:
        return self.comm_total - self.exposed

    @property
    def overlap_fraction(self) -> float:
        """Fraction of communication hidden behind compute, in [0, 1]."""
        if self.comm_total <= 0.0:
            return 1.0
        # Clamp: float rounding can leave hidden a few ulp outside
        # [0, comm_total] when the comm is fully exposed or fully hidden.
        return min(1.0, max(0.0, self.hidden / self.comm_total))


def schedule_overlap(
    ready_times: Sequence[float],
    comm_times: Sequence[float],
    backward_end: float,
    tail_penalty: float = 0.0,
    encode_times: Sequence[float] | None = None,
) -> OverlapTimeline:
    """Schedule bucket allreduces on one serial communication channel.

    Bucket ``i`` starts at ``max(ready_i, end_{i-1})`` and runs for
    ``comm_i`` seconds; ``tail_penalty`` (fault retries/backoff, which
    stall the synchronous ring regardless of bucketing) lands after the
    last bucket.  Ready times are clamped to ``backward_end`` (a gradient
    cannot arrive after backward finished; measurement jitter could
    otherwise place it there).

    ``encode_times`` models per-bucket compression: bucket ``i`` becomes
    wire-ready ``encode_i`` seconds *after* its last gradient arrived.
    The encode cost is added after the clamp — encoding genuinely delays
    the payload past the arrival, which is exactly the per-step cost an
    explicit compressor pays and a pre-factorized model does not (the
    paper's Section 2/6 argument, now measurable instead of forbidden).

    Without encode times every start is ≤ ``backward_end`` after
    clamping, so the finish time is ≤ ``backward_end + Σ comm +
    tail_penalty``, ``exposed`` is within ``[0, comm_total]`` and
    ``overlap_fraction`` is a true fraction.  Encode delays can push the
    schedule past that bound; the encode seconds themselves are charged
    by the caller, so ``comm_total`` still counts only wire time and the
    fraction stays clamped.
    """
    if len(ready_times) != len(comm_times):
        raise ValueError("ready_times and comm_times must align")
    if encode_times is not None and len(encode_times) != len(comm_times):
        raise ValueError("encode_times and comm_times must align")
    events: list[BucketEvent] = []
    channel_free = 0.0
    for i, (ready, comm) in enumerate(zip(ready_times, comm_times)):
        ready = min(max(0.0, float(ready)), backward_end)
        if encode_times is not None:
            ready += max(0.0, float(encode_times[i]))
        start = max(ready, channel_free)
        end = start + float(comm)
        channel_free = end
        events.append(BucketEvent(i, ready, start, end))
    finish = channel_free + tail_penalty
    comm_total = float(sum(comm_times)) + tail_penalty
    return OverlapTimeline(
        events=events,
        backward_end=float(backward_end),
        comm_total=comm_total,
        finish=finish,
    )


class GradientArrivalRecorder:
    """Measure when each tracked parameter's gradient first materializes.

    Installs the autograd engine's ``GRAD_ARRIVAL_HOOK`` for the duration
    of the ``with`` block (restoring any previous hook on exit) and
    timestamps the *first* accumulation into every tracked leaf.  After
    the block, :attr:`total` is the block's wall seconds and
    :meth:`arrival_times` returns per-parameter offsets from the block
    start — parameters that never received a gradient report ``total``
    (they become ready only when backward ends).
    """

    def __init__(self, params: Iterable):
        self._index = {id(p): i for i, p in enumerate(params)}
        self.arrivals: dict[int, float] = {}
        self.total = 0.0
        self._start = 0.0
        self._prev_hook = None

    def _hook(self, t) -> None:
        i = self._index.get(id(t))
        if i is not None and i not in self.arrivals:
            self.arrivals[i] = time.perf_counter() - self._start
        if self._prev_hook is not None:
            self._prev_hook(t)

    def __enter__(self) -> "GradientArrivalRecorder":
        self._prev_hook = _tensor.GRAD_ARRIVAL_HOOK
        _tensor.GRAD_ARRIVAL_HOOK = self._hook
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.total = time.perf_counter() - self._start
        _tensor.GRAD_ARRIVAL_HOOK = self._prev_hook

    def arrival_times(self) -> list[float]:
        """Per-parameter arrival seconds (block-relative, capped at
        :attr:`total`; missing gradients report :attr:`total`)."""
        return [
            min(self.arrivals.get(i, self.total), self.total)
            for i in range(len(self._index))
        ]
