"""Training loops: a generic single-node trainer and the Pufferfish
procedure of Algorithm 1 (vanilla warm-up → SVD conversion → low-rank
fine-tuning)."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

from ..nn import CrossEntropyLoss, GradScaler, cast_gradients_fp16, autocast_round_trip
from ..nn.module import Module
from ..observability import metrics as _metrics
from ..observability import trace as _trace
from ..optim import Optimizer, clip_grad_norm
from ..tensor import Tensor, no_grad
from ..utils import Logger
from .hybrid import FactorizationConfig, FactorizationReport, build_hybrid

__all__ = ["EpochStats", "Trainer", "PufferfishTrainer", "classification_batch"]


@dataclass
class EpochStats:
    """Per-epoch record appended to the training history."""

    epoch: int
    train_loss: float
    train_metric: float
    val_loss: float
    val_metric: float
    lr: float
    seconds: float
    num_parameters: int
    phase: str = "train"  # "warmup" (full-rank) or "lowrank"
    # Counter deltas for this epoch (macs, gemm_calls, ...) when metric
    # collection is enabled; None otherwise.
    metrics: dict | None = None


def classification_batch(model: Module, batch, loss_fn) -> tuple[Tensor, float, int]:
    """Default batch adapter: ``batch = (images, int labels)``.

    Returns (loss tensor, #correct, #examples).
    """
    x, y = batch
    logits = model(Tensor(x))
    loss = loss_fn(logits, y)
    correct = float((logits.data.argmax(axis=1) == y).sum())
    return loss, correct, len(y)


class Trainer:
    """Single-node SGD training loop.

    Parameters
    ----------
    model, optimizer: the usual pair.
    batch_fn:
        Callable ``(model, batch) -> (loss Tensor, metric_sum, count)``;
        defaults to image classification with cross-entropy.
    scheduler: optional LR schedule stepped once per epoch.
    grad_clip: optional global-norm clipping bound.
    amp: emulate mixed-precision training (fp16 grads + loss scaling).
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        batch_fn: Callable | None = None,
        loss_fn=None,
        scheduler=None,
        grad_clip: float | None = None,
        amp: bool = False,
        logger: Logger | None = None,
        post_step: Callable | None = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.post_step = post_step
        self.loss_fn = loss_fn or CrossEntropyLoss()
        self.batch_fn = batch_fn or (
            lambda m, b: classification_batch(m, b, self.loss_fn)
        )
        self.scheduler = scheduler
        self.grad_clip = grad_clip
        self.amp = amp
        self.scaler = GradScaler() if amp else None
        self.logger = logger or Logger(enabled=False)
        self.history: list[EpochStats] = []

    # ------------------------------------------------------------------

    def evaluate(self, loader: Iterable) -> tuple[float, float]:
        """Mean loss and mean metric over a validation loader."""
        self.model.eval()
        total_loss = 0.0
        total_metric = 0.0
        total_count = 0
        n_batches = 0
        with no_grad():
            for batch in loader:
                loss, metric, count = self.batch_fn(self.model, batch)
                total_loss += float(loss.data)
                total_metric += metric
                total_count += count
                n_batches += 1
        return total_loss / max(n_batches, 1), total_metric / max(total_count, 1)

    def fit(
        self,
        train_loader,
        val_loader,
        epochs: int,
        start_epoch: int = 0,
        phase: str = "train",
    ) -> list[EpochStats]:
        """Train for ``epochs`` epochs, recording stats per epoch."""
        for epoch in range(start_epoch, start_epoch + epochs):
            if self.scheduler is not None:
                self.scheduler.step(epoch)
            counters_before = _metrics.REGISTRY.counters() if _metrics.COLLECT else None
            t0 = time.perf_counter()
            # The "epoch" span brackets exactly the region that ``seconds``
            # times, so summed epoch spans reconcile with the history.
            with _trace.span("epoch", epoch=epoch, phase=phase):
                train_loss, train_metric = self.train_epoch(train_loader)
            elapsed = time.perf_counter() - t0
            with _trace.span("evaluate", epoch=epoch):
                val_loss, val_metric = self.evaluate(val_loader)
            if self.scheduler is not None and hasattr(self.scheduler, "best"):
                self.scheduler.step(epoch, metric=val_loss)
            epoch_metrics = None
            if counters_before is not None:
                epoch_metrics = _metrics.diff_counters(
                    _metrics.REGISTRY.counters(), counters_before
                )
                _metrics.REGISTRY.histogram("epoch_seconds").observe(elapsed)
                # Per-epoch training signals through the registry (the
                # ROADMAP's "next consumer" of the metrics layer).
                reg = _metrics.REGISTRY
                reg.counter("trainer.epochs").inc()
                reg.histogram("trainer.train_loss").observe(train_loss)
                reg.histogram("trainer.val_loss").observe(val_loss)
                reg.histogram("trainer.val_metric").observe(val_metric)
                reg.gauge("trainer.lr").set(self.optimizer.lr)
            stats = EpochStats(
                epoch=epoch,
                train_loss=train_loss,
                train_metric=train_metric,
                val_loss=val_loss,
                val_metric=val_metric,
                lr=self.optimizer.lr,
                seconds=elapsed,
                num_parameters=self.model.num_parameters(),
                phase=phase,
                metrics=epoch_metrics,
            )
            self.history.append(stats)
            self.logger.log(
                "epoch",
                epoch=epoch,
                phase=phase,
                train_loss=train_loss,
                val_metric=val_metric,
                lr=self.optimizer.lr,
                sec=elapsed,
            )
        return self.history

    def train_epoch(self, loader) -> tuple[float, float]:
        self.model.train()
        total_loss = 0.0
        total_metric = 0.0
        total_count = 0
        n_batches = 0
        for batch in loader:
            self.optimizer.zero_grad()
            if self.amp:
                autocast_round_trip(self.model)
            with _trace.span("forward"):
                loss, metric, count = self.batch_fn(self.model, batch)
            raw_loss = float(loss.data)
            with _trace.span("backward"):
                if self.amp:
                    self.scaler.scale_loss(loss).backward()
                    cast_gradients_fp16(self.optimizer.params)
                    skip = not self.scaler.unscale_and_check(self.optimizer.params)
                else:
                    loss.backward()
                    skip = False
            if skip:
                continue
            with _trace.span("optimizer_step"):
                if self.grad_clip is not None:
                    clip_grad_norm(self.optimizer.params, self.grad_clip)
                self.optimizer.step()
                if self.post_step is not None:
                    self.post_step(self.model)
            total_loss += raw_loss
            total_metric += metric
            total_count += count
            n_batches += 1
        return total_loss / max(n_batches, 1), total_metric / max(total_count, 1)


class PufferfishTrainer:
    """The full Pufferfish procedure (Algorithm 1).

    1. Train the vanilla full-rank model for ``warmup_epochs``.
    2. Factorize it into the hybrid architecture via truncated SVD
       (Σ^½-split factors; BN statistics and biases carried over).
    3. Train the hybrid model for the remaining epochs, continuing the
       same LR schedule (optionally scaled at the switch).

    Parameters
    ----------
    model: the vanilla model to start from.
    config: what/how to factorize (rank ratio, hybrid index K, skips).
    optimizer_factory: ``params -> Optimizer`` — called once for the vanilla
        phase and once after conversion (fresh momentum state, as in the
        paper's implementation).
    scheduler_factory: optional ``optimizer -> scheduler``.
    lr_decay_at_switch: multiply the LR by this factor when switching to
        the low-rank model (the paper halves the LSTM LR at the switch).
    config_builder: optional ``model -> FactorizationConfig`` evaluated on
        the *warm-up-trained* model just before conversion — the hook for
        spectrum-dependent policies such as
        :func:`repro.core.energy_rank_allocation` (overrides ``config``).
    """

    def __init__(
        self,
        model: Module,
        config: FactorizationConfig,
        optimizer_factory: Callable,
        warmup_epochs: int,
        total_epochs: int,
        batch_fn: Callable | None = None,
        loss_fn=None,
        scheduler_factory: Callable | None = None,
        grad_clip: float | None = None,
        amp: bool = False,
        lr_decay_at_switch: float = 1.0,
        logger: Logger | None = None,
        config_builder: Callable | None = None,
    ):
        if warmup_epochs > total_epochs:
            raise ValueError("warmup_epochs cannot exceed total_epochs")
        self.model = model
        self.config = config
        self.optimizer_factory = optimizer_factory
        self.scheduler_factory = scheduler_factory
        self.warmup_epochs = warmup_epochs
        self.total_epochs = total_epochs
        self.batch_fn = batch_fn
        self.loss_fn = loss_fn
        self.grad_clip = grad_clip
        self.amp = amp
        self.lr_decay_at_switch = lr_decay_at_switch
        self.config_builder = config_builder
        self.logger = logger or Logger(enabled=False)
        self.report: FactorizationReport | None = None
        self.history: list[EpochStats] = []

    def fit(self, train_loader, val_loader) -> Module:
        """Run the full procedure; returns the trained hybrid model."""
        # Phase 1: vanilla warm-up.
        optimizer = self.optimizer_factory(self.model.parameters())
        scheduler = (
            self.scheduler_factory(optimizer) if self.scheduler_factory else None
        )
        trainer = Trainer(
            self.model,
            optimizer,
            batch_fn=self.batch_fn,
            loss_fn=self.loss_fn,
            scheduler=scheduler,
            grad_clip=self.grad_clip,
            amp=self.amp,
            logger=self.logger,
        )
        if self.warmup_epochs > 0:
            with _trace.span("phase", name="warmup"):
                trainer.fit(train_loader, val_loader, self.warmup_epochs, phase="warmup")
        self.history.extend(trainer.history)

        # Phase 2: SVD conversion to the hybrid architecture.  A
        # config_builder sees the warm-up-trained weights (e.g. for
        # spectrum-driven rank allocation).
        if self.config_builder is not None:
            self.config = self.config_builder(self.model)
        with _trace.span("phase", name="svd_conversion"):
            hybrid, self.report = build_hybrid(self.model, self.config)
        self.logger.log(
            "converted",
            replaced=len(self.report.replaced),
            kept=len(self.report.kept),
            compression=self.report.compression,
            svd_sec=self.report.svd_seconds,
        )

        # Phase 3: consecutive low-rank training with the schedule continuing
        # from the warm-up epoch count.
        lr_now = optimizer.lr * self.lr_decay_at_switch
        optimizer2 = self.optimizer_factory(hybrid.parameters())
        optimizer2.lr = lr_now
        scheduler2 = (
            self.scheduler_factory(optimizer2) if self.scheduler_factory else None
        )
        trainer2 = Trainer(
            hybrid,
            optimizer2,
            batch_fn=self.batch_fn,
            loss_fn=self.loss_fn,
            scheduler=scheduler2,
            grad_clip=self.grad_clip,
            amp=self.amp,
            logger=self.logger,
        )
        remaining = self.total_epochs - self.warmup_epochs
        if remaining > 0:
            with _trace.span("phase", name="lowrank"):
                trainer2.fit(
                    train_loader,
                    val_loader,
                    remaining,
                    start_epoch=self.warmup_epochs,
                    phase="lowrank",
                )
        self.history.extend(trainer2.history)
        self.hybrid_model = hybrid
        return hybrid
