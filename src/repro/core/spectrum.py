"""Spectral analysis of layer weights.

The paper's closing observation — "winning tickets seem to be in abundance
once we seek models that are sparse in their spectral domain" — is a claim
about the singular-value spectra of (partially) trained weights.  This
module provides the measurement tools: per-layer spectra, normalized
energy curves, and two standard scalar summaries:

* **effective rank** (Roy & Vetterli 2007): ``exp(H(σ²/Σσ²))`` — the
  entropy-based count of "active" spectral directions.
* **stable rank**: ``‖W‖_F² / ‖W‖₂²`` — a robust lower bound on rank.

The automatic rank-allocation policy in :mod:`repro.core.rank_allocation`
is built directly on :func:`energy_rank`.
"""

from __future__ import annotations

import numpy as np

from ..nn.conv import Conv2d
from ..nn.linear import Linear
from ..nn.module import Module
from ..nn.rnn import LSTMLayer
from .factorize import unroll_conv_weight

__all__ = [
    "singular_values",
    "energy_curve",
    "energy_rank",
    "effective_rank",
    "stable_rank",
    "layer_spectra",
]


def singular_values(w: np.ndarray) -> np.ndarray:
    """Singular values of a layer weight in its factorization geometry.

    2-D weights are used as-is; 4-D conv kernels go through the paper's
    ``(c_in k², c_out)`` unrolling so the spectrum matches what truncated
    SVD would act on.
    """
    if w.ndim == 4:
        w = unroll_conv_weight(w)
    elif w.ndim != 2:
        raise ValueError(f"expected 2-D or 4-D weight, got shape {w.shape}")
    return np.linalg.svd(w.astype(np.float64), compute_uv=False)


def energy_curve(s: np.ndarray) -> np.ndarray:
    """Cumulative normalized spectral energy: ``E[k] = Σ_{i<=k} σᵢ² / Σ σ²``."""
    energy = s.astype(np.float64) ** 2
    total = energy.sum()
    if total == 0:
        return np.ones_like(energy)
    return np.cumsum(energy) / total


def energy_rank(s: np.ndarray, threshold: float = 0.9) -> int:
    """Smallest rank capturing ``threshold`` of the spectral energy."""
    if not 0 < threshold <= 1:
        raise ValueError("threshold must be in (0, 1]")
    curve = energy_curve(s)
    return int(np.searchsorted(curve, threshold - 1e-12) + 1)


def effective_rank(s: np.ndarray) -> float:
    """Entropy-based effective rank, ``exp(H(p))`` with ``p = σ/Σσ``."""
    s = s.astype(np.float64)
    total = s.sum()
    if total == 0:
        return 0.0
    p = s / total
    p = p[p > 0]
    return float(np.exp(-(p * np.log(p)).sum()))


def stable_rank(s: np.ndarray) -> float:
    """``‖W‖_F² / ‖W‖₂²`` from the singular values."""
    if s.size == 0 or s[0] == 0:
        return 0.0
    return float((s**2).sum() / s[0] ** 2)


def layer_spectra(model: Module) -> dict[str, np.ndarray]:
    """Singular values for every factorizable leaf of ``model``.

    LSTM layers contribute one entry per gate matrix
    (``<path>.ih{gate}`` / ``<path>.hh{gate}``).
    """
    out: dict[str, np.ndarray] = {}
    for path, mod in model.named_modules():
        if isinstance(mod, (Linear, Conv2d)):
            out[path] = singular_values(mod.weight.data)
        elif isinstance(mod, LSTMLayer):
            h = mod.hidden_size
            for gate, name in enumerate("ifgo"):
                out[f"{path}.ih_{name}"] = singular_values(
                    mod.weight_ih.data[gate * h : (gate + 1) * h]
                )
                out[f"{path}.hh_{name}"] = singular_values(
                    mod.weight_hh.data[gate * h : (gate + 1) * h]
                )
    return out
