"""Materialization: convert a trained hybrid model back to vanilla layers.

The inverse of :func:`repro.core.build_hybrid`.  After low-rank training,
each ``LowRankLinear``/``LowRankConv2d``/``LowRankLSTMLayer`` (and
``TuckerConv2d``) is replaced by a vanilla layer whose weight is the
materialized product ``U V^T`` — functionally identical outputs, but in
the standard layer format.

Why this exists: deployment stacks, visualization tools and pruning
baselines all expect vanilla weights.  Materializing costs parameters
(the product is full-size) but removes the extra GEMM per layer, which is
the better trade at inference time for layers whose rank is close to
full, and it makes hybrid checkpoints loadable into vanilla architectures.
"""

from __future__ import annotations

import copy

import numpy as np

from ..nn.conv import Conv2d
from ..nn.linear import Linear
from ..nn.module import Module
from ..nn.rnn import LSTMLayer
from .layers import LowRankConv2d, LowRankLinear, LowRankLSTMLayer
from .tucker import TuckerConv2d

__all__ = ["materialize_layer", "materialize_hybrid"]


def materialize_layer(layer: Module) -> Module:
    """Vanilla twin of one low-rank layer (weights = factor product)."""
    if isinstance(layer, LowRankLinear):
        out = Linear(layer.in_features, layer.out_features, bias=layer.bias is not None)
        out.weight.data = layer.effective_weight().astype(np.float32)
        if layer.bias is not None:
            out.bias.data = layer.bias.data.copy()
        return out

    if isinstance(layer, (LowRankConv2d, TuckerConv2d)):
        out = Conv2d(
            layer.in_channels,
            layer.out_channels,
            layer.kernel_size,
            stride=layer.stride,
            padding=layer.padding,
            bias=layer.bias is not None,
        )
        out.weight.data = layer.effective_weight().astype(np.float32)
        if layer.bias is not None:
            out.bias.data = layer.bias.data.copy()
        return out

    if isinstance(layer, LowRankLSTMLayer):
        out = LSTMLayer(layer.input_size, layer.hidden_size)
        w_ih = np.concatenate(
            [layer.u_ih.data[g] @ layer.vt_ih.data[g] for g in range(4)], axis=0
        )
        w_hh = np.concatenate(
            [layer.u_hh.data[g] @ layer.vt_hh.data[g] for g in range(4)], axis=0
        )
        out.weight_ih.data = w_ih.astype(np.float32)
        out.weight_hh.data = w_hh.astype(np.float32)
        out.bias_ih.data = layer.bias_ih.data.copy()
        out.bias_hh.data = layer.bias_hh.data.copy()
        return out

    raise TypeError(f"cannot materialize {type(layer).__name__}")


_LOWRANK_TYPES = (LowRankLinear, LowRankConv2d, LowRankLSTMLayer, TuckerConv2d)


def materialize_hybrid(model: Module) -> Module:
    """Deep-copied model with every low-rank layer materialized.

    The input model is untouched; the result produces outputs identical to
    the hybrid (up to float32 rounding in the factor products).
    """
    out = copy.deepcopy(model)
    # Collect first (mutating while iterating named_modules is unsafe).
    targets = [
        path for path, mod in out.named_modules() if isinstance(mod, _LOWRANK_TYPES)
    ]
    for path in targets:
        out.set_submodule(path, materialize_layer(out.get_submodule(path)))
    return out
