"""Hybrid-network construction: the `K` index and layer replacement.

Section 3: factorizing *every* layer hurts accuracy, so Pufferfish keeps
the first ``K-1`` factorizable layers (plus the very last FC classifier)
full-rank and factorizes the rest.  This module walks a model, enumerates
its factorizable leaves in definition order, and replaces those at index
``>= K`` with SVD-warm-started low-rank counterparts.

The conversion copies everything else verbatim — biases, BatchNorm scale /
shift and *running statistics*, embeddings — exactly as prescribed by the
"vanilla warm-up training" procedure of Algorithm 1.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field

from ..nn.conv import Conv2d
from ..nn.linear import Linear
from ..nn.module import Module
from ..nn.rnn import LSTMLayer
from .factorize import (
    default_rank,
    factorize_conv2d,
    factorize_linear,
    factorize_lstm_layer,
)

__all__ = [
    "FactorizationConfig",
    "FactorizationReport",
    "factorizable_leaves",
    "eligible_paths",
    "build_hybrid",
]

_FACTORIZABLE = (Conv2d, Linear, LSTMLayer)


@dataclass
class FactorizationConfig:
    """How to factorize a model.

    Attributes
    ----------
    rank_ratio:
        Global rank ratio (the paper uses 0.25 everywhere).
    first_lowrank_index:
        The hybrid index ``K``: factorizable leaves with position < K stay
        full-rank.  ``K=0`` factorizes everything allowed by the other
        rules; a large ``K`` leaves the model untouched.
    skip_first_conv:
        Never factorize the first convolution (always true in the paper).
    skip_last_fc:
        Never factorize the final FC layer — its rank equals the number of
        classes, so shrinking it adds linear dependencies (Section 3).
    full_rank_prefixes:
        Module-path prefixes forced to stay full-rank (e.g. the first
        encoder/decoder blocks of the Transformer, or embedding-adjacent
        projections).
    rank_overrides:
        Exact rank per module path, overriding ``rank_ratio``.
    """

    rank_ratio: float = 0.25
    first_lowrank_index: int = 0
    skip_first_conv: bool = True
    skip_last_fc: bool = True
    full_rank_prefixes: tuple[str, ...] = ()
    rank_overrides: dict = field(default_factory=dict)


@dataclass
class FactorizationReport:
    """What a conversion did: per-layer decisions plus aggregate stats."""

    replaced: list[tuple[str, int]] = field(default_factory=list)  # (path, rank)
    kept: list[str] = field(default_factory=list)
    params_before: int = 0
    params_after: int = 0
    svd_seconds: float = 0.0

    @property
    def compression(self) -> float:
        """Whole-model size ratio (paper's "X× smaller")."""
        return self.params_before / max(self.params_after, 1)


def factorizable_leaves(model: Module) -> list[tuple[str, Module]]:
    """All (path, layer) pairs eligible for factorization, in definition
    order.  Conv/Linear layers nested inside another factorizable leaf are
    not double-counted (a LowRank layer's internals are never revisited)."""
    out = []
    for path, mod in model.named_modules():
        if isinstance(mod, _FACTORIZABLE):
            out.append((path, mod))
    return out


def _max_rank(layer: Module) -> int:
    if isinstance(layer, Conv2d):
        return min(layer.in_channels * layer.kernel_size**2, layer.out_channels)
    if isinstance(layer, Linear):
        return min(layer.in_features, layer.out_features)
    if isinstance(layer, LSTMLayer):
        return min(layer.input_size, layer.hidden_size)
    raise TypeError(f"not factorizable: {type(layer).__name__}")


def _factorize(layer: Module, rank: int) -> Module:
    if isinstance(layer, Conv2d):
        return factorize_conv2d(layer, rank)
    if isinstance(layer, Linear):
        return factorize_linear(layer, rank)
    if isinstance(layer, LSTMLayer):
        return factorize_lstm_layer(layer, rank)
    raise TypeError(f"not factorizable: {type(layer).__name__}")


def eligible_paths(model: Module, config: FactorizationConfig) -> list[str]:
    """Leaf paths that ``build_hybrid`` would factorize under ``config``.

    The single source of truth for the keep/replace decision — rank
    schedulers (``repro.lifecycle``) use it to know which measured spectra
    can actually drive a re-factorization.
    """
    leaves = factorizable_leaves(model)
    convs = [p for p, m in leaves if isinstance(m, Conv2d)]
    fcs = [p for p, m in leaves if isinstance(m, Linear)]
    first_conv = convs[0] if convs else None
    last_fc = fcs[-1] if fcs else None
    out = []
    for idx, (path, _layer) in enumerate(leaves):
        keep = (
            idx < config.first_lowrank_index
            or (config.skip_first_conv and path == first_conv)
            or (config.skip_last_fc and path == last_fc)
            or any(path.startswith(pref) for pref in config.full_rank_prefixes)
        )
        if not keep:
            out.append(path)
    return out


def build_hybrid(
    model: Module, config: FactorizationConfig
) -> tuple[Module, FactorizationReport]:
    """Return a hybrid copy of ``model`` plus a report of what changed.

    The input model is untouched; the returned model shares no arrays with
    it.  Low-rank layers are initialized from the truncated SVD of the
    (possibly partially trained) input weights, so calling this after the
    warm-up epochs implements the paper's "vanilla warm-up training".
    """
    report = FactorizationReport(params_before=model.num_parameters())
    hybrid = copy.deepcopy(model)

    leaves = factorizable_leaves(hybrid)
    factorize = set(eligible_paths(hybrid, config))

    t0 = time.perf_counter()
    for path, layer in leaves:
        if path not in factorize:
            report.kept.append(path)
            continue
        rank = config.rank_overrides.get(
            path, default_rank(_max_rank(layer), config.rank_ratio)
        )
        hybrid.set_submodule(path, _factorize(layer, rank))
        report.replaced.append((path, rank))
    report.svd_seconds = time.perf_counter() - t0

    report.params_after = hybrid.num_parameters()
    return hybrid, report
