"""Low-rank (pre-factorized) layers — the Pufferfish building blocks.

Each class mirrors a vanilla layer from :mod:`repro.nn` with its weight
matrix replaced by trainable factors ``U V^T`` of rank ``r`` (Section 2 of
the paper):

* :class:`LowRankLinear` — ``W (out×in) ≈ U (out×r) · V^T (r×in)``.
* :class:`LowRankConv2d` — a thin ``r``-filter convolution ``U`` followed by
  a ``1×1`` convolution ``V^T`` mixing the ``r`` basis responses back to
  ``c_out`` channels (Fig. 1).
* :class:`LowRankLSTMLayer` — every gate matrix of both the input-hidden and
  hidden-hidden paths factorized separately with a shared rank, giving the
  Table 1 parameter count ``4dr + 12hr``.

Attention and FFN blocks are factorized by swapping their internal
``Linear`` projections for :class:`LowRankLinear` (the appendix-D shapes,
e.g. ``U^Q ∈ R^{512×128}``), so no dedicated class is needed.
"""

from __future__ import annotations

import math

import numpy as np

from ..nn import init
from ..nn.conv import Conv2d
from ..nn.module import Module, Parameter
from ..nn.rnn import lstm_step
from ..tensor import Tensor

__all__ = ["LowRankLinear", "LowRankConv2d", "LowRankLSTMLayer", "LowRankLSTM"]


class LowRankLinear(Module):
    """Affine map through rank-``r`` factors: ``y = (x V) U^T + b``."""

    def __init__(self, in_features: int, out_features: int, rank: int, bias: bool = True):
        super().__init__()
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.in_features = in_features
        self.out_features = out_features
        self.rank = rank
        # Scale init so the product U V^T matches a Kaiming-initialized W.
        self.u = Parameter(init.kaiming_uniform((out_features, rank)))
        self.vt = Parameter(init.kaiming_uniform((rank, in_features)))
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(init.uniform((out_features,), bound))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = (x @ self.vt.T) @ self.u.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def effective_weight(self) -> np.ndarray:
        """Materialize ``U V^T`` (for tests and analysis)."""
        return self.u.data @ self.vt.data

    def __repr__(self) -> str:
        return (
            f"LowRankLinear(in={self.in_features}, out={self.out_features}, "
            f"rank={self.rank}, bias={self.bias is not None})"
        )


class LowRankConv2d(Module):
    """Factorized convolution: ``conv_u`` (r filters, k×k) then ``conv_v`` (1×1).

    Parameter count ``c_in·r·k² + r·c_out`` and complexity
    ``O(r c_in k² HW + r HW c_out)`` per Table 1.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rank: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ):
        super().__init__()
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.rank = rank
        self.stride = stride
        self.padding = padding
        self.conv_u = Conv2d(
            in_channels, rank, kernel_size, stride=stride, padding=padding, bias=False
        )
        self.conv_v = Conv2d(rank, out_channels, 1, stride=1, padding=0, bias=bias)

    @property
    def bias(self):
        return self.conv_v.bias

    def forward(self, x: Tensor) -> Tensor:
        return self.conv_v(self.conv_u(x))

    def effective_weight(self) -> np.ndarray:
        """Materialize the equivalent full 4-D kernel ``(c_out, c_in, k, k)``."""
        u = self.conv_u.weight.data.reshape(self.rank, -1)  # (r, c_in*k*k)
        v = self.conv_v.weight.data.reshape(self.out_channels, self.rank)  # (c_out, r)
        return (v @ u).reshape(
            self.out_channels, self.in_channels, self.kernel_size, self.kernel_size
        )

    def __repr__(self) -> str:
        return (
            f"LowRankConv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, rank={self.rank}, s={self.stride}, p={self.padding})"
        )


class LowRankLSTMLayer(Module):
    """LSTM layer with every gate matrix factorized at a shared rank.

    Factors are stored stacked over the gate axis — ``u_ih (4, h, r)``,
    ``vt_ih (4, r, d)`` — so the whole-gate projection is two batched GEMMs
    per step instead of eight separate ones.  Gate order is (i, f, g, o),
    matching :class:`repro.nn.LSTMLayer` Eq. (2).
    """

    def __init__(self, input_size: int, hidden_size: int, rank: int):
        super().__init__()
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.rank = rank
        bound = 1.0 / math.sqrt(hidden_size)
        h, d, r = hidden_size, input_size, rank
        self.u_ih = Parameter(init.uniform((4, h, r), bound))
        self.vt_ih = Parameter(init.uniform((4, r, d), bound))
        self.u_hh = Parameter(init.uniform((4, h, r), bound))
        self.vt_hh = Parameter(init.uniform((4, r, h), bound))
        self.bias_ih = Parameter(init.uniform((4 * h,), bound))
        self.bias_hh = Parameter(init.uniform((4 * h,), bound))

    def _project(self, x: Tensor, u: Parameter, vt: Parameter) -> Tensor:
        """(N, in) -> (N, 4h) through the stacked per-gate factors."""
        n = x.shape[0]
        # (4, r, in) @ (in, N) -> (4, r, N); (4, h, r) @ (4, r, N) -> (4, h, N)
        mid = vt @ x.T
        gates = u @ mid  # (4, h, N)
        return gates.transpose(2, 0, 1).reshape(n, 4 * self.hidden_size)

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        t, b, _ = x.shape
        if state is None:
            h = Tensor(np.zeros((b, self.hidden_size), dtype=np.float32))
            c = Tensor(np.zeros((b, self.hidden_size), dtype=np.float32))
        else:
            h, c = state

        flat = x.reshape(t * b, self.input_size)
        gx_all = (self._project(flat, self.u_ih, self.vt_ih) + self.bias_ih).reshape(
            t, b, 4 * self.hidden_size
        )
        outputs: list[Tensor] = []
        for step in range(t):
            gh = self._project(h, self.u_hh, self.vt_hh) + self.bias_hh
            h, c = lstm_step(x[step], h, c, gx_all[step], gh, self.hidden_size)
            outputs.append(h.reshape(1, b, self.hidden_size))
        out = Tensor.concat(outputs, axis=0)
        return out, (h, c)

    def __repr__(self) -> str:
        return (
            f"LowRankLSTMLayer(in={self.input_size}, hidden={self.hidden_size}, "
            f"rank={self.rank})"
        )


class LowRankLSTM(Module):
    """Stacked low-rank LSTM mirroring :class:`repro.nn.LSTM`."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rank: int,
        num_layers: int = 1,
        dropout: float = 0.0,
    ):
        super().__init__()
        from ..nn.container import ModuleList
        from ..nn.dropout import Dropout

        self.num_layers = num_layers
        self.hidden_size = hidden_size
        self.layers = ModuleList(
            LowRankLSTMLayer(input_size if i == 0 else hidden_size, hidden_size, rank)
            for i in range(num_layers)
        )
        self.dropout = Dropout(dropout) if dropout > 0 else None

    def forward(self, x: Tensor, states=None):
        new_states = []
        out = x
        for i, layer in enumerate(self.layers):
            state = states[i] if states is not None else None
            out, s = layer(out, state)
            new_states.append(s)
            if self.dropout is not None and i < self.num_layers - 1:
                out = self.dropout(out)
        return out, new_states
