"""Tucker-2 decomposition of convolution kernels (the paper's "one can
also use tensor decomposition, e.g. the Tucker decomposition" extension —
Section 2.2 leaves it out "for simplicity"; we implement it).

A 4-D kernel ``W ∈ R^{c_out × c_in × k × k}`` is decomposed along its two
channel modes (Kim et al. 2016's standard compression scheme):

    ``W ≈ G ×₁ A ×₂ B``,  ``A ∈ R^{c_out × r_out}``, ``B ∈ R^{c_in × r_in}``

which executes as three convolutions:

    1×1 (c_in → r_in)  →  k×k (r_in → r_out)  →  1×1 (r_out → c_out)

Factors come from HOSVD: ``A``/``B`` are the leading left singular vectors
of the mode-1/mode-2 unfoldings, and the core is the projection of ``W``.
Parameter count: ``c_in·r_in + r_in·r_out·k² + r_out·c_out``.
"""

from __future__ import annotations

import numpy as np

from ..nn.conv import Conv2d
from ..nn.module import Module
from ..tensor import Tensor

__all__ = ["mode_unfold", "mode_fold", "tucker2_decompose", "TuckerConv2d", "tucker_conv_from"]


def mode_unfold(t: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding: ``(dim_mode, prod(other dims))``."""
    return np.moveaxis(t, mode, 0).reshape(t.shape[mode], -1)


def mode_fold(m: np.ndarray, mode: int, shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`mode_unfold`."""
    moved = list(shape)
    dim = moved.pop(mode)
    return np.moveaxis(m.reshape(dim, *moved), 0, mode)


def tucker2_decompose(
    w: np.ndarray, rank_out: int, rank_in: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """HOSVD Tucker-2 of an OIHW kernel along the channel modes.

    Returns ``(core, a, b)`` with shapes ``(r_out, r_in, k, k)``,
    ``(c_out, r_out)``, ``(c_in, r_in)`` such that
    ``W ≈ core ×₁ a ×₂ b``.
    """
    if w.ndim != 4:
        raise ValueError(f"expected OIHW kernel, got shape {w.shape}")
    c_out, c_in = w.shape[:2]
    rank_out = min(rank_out, c_out)
    rank_in = min(rank_in, c_in)

    w64 = w.astype(np.float64)
    u_out, _, _ = np.linalg.svd(mode_unfold(w64, 0), full_matrices=False)
    a = u_out[:, :rank_out]  # (c_out, r_out)
    u_in, _, _ = np.linalg.svd(mode_unfold(w64, 1), full_matrices=False)
    b = u_in[:, :rank_in]  # (c_in, r_in)

    # core = W ×₁ Aᵀ ×₂ Bᵀ
    core = np.einsum("oihw,or,is->rshw", w64, a, b)
    return core.astype(w.dtype), a.astype(w.dtype), b.astype(w.dtype)


def tucker2_reconstruct(core: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``core ×₁ a ×₂ b`` back to the OIHW kernel."""
    return np.einsum("rshw,or,is->oihw", core.astype(np.float64), a, b).astype(core.dtype)


class TuckerConv2d(Module):
    """Tucker-2 factorized convolution: 1×1 → k×k → 1×1.

    Parameter count ``c_in·r_in + r_in·r_out·k² + r_out·c_out`` (+ bias).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rank_in: int,
        rank_out: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ):
        super().__init__()
        if rank_in < 1 or rank_out < 1:
            raise ValueError("Tucker ranks must be >= 1")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.rank_in = rank_in
        self.rank_out = rank_out
        self.stride = stride
        self.padding = padding
        self.conv_in = Conv2d(in_channels, rank_in, 1, bias=False)
        self.conv_core = Conv2d(rank_in, rank_out, kernel_size, stride=stride,
                                padding=padding, bias=False)
        self.conv_out = Conv2d(rank_out, out_channels, 1, bias=bias)

    @property
    def bias(self):
        return self.conv_out.bias

    def forward(self, x: Tensor) -> Tensor:
        return self.conv_out(self.conv_core(self.conv_in(x)))

    def effective_weight(self) -> np.ndarray:
        """Materialize the equivalent full OIHW kernel."""
        core = self.conv_core.weight.data  # (r_out, r_in, k, k)
        b = self.conv_in.weight.data[:, :, 0, 0].T  # (c_in, r_in)
        a = self.conv_out.weight.data[:, :, 0, 0]  # (c_out, r_out)
        return tucker2_reconstruct(core, a, b)

    def __repr__(self) -> str:
        return (
            f"TuckerConv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, r_in={self.rank_in}, r_out={self.rank_out})"
        )


def tucker_conv_from(layer: Conv2d, rank_in: int, rank_out: int) -> TuckerConv2d:
    """Warm-start a :class:`TuckerConv2d` from a trained Conv2d via HOSVD."""
    w = layer.weight.data
    c_out, c_in, k, _ = w.shape
    core, a, b = tucker2_decompose(w, rank_out, rank_in)
    out = TuckerConv2d(
        c_in, c_out, k, rank_in=b.shape[1], rank_out=a.shape[1],
        stride=layer.stride, padding=layer.padding, bias=layer.bias is not None,
    )
    out.conv_in.weight.data = np.ascontiguousarray(b.T[:, :, None, None])
    out.conv_core.weight.data = np.ascontiguousarray(core)
    out.conv_out.weight.data = np.ascontiguousarray(a[:, :, None, None])
    if layer.bias is not None:
        out.conv_out.bias.data = layer.bias.data.copy()
    return out
