"""Pufferfish core: low-rank layers, SVD factorization, hybrid networks and
the Algorithm 1 training procedure."""

from .layers import LowRankLinear, LowRankConv2d, LowRankLSTMLayer, LowRankLSTM
from .factorize import (
    factorize_matrix,
    unroll_conv_weight,
    roll_conv_factors,
    default_rank,
    factorize_linear,
    factorize_conv2d,
    factorize_lstm_layer,
    approximation_error,
)
from .hybrid import (
    FactorizationConfig,
    FactorizationReport,
    factorizable_leaves,
    eligible_paths,
    build_hybrid,
)
from .trainer import EpochStats, Trainer, PufferfishTrainer, classification_batch
from .spectrum import (
    singular_values,
    energy_curve,
    energy_rank,
    effective_rank,
    stable_rank,
    layer_spectra,
)
from .rank_allocation import (
    energy_rank_allocation,
    budget_rank_allocation,
    allocation_report,
)
from .tucker import (
    TuckerConv2d,
    tucker2_decompose,
    tucker_conv_from,
    mode_unfold,
    mode_fold,
)
from .materialize import materialize_layer, materialize_hybrid

__all__ = [
    "LowRankLinear",
    "LowRankConv2d",
    "LowRankLSTMLayer",
    "LowRankLSTM",
    "factorize_matrix",
    "unroll_conv_weight",
    "roll_conv_factors",
    "default_rank",
    "factorize_linear",
    "factorize_conv2d",
    "factorize_lstm_layer",
    "approximation_error",
    "FactorizationConfig",
    "FactorizationReport",
    "factorizable_leaves",
    "eligible_paths",
    "build_hybrid",
    "EpochStats",
    "Trainer",
    "PufferfishTrainer",
    "classification_batch",
    "singular_values",
    "energy_curve",
    "energy_rank",
    "effective_rank",
    "stable_rank",
    "layer_spectra",
    "energy_rank_allocation",
    "budget_rank_allocation",
    "allocation_report",
    "TuckerConv2d",
    "tucker2_decompose",
    "tucker_conv_from",
    "mode_unfold",
    "mode_fold",
    "materialize_layer",
    "materialize_hybrid",
]
