"""Truncated-SVD factorization of trained layers (the warm-start step).

Implements the weight-transfer rule of Algorithm 1: for each layer past the
hybrid index, compute ``SVD(W) = Ũ Σ Ṽ^T`` truncated at rank ``r`` and split
the singular values symmetrically —

    ``U = Ũ Σ^{1/2}``,  ``V^T = Σ^{1/2} Ṽ^T``

so that neither factor starts with a skewed spectrum.  Convolutions are
factorized through the unrolled ``(c_in k², c_out)`` matrix of vectorized
filters (Section 2.2); LSTM gates are factorized one at a time (Eq. 2).
"""

from __future__ import annotations

import numpy as np

from ..nn.conv import Conv2d
from ..nn.linear import Linear
from ..nn.rnn import LSTMLayer
from .layers import LowRankConv2d, LowRankLinear, LowRankLSTMLayer

__all__ = [
    "factorize_matrix",
    "unroll_conv_weight",
    "roll_conv_factors",
    "default_rank",
    "factorize_linear",
    "factorize_conv2d",
    "factorize_lstm_layer",
    "approximation_error",
]


def factorize_matrix(w: np.ndarray, rank: int) -> tuple[np.ndarray, np.ndarray]:
    """Rank-``rank`` truncated SVD of a 2-D matrix with Σ^½ splitting.

    Returns ``(U, V^T)`` with shapes ``(m, r)`` and ``(r, n)`` such that
    ``U @ V^T`` is the best rank-``r`` approximation of ``w``.
    """
    if w.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {w.shape}")
    rank = min(rank, min(w.shape))
    # float64 SVD for accuracy, cast factors back to the weight dtype.
    u_full, s, vt_full = np.linalg.svd(w.astype(np.float64), full_matrices=False)
    sqrt_s = np.sqrt(s[:rank])
    u = (u_full[:, :rank] * sqrt_s).astype(w.dtype)
    vt = (sqrt_s[:, None] * vt_full[:rank]).astype(w.dtype)
    return u, vt


def unroll_conv_weight(w: np.ndarray) -> np.ndarray:
    """OIHW kernel ``(c_out, c_in, k, k)`` -> unrolled ``(c_in k², c_out)``.

    Each column is one vectorized filter, matching the paper's
    ``W_unrolled ∈ R^{c_in k² × c_out}`` convention.
    """
    c_out = w.shape[0]
    return w.reshape(c_out, -1).T


def roll_conv_factors(
    u: np.ndarray, vt: np.ndarray, c_in: int, c_out: int, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Reshape unrolled factors back to conv kernels.

    ``u (c_in k², r)`` becomes the thin convolution's OIHW kernel
    ``(r, c_in, k, k)``; ``vt (r, c_out)`` becomes the 1×1 mixing kernel
    ``(c_out, r, 1, 1)``.
    """
    rank = u.shape[1]
    u_kernel = u.T.reshape(rank, c_in, k, k)
    v_kernel = vt.T.reshape(c_out, rank, 1, 1)
    return np.ascontiguousarray(u_kernel), np.ascontiguousarray(v_kernel)


def default_rank(full_rank: int, rank_ratio: float) -> int:
    """The paper's global rule: ``r = full_rank × ratio`` (min 1).

    ``full_rank`` is the max possible rank of the (unrolled) weight matrix:
    ``min(c_in k², c_out)`` for convs, ``min(m, n)`` for FC layers.
    """
    return max(1, int(full_rank * rank_ratio))


def factorize_linear(layer: Linear, rank: int) -> LowRankLinear:
    """Build a :class:`LowRankLinear` warm-started from ``layer``'s weights."""
    u, vt = factorize_matrix(layer.weight.data, rank)
    out = LowRankLinear(
        layer.in_features, layer.out_features, rank=u.shape[1], bias=layer.bias is not None
    )
    out.u.data = u
    out.vt.data = vt
    if layer.bias is not None:
        out.bias.data = layer.bias.data.copy()
    return out


def factorize_conv2d(layer: Conv2d, rank: int) -> LowRankConv2d:
    """Build a :class:`LowRankConv2d` warm-started from ``layer``'s kernel."""
    w = layer.weight.data
    c_out, c_in, k, _ = w.shape
    u, vt = factorize_matrix(unroll_conv_weight(w), rank)
    u_kernel, v_kernel = roll_conv_factors(u, vt, c_in, c_out, k)
    out = LowRankConv2d(
        c_in,
        c_out,
        k,
        rank=u.shape[1],
        stride=layer.stride,
        padding=layer.padding,
        bias=layer.bias is not None,
    )
    out.conv_u.weight.data = u_kernel
    out.conv_v.weight.data = v_kernel
    if layer.bias is not None:
        out.conv_v.bias.data = layer.bias.data.copy()
    return out


def factorize_lstm_layer(layer: LSTMLayer, rank: int) -> LowRankLSTMLayer:
    """Factorize each of the eight gate matrices of an LSTM layer."""
    h, d = layer.hidden_size, layer.input_size
    rank = min(rank, h, d)
    out = LowRankLSTMLayer(d, h, rank)
    for gate in range(4):
        w_i = layer.weight_ih.data[gate * h : (gate + 1) * h]  # (h, d)
        w_h = layer.weight_hh.data[gate * h : (gate + 1) * h]  # (h, h)
        u_i, vt_i = factorize_matrix(w_i, rank)
        u_h, vt_h = factorize_matrix(w_h, rank)
        out.u_ih.data[gate] = u_i
        out.vt_ih.data[gate] = vt_i
        out.u_hh.data[gate] = u_h
        out.vt_hh.data[gate] = vt_h
    out.bias_ih.data = layer.bias_ih.data.copy()
    out.bias_hh.data = layer.bias_hh.data.copy()
    return out


def approximation_error(w: np.ndarray, u: np.ndarray, vt: np.ndarray) -> float:
    """Relative Frobenius error ``||W - U V^T||_F / ||W||_F``."""
    return float(np.linalg.norm(w - u @ vt) / max(np.linalg.norm(w), 1e-12))
