"""Automatic per-layer rank allocation.

The paper uses a single global rank ratio (0.25) and flags per-layer rank
selection as future work, citing Idelbayev & Carreira-Perpinán (2020):
"Allocating the optimal rank for each layer can lead to better final model
accuracy and smaller model sizes … the search space for the rank
allocation problem is large."

This module implements two practical allocators that plug straight into
:class:`repro.core.FactorizationConfig.rank_overrides`:

* :func:`energy_rank_allocation` — per layer, keep the smallest rank whose
  truncated spectrum retains a target fraction of spectral energy.  Layers
  whose (partially trained) weights are already effectively low-rank get
  aggressive compression; layers with flat spectra keep more.
* :func:`budget_rank_allocation` — global parameter budget: spend ranks
  greedily where a unit of rank buys the most retained energy per
  parameter, until the factorized model fits the budget.

Both operate on the warm-up-trained model, which is exactly when
Pufferfish runs its one-time SVD anyway — the spectra are free.
"""

from __future__ import annotations

import numpy as np

from ..nn.conv import Conv2d
from ..nn.linear import Linear
from ..nn.module import Module
from .factorize import unroll_conv_weight
from .hybrid import factorizable_leaves
from .spectrum import energy_rank

__all__ = ["energy_rank_allocation", "budget_rank_allocation", "allocation_report"]


def _leaf_matrix(layer) -> np.ndarray | None:
    """The 2-D matrix whose spectrum drives the layer's rank choice."""
    if isinstance(layer, Conv2d):
        return unroll_conv_weight(layer.weight.data)
    if isinstance(layer, Linear):
        return layer.weight.data
    return None  # LSTM layers handled by the global ratio


def _lowrank_params(shape: tuple[int, int], r: int) -> int:
    m, n = shape
    return r * (m + n)


def energy_rank_allocation(
    model: Module,
    energy_threshold: float = 0.9,
    min_rank: int = 1,
    max_ratio: float = 1.0,
) -> dict[str, int]:
    """Per-layer ranks retaining ``energy_threshold`` of spectral energy.

    Returns a ``rank_overrides`` mapping for the factorizable Conv/Linear
    leaves.  ``max_ratio`` caps each rank at that fraction of the layer's
    full rank (1.0 = no cap).
    """
    overrides: dict[str, int] = {}
    for path, layer in factorizable_leaves(model):
        w = _leaf_matrix(layer)
        if w is None:
            continue
        s = np.linalg.svd(w.astype(np.float64), compute_uv=False)
        r = energy_rank(s, energy_threshold)
        cap = max(min_rank, int(max_ratio * min(w.shape)))
        overrides[path] = int(np.clip(r, min_rank, cap))
    return overrides


def budget_rank_allocation(
    model: Module,
    param_budget: int,
    min_rank: int = 1,
) -> dict[str, int]:
    """Greedy global allocation under a total parameter budget.

    Each candidate (layer, next-rank-increment) is scored by marginal
    retained energy per added parameter; increments are granted best-first
    until the budget over the factorizable leaves is exhausted.
    """
    specs = []  # (path, shape, s, cost_per_rank)
    for path, layer in factorizable_leaves(model):
        w = _leaf_matrix(layer)
        if w is None:
            continue
        s = np.linalg.svd(w.astype(np.float64), compute_uv=False)
        specs.append((path, w.shape, s, sum(w.shape)))

    ranks = {path: min_rank for path, _, _, _ in specs}
    spent = sum(_lowrank_params(shape, min_rank) for _, shape, _, _ in specs)
    if spent > param_budget:
        return ranks  # budget too tight: everything at the floor

    # Greedy: repeatedly grant +1 rank to the layer with the best marginal
    # energy gain per parameter.
    import heapq

    heap = []
    for idx, (path, shape, s, cost) in enumerate(specs):
        r = ranks[path]
        if r < len(s):
            gain = float(s[r] ** 2) / cost
            heapq.heappush(heap, (-gain, idx, r))

    while heap:
        neg_gain, idx, r = heapq.heappop(heap)
        path, shape, s, cost = specs[idx]
        if ranks[path] != r:  # stale entry
            continue
        if spent + cost > param_budget:
            continue
        ranks[path] = r + 1
        spent += cost
        if r + 1 < len(s):
            gain = float(s[r + 1] ** 2) / cost
            heapq.heappush(heap, (-gain, idx, r + 1))
    return ranks


def allocation_report(
    model: Module, overrides: dict[str, int]
) -> list[tuple[str, int, int, float]]:
    """(path, full_rank, allocated_rank, retained_energy) per layer."""
    rows = []
    for path, layer in factorizable_leaves(model):
        if path not in overrides:
            continue
        w = _leaf_matrix(layer)
        s = np.linalg.svd(w.astype(np.float64), compute_uv=False)
        r = overrides[path]
        energy = float((s[:r] ** 2).sum() / max((s**2).sum(), 1e-12))
        rows.append((path, int(min(w.shape)), r, energy))
    return rows
