"""The autoscaling control loop: windowed serving sims driving replica counts.

Each evaluation window, every pool replays its slice of the scenario's
arrivals through an independent :class:`~repro.serve.simulator.ServeSimulator`
at its *current* replica count, the policy reads the resulting
shed/utilization signals, and the loop applies the proposed delta under
min/max clamps and a cooldown.  Queue state is **not** carried across
windows — each window is a fresh steady-state sample at that replica
count, which keeps the whole run a pure function of
``(seed, profiles, config)`` and lets windows be replayed independently.

The run emits a :class:`ClusterReport` whose sha256 timeline digest is
the determinism contract: two invocations with the same inputs produce
the same digest, byte for byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..observability import metrics as _metrics
from ..observability import trace as _trace
from ..serve.latency import LatencyProfile
from ..serve.simulator import BatchPolicy, ServeConfig, ServeSimulator
from .errors import ClusterConfigError
from .hosts import HostSpec, ReplicaSpec
from .placement import PlacementResult, pack
from .policies import ScalingPolicy, WindowStats
from .scenario import ClusterScenario, route_arrivals

__all__ = ["PoolConfig", "ScaleEvent", "WindowRecord", "ClusterReport", "ClusterAutoscaler"]


@dataclass(frozen=True)
class PoolConfig:
    """One replica pool: a model variant, its measured profile, its limits."""

    name: str
    replica: ReplicaSpec
    profile: LatencyProfile
    slo_s: float
    policy: ScalingPolicy
    batch: BatchPolicy = field(default_factory=BatchPolicy)
    initial_replicas: int = 1
    min_replicas: int = 1
    max_replicas: int = 16
    cooldown_windows: int = 1
    traffic_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ClusterConfigError("pool name must be non-empty")
        if self.slo_s <= 0:
            raise ClusterConfigError("slo_s must be positive")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ClusterConfigError("need 1 <= min_replicas <= max_replicas")
        if not self.min_replicas <= self.initial_replicas <= self.max_replicas:
            raise ClusterConfigError(
                "initial_replicas must lie within [min_replicas, max_replicas]"
            )
        if self.cooldown_windows < 0:
            raise ClusterConfigError("cooldown_windows must be >= 0")
        if not 0.0 <= self.traffic_fraction <= 1.0:
            raise ClusterConfigError("traffic_fraction must be in [0, 1]")


@dataclass(frozen=True)
class ScaleEvent:
    """One applied replica-count change on the window clock."""

    window: int
    pool: str
    before: int
    after: int
    reason: str  # policy name that proposed the move

    @property
    def direction(self) -> str:
        return "up" if self.after > self.before else "down"

    def as_dict(self) -> dict:
        return {
            "window": self.window,
            "pool": self.pool,
            "before": self.before,
            "after": self.after,
            "direction": self.direction,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class WindowRecord:
    """One pool's measured signals for one evaluation window."""

    window: int
    pool: str
    replicas: int
    offered: int
    completed: int
    shed_rate: float
    utilization: float
    p95_ms: float

    def as_dict(self) -> dict:
        return {
            "window": self.window,
            "pool": self.pool,
            "replicas": self.replicas,
            "offered": self.offered,
            "completed": self.completed,
            "shed_rate": round(self.shed_rate, 6),
            "utilization": round(self.utilization, 6),
            "p95_ms": round(self.p95_ms, 6),
        }


@dataclass
class ClusterReport:
    """Full control-loop output: per-window signals + applied scale events."""

    scenario_seed: int
    window_s: float
    records: list[WindowRecord]
    events: list[ScaleEvent]
    final_replicas: dict[str, int]
    placement: PlacementResult | None = None

    def pool_records(self, pool: str) -> list[WindowRecord]:
        return [r for r in self.records if r.pool == pool]

    def steady_state_shed(self, pool: str, last_n: int = 3) -> float:
        """Mean shed rate over the last ``last_n`` windows of one pool."""
        recs = self.pool_records(pool)[-last_n:]
        return sum(r.shed_rate for r in recs) / len(recs) if recs else 0.0

    def max_replicas_seen(self, pool: str) -> int:
        return max((r.replicas for r in self.pool_records(pool)), default=0)

    def oscillations(self, pool: str) -> int:
        """Count of immediate direction reversals (up then down in
        adjacent applied events, or vice versa) — hysteresis should keep
        this at zero for steady phases."""
        evs = [e for e in self.events if e.pool == pool]
        return sum(
            1
            for a, b in zip(evs, evs[1:])
            if a.direction != b.direction and b.window - a.window <= 1
        )

    def timeline(self) -> list[dict]:
        return [r.as_dict() for r in self.records]

    def digest(self) -> str:
        """Stable hash of the full windowed timeline + scale events."""
        payload = json.dumps(
            {
                "seed": self.scenario_seed,
                "window_s": self.window_s,
                "records": self.timeline(),
                "events": [e.as_dict() for e in self.events],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def summary(self) -> dict:
        pools = sorted(self.final_replicas)
        out = {
            "seed": self.scenario_seed,
            "window_s": self.window_s,
            "n_windows": max((r.window for r in self.records), default=-1) + 1,
            "n_scale_events": len(self.events),
            "final_replicas": dict(sorted(self.final_replicas.items())),
            "pools": {
                p: {
                    "steady_state_shed": round(self.steady_state_shed(p), 6),
                    "max_replicas": self.max_replicas_seen(p),
                    "oscillations": self.oscillations(p),
                }
                for p in pools
            },
            "timeline_digest": self.digest(),
        }
        if self.placement is not None:
            out["placement"] = {
                "policy": self.placement.policy,
                "n_hosts": self.placement.n_hosts,
                "fleet_cost": round(self.placement.fleet_cost, 6),
                "n_rejected": len(self.placement.rejected),
            }
        return out


class ClusterAutoscaler:
    """Step a seeded scenario through per-pool serving sims, scaling as it goes."""

    def __init__(
        self,
        scenario: ClusterScenario,
        pools: list[PoolConfig],
        host_spec: HostSpec | None = None,
        placement_policy: str = "ffd",
    ):
        if not pools:
            raise ClusterConfigError("autoscaler needs at least one pool")
        names = [p.name for p in pools]
        if len(set(names)) != len(names):
            raise ClusterConfigError(f"duplicate pool names: {names}")
        total = sum(p.traffic_fraction for p in pools)
        if abs(total - 1.0) > 1e-9:
            raise ClusterConfigError(
                f"pool traffic fractions must sum to 1, got {total}"
            )
        self.scenario = scenario
        self.pools = list(pools)
        self.host_spec = host_spec
        self.placement_policy = placement_policy

    def run(self) -> ClusterReport:
        sc = self.scenario
        replicas = {p.name: p.initial_replicas for p in self.pools}
        cooldown_left = {p.name: 0 for p in self.pools}
        history: dict[str, list[WindowStats]] = {p.name: [] for p in self.pools}
        records: list[WindowRecord] = []
        events: list[ScaleEvent] = []
        collect = _metrics.COLLECT
        fractions = {p.name: p.traffic_fraction for p in self.pools}

        with _trace.span("cluster.autoscale", windows=sc.n_windows, pools=len(self.pools)):
            for w in range(sc.n_windows):
                arrivals = sc.window_arrivals(w)
                start, end = sc.window_bounds(w)
                if len(self.pools) == 1:
                    routed = {self.pools[0].name: arrivals}
                else:
                    routed = route_arrivals(arrivals, fractions, sc.seed, w)
                for pool in self.pools:
                    pool_arrivals = routed[pool.name] - start
                    sim = ServeSimulator(
                        pool.profile,
                        ServeConfig(
                            slo_s=pool.slo_s,
                            policy=pool.batch,
                            replicas=replicas[pool.name],
                        ),
                        pool=pool.name,
                    )
                    report = sim.run(pool_arrivals, duration_s=end - start)
                    stats = WindowStats(
                        window=w,
                        offered=report.n_requests,
                        shed_rate=report.shed_rate,
                        utilization=report.utilization,
                        replicas=replicas[pool.name],
                    )
                    history[pool.name].append(stats)
                    records.append(
                        WindowRecord(
                            window=w,
                            pool=pool.name,
                            replicas=replicas[pool.name],
                            offered=report.n_requests,
                            completed=report.n_completed,
                            shed_rate=report.shed_rate,
                            utilization=report.utilization,
                            p95_ms=report.latency_quantile(0.95) * 1e3,
                        )
                    )
                    if collect:
                        _metrics.REGISTRY.gauge("cluster.pool.replicas").labels(
                            pool=pool.name
                        ).set(replicas[pool.name])
                        _metrics.REGISTRY.gauge("cluster.pool.shed_rate").labels(
                            pool=pool.name
                        ).set(report.shed_rate)
                    # Policy step, gated by cooldown, clamped to limits.
                    if cooldown_left[pool.name] > 0:
                        cooldown_left[pool.name] -= 1
                        continue
                    delta = pool.policy.decide(history[pool.name])
                    if delta == 0:
                        continue
                    before = replicas[pool.name]
                    after = max(pool.min_replicas, min(pool.max_replicas, before + delta))
                    if after == before:
                        continue
                    replicas[pool.name] = after
                    cooldown_left[pool.name] = pool.cooldown_windows
                    events.append(
                        ScaleEvent(
                            window=w,
                            pool=pool.name,
                            before=before,
                            after=after,
                            reason=pool.policy.name,
                        )
                    )
                    if collect:
                        _metrics.REGISTRY.counter("cluster.scale_events").labels(
                            direction="up" if after > before else "down"
                        ).inc()

        placement = None
        if self.host_spec is not None:
            fleet = [
                pool.replica
                for pool in self.pools
                for _ in range(replicas[pool.name])
            ]
            placement = pack(fleet, self.host_spec, policy=self.placement_policy)
        return ClusterReport(
            scenario_seed=sc.seed,
            window_s=sc.window_s,
            records=records,
            events=events,
            final_replicas=dict(replicas),
            placement=placement,
        )
