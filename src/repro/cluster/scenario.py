"""Seeded multi-phase load scenarios, windowed for the control loop.

A scenario is a piecewise-constant offered-load schedule (e.g. 250 rps
for 60 s, spike to 450 rps for 60 s, back down) sliced into fixed
evaluation windows.  Each window's arrivals come from the serving load
generator with a window-derived seed, so the whole timeline is a pure
function of ``(scenario seed, phases, window_s)`` — the same counter-keyed
discipline as :mod:`repro.serve.loadgen` and the fault injector, extended
one level up: window ``w``'s draws never depend on how many windows ran
before it or on what any pool did with them.

Multi-pool runs (canary rollouts) split each window's stream by traffic
fraction with a seeded routing draw per window, so shifting 5% → 25% of
traffic to a canary pool is itself deterministic and replayable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..serve.loadgen import PROCESSES, ArrivalSpec, generate_arrivals
from .errors import ClusterConfigError

__all__ = ["LoadPhase", "ClusterScenario", "parse_phases", "route_arrivals"]

# Stable kind ids mixed into derived seeds (same discipline as the fault
# injector's _KIND_IDS); renumbering would change every seeded scenario.
_KIND_WINDOW = 11
_KIND_ROUTE = 12


@dataclass(frozen=True)
class LoadPhase:
    """One constant-rate segment of the schedule."""

    duration_s: float
    rate_rps: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ClusterConfigError("phase duration_s must be positive")
        if self.rate_rps <= 0:
            raise ClusterConfigError("phase rate_rps must be positive")


@dataclass(frozen=True)
class ClusterScenario:
    """A windowed, seeded offered-load schedule for the control loop."""

    phases: tuple[LoadPhase, ...]
    window_s: float = 10.0
    process: str = "poisson"
    seed: int = 0
    burst_factor: float = 4.0
    burst_prob: float = 0.1

    def __post_init__(self) -> None:
        if not self.phases:
            raise ClusterConfigError("scenario needs at least one phase")
        if self.window_s <= 0:
            raise ClusterConfigError("window_s must be positive")
        if self.process not in PROCESSES:
            raise ClusterConfigError(f"unknown arrival process {self.process!r}")

    @property
    def duration_s(self) -> float:
        return sum(p.duration_s for p in self.phases)

    @property
    def n_windows(self) -> int:
        return int(math.ceil(self.duration_s / self.window_s))

    def rate_at(self, t: float) -> float:
        """Offered rate at modeled time ``t`` (last phase rate past the end)."""
        elapsed = 0.0
        for phase in self.phases:
            elapsed += phase.duration_s
            if t < elapsed:
                return phase.rate_rps
        return self.phases[-1].rate_rps

    def window_bounds(self, w: int) -> tuple[float, float]:
        start = w * self.window_s
        return start, min(start + self.window_s, self.duration_s)

    def window_arrivals(self, w: int) -> np.ndarray:
        """Sorted absolute arrival times for evaluation window ``w``.

        The window's rate is the schedule rate at its start (phases are
        normally multiples of ``window_s``, making this exact).  The
        derived seed keys on ``(scenario seed, window)`` only, so two
        pools replaying the same scenario see identical streams.
        """
        if not 0 <= w < self.n_windows:
            raise ClusterConfigError(f"window {w} outside [0, {self.n_windows})")
        start, end = self.window_bounds(w)
        spec = ArrivalSpec(
            rate_rps=self.rate_at(start),
            duration_s=end - start,
            process=self.process,
            seed=_derive_seed(self.seed, _KIND_WINDOW, w),
            burst_factor=self.burst_factor,
            burst_prob=self.burst_prob,
        )
        return start + generate_arrivals(spec)


def _derive_seed(seed: int, kind: int, index: int) -> int:
    """Deterministic sub-seed; spaced so windows never share a stream."""
    return (seed * 1_000_003 + kind * 65_537 + index) % (2**63)


def route_arrivals(
    arrivals: np.ndarray,
    fractions: dict[str, float],
    seed: int,
    window: int,
) -> dict[str, np.ndarray]:
    """Split one window's arrivals across pools by traffic fraction.

    Every request draws one uniform from a ``(seed, window)``-keyed
    generator and lands in the pool whose cumulative-fraction bucket it
    falls into — deterministic, order-preserving within each pool.
    Fractions must sum to 1 (every request is somebody's problem).
    """
    if not fractions:
        raise ClusterConfigError("route_arrivals needs at least one pool")
    total = sum(fractions.values())
    if any(f < 0 for f in fractions.values()) or not math.isclose(
        total, 1.0, rel_tol=0, abs_tol=1e-9
    ):
        raise ClusterConfigError(f"traffic fractions must be >= 0 and sum to 1, got {total}")
    names = sorted(fractions)
    edges = np.cumsum([fractions[n] for n in names])
    rng = np.random.default_rng((_derive_seed(seed, _KIND_ROUTE, window),))
    draws = rng.random(len(arrivals))
    buckets = np.searchsorted(edges, draws, side="right")
    buckets = np.minimum(buckets, len(names) - 1)  # guard the u == 1.0 edge
    return {name: arrivals[buckets == i] for i, name in enumerate(names)}


def parse_phases(spec: str) -> tuple[LoadPhase, ...]:
    """Parse the CLI phase grammar ``RATExDURATION[,...]``.

    Example: ``"250x60,450x60,250x60"`` — 250 rps for 60 s, 450 for 60,
    back to 250 for 60.
    """
    phases: list[LoadPhase] = []
    for i, part in enumerate(s.strip() for s in spec.split(",")):
        if not part:
            raise ClusterConfigError(f"empty phase at position {i} in {spec!r}")
        rate, sep, duration = part.partition("x")
        if not sep:
            raise ClusterConfigError(
                f"bad phase {part!r} (expected RATExDURATION, e.g. 250x60)"
            )
        try:
            phases.append(LoadPhase(duration_s=float(duration), rate_rps=float(rate)))
        except ValueError as e:
            raise ClusterConfigError(f"bad phase {part!r}: {e}") from e
    return tuple(phases)
