"""Canary rollout: shift traffic full-rank → factorized, gated on shed delta.

The rollout walks a fixed schedule of traffic fractions (5% → 25% → 50%
→ 100% by default).  At each step the window's arrivals are split
between the ``baseline`` (full-rank) and ``canary`` (factorized) pools
with the scenario's seeded router, both pools serve their share through
independent simulations, and the step is judged on the *shed-rate
delta*: canary minus baseline, averaged over the step's windows.  Delta
within tolerance → advance; above it → roll back to 0% and stop.

Replica counts are sized deterministically from each pool's measured
capacity (``ceil(share · rate / capacity_rps)`` with headroom), so the
gate compares the variants at equivalent provisioning rather than
letting an under-provisioned canary fail the rollout.  Like every run
in this package, the outcome is a pure function of
``(seed, profiles, config)`` and carries a sha256 digest.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field

from ..observability import metrics as _metrics
from ..observability import trace as _trace
from ..serve.latency import LatencyProfile
from ..serve.simulator import BatchPolicy, ServeConfig, ServeSimulator
from .errors import ClusterConfigError
from .scenario import ClusterScenario, route_arrivals

__all__ = ["CanaryConfig", "CanaryStepRecord", "CanaryReport", "run_canary"]

PROMOTED = "promoted"
ROLLED_BACK = "rolled_back"


@dataclass(frozen=True)
class CanaryConfig:
    """Rollout schedule and the promotion gate."""

    steps: tuple[float, ...] = (0.05, 0.25, 0.5, 1.0)
    windows_per_step: int = 3
    shed_delta_tolerance: float = 0.01
    slo_s: float = 0.15
    batch: BatchPolicy = field(default_factory=BatchPolicy)
    headroom: float = 1.2  # provision ceil(headroom · share · rate / capacity)
    max_replicas: int = 64

    def __post_init__(self) -> None:
        if not self.steps:
            raise ClusterConfigError("canary needs at least one step")
        if any(not 0.0 < s <= 1.0 for s in self.steps):
            raise ClusterConfigError("canary steps must be fractions in (0, 1]")
        if list(self.steps) != sorted(self.steps):
            raise ClusterConfigError("canary steps must be increasing")
        if self.steps[-1] != 1.0:
            raise ClusterConfigError("last canary step must be 1.0 (full rollout)")
        if self.windows_per_step < 1:
            raise ClusterConfigError("windows_per_step must be >= 1")
        if self.shed_delta_tolerance < 0:
            raise ClusterConfigError("shed_delta_tolerance must be >= 0")
        if self.slo_s <= 0:
            raise ClusterConfigError("slo_s must be positive")
        if self.headroom < 1.0:
            raise ClusterConfigError("headroom must be >= 1")
        if self.max_replicas < 1:
            raise ClusterConfigError("max_replicas must be >= 1")


@dataclass(frozen=True)
class CanaryStepRecord:
    """One rollout step's judged outcome."""

    step: int
    fraction: float
    baseline_replicas: int
    canary_replicas: int
    baseline_shed: float
    canary_shed: float
    advanced: bool

    @property
    def shed_delta(self) -> float:
        return self.canary_shed - self.baseline_shed

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "fraction": self.fraction,
            "baseline_replicas": self.baseline_replicas,
            "canary_replicas": self.canary_replicas,
            "baseline_shed": round(self.baseline_shed, 6),
            "canary_shed": round(self.canary_shed, 6),
            "shed_delta": round(self.shed_delta, 6),
            "advanced": self.advanced,
        }


@dataclass
class CanaryReport:
    """The rollout's full step history and final verdict."""

    status: str  # promoted | rolled_back
    final_fraction: float
    steps: list[CanaryStepRecord]

    def digest(self) -> str:
        payload = json.dumps(
            {
                "status": self.status,
                "final_fraction": self.final_fraction,
                "steps": [s.as_dict() for s in self.steps],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def summary(self) -> dict:
        return {
            "status": self.status,
            "final_fraction": self.final_fraction,
            "n_steps": len(self.steps),
            "steps": [s.as_dict() for s in self.steps],
            "timeline_digest": self.digest(),
        }


def _provision(rate_rps: float, share: float, capacity: float, cfg: CanaryConfig) -> int:
    """Deterministic replica count for one pool's traffic share."""
    if share <= 0.0:
        return 0
    need = math.ceil(cfg.headroom * share * rate_rps / capacity)
    return min(max(need, 1), cfg.max_replicas)


def _pool_shed(
    profile: LatencyProfile,
    n_replicas: int,
    arrivals,
    window_span: tuple[float, float],
    cfg: CanaryConfig,
    pool: str,
) -> tuple[int, int]:
    """Run one pool for one window; returns (offered, shed)."""
    start, end = window_span
    sim = ServeSimulator(
        profile,
        ServeConfig(slo_s=cfg.slo_s, policy=cfg.batch, replicas=n_replicas),
        pool=pool,
    )
    report = sim.run(arrivals - start, duration_s=end - start)
    return report.n_requests, report.n_shed


def run_canary(
    scenario: ClusterScenario,
    baseline_profile: LatencyProfile,
    canary_profile: LatencyProfile,
    config: CanaryConfig | None = None,
) -> CanaryReport:
    """Walk the rollout schedule over the scenario's window stream.

    Each step consumes the next ``windows_per_step`` scenario windows;
    the scenario must be long enough for the full schedule
    (``len(steps) · windows_per_step`` windows).
    """
    cfg = config or CanaryConfig()
    needed = len(cfg.steps) * cfg.windows_per_step
    if scenario.n_windows < needed:
        raise ClusterConfigError(
            f"scenario has {scenario.n_windows} windows; schedule needs {needed}"
        )

    records: list[CanaryStepRecord] = []
    collect = _metrics.COLLECT
    w = 0
    with _trace.span("cluster.canary", steps=len(cfg.steps)):
        for step_i, fraction in enumerate(cfg.steps):
            base_offered = base_shed = can_offered = can_shed = 0
            rate = scenario.rate_at(w * scenario.window_s)
            n_base = _provision(rate, 1.0 - fraction, baseline_profile.capacity_rps(), cfg)
            n_can = _provision(rate, fraction, canary_profile.capacity_rps(), cfg)
            for _ in range(cfg.windows_per_step):
                arrivals = scenario.window_arrivals(w)
                span = scenario.window_bounds(w)
                if fraction >= 1.0:
                    routed = {"canary": arrivals}
                elif fraction <= 0.0:
                    routed = {"baseline": arrivals}
                else:
                    routed = route_arrivals(
                        arrivals,
                        {"baseline": 1.0 - fraction, "canary": fraction},
                        scenario.seed,
                        w,
                    )
                if "baseline" in routed and n_base:
                    o, s = _pool_shed(
                        baseline_profile, n_base, routed["baseline"], span, cfg, "baseline"
                    )
                    base_offered += o
                    base_shed += s
                if "canary" in routed and n_can:
                    o, s = _pool_shed(
                        canary_profile, n_can, routed["canary"], span, cfg, "canary"
                    )
                    can_offered += o
                    can_shed += s
                w += 1
            baseline_rate = base_shed / base_offered if base_offered else 0.0
            canary_rate = can_shed / can_offered if can_offered else 0.0
            delta = canary_rate - baseline_rate
            advanced = delta <= cfg.shed_delta_tolerance
            records.append(
                CanaryStepRecord(
                    step=step_i,
                    fraction=fraction,
                    baseline_replicas=n_base,
                    canary_replicas=n_can,
                    baseline_shed=baseline_rate,
                    canary_shed=canary_rate,
                    advanced=advanced,
                )
            )
            if collect:
                _metrics.REGISTRY.gauge("cluster.canary.fraction").set(fraction)
                _metrics.REGISTRY.gauge("cluster.canary.shed_delta").set(delta)
            if not advanced:
                if collect:
                    _metrics.REGISTRY.counter("cluster.canary.rollbacks").inc()
                return CanaryReport(
                    status=ROLLED_BACK, final_fraction=0.0, steps=records
                )
    if collect:
        _metrics.REGISTRY.counter("cluster.canary.promotions").inc()
    return CanaryReport(status=PROMOTED, final_fraction=1.0, steps=records)
