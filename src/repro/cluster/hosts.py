"""The fleet's physical model: hosts with budgets, replicas with costs.

A host offers two budgets — resident memory and compute (peak service
rate) — and a replica consumes a slice of each.  The costs are not free
parameters: a replica's memory footprint comes from the serving
registry's *exact* parameter accounting
(:meth:`~repro.serve.registry.ServedModel.memory_bytes`) and its compute
capacity from the measured latency profile's
:meth:`~repro.serve.latency.LatencyProfile.capacity_rps`.  That is what
makes the factorized-vs-full host-count comparison a measured quantity
rather than a knob: Pufferfish's permanently smaller models pack more
replicas per host, so the same traffic needs fewer hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ClusterConfigError

__all__ = ["HostSpec", "ReplicaSpec", "Host", "replica_spec_for"]


@dataclass(frozen=True)
class HostSpec:
    """One host type's budgets (the fleet is homogeneous by design —
    heterogeneous pools would be modeled as separate fleets)."""

    mem_bytes: int
    compute_rps: float
    cost: float = 1.0  # relative cost of one host; fleet cost sums these

    def __post_init__(self) -> None:
        if self.mem_bytes <= 0:
            raise ClusterConfigError("host mem_bytes must be positive")
        if self.compute_rps <= 0:
            raise ClusterConfigError("host compute_rps must be positive")
        if self.cost <= 0:
            raise ClusterConfigError("host cost must be positive")


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica's resource demand, derived from measured model costs."""

    model: str
    variant: str
    mem_bytes: int
    capacity_rps: float

    def __post_init__(self) -> None:
        if self.mem_bytes <= 0:
            raise ClusterConfigError("replica mem_bytes must be positive")
        if self.capacity_rps <= 0:
            raise ClusterConfigError("replica capacity_rps must be positive")

    @property
    def key(self) -> str:
        return f"{self.model}:{self.variant}"


def replica_spec_for(
    served,
    profile,
    *,
    bytes_per_param: int = 4,
    overhead_bytes: int = 0,
) -> ReplicaSpec:
    """Build a :class:`ReplicaSpec` from a materialized model + profile.

    ``overhead_bytes`` accounts for per-replica activation/runtime memory
    beyond the weights; it defaults to zero so the packed numbers stay a
    pure function of the registry's parameter counts.
    """
    return ReplicaSpec(
        model=served.name,
        variant=served.variant,
        mem_bytes=served.memory_bytes(bytes_per_param) + overhead_bytes,
        capacity_rps=profile.capacity_rps(),
    )


@dataclass
class Host:
    """A host being filled by the placement engine."""

    index: int
    spec: HostSpec
    replicas: list[ReplicaSpec] = field(default_factory=list)
    mem_used: int = 0
    rps_used: float = 0.0

    def fits(self, replica: ReplicaSpec) -> bool:
        return (
            self.mem_used + replica.mem_bytes <= self.spec.mem_bytes
            and self.rps_used + replica.capacity_rps <= self.spec.compute_rps
        )

    def place(self, replica: ReplicaSpec) -> None:
        if not self.fits(replica):
            raise ValueError(f"replica {replica.key} does not fit host {self.index}")
        self.replicas.append(replica)
        self.mem_used += replica.mem_bytes
        self.rps_used += replica.capacity_rps

    @property
    def mem_free(self) -> int:
        return self.spec.mem_bytes - self.mem_used

    @property
    def rps_free(self) -> float:
        return self.spec.compute_rps - self.rps_used

    def count_of(self, key: str) -> int:
        return sum(1 for r in self.replicas if r.key == key)

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "replicas": sorted(r.key for r in self.replicas),
            "mem_used": self.mem_used,
            "mem_bytes": self.spec.mem_bytes,
            "rps_used": round(self.rps_used, 6),
            "compute_rps": self.spec.compute_rps,
        }
