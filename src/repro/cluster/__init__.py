"""Replica placement + autoscaling control plane over :mod:`repro.serve`.

Pufferfish's serving claim — factorized models are permanently smaller,
so a fleet serving them needs fewer hosts at the same SLO — becomes a
measured quantity here.  The package layers a deterministic,
discrete-event *cluster* model over the single-pool serving simulator:

* :mod:`repro.cluster.hosts`      — hosts with memory/compute budgets;
  replica costs derived from the registry's exact parameter accounting
  and measured latency-profile capacity.
* :mod:`repro.cluster.placement`  — bin-packing placement engine
  (first-fit-decreasing / best-fit / spread) with fleet-cost reporting
  and explicit rejection (never silent drops).
* :mod:`repro.cluster.scenario`   — seeded multi-phase load scenarios,
  sliced into fixed evaluation windows with counter-keyed RNG.
* :mod:`repro.cluster.policies`   — pluggable scaling policies
  (target-utilization, shed-rate) with hysteresis dead bands.
* :mod:`repro.cluster.autoscaler` — the control loop: per-pool serving
  sims per window → policy deltas under cooldown → timeline + digest.
* :mod:`repro.cluster.canary`     — staged traffic shift full-rank →
  factorized, gated on shed-rate delta; promotes or rolls back.

Every run is a pure function of ``(seed, profiles, config)`` and emits
a sha256 timeline digest; ``cluster.*`` metrics flow through
:mod:`repro.observability`.  See ``docs/CLUSTER.md``.
"""

from .autoscaler import ClusterAutoscaler, ClusterReport, PoolConfig, ScaleEvent, WindowRecord
from .canary import PROMOTED, ROLLED_BACK, CanaryConfig, CanaryReport, CanaryStepRecord, run_canary
from .errors import ClusterConfigError, ClusterError
from .hosts import Host, HostSpec, ReplicaSpec, replica_spec_for
from .placement import (
    PLACEMENT_POLICIES,
    PlacementResult,
    lower_bound_hosts,
    next_fit,
    pack,
)
from .policies import (
    POLICIES,
    ScalingPolicy,
    ShedRatePolicy,
    TargetUtilizationPolicy,
    WindowStats,
    make_policy,
)
from .scenario import ClusterScenario, LoadPhase, parse_phases, route_arrivals

__all__ = [
    "ClusterError",
    "ClusterConfigError",
    "Host",
    "HostSpec",
    "ReplicaSpec",
    "replica_spec_for",
    "PLACEMENT_POLICIES",
    "PlacementResult",
    "pack",
    "next_fit",
    "lower_bound_hosts",
    "ClusterScenario",
    "LoadPhase",
    "parse_phases",
    "route_arrivals",
    "POLICIES",
    "WindowStats",
    "ScalingPolicy",
    "TargetUtilizationPolicy",
    "ShedRatePolicy",
    "make_policy",
    "PoolConfig",
    "ScaleEvent",
    "WindowRecord",
    "ClusterReport",
    "ClusterAutoscaler",
    "CanaryConfig",
    "CanaryStepRecord",
    "CanaryReport",
    "run_canary",
    "PROMOTED",
    "ROLLED_BACK",
]
