"""Typed exceptions for the cluster control plane.

Mirrors the fault injector's :class:`~repro.distributed.errors.FaultSpecError`
pattern: configuration mistakes raise :class:`ClusterConfigError` so the
CLI can catch one type, print the message, and exit 2 instead of dumping
a traceback at the operator.
"""

from __future__ import annotations

__all__ = ["ClusterError", "ClusterConfigError"]


class ClusterError(Exception):
    """Base class for cluster control-plane failures."""


class ClusterConfigError(ClusterError, ValueError):
    """A scenario/policy/host configuration that cannot be run."""
