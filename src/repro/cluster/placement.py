"""Replica placement: bin-packing model variants onto a shared host budget.

Placement turns "how many replicas does each pool need" (the autoscaler's
output, or a fixed fleet plan) into "how many hosts does that cost" —
the number the Pufferfish serving story is about, since factorized
replicas are memory-cheaper and more of them fit per host.

Three policies, all deterministic:

* ``ffd``      — first-fit-decreasing: sort replicas by memory (desc),
  place each in the first host with room.  The classic 11/9·OPT+6/9
  heuristic; the default.
* ``best_fit`` — same order, but place in the feasible host that leaves
  the *least* memory slack (tightest fit), consolidating the fleet.
* ``spread``   — same order, but prefer the feasible host holding the
  fewest replicas of the same ``model:variant`` (then the most free
  memory), trading slack for fault-domain diversity.

A replica that fits no open host opens a new one, up to ``max_hosts``;
when the fleet is capped and nothing fits, the replica lands in
``rejected`` — placement never silently drops work.  ``next_fit`` (the
naive single-pass packer that only ever looks at the most recently
opened host) is exposed as the property-test baseline: on the same
decreasing order, first-fit never opens more hosts than next-fit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..observability import metrics as _metrics
from ..observability import trace as _trace
from .errors import ClusterConfigError
from .hosts import Host, HostSpec, ReplicaSpec

__all__ = ["PLACEMENT_POLICIES", "PlacementResult", "pack", "next_fit", "lower_bound_hosts"]

PLACEMENT_POLICIES = ("ffd", "best_fit", "spread")


@dataclass
class PlacementResult:
    """Where every replica went (or why it could not go anywhere)."""

    policy: str
    host_spec: HostSpec
    hosts: list[Host] = field(default_factory=list)
    rejected: list[ReplicaSpec] = field(default_factory=list)

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    @property
    def n_placed(self) -> int:
        return sum(len(h.replicas) for h in self.hosts)

    @property
    def fleet_cost(self) -> float:
        return sum(h.spec.cost for h in self.hosts)

    @property
    def mem_utilization(self) -> float:
        """Packed fraction of the provisioned memory (packing quality)."""
        total = sum(h.spec.mem_bytes for h in self.hosts)
        return sum(h.mem_used for h in self.hosts) / total if total else 0.0

    def replica_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for h in self.hosts:
            for r in h.replicas:
                out[r.key] = out.get(r.key, 0) + 1
        return out

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "n_hosts": self.n_hosts,
            "fleet_cost": round(self.fleet_cost, 6),
            "mem_utilization": round(self.mem_utilization, 6),
            "replica_counts": self.replica_counts(),
            "n_rejected": len(self.rejected),
            "rejected": sorted(r.key for r in self.rejected),
            "hosts": [h.as_dict() for h in self.hosts],
        }


def _sorted_decreasing(replicas: list[ReplicaSpec]) -> list[ReplicaSpec]:
    """Canonical decreasing order: memory, then capacity, then key.

    The full tie-break chain makes placement a pure function of the
    replica *multiset* — input order never matters for the packed result.
    """
    return sorted(
        replicas, key=lambda r: (-r.mem_bytes, -r.capacity_rps, r.key)
    )


def _choose_host(policy: str, hosts: list[Host], replica: ReplicaSpec) -> Host | None:
    feasible = [h for h in hosts if h.fits(replica)]
    if not feasible:
        return None
    if policy == "ffd":
        return feasible[0]
    if policy == "best_fit":
        return min(feasible, key=lambda h: (h.mem_free - replica.mem_bytes, h.index))
    # spread: fewest same-key replicas, then most free memory, then index.
    return min(
        feasible,
        key=lambda h: (h.count_of(replica.key), -h.mem_free, h.index),
    )


def pack(
    replicas: list[ReplicaSpec],
    host_spec: HostSpec,
    policy: str = "ffd",
    max_hosts: int | None = None,
) -> PlacementResult:
    """Pack ``replicas`` onto hosts of type ``host_spec``.

    Deterministic: the result depends only on the replica multiset, the
    host spec, the policy, and ``max_hosts``.
    """
    if policy not in PLACEMENT_POLICIES:
        raise ClusterConfigError(
            f"unknown placement policy {policy!r}; expected one of {PLACEMENT_POLICIES}"
        )
    if max_hosts is not None and max_hosts < 1:
        raise ClusterConfigError("max_hosts must be >= 1")

    result = PlacementResult(policy=policy, host_spec=host_spec)
    with _trace.span("cluster.place", policy=policy, replicas=len(replicas)):
        for replica in _sorted_decreasing(list(replicas)):
            host = _choose_host(policy, result.hosts, replica)
            if host is None:
                can_open = max_hosts is None or len(result.hosts) < max_hosts
                fits_empty = (
                    replica.mem_bytes <= host_spec.mem_bytes
                    and replica.capacity_rps <= host_spec.compute_rps
                )
                if can_open and fits_empty:
                    host = Host(index=len(result.hosts), spec=host_spec)
                    result.hosts.append(host)
                else:
                    result.rejected.append(replica)
                    continue
            host.place(replica)
    if _metrics.COLLECT:
        _metrics.REGISTRY.counter("cluster.replicas_placed").inc(result.n_placed)
        _metrics.REGISTRY.counter("cluster.replicas_rejected").inc(len(result.rejected))
        _metrics.REGISTRY.gauge("cluster.hosts").labels(policy=policy).set(result.n_hosts)
        _metrics.REGISTRY.gauge("cluster.fleet_cost").labels(policy=policy).set(
            result.fleet_cost
        )
    return result


def next_fit(replicas: list[ReplicaSpec], host_spec: HostSpec) -> PlacementResult:
    """The naive one-pass packer: only the most recently opened host is
    ever considered.  Property-test baseline — on the same decreasing
    order, first-fit placement never uses more hosts than this."""
    result = PlacementResult(policy="next_fit", host_spec=host_spec)
    for replica in _sorted_decreasing(list(replicas)):
        fits_empty = (
            replica.mem_bytes <= host_spec.mem_bytes
            and replica.capacity_rps <= host_spec.compute_rps
        )
        if not fits_empty:
            result.rejected.append(replica)
            continue
        if not result.hosts or not result.hosts[-1].fits(replica):
            result.hosts.append(Host(index=len(result.hosts), spec=host_spec))
        result.hosts[-1].place(replica)
    return result


def _ceil_volume(ratio: float) -> int:
    # Summation error can push an exactly-integral ratio a few ulps above
    # the integer (n replicas that exactly saturate n hosts), which would
    # inflate the "lower" bound past a feasible packing; shave a relative
    # epsilon before taking the ceiling.
    return math.ceil(ratio - 1e-9 * max(1.0, abs(ratio)))


def lower_bound_hosts(replicas: list[ReplicaSpec], host_spec: HostSpec) -> int:
    """Volume lower bound on any feasible packing (memory and compute)."""
    if not replicas:
        return 0
    mem = sum(r.mem_bytes for r in replicas) / host_spec.mem_bytes
    rps = sum(r.capacity_rps for r in replicas) / host_spec.compute_rps
    return max(_ceil_volume(mem), _ceil_volume(rps), 1)
