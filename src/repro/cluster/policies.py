"""Pluggable autoscaling policies over windowed serving signals.

A policy looks at one pool's recent evaluation windows (shed rate,
utilization, replica count) and proposes a replica delta.  The control
loop owns clamping (min/max replicas) and cooldown; the policy owns
*when* to move and *by how much*.

Both built-ins are hysteretic: the scale-up trigger and the scale-down
trigger are separated by a dead band, and scale-down additionally waits
for ``stable_windows`` consecutive calm windows.  Without that gap a
pool sitting near the threshold flaps — scale up, look idle, scale
down, shed, scale up … — which the oscillation test asserts cannot
happen.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import ClusterConfigError

__all__ = [
    "POLICIES",
    "WindowStats",
    "ScalingPolicy",
    "TargetUtilizationPolicy",
    "ShedRatePolicy",
    "make_policy",
]

POLICIES = ("target_utilization", "shed_rate")


@dataclass(frozen=True)
class WindowStats:
    """One pool's signals for one evaluation window."""

    window: int
    offered: int
    shed_rate: float
    utilization: float
    replicas: int


class ScalingPolicy:
    """Base class: map recent window stats to a replica delta."""

    name = "base"

    def decide(self, history: list[WindowStats]) -> int:
        """Return the proposed replica delta (+k grow, -k shrink, 0 hold).

        ``history`` is the pool's full window history, most recent last;
        it is never empty when called.
        """
        raise NotImplementedError

    def describe(self) -> dict:
        return {"name": self.name}


@dataclass(frozen=True)
class TargetUtilizationPolicy(ScalingPolicy):
    """Keep pool utilization inside a dead band around a target.

    Scale up proportionally when the last window's utilization exceeds
    ``high`` (enough replicas to bring it back to ``target``); scale down
    one replica at a time when utilization stayed under ``low`` for
    ``stable_windows`` consecutive windows.
    """

    target: float = 0.6
    high: float = 0.8
    low: float = 0.3
    stable_windows: int = 3

    name = "target_utilization"

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ClusterConfigError("target utilization must be in (0, 1)")
        if not self.low < self.target <= self.high:
            raise ClusterConfigError(
                "need low < target <= high for a hysteresis dead band"
            )
        if self.stable_windows < 1:
            raise ClusterConfigError("stable_windows must be >= 1")

    def decide(self, history: list[WindowStats]) -> int:
        last = history[-1]
        if last.utilization > self.high:
            # Replicas needed to pull utilization back to target, given
            # busy-time scales ~1/replicas at fixed offered load.
            want = math.ceil(last.replicas * last.utilization / self.target)
            return max(want - last.replicas, 1)
        recent = history[-self.stable_windows :]
        if (
            len(recent) >= self.stable_windows
            and all(w.utilization < self.low for w in recent)
            and last.replicas > 1
        ):
            return -1
        return 0

    def describe(self) -> dict:
        return {
            "name": self.name,
            "target": self.target,
            "high": self.high,
            "low": self.low,
            "stable_windows": self.stable_windows,
        }


@dataclass(frozen=True)
class ShedRatePolicy(ScalingPolicy):
    """Chase an SLO shed-rate target directly.

    Scale up whenever the last window shed more than ``target`` (one
    replica per ``step_shed`` of excess, at least one); scale down only
    after ``stable_windows`` consecutive windows with zero shed *and*
    utilization low enough that losing a replica keeps the pool under
    ``max_util_after_shrink`` — the hysteresis that stops the
    shed→grow→idle→shrink→shed loop.
    """

    target: float = 0.01
    step_shed: float = 0.10
    stable_windows: int = 3
    max_util_after_shrink: float = 0.7

    name = "shed_rate"

    def __post_init__(self) -> None:
        if not 0.0 <= self.target < 1.0:
            raise ClusterConfigError("target shed rate must be in [0, 1)")
        if self.step_shed <= 0:
            raise ClusterConfigError("step_shed must be positive")
        if self.stable_windows < 1:
            raise ClusterConfigError("stable_windows must be >= 1")
        if not 0.0 < self.max_util_after_shrink <= 1.0:
            raise ClusterConfigError("max_util_after_shrink must be in (0, 1]")

    def decide(self, history: list[WindowStats]) -> int:
        last = history[-1]
        if last.shed_rate > self.target:
            excess = last.shed_rate - self.target
            return max(1, int(excess / self.step_shed))
        recent = history[-self.stable_windows :]
        if (
            len(recent) >= self.stable_windows
            and all(w.shed_rate <= self.target for w in recent)
            and last.replicas > 1
        ):
            # Projected utilization if one replica is removed.
            projected = last.utilization * last.replicas / (last.replicas - 1)
            if projected < self.max_util_after_shrink:
                return -1
        return 0

    def describe(self) -> dict:
        return {
            "name": self.name,
            "target": self.target,
            "step_shed": self.step_shed,
            "stable_windows": self.stable_windows,
            "max_util_after_shrink": self.max_util_after_shrink,
        }


def make_policy(name: str, **kwargs) -> ScalingPolicy:
    """Build a policy by registry name (the CLI entry point)."""
    if name == "target_utilization":
        return TargetUtilizationPolicy(**kwargs)
    if name == "shed_rate":
        return ShedRatePolicy(**kwargs)
    raise ClusterConfigError(f"unknown policy {name!r}; expected one of {POLICIES}")
