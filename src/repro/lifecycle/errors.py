"""Lifecycle-specific exceptions."""

from __future__ import annotations

__all__ = ["LifecycleError", "LifecycleConfigError", "PromotionError"]


class LifecycleError(Exception):
    """Base class for lifecycle failures."""


class LifecycleConfigError(LifecycleError, ValueError):
    """A lifecycle config that cannot produce a valid run."""


class PromotionError(LifecycleError):
    """Registry promotion or lookup failed (missing run, bad version, ...)."""
