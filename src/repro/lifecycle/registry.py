"""Checkpoint promotion registry: versioned artifacts with lineage.

The shipping boundary between training and serving.  A
:class:`PromotionRegistry` is a directory of versioned ``.npz``
checkpoints plus an ``index.json``; promoting a :class:`~.pipeline.LifecycleRun`
(or a run artifact written by the CLI) stamps the run's full lineage —
parent run id, config and spectra digests, rank map, param/MAC accounting
— into the checkpoint metadata and the index.  Because the rank map rides
inside the artifact, a promoted checkpoint is self-describing:
``repro.serve.ModelRegistry.materialize`` rebuilds the exact per-layer
hybrid architecture before loading weights, and the gateway exposes the
lineage on ``GET /v1/model``.

Versions are integers per model name, assigned densely from 1.  Nothing
here depends on wall-clock time, so registry contents are a pure function
of the promoted runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..observability import metrics as _metrics
from ..observability import trace as _trace
from ..utils import amend_checkpoint, save_checkpoint
from .errors import PromotionError
from .pipeline import LifecycleRun

__all__ = ["CheckpointRecord", "PromotionRegistry"]

_INDEX = "index.json"


@dataclass(frozen=True)
class CheckpointRecord:
    """One promoted checkpoint version and its provenance."""

    name: str
    version: int
    path: str
    lineage: dict

    @property
    def rank_map(self) -> dict:
        return dict(self.lineage.get("rank_map", {}))

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "version": self.version,
            "path": self.path,
            "lineage": dict(self.lineage),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckpointRecord":
        return cls(
            name=data["name"],
            version=int(data["version"]),
            path=data["path"],
            lineage=dict(data.get("lineage", {})),
        )


class PromotionRegistry:
    """Directory-backed store of promoted, versioned lifecycle checkpoints."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- index ---------------------------------------------------------

    @property
    def _index_path(self) -> Path:
        return self.root / _INDEX

    def _load_index(self) -> list[dict]:
        if not self._index_path.exists():
            return []
        return json.loads(self._index_path.read_text())["records"]

    def _save_index(self, records: list[dict]) -> None:
        self._index_path.write_text(
            json.dumps({"records": records}, indent=2, sort_keys=True) + "\n"
        )

    # -- queries -------------------------------------------------------

    def records(self, name: str | None = None) -> list[CheckpointRecord]:
        out = [CheckpointRecord.from_dict(r) for r in self._load_index()]
        if name is not None:
            out = [r for r in out if r.name == name]
        return sorted(out, key=lambda r: (r.name, r.version))

    def names(self) -> tuple[str, ...]:
        return tuple(sorted({r.name for r in self.records()}))

    def latest(self, name: str) -> CheckpointRecord:
        recs = self.records(name)
        if not recs:
            raise PromotionError(f"no promoted checkpoints for {name!r}")
        return recs[-1]

    def get(self, name: str, version: int) -> CheckpointRecord:
        for r in self.records(name):
            if r.version == version:
                return r
        raise PromotionError(f"no checkpoint {name!r} v{version}")

    # -- promotion -----------------------------------------------------

    def _next_version(self, name: str) -> int:
        recs = self.records(name)
        return recs[-1].version + 1 if recs else 1

    def _register(self, name: str, version: int, path: Path, lineage: dict) -> CheckpointRecord:
        record = CheckpointRecord(
            name=name, version=version, path=str(path), lineage=lineage
        )
        self._save_index(self._load_index() + [record.as_dict()])
        if _metrics.COLLECT:
            _metrics.REGISTRY.counter("lifecycle.promotions").inc()
            _metrics.REGISTRY.gauge("lifecycle.registry_versions").set(
                len(self.records(name))
            )
        return record

    def promote(self, run: LifecycleRun, name: str | None = None) -> CheckpointRecord:
        """Version an in-memory run's model into the registry."""
        name = name or run.config.model
        version = self._next_version(name)
        lineage = {**run.lineage(), "name": name, "version": version}
        path = self.root / f"{name}-v{version}.npz"
        with _trace.span("lifecycle.promote", name=name, version=version):
            save_checkpoint(path, run.model, lifecycle=lineage)
        return self._register(name, version, path, lineage)

    def promote_artifact(
        self,
        checkpoint: str | Path,
        lineage: dict,
        name: str | None = None,
    ) -> CheckpointRecord:
        """Version an on-disk checkpoint (the CLI's two-step path).

        ``lineage`` is the ``lineage`` block of a run summary written by
        ``repro lifecycle run --out``; the artifact is copied into the
        registry with the versioned lineage merged into its metadata.
        """
        checkpoint = Path(checkpoint)
        if not checkpoint.exists():
            raise PromotionError(f"checkpoint not found: {checkpoint}")
        if "rank_map" not in lineage:
            raise PromotionError("lineage must carry the run's rank_map")
        name = name or lineage.get("model")
        if not name:
            raise PromotionError("no model name in lineage; pass name=")
        version = self._next_version(name)
        lineage = {**lineage, "name": name, "version": version}
        path = self.root / f"{name}-v{version}.npz"
        with _trace.span("lifecycle.promote", name=name, version=version):
            amend_checkpoint(checkpoint, path, lifecycle=lineage)
        return self._register(name, version, path, lineage)

    # -- serving handoff -----------------------------------------------

    def materialize(self, record: CheckpointRecord, registry=None):
        """Turn a promoted record into a ready :class:`~repro.serve.ServedModel`.

        The serve registry reads the rank map out of the checkpoint
        metadata and rebuilds the exact per-layer hybrid before loading
        weights, so allocator-chosen ranks round-trip bit-exactly.
        """
        if registry is None:
            from ..serve import default_registry

            registry = default_registry()
        lineage = record.lineage
        return registry.materialize(
            lineage.get("model", record.name),
            "factorized",
            num_classes=int(lineage.get("num_classes", 4)),
            width=float(lineage.get("width", 0.25)),
            seed=int(lineage.get("seed", 0)),
            checkpoint=record.path,
        )
