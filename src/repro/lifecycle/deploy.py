"""Deployment driver: staged canary hot-swap of a promoted checkpoint.

The last pipeline stage hands a promoted :class:`~.registry.CheckpointRecord`
to :func:`repro.cluster.run_canary`: live seeded load is shifted
full-rank → factorized along the canary schedule, each step judged on the
shed-rate delta, with automatic rollback to 0% when the factorized
variant degrades service.  The default latency profiles are *pinned*
measurements (VGG-19-class, the same numbers the cluster benchmark
gates), so a deployment verdict is a pure function of
``(record, scenario seed, config)`` on any machine; callers can swap in
measured or file-loaded profiles for live hardware.

An injected-regression knob (``degrade_factor``) scales the canary
profile's latencies — the rollback path is exercised deliberately in the
benchmark and the CI smoke rather than waiting for a real regression.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..cluster import CanaryConfig, ClusterScenario, LoadPhase, run_canary
from ..observability import metrics as _metrics
from ..observability import trace as _trace
from ..serve.latency import LatencyProfile
from .registry import CheckpointRecord

__all__ = [
    "PINNED_FULL_PROFILE",
    "PINNED_FACTORIZED_PROFILE",
    "DeploymentConfig",
    "DeploymentReport",
    "run_deployment",
]

# Pinned measured profiles (batch → seconds) so deployment verdicts are
# machine-independent; identical to the cluster benchmark's pinned pair.
_PROFILE_BATCHES = (1, 2, 4, 8, 16, 32)
PINNED_FULL_PROFILE = LatencyProfile(
    _PROFILE_BATCHES,
    (0.0047, 0.0074, 0.0124, 0.0212, 0.0392, 0.0769),
    meta=(("pinned", "true"), ("variant", "full")),
)
PINNED_FACTORIZED_PROFILE = LatencyProfile(
    _PROFILE_BATCHES,
    (0.0043, 0.0064, 0.0119, 0.0205, 0.0371, 0.0721),
    meta=(("pinned", "true"), ("variant", "factorized")),
)


def _default_phases() -> tuple[LoadPhase, ...]:
    return (LoadPhase(rate_rps=220.0, duration_s=120.0),)


@dataclass(frozen=True)
class DeploymentConfig:
    """Scenario + rollout schedule for one canary deployment."""

    phases: tuple = field(default_factory=_default_phases)
    window_s: float = 10.0
    seed: int = 0
    canary: CanaryConfig = field(default_factory=CanaryConfig)
    # Injected regression: multiply every canary latency by this factor
    # (1.0 = honest deploy).  Used to demonstrate/test rollback.
    degrade_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.degrade_factor <= 0:
            raise ValueError("degrade_factor must be positive")

    def scenario(self) -> ClusterScenario:
        return ClusterScenario(
            phases=tuple(self.phases), window_s=self.window_s, seed=self.seed
        )


@dataclass
class DeploymentReport:
    """Canary verdict plus the checkpoint it judged."""

    record: CheckpointRecord
    status: str  # promoted | rolled_back
    final_fraction: float
    steps: list
    canary_digest: str
    degrade_factor: float

    @property
    def promoted(self) -> bool:
        return self.status == "promoted"

    def digest(self) -> str:
        payload = json.dumps(
            {
                "name": self.record.name,
                "version": self.record.version,
                "rank_map_digest": self.record.lineage.get("rank_map_digest"),
                "parent_run": self.record.lineage.get("parent_run"),
                "status": self.status,
                "final_fraction": self.final_fraction,
                "canary_digest": self.canary_digest,
                "degrade_factor": self.degrade_factor,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def summary(self) -> dict:
        return {
            "checkpoint": {
                "name": self.record.name,
                "version": self.record.version,
                "parent_run": self.record.lineage.get("parent_run"),
                "rank_map_digest": self.record.lineage.get("rank_map_digest"),
            },
            "status": self.status,
            "final_fraction": self.final_fraction,
            "degrade_factor": self.degrade_factor,
            "steps": list(self.steps),
            "canary_digest": self.canary_digest,
            "deploy_digest": self.digest(),
        }


def run_deployment(
    record: CheckpointRecord,
    config: DeploymentConfig | None = None,
    baseline_profile: LatencyProfile | None = None,
    canary_profile: LatencyProfile | None = None,
) -> DeploymentReport:
    """Stage a promoted checkpoint through the cluster canary."""
    cfg = config or DeploymentConfig()
    baseline = baseline_profile or PINNED_FULL_PROFILE
    canary = canary_profile or PINNED_FACTORIZED_PROFILE
    if cfg.degrade_factor != 1.0:
        meta = dict(canary.meta)
        meta["degrade_factor"] = str(cfg.degrade_factor)
        canary = LatencyProfile(
            canary.batch_sizes,
            tuple(cfg.degrade_factor * t for t in canary.latency_s),
            meta=tuple(sorted(meta.items())),
        )
    with _trace.span(
        "lifecycle.deploy", name=record.name, version=record.version
    ):
        report = run_canary(cfg.scenario(), baseline, canary, cfg.canary)
    out = DeploymentReport(
        record=record,
        status=report.status,
        final_fraction=report.final_fraction,
        steps=[s.as_dict() for s in report.steps],
        canary_digest=report.digest(),
        degrade_factor=cfg.degrade_factor,
    )
    if _metrics.COLLECT:
        _metrics.REGISTRY.counter("lifecycle.deployments").labels(
            status=out.status
        ).inc()
        _metrics.REGISTRY.gauge("lifecycle.deploy_fraction").set(out.final_fraction)
    return out
