"""The train → factorize → deploy pipeline, seeded and digest-verified.

One :func:`run_lifecycle` call is the ROADMAP's "train it, shrink it,
ship it, scale it" loop up to the shipping boundary:

1. **Warm-up** — full-rank training (single-node :class:`repro.core.Trainer`
   or the simulated-DDP :class:`repro.distributed.DistributedTrainer`),
   with a :class:`~.monitor.SpectrumMonitor` snapshotting per-layer spectra
   every epoch.  The :class:`~.scheduler.RankScheduler` re-targets its
   per-layer rank map from each snapshot's energy-rank curve; during
   warm-up a drift decision only *retargets* (the model is still
   full-rank, so no SVD is paid yet).
2. **Factorize** — at the warm-up boundary the scheduler's current map is
   applied through :func:`repro.core.build_hybrid` as ``rank_overrides``
   on the model's paper config: per-layer allocator-chosen ranks instead
   of the global 0.25 ratio.
3. **Fine-tune with online re-factorization** — low-rank training
   continues; at every ``recheck_every`` epochs the monitor measures the
   *effective* (materialized) weights.  Truncation plus SGD concentrate
   spectral energy, so measured energy ranks can fall well below the
   deployed ranks; when the drift exceeds the hysteresis band the model
   is re-factorized (materialize → truncated SVD at the new map) and —
   in DDP mode — a full AB-Training-style resync broadcast is charged so
   every worker adopts bit-identical factors.

Everything recorded (spectra digests, rank maps, decisions, loss curves,
modeled resync costs) is a pure function of ``(seed, config)``; the
end-to-end ``timeline_digest`` proves it and is exact-gated in
``BENCH_lifecycle.json``.  Wall-clock quantities (epoch seconds, measured
compute) are deliberately excluded from the digest.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field, replace

import numpy as np

from ..core import Trainer, build_hybrid, eligible_paths
from ..data.loader import DataLoader, shard_dataset
from ..data.synthetic import make_cifar_like
from ..metrics import measure_macs
from ..observability import metrics as _metrics
from ..observability import trace as _trace
from ..optim import SGD
from ..serve.registry import IMAGE_MODELS, build_model, hybrid_config_for, input_spec_for
from ..utils import set_seed
from .errors import LifecycleConfigError
from .monitor import SpectrumMonitor
from .scheduler import RankPolicy, RankScheduler

__all__ = ["LifecycleConfig", "LifecycleRun", "run_lifecycle"]

# Counter-keyed seed derivation (same discipline as repro.cluster.scenario:
# every stream gets an independent deterministic seed; renumbering kinds
# changes every seeded lifecycle run).
_SEED_MOD = 2**63
_KIND_DATA = 21
_KIND_LOADER = 22


def _derive_seed(seed: int, kind: int, index: int) -> int:
    return (seed * 1_000_003 + kind * 65_537 + index) % _SEED_MOD


def _r6(x: float) -> float:
    return round(float(x), 6)


@dataclass(frozen=True)
class LifecycleConfig:
    """Everything that determines a lifecycle run (with the seed)."""

    model: str = "vgg11"
    num_classes: int = 4
    width: float = 0.25
    seed: int = 0
    train_samples: int = 96
    val_samples: int = 32
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.9
    warmup_epochs: int = 2
    total_epochs: int = 4
    recheck_every: int = 1  # low-rank-phase snapshot cadence (epochs)
    rank_ratio: float = 0.25  # the paper's global baseline (comparison map)
    policy: RankPolicy = field(default_factory=RankPolicy)
    workers: int = 1  # >1: simulated DDP with full-resync accounting

    def __post_init__(self) -> None:
        if self.model not in IMAGE_MODELS:
            raise LifecycleConfigError(
                f"lifecycle training supports the image zoo {IMAGE_MODELS}, "
                f"got {self.model!r}"
            )
        if self.warmup_epochs < 1:
            raise LifecycleConfigError("warmup_epochs must be >= 1")
        if self.total_epochs < self.warmup_epochs:
            raise LifecycleConfigError("total_epochs must be >= warmup_epochs")
        if self.recheck_every < 1:
            raise LifecycleConfigError("recheck_every must be >= 1")
        if self.workers < 1:
            raise LifecycleConfigError("workers must be >= 1")
        if self.batch_size < 1 or self.train_samples < 1 or self.val_samples < 1:
            raise LifecycleConfigError("samples and batch_size must be positive")
        if self.train_samples // self.workers < self.batch_size:
            raise LifecycleConfigError(
                "each worker shard needs at least one full batch: "
                f"{self.train_samples} samples / {self.workers} workers "
                f"< batch_size {self.batch_size}"
            )

    def as_dict(self) -> dict:
        return {
            "model": self.model,
            "num_classes": self.num_classes,
            "width": self.width,
            "seed": self.seed,
            "train_samples": self.train_samples,
            "val_samples": self.val_samples,
            "batch_size": self.batch_size,
            "lr": self.lr,
            "momentum": self.momentum,
            "warmup_epochs": self.warmup_epochs,
            "total_epochs": self.total_epochs,
            "recheck_every": self.recheck_every,
            "rank_ratio": self.rank_ratio,
            "policy": {
                "energy_threshold": self.policy.energy_threshold,
                "min_rank": self.policy.min_rank,
                "max_ratio": self.policy.max_ratio,
                "hysteresis": self.policy.hysteresis,
            },
            "workers": self.workers,
        }

    def digest(self) -> str:
        payload = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @property
    def run_id(self) -> str:
        """Deterministic run identity — same (seed, config) ⇒ same run."""
        return f"lc-{self.digest()[:12]}"


@dataclass
class LifecycleRun:
    """Result of one pipeline run: the model plus its verified provenance."""

    config: LifecycleConfig
    model: object  # the final trained hybrid
    snapshots: list
    decisions: list
    events: list
    rank_map: dict
    global_rank_map: dict  # what the paper's global ratio would have chosen
    params_full: int
    params_factorized: int
    macs_full: int
    macs_factorized: int
    spectra_digest: str
    history: list

    @property
    def run_id(self) -> str:
        return self.config.run_id

    @property
    def param_reduction(self) -> float:
        return self.params_full / max(self.params_factorized, 1)

    @property
    def mac_reduction(self) -> float:
        return self.macs_full / max(self.macs_factorized, 1)

    def rank_map_digest(self) -> str:
        payload = json.dumps(dict(sorted(self.rank_map.items())), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def n_layers_differ_from_global(self) -> int:
        """Layers whose allocated rank differs from the global-ratio map."""
        return sum(
            1
            for path, rank in self.rank_map.items()
            if self.global_rank_map.get(path) != rank
        )

    def n_refactorizations(self) -> int:
        """Re-factorizations paid after the initial warm-up conversion."""
        return sum(1 for e in self.events if e["event"] == "refactorize")

    def lineage(self) -> dict:
        """The provenance block stamped into promoted checkpoints."""
        return {
            "parent_run": self.run_id,
            "config_digest": self.config.digest(),
            "spectra_digest": self.spectra_digest,
            "rank_map": dict(sorted(self.rank_map.items())),
            "rank_map_digest": self.rank_map_digest(),
            "params_full": self.params_full,
            "params_factorized": self.params_factorized,
            "macs_full": self.macs_full,
            "macs_factorized": self.macs_factorized,
            "model": self.config.model,
            "num_classes": self.config.num_classes,
            "width": self.config.width,
            "seed": self.config.seed,
            "timeline_digest": self.timeline_digest(),
        }

    def _payload(self) -> dict:
        return {
            "run_id": self.run_id,
            "config": self.config.as_dict(),
            "config_digest": self.config.digest(),
            "snapshots": [s.as_dict() for s in self.snapshots],
            "decisions": [d.as_dict() for d in self.decisions],
            "events": self.events,
            "rank_map": dict(sorted(self.rank_map.items())),
            "rank_map_digest": self.rank_map_digest(),
            "global_rank_map": dict(sorted(self.global_rank_map.items())),
            "n_layers_differ_from_global": self.n_layers_differ_from_global(),
            "n_refactorizations": self.n_refactorizations(),
            "params_full": self.params_full,
            "params_factorized": self.params_factorized,
            "param_reduction": round(self.param_reduction, 4),
            "macs_full": self.macs_full,
            "macs_factorized": self.macs_factorized,
            "mac_reduction": round(self.mac_reduction, 4),
            "spectra_digest": self.spectra_digest,
            "history": self.history,
        }

    def timeline_digest(self) -> str:
        payload = json.dumps(self._payload(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def summary(self) -> dict:
        """JSON-safe run record (everything but the weights)."""
        out = self._payload()
        out["timeline_digest"] = self.timeline_digest()
        return out


def _example_batch(name: str):
    spec = input_spec_for(name)
    return spec.example_batch(1, np.random.default_rng(0))


class _SingleNode:
    """Epoch driver over :class:`repro.core.Trainer` (rebuilt on swap)."""

    def __init__(self, cfg: LifecycleConfig, train, val):
        rng = np.random.default_rng(_derive_seed(cfg.seed, _KIND_LOADER, 0))
        self.cfg = cfg
        self.train_loader = DataLoader(
            train.images, train.labels, cfg.batch_size, shuffle=True, rng=rng
        )
        self.val_loader = DataLoader(val.images, val.labels, cfg.batch_size)
        self.trainer: Trainer | None = None

    def adopt(self, model) -> None:
        opt = SGD(model.parameters(), lr=self.cfg.lr, momentum=self.cfg.momentum)
        self.trainer = Trainer(model, opt)

    def run_epoch(self, epoch: int, phase: str) -> dict:
        self.trainer.fit(
            self.train_loader, self.val_loader, 1, start_epoch=epoch, phase=phase
        )
        s = self.trainer.history[-1]
        return {
            "event": "epoch",
            "epoch": epoch,
            "phase": phase,
            "train_loss": _r6(s.train_loss),
            "val_loss": _r6(s.val_loss),
            "val_metric": _r6(s.val_metric),
            "params": int(s.num_parameters),
        }

    def evaluate(self) -> tuple[float, float]:
        return self.trainer.evaluate(self.val_loader)

    def resync_seconds(self, nbytes: float) -> float:
        return 0.0  # one replica: nothing to broadcast


class _SimulatedDDP:
    """Epoch driver over the simulated DDP trainer with resync accounting."""

    def __init__(self, cfg: LifecycleConfig, train, val):
        from ..distributed import ClusterSpec

        self.cfg = cfg
        self.cluster = ClusterSpec(cfg.workers)
        shards = shard_dataset(train.images, train.labels, cfg.workers)
        self.worker_loaders = [
            DataLoader(
                x,
                y,
                cfg.batch_size,
                shuffle=True,
                drop_last=True,
                rng=np.random.default_rng(_derive_seed(cfg.seed, _KIND_LOADER, w)),
            )
            for w, (x, y) in enumerate(shards)
        ]
        self.val_loader = DataLoader(val.images, val.labels, cfg.batch_size)
        self.ddp = None

    def adopt(self, model) -> None:
        from ..distributed import DistributedTrainer

        opt = SGD(model.parameters(), lr=self.cfg.lr, momentum=self.cfg.momentum)
        self.ddp = DistributedTrainer(model, opt, self.cluster)

    def run_epoch(self, epoch: int, phase: str) -> dict:
        timeline = self.ddp.train_epoch(self.worker_loaders)
        val_loss, val_metric = self.ddp.evaluate(self.val_loader)
        return {
            "event": "epoch",
            "epoch": epoch,
            "phase": phase,
            # Loss over the epoch is not part of the DDP timeline; the val
            # sweep after the epoch is the deterministic signal recorded.
            "val_loss": _r6(val_loss),
            "val_metric": _r6(val_metric),
            "params": int(self.ddp.model.num_parameters()),
            # Modeled α–β wire time (deterministic); measured compute
            # seconds are wall-clock and stay out of the digest.
            "comm_seconds": round(timeline.comm, 9),
            "bytes_per_iteration": int(timeline.bytes_per_iteration),
            "iterations": int(timeline.iterations),
        }

    def evaluate(self) -> tuple[float, float]:
        return self.ddp.evaluate(self.val_loader)

    def resync_seconds(self, nbytes: float) -> float:
        from ..distributed.cost_model import broadcast_cost

        return broadcast_cost(nbytes, self.cluster)


def run_lifecycle(config: LifecycleConfig) -> LifecycleRun:
    """Run the full seeded pipeline; pure function of ``(seed, config)``."""
    cfg = config
    set_seed(cfg.seed)
    data_rng = np.random.default_rng(_derive_seed(cfg.seed, _KIND_DATA, 0))
    dataset = make_cifar_like(
        cfg.train_samples + cfg.val_samples, cfg.num_classes, rng=data_rng
    )
    train, val = dataset.split(cfg.train_samples)

    model = build_model(cfg.model, cfg.num_classes, cfg.width)
    base_hybrid_cfg = hybrid_config_for(cfg.model, model, cfg.rank_ratio)
    monitor = SpectrumMonitor()
    scheduler = RankScheduler(
        policy=cfg.policy, eligible=tuple(eligible_paths(model, base_hybrid_cfg))
    )
    driver = (
        _SingleNode(cfg, train, val)
        if cfg.workers == 1
        else _SimulatedDDP(cfg, train, val)
    )

    events: list[dict] = []
    history: list[dict] = []
    example = _example_batch(cfg.model)
    params_full = int(model.num_parameters())
    macs_full = int(measure_macs(model, *example))

    with _trace.span("lifecycle.run", model=cfg.model, seed=cfg.seed):
        # Phase 1: full-rank warm-up with per-epoch spectral retargeting.
        driver.adopt(model)
        with _trace.span("lifecycle.warmup", epochs=cfg.warmup_epochs):
            for epoch in range(cfg.warmup_epochs):
                record = driver.run_epoch(epoch, "warmup")
                history.append(record)
                snap = monitor.observe(model, epoch, "warmup")
                events.append({"event": "snapshot", **snap.as_dict()})
                decision = scheduler.decide(snap)
                if decision.refactorize and decision.reason != "initial":
                    events.append(
                        {
                            "event": "retarget",
                            "epoch": epoch,
                            "drifted": list(decision.drifted),
                        }
                    )

        # Phase 2: one-time truncated-SVD conversion at the scheduler's map.
        warm_model = copy.deepcopy(model)
        factor_cfg = replace(
            base_hybrid_cfg,
            rank_overrides={**base_hybrid_cfg.rank_overrides, **scheduler.current},
        )
        with _trace.span("lifecycle.factorize", epoch=cfg.warmup_epochs):
            model, report = build_hybrid(model, factor_cfg)
        events.append(
            {
                "event": "factorize",
                "epoch": cfg.warmup_epochs,
                "replaced": len(report.replaced),
                "kept": len(report.kept),
                "params_before": int(report.params_before),
                "params_after": int(report.params_after),
            }
        )
        driver.adopt(model)

        # Phase 3: low-rank fine-tuning with online re-factorization.
        for epoch in range(cfg.warmup_epochs, cfg.total_epochs):
            record = driver.run_epoch(epoch, "lowrank")
            history.append(record)
            recheck_idx = epoch - cfg.warmup_epochs + 1
            if recheck_idx % cfg.recheck_every != 0 or epoch == cfg.total_epochs - 1:
                continue
            snap = monitor.observe(model, epoch, "lowrank")
            events.append({"event": "snapshot", **snap.as_dict()})
            decision = scheduler.decide(snap)
            if not decision.refactorize:
                continue
            # Drift past the hysteresis band: materialize the effective
            # weights and re-factorize at the new map.  Under DDP this is
            # the AB-Training full resync — one broadcast of the fresh
            # factors keeps every worker bit-consistent.
            factor_cfg = replace(
                base_hybrid_cfg,
                rank_overrides={**base_hybrid_cfg.rank_overrides, **scheduler.current},
            )
            with _trace.span("lifecycle.refactorize", epoch=epoch):
                from ..core.materialize import materialize_hybrid

                model, report = build_hybrid(materialize_hybrid(model), factor_cfg)
            resync_bytes = int(report.params_after) * 4
            events.append(
                {
                    "event": "refactorize",
                    "epoch": epoch,
                    "drifted": list(decision.drifted),
                    "replaced": len(report.replaced),
                    "params_after": int(report.params_after),
                    "resync_bytes": resync_bytes * max(cfg.workers - 1, 0),
                    "resync_seconds": round(driver.resync_seconds(resync_bytes), 9),
                }
            )
            driver.adopt(model)

        val_loss, val_metric = driver.evaluate()
        events.append(
            {
                "event": "final_eval",
                "epoch": cfg.total_epochs,
                "val_loss": _r6(val_loss),
                "val_metric": _r6(val_metric),
            }
        )

    # The paper's global-ratio map on the same warm-up weights, for the
    # "per-layer allocation actually chose differently" comparison.
    _, global_report = build_hybrid(warm_model, base_hybrid_cfg)
    global_rank_map = {path: int(rank) for path, rank in global_report.replaced}

    run = LifecycleRun(
        config=cfg,
        model=model,
        snapshots=list(monitor.snapshots),
        decisions=list(scheduler.decisions),
        events=events,
        rank_map={k: int(v) for k, v in (scheduler.current or {}).items()},
        global_rank_map=global_rank_map,
        params_full=params_full,
        params_factorized=int(model.num_parameters()),
        macs_full=macs_full,
        macs_factorized=int(measure_macs(model, *example)),
        spectra_digest=monitor.digest(),
        history=history,
    )
    if _metrics.COLLECT:
        _metrics.REGISTRY.counter("lifecycle.runs").inc()
        _metrics.REGISTRY.gauge("lifecycle.param_reduction").set(run.param_reduction)
        _metrics.REGISTRY.gauge("lifecycle.refactorization_count").set(
            run.n_refactorizations()
        )
    return run
