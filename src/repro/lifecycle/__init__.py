"""Model lifecycle: online re-factorization and train→factorize→deploy.

The integration layer over the rest of the stack — one seeded,
digest-verified loop from full-rank warm-up training to a canary-gated
production hot-swap:

* :mod:`.monitor` — :class:`SpectrumMonitor`: counter-keyed per-layer
  singular-value snapshots during :class:`repro.core.Trainer` /
  :class:`repro.distributed.DistributedTrainer` runs.
* :mod:`.scheduler` — :class:`RankScheduler`: per-layer energy-rank
  proposals with a hysteresis band; triggers re-factorization with
  AB-Training-style full resync.
* :mod:`.pipeline` — :func:`run_lifecycle`: the end-to-end training
  pipeline, a pure function of ``(seed, config)`` with a timeline digest.
* :mod:`.registry` — :class:`PromotionRegistry`: versioned factorized
  checkpoints with lineage metadata, materializable into
  :class:`repro.serve.ModelRegistry` variants.
* :mod:`.deploy` — :func:`run_deployment`: staged full→factorized canary
  hot-swap through :func:`repro.cluster.run_canary`, with rollback.

CLI: ``repro lifecycle run / promote / deploy``.  Gated by
``benchmarks/test_lifecycle.py`` → ``BENCH_lifecycle.json``.
"""

from .errors import LifecycleConfigError, LifecycleError, PromotionError
from .monitor import SpectrumMonitor, SpectrumSnapshot
from .scheduler import RankDecision, RankPolicy, RankScheduler
from .pipeline import LifecycleConfig, LifecycleRun, run_lifecycle
from .registry import CheckpointRecord, PromotionRegistry
from .deploy import (
    PINNED_FACTORIZED_PROFILE,
    PINNED_FULL_PROFILE,
    DeploymentConfig,
    DeploymentReport,
    run_deployment,
)

__all__ = [
    "LifecycleError",
    "LifecycleConfigError",
    "PromotionError",
    "SpectrumMonitor",
    "SpectrumSnapshot",
    "RankPolicy",
    "RankDecision",
    "RankScheduler",
    "LifecycleConfig",
    "LifecycleRun",
    "run_lifecycle",
    "CheckpointRecord",
    "PromotionRegistry",
    "DeploymentConfig",
    "DeploymentReport",
    "run_deployment",
    "PINNED_FULL_PROFILE",
    "PINNED_FACTORIZED_PROFILE",
]
