"""Online rank scheduling: energy-rank proposals under a hysteresis band.

Pufferfish picks one global rank ratio, once, at the warm-up boundary; the
paper flags per-layer selection as future work.  The scheduler closes that
gap for the lifecycle pipeline: every :class:`~.monitor.SpectrumSnapshot`
is turned into a per-layer rank proposal (smallest rank retaining the
policy's target spectral energy, clipped to ``[min_rank, max_ratio·full]``)
and judged against the currently deployed rank map.

Re-factorizing is not free — it pays an SVD, resets optimizer state, and
(under data parallelism) requires an AB-Training-style *full resync* so
every worker adopts bit-identical factors.  The scheduler therefore only
triggers when some layer's energy rank drifts past a hysteresis band of
``hysteresis`` rank units; small spectral wobble holds the current map.
When it does trigger, the *entire* proposed map is adopted at once (never
a per-layer patch), which is exactly the full-resync discipline: one
broadcast of freshly factorized weights leaves all replicas consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..observability import metrics as _metrics
from .errors import LifecycleConfigError
from .monitor import SpectrumSnapshot

__all__ = ["RankPolicy", "RankDecision", "RankScheduler"]

INITIAL = "initial"
DRIFT = "drift"
HOLD = "hold"


@dataclass(frozen=True)
class RankPolicy:
    """How ranks are proposed and when a re-factorization is worth it."""

    energy_threshold: float = 0.9
    min_rank: int = 1
    max_ratio: float = 1.0  # cap each rank at this fraction of full rank
    hysteresis: int = 2  # rank units a layer must drift to trigger

    def __post_init__(self) -> None:
        if not 0.0 < self.energy_threshold <= 1.0:
            raise LifecycleConfigError("energy_threshold must be in (0, 1]")
        if self.min_rank < 1:
            raise LifecycleConfigError("min_rank must be >= 1")
        if not 0.0 < self.max_ratio <= 1.0:
            raise LifecycleConfigError("max_ratio must be in (0, 1]")
        if self.hysteresis < 0:
            raise LifecycleConfigError("hysteresis must be >= 0")


@dataclass(frozen=True)
class RankDecision:
    """One scheduler verdict for one snapshot."""

    snapshot_index: int
    epoch: int
    phase: str
    proposed: dict  # path -> rank (the full proposal, eligible layers only)
    drifted: tuple  # paths outside the hysteresis band vs the current map
    refactorize: bool
    reason: str  # initial | drift | hold

    def as_dict(self) -> dict:
        return {
            "snapshot_index": self.snapshot_index,
            "epoch": self.epoch,
            "phase": self.phase,
            "proposed": dict(sorted(self.proposed.items())),
            "drifted": list(self.drifted),
            "refactorize": self.refactorize,
            "reason": self.reason,
        }


@dataclass
class RankScheduler:
    """Tracks the deployed rank map and decides when to re-factorize.

    ``eligible`` is the set of layer paths ``build_hybrid`` would actually
    factorize under the run's base config (see
    :func:`repro.core.eligible_paths`) — spectra of kept layers (first
    conv, last FC, full-rank prefixes) never drive a re-factorization.
    """

    policy: RankPolicy
    eligible: tuple
    current: dict | None = None
    decisions: list = field(default_factory=list)

    def propose(self, snapshot: SpectrumSnapshot) -> dict:
        """Per-layer energy ranks for the eligible layers of one snapshot."""
        ranks = snapshot.energy_ranks(self.policy.energy_threshold)
        proposal = {}
        for path in self.eligible:
            if path not in ranks:
                continue
            full = len(snapshot.spectra[path])
            cap = max(self.policy.min_rank, int(self.policy.max_ratio * full))
            proposal[path] = int(np.clip(ranks[path], self.policy.min_rank, cap))
        return proposal

    def decide(self, snapshot: SpectrumSnapshot) -> RankDecision:
        """Judge one snapshot; adopts the proposal when it triggers."""
        proposed = self.propose(snapshot)
        if self.current is None:
            drifted: tuple = ()
            refactorize, reason = True, INITIAL
        else:
            drifted = tuple(
                sorted(
                    p
                    for p, r in proposed.items()
                    if abs(r - self.current.get(p, 0)) > self.policy.hysteresis
                )
            )
            refactorize = bool(drifted)
            reason = DRIFT if refactorize else HOLD
        if refactorize:
            self.current = dict(proposed)
        decision = RankDecision(
            snapshot_index=snapshot.index,
            epoch=snapshot.epoch,
            phase=snapshot.phase,
            proposed=proposed,
            drifted=drifted,
            refactorize=refactorize,
            reason=reason,
        )
        self.decisions.append(decision)
        if _metrics.COLLECT:
            _metrics.REGISTRY.gauge("lifecycle.rank_layers").set(len(proposed))
            if reason == DRIFT:
                _metrics.REGISTRY.counter("lifecycle.refactorizations").inc()
        return decision
