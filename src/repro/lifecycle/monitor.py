"""Spectral monitoring during training: seeded, digest-carrying snapshots.

The measurement half of online re-factorization.  A
:class:`SpectrumMonitor` is attached to a training run and asked to
``observe`` the model at configurable epochs; each observation records the
per-layer singular-value spectra (via :func:`repro.core.layer_spectra`) as
an immutable, counter-keyed :class:`SpectrumSnapshot` whose sha256 digest
is a pure function of the model weights — and therefore, for a seeded run,
of ``(seed, config)``.  The snapshot stream is what the rank scheduler
consumes and what `BENCH_lifecycle.json` exact-gates.

Hybrid models are materialized (``U V^T`` products reconstituted into
vanilla weights) before measuring, so spectra stay comparable across the
full-rank warm-up and the low-rank fine-tuning phases: the monitor always
reports the spectrum of the *effective* weight the layer applies.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from ..core.materialize import materialize_hybrid
from ..core.spectrum import energy_rank, layer_spectra
from ..nn.module import Module
from ..observability import metrics as _metrics
from ..observability import trace as _trace

__all__ = ["SpectrumSnapshot", "SpectrumMonitor"]

# Stored singular values are rounded so digests do not depend on sub-1e-6
# float noise (e.g. summation-order differences between BLAS builds).
_ROUND_DECIMALS = 6


@dataclass(frozen=True)
class SpectrumSnapshot:
    """One observation of the model's per-layer spectra.

    ``index`` is the monitor's snapshot counter — snapshots are keyed by
    (index, epoch, phase) so a run's snapshot stream is self-describing.
    """

    index: int
    epoch: int
    phase: str  # "warmup" | "lowrank"
    spectra: dict  # path -> tuple of singular values (rounded, descending)

    def energy_ranks(self, threshold: float = 0.9) -> dict[str, int]:
        """Smallest rank per layer retaining ``threshold`` spectral energy."""
        return {
            path: energy_rank(np.asarray(sv), threshold)
            for path, sv in self.spectra.items()
        }

    def digest(self) -> str:
        payload = json.dumps(
            {
                "index": self.index,
                "epoch": self.epoch,
                "phase": self.phase,
                "spectra": {k: list(v) for k, v in sorted(self.spectra.items())},
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def as_dict(self) -> dict:
        """Digest-level summary (the full spectra stay in memory only)."""
        return {
            "index": self.index,
            "epoch": self.epoch,
            "phase": self.phase,
            "n_layers": len(self.spectra),
            "digest": self.digest(),
        }


class SpectrumMonitor:
    """Collects :class:`SpectrumSnapshot` records over a training run."""

    def __init__(self, round_decimals: int = _ROUND_DECIMALS):
        self.round_decimals = round_decimals
        self.snapshots: list[SpectrumSnapshot] = []

    def observe(self, model: Module, epoch: int, phase: str) -> SpectrumSnapshot:
        """Snapshot ``model``'s effective-weight spectra at ``epoch``."""
        with _trace.span("lifecycle.snapshot", epoch=epoch, phase=phase):
            effective = materialize_hybrid(model)
            raw = layer_spectra(effective)
        spectra = {
            path: tuple(round(float(v), self.round_decimals) for v in sv)
            for path, sv in raw.items()
        }
        snap = SpectrumSnapshot(
            index=len(self.snapshots), epoch=epoch, phase=phase, spectra=spectra
        )
        self.snapshots.append(snap)
        if _metrics.COLLECT:
            _metrics.REGISTRY.counter("lifecycle.snapshots").inc()
            _metrics.REGISTRY.gauge("lifecycle.snapshot_layers").set(len(spectra))
        return snap

    def digest(self) -> str:
        """Digest over the whole snapshot stream."""
        payload = json.dumps([s.digest() for s in self.snapshots])
        return hashlib.sha256(payload.encode()).hexdigest()[:16]
