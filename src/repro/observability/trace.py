"""Span tracer: a nested, thread-safe wall-clock timeline.

``span("backward")`` opens a timed region; regions nest, and every thread
gets its own span stack, so the simulator's per-worker work and future
loader threads interleave cleanly in one timeline.  Each finished span
records its wall time and its *exclusive* time (wall time minus the wall
time of its direct children) — the number that tells you where the time
actually went rather than who was on the call stack.

Export formats:

* :meth:`Tracer.as_dicts` — plain JSON-serializable records.
* :meth:`Tracer.chrome_trace` — the Chrome ``traceEvents`` format; load the
  file in ``chrome://tracing`` or https://ui.perfetto.dev for a flame view.

Zero-overhead contract: when tracing is disabled (the default),
:func:`span` returns a shared no-op singleton — one module-attribute check,
no allocation, nothing recorded.
"""

from __future__ import annotations

import functools
import json
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "span",
    "traced",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "enable_module_spans",
    "disable_module_spans",
    "get_tracer",
    "ENABLED",
    "MODULE_SPANS",
]

# Module-level switches, read directly by hot paths (attribute load only).
ENABLED = False
# Separate flag for per-Module.forward spans: they are much finer-grained
# than phase spans, so they opt in independently.
MODULE_SPANS = False


def enable_tracing() -> None:
    global ENABLED
    ENABLED = True


def disable_tracing() -> None:
    global ENABLED
    ENABLED = False


def tracing_enabled() -> bool:
    return ENABLED


def enable_module_spans() -> None:
    global MODULE_SPANS
    MODULE_SPANS = True


def disable_module_spans() -> None:
    global MODULE_SPANS
    MODULE_SPANS = False


@dataclass
class Span:
    """One finished timed region."""

    name: str
    start: float  # seconds since the tracer's epoch
    duration: float  # wall seconds
    thread_id: int
    depth: int  # nesting level at entry (0 = top level)
    attrs: dict = field(default_factory=dict)
    child_time: float = 0.0  # summed wall time of direct children

    @property
    def exclusive(self) -> float:
        """Wall time spent in this span but not in any child span."""
        return self.duration - self.child_time

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "exclusive": self.exclusive,
            "thread_id": self.thread_id,
            "depth": self.depth,
            "attrs": self.attrs,
        }


class _ActiveSpan:
    """Mutable per-thread stack entry while a span is open."""

    __slots__ = ("name", "attrs", "start", "child_time")

    def __init__(self, name: str, attrs: dict, start: float):
        self.name = name
        self.attrs = attrs
        self.start = start
        self.child_time = 0.0


class _SpanContext:
    """Context manager recording one span into a tracer."""

    __slots__ = ("_tracer", "_name", "_attrs")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanContext":
        self._tracer._push(self._name, self._attrs)
        return self

    def __exit__(self, *exc) -> None:
        self._tracer._pop()


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans from all threads into one timeline.

    Parameters
    ----------
    clock: monotonic time source; injectable for deterministic tests.
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._local = threading.local()

    # -- recording ------------------------------------------------------

    def _stack(self) -> list[_ActiveSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, name: str, attrs: dict) -> None:
        self._stack().append(_ActiveSpan(name, attrs, self._clock()))

    def _pop(self) -> None:
        end = self._clock()
        stack = self._stack()
        active = stack.pop()
        duration = end - active.start
        if stack:
            stack[-1].child_time += duration
        record = Span(
            name=active.name,
            start=active.start - self._epoch,
            duration=duration,
            thread_id=threading.get_ident(),
            depth=len(stack),
            attrs=active.attrs,
            child_time=active.child_time,
        )
        with self._lock:
            self._spans.append(record)

    def span(self, name: str, /, **attrs) -> _SpanContext:
        """Open a span on this tracer regardless of the global flag."""
        return _SpanContext(self, name, attrs)

    # -- querying -------------------------------------------------------

    def spans(self, name: str | None = None) -> list[Span]:
        with self._lock:
            out = list(self._spans)
        if name is not None:
            out = [s for s in out if s.name == name]
        return out

    def total(self, name: str) -> float:
        """Summed wall time of every span with ``name``."""
        return sum(s.duration for s in self.spans(name))

    def summary(self) -> dict:
        """Per-name aggregate: count, total wall and total exclusive time."""
        out: dict[str, dict] = {}
        for s in self.spans():
            agg = out.setdefault(
                s.name, {"count": 0, "total": 0.0, "exclusive": 0.0}
            )
            agg["count"] += 1
            agg["total"] += s.duration
            agg["exclusive"] += s.exclusive
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
        self._epoch = self._clock()

    # -- export ---------------------------------------------------------

    def as_dicts(self) -> list[dict]:
        return [s.as_dict() for s in self.spans()]

    def chrome_trace(self) -> dict:
        """Chrome ``traceEvents`` JSON (complete 'X' events, µs units)."""
        events = []
        for s in self.spans():
            events.append(
                {
                    "name": s.name,
                    "ph": "X",
                    "ts": s.start * 1e6,
                    "dur": s.duration * 1e6,
                    "pid": 0,
                    "tid": s.thread_id,
                    "args": {k: _jsonable(v) for k, v in s.attrs.items()},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> str:
        with open(path, "w") as f:
            json.dump(self.chrome_trace(), f)
        return path


def _jsonable(v):
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    return str(v)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def span(name: str, /, **attrs):
    """Timed region on the global tracer; no-op singleton when disabled."""
    if not ENABLED:
        return _NULL_SPAN
    return _SpanContext(_TRACER, name, attrs)


def traced(name: str | None = None, **attrs):
    """Decorator form: times each call of the wrapped function.

    The enabled check happens per *call*, so functions decorated at import
    time pick up tracing turned on later.
    """

    def decorate(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not ENABLED:
                return fn(*args, **kwargs)
            with _TRACER.span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
